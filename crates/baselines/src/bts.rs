//! BTS: interval-sampling approximation (Liu, Benson & Charikar,
//! *Sampling methods for counting temporal motifs*, WSDM 2019), with BT
//! as the exact subroutine — the paper's BTS-Pair baseline.
//!
//! The timeline is tiled by windows of length `L = c·δ` at a uniformly
//! random offset; each window is retained independently with probability
//! `q`; inside every retained window, instances fully contained in it are
//! counted **exactly** by the BT matcher. An instance with span `s` is
//! fully contained in some window with probability `1 − s/L` (over the
//! random offset), so weighting each counted instance by
//! `1 / (q · (1 − s/L))` yields an unbiased estimator of the true count.
//!
//! `c ≥ 2` keeps the weights bounded (`s ≤ δ < L`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use hare::motif::{Motif, MotifCategory};
use temporal_graph::{GraphBuilder, TemporalGraph, Timestamp};

use crate::bt::{canonical_patterns, MotifPattern};
use crate::estimate::EstimateMatrix;

/// Configuration of the BTS sampler.
#[derive(Debug, Clone)]
pub struct BtsConfig {
    /// Window length as a multiple of δ (`c`; must be ≥ 2).
    pub window_factor: i64,
    /// Per-window retention probability (`q` in (0, 1]).
    pub sample_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BtsConfig {
    fn default() -> Self {
        BtsConfig {
            window_factor: 5,
            sample_prob: 0.3,
            seed: 0xB75,
        }
    }
}

/// Estimate pair-motif counts (BTS-Pair). Single-threaded.
#[must_use]
pub fn bts_pair_estimate(g: &TemporalGraph, delta: Timestamp, cfg: &BtsConfig) -> EstimateMatrix {
    bts_estimate_with(g, delta, cfg, 1, |m| m.category() == MotifCategory::Pair)
}

/// Estimate pair-motif counts with a rayon pool of `threads` workers
/// (windows are independent — the natural parallel unit).
#[must_use]
pub fn bts_pair_estimate_parallel(
    g: &TemporalGraph,
    delta: Timestamp,
    cfg: &BtsConfig,
    threads: usize,
) -> EstimateMatrix {
    bts_estimate_with(g, delta, cfg, threads, |m| {
        m.category() == MotifCategory::Pair
    })
}

/// Estimate counts for any motif subset selected by `select`.
#[must_use]
pub fn bts_estimate_with(
    g: &TemporalGraph,
    delta: Timestamp,
    cfg: &BtsConfig,
    threads: usize,
    select: impl Fn(&Motif) -> bool,
) -> EstimateMatrix {
    assert!(cfg.window_factor >= 2, "window_factor must be >= 2");
    assert!(
        cfg.sample_prob > 0.0 && cfg.sample_prob <= 1.0,
        "sample_prob must be in (0, 1]"
    );
    let (Some(min_t), Some(max_t)) = (g.min_time(), g.max_time()) else {
        return EstimateMatrix::default();
    };
    let len = cfg.window_factor.saturating_mul(delta.max(1));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let offset = rng.gen_range(0..len);

    // Windows [start, start + len) tiling [min_t, max_t], shifted left
    // by the random offset so the first window starts at or before min_t.
    let mut windows: Vec<Timestamp> = Vec::new();
    let mut start = min_t - offset;
    while start <= max_t {
        if rng.gen_bool(cfg.sample_prob) {
            windows.push(start);
        }
        start += len;
    }

    let patterns: Vec<(Motif, MotifPattern)> = canonical_patterns()
        .into_iter()
        .filter(|(m, _)| select(m))
        .collect();

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("rayon pool");
    pool.install(|| {
        windows
            .par_iter()
            .map(|&w_start| count_window(g, delta, w_start, len, cfg.sample_prob, &patterns))
            .reduce(EstimateMatrix::default, |mut a, b| {
                a.merge(&b);
                a
            })
    })
}

fn count_window(
    g: &TemporalGraph,
    delta: Timestamp,
    w_start: Timestamp,
    len: Timestamp,
    q: f64,
    patterns: &[(Motif, MotifPattern)],
) -> EstimateMatrix {
    let mut est = EstimateMatrix::default();
    let edges = g.edges();
    let lo = edges.partition_point(|e| e.t < w_start);
    let hi = edges.partition_point(|e| e.t < w_start + len);
    if hi - lo < 3 {
        return est;
    }
    // Materialise the window subgraph (ids compacted; chronological order
    // inside the window is preserved because the slice is already
    // time-sorted).
    let mut b = GraphBuilder::with_capacity(hi - lo).compact_ids(true);
    b.extend(edges[lo..hi].iter().copied());
    let sub = b.build();

    for (motif, pattern) in patterns {
        pattern.enumerate(&sub, delta, |ids| {
            let span = sub.edge(ids[ids.len() - 1]).t - sub.edge(ids[0]).t;
            let p_contained = 1.0 - span as f64 / len as f64;
            est.add(*motif, 1.0 / (q * p_contained));
        });
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use hare::motif::m;
    use temporal_graph::gen::GenConfig;

    fn pair_rich_graph(seed: u64) -> TemporalGraph {
        GenConfig {
            nodes: 50,
            edges: 4_000,
            time_span: 100_000,
            mean_burst_len: 3.0,
            seed,
            ..GenConfig::default()
        }
        .generate()
    }

    #[test]
    fn q_one_large_c_is_nearly_exact_in_expectation() {
        // With q=1 every window is counted; only boundary-crossing
        // instances are lost/overweighted, so averaging over many seeds
        // (offsets) approaches the exact count.
        let g = pair_rich_graph(1);
        let delta = 500;
        let exact = hare::count_pair_motifs(&g, delta);
        let runs = 30;
        let mut mean = 0.0;
        for seed in 0..runs {
            let est = bts_pair_estimate(
                &g,
                delta,
                &BtsConfig {
                    window_factor: 10,
                    sample_prob: 1.0,
                    seed,
                },
            );
            mean += est.total();
        }
        mean /= runs as f64;
        let exact_total = exact.total() as f64;
        assert!(exact_total > 50.0, "workload too sparse: {exact_total}");
        let rel = (mean - exact_total).abs() / exact_total;
        assert!(rel < 0.15, "mean {mean} vs exact {exact_total} (rel {rel})");
    }

    #[test]
    fn sampling_reduces_work_but_stays_in_ballpark() {
        let g = pair_rich_graph(2);
        let delta = 500;
        let exact = hare::count_pair_motifs(&g, delta).total() as f64;
        let mut mean = 0.0;
        let runs = 40;
        for seed in 0..runs {
            let est = bts_pair_estimate(
                &g,
                delta,
                &BtsConfig {
                    window_factor: 8,
                    sample_prob: 0.5,
                    seed: 1_000 + seed,
                },
            );
            mean += est.total();
        }
        mean /= runs as f64;
        let rel = (mean - exact).abs() / exact;
        assert!(rel < 0.3, "mean {mean} vs exact {exact} (rel {rel})");
    }

    #[test]
    fn only_pair_cells_populated() {
        let g = pair_rich_graph(3);
        let est = bts_pair_estimate(&g, 500, &BtsConfig::default());
        for (mo, v) in est.iter() {
            if mo.category() != MotifCategory::Pair {
                assert_eq!(v, 0.0, "{mo}");
            }
        }
        assert!(est.get(m(5, 5)) >= 0.0);
    }

    #[test]
    fn parallel_matches_sequential_given_same_seed() {
        let g = pair_rich_graph(4);
        let cfg = BtsConfig::default();
        let a = bts_pair_estimate(&g, 500, &cfg);
        let b = bts_pair_estimate_parallel(&g, 500, &cfg, 2);
        for (ma, mb) in a.iter().zip(b.iter()) {
            assert!((ma.1 - mb.1).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_graph_estimates_zero() {
        let g = TemporalGraph::from_edges(vec![]);
        let est = bts_pair_estimate(&g, 10, &BtsConfig::default());
        assert_eq!(est.total(), 0.0);
    }

    #[test]
    #[should_panic(expected = "window_factor")]
    fn window_factor_must_be_at_least_two() {
        let g = pair_rich_graph(5);
        let _ = bts_pair_estimate(
            &g,
            500,
            &BtsConfig {
                window_factor: 1,
                ..BtsConfig::default()
            },
        );
    }
}
