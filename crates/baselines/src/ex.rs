//! EX: the exact counting algorithm of Paranjape, Benson & Leskovec
//! (*Motifs in Temporal Networks*, WSDM 2017) — the paper's main
//! competitor.
//!
//! EX decomposes the 36-motif problem by topology and attacks each part
//! with dedicated counter machinery (the "more than ten triple and tuple
//! counters" the HARE paper refers to in §V.E):
//!
//! * **2-node motifs** — per node pair, a δ-windowed
//!   [`SequenceCounter`] over the pair's direction-labelled edge list.
//! * **star motifs** — per center node, same-neighbour edge pairs are
//!   enumerated as the *bonded* pair of a star and the isolated edge is
//!   counted in bulk from direction prefix arrays over `S_u` (global
//!   minus to-that-neighbour corrections). This also yields the pair
//!   motifs as the "middle edge to the same neighbour" case.
//! * **triangle motifs** — static triangles are enumerated first
//!   (neighbour-set intersection), then each one's three temporal edge
//!   lists are merged and fed to a 6-label [`SequenceCounter`]
//!   (pair-slot × direction); label triples covering all three pairs map
//!   to the 8 triangle classes.
//!
//! All parts are exact and agree with FAST and the enumeration oracle
//! (asserted in tests). `count_all_parallel` parallelises each phase over
//! its natural unit (pairs / centers / static triangles) with rayon, the
//! analogue of the OpenMP port the paper benchmarks in Fig. 11.

use std::sync::OnceLock;

use rayon::prelude::*;

use hare::counters::{MotifMatrix, PairCounter, StarCounter};
use hare::motif::{Motif, StarType};
use temporal_graph::util::FxHashMap;
use temporal_graph::{Dir, NodeId, TemporalEdge, TemporalGraph, Timestamp};

use crate::enumerate::classify;
use crate::seq_counter::SequenceCounter;

// ---------------------------------------------------------------------
// 2-node motifs
// ---------------------------------------------------------------------

/// Exact pair-motif counts (EX's 2-node algorithm): per pair slot, a
/// direction-labelled sequence counter. Each instance is counted once
/// (per unordered pair), so the fold does not halve.
#[must_use]
pub fn count_pairs(g: &TemporalGraph, delta: Timestamp) -> MotifMatrix {
    let pairs = g.pairs();
    let slots: Vec<usize> = (0..pairs.num_pairs()).collect();
    let pc = slots.iter().fold(PairCounter::default(), |acc, &slot| {
        count_pair_slot(g, slot, delta, acc)
    });
    let mut mx = MotifMatrix::default();
    pc.add_to_matrix_pair_based(&mut mx);
    mx
}

fn count_pair_slot(
    g: &TemporalGraph,
    slot: usize,
    delta: Timestamp,
    mut acc: PairCounter,
) -> PairCounter {
    let events: Vec<(u8, Timestamp)> = g
        .pairs()
        .events_of_slot(slot)
        .iter()
        .map(|p| (p.dir_from_lo.index() as u8, p.t))
        .collect();
    let mut counter: SequenceCounter<2> = SequenceCounter::default();
    counter.count(&events, delta);
    for d1 in Dir::BOTH {
        for d2 in Dir::BOTH {
            for d3 in Dir::BOTH {
                acc.add(d1, d2, d3, counter.get(d1.index(), d2.index(), d3.index()));
            }
        }
    }
    acc
}

// ---------------------------------------------------------------------
// Star motifs (plus center-based pair counts as a byproduct)
// ---------------------------------------------------------------------

/// Exact star-motif counters via EX's per-center machinery. The returned
/// pair counter is center-based (each pair instance seen from both
/// endpoints), like Algorithm 1's.
#[must_use]
pub fn count_stars(g: &TemporalGraph, delta: Timestamp) -> (StarCounter, PairCounter) {
    let mut star = StarCounter::default();
    let mut pair = PairCounter::default();
    for u in g.node_ids() {
        count_stars_at(g, u, delta, &mut star, &mut pair);
    }
    (star, pair)
}

/// EX star counting for one center node.
///
/// For every same-neighbour edge pair `(a, b)` of `S_u` within δ (the
/// bonded pair of a prospective star) we count, from prefix arrays, the
/// isolated edges in three position ranges:
///
/// * before `a` within δ of `b`  → Star-I,
/// * strictly between `a` and `b` → Star-II (to another neighbour) or a
///   pair motif (to the same neighbour),
/// * after `b` within δ of `a`   → Star-III.
#[allow(clippy::needless_range_loop)] // dir-indexed prefix arrays read clearer indexed
fn count_stars_at(
    g: &TemporalGraph,
    u: NodeId,
    delta: Timestamp,
    star: &mut StarCounter,
    pair: &mut PairCounter,
) {
    let s = g.node_events(u);
    if s.len() < 3 {
        return;
    }

    // Global direction prefix counts over S_u: prefix[d][i] = #events
    // with dir d among positions [0, i).
    let mut prefix = [vec![0u32; s.len() + 1], vec![0u32; s.len() + 1]];
    for (i, ev) in s.iter().enumerate() {
        for d in 0..2 {
            prefix[d][i + 1] = prefix[d][i] + u32::from(ev.dir.index() == d);
        }
    }
    let range_count = |d: usize, lo: usize, hi: usize| -> u64 {
        // events with dir d in positions [lo, hi)
        u64::from(prefix[d][hi.max(lo)] - prefix[d][lo])
    };

    // Per-neighbour position lists with their own direction prefixes.
    let mut by_nbr: FxHashMap<NodeId, Vec<u32>> = FxHashMap::default();
    for (i, ev) in s.iter().enumerate() {
        by_nbr.entry(ev.other).or_default().push(i as u32);
    }

    for (_, positions) in by_nbr.iter() {
        if positions.len() < 2 {
            continue;
        }
        // Direction prefix over this neighbour's own positions.
        let mut nprefix = [
            vec![0u32; positions.len() + 1],
            vec![0u32; positions.len() + 1],
        ];
        for (k, &p) in positions.iter().enumerate() {
            let dir = s.dir(p as usize).index();
            for d in 0..2 {
                nprefix[d][k + 1] = nprefix[d][k] + u32::from(dir == d);
            }
        }
        // Count of this neighbour's events with dir d and position in
        // [lo, hi), where lo/hi index into `positions`.
        let nbr_range = |d: usize, lo: usize, hi: usize| -> u64 {
            u64::from(nprefix[d][hi.max(lo)] - nprefix[d][lo])
        };

        for (ka, &pa) in positions.iter().enumerate() {
            let ea = s.get(pa as usize);
            for (kb, &pb) in positions.iter().enumerate().skip(ka + 1) {
                let eb = s.get(pb as usize);
                if eb.t - ea.t > delta {
                    break;
                }
                let (da, db) = (ea.dir, eb.dir);

                // Star-I: isolated edge c strictly before a with
                // t_b − t_c ≤ δ → positions [lo, pa).
                let lo = s.partition_point(|e| e.t < eb.t - delta);
                if lo < pa as usize {
                    for dc in Dir::BOTH {
                        let all = range_count(dc.index(), lo, pa as usize);
                        // Exclude edges to this same neighbour (those are
                        // pair-motif middles counted elsewhere / below).
                        let klo = positions.partition_point(|&p| (p as usize) < lo);
                        let same = nbr_range(dc.index(), klo, ka);
                        star.add(StarType::I, dc, da, db, all - same);
                    }
                }

                // Star-II + pair motifs: middle edge strictly between.
                if pb > pa + 1 {
                    for dc in Dir::BOTH {
                        let all = range_count(dc.index(), pa as usize + 1, pb as usize);
                        let same = nbr_range(dc.index(), ka + 1, kb);
                        star.add(StarType::II, da, dc, db, all - same);
                        pair.add(da, dc, db, same);
                    }
                }

                // Star-III: isolated edge c strictly after b with
                // t_c − t_a ≤ δ → positions (pb, hi).
                let hi = s.partition_point(|e| e.t <= ea.t + delta);
                if hi > pb as usize + 1 {
                    for dc in Dir::BOTH {
                        let all = range_count(dc.index(), pb as usize + 1, hi);
                        let khi = positions.partition_point(|&p| (p as usize) < hi);
                        let same = nbr_range(dc.index(), kb + 1, khi);
                        star.add(StarType::III, da, db, dc, all - same);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Triangle motifs
// ---------------------------------------------------------------------

/// A static triangle: three nodes pairwise connected by at least one
/// temporal edge (in either direction).
pub type StaticTriangle = (NodeId, NodeId, NodeId);

/// Enumerate static triangles `(a < b < c)` from the pair index.
#[must_use]
pub fn static_triangles(g: &TemporalGraph) -> Vec<StaticTriangle> {
    // Static adjacency (sorted) from the distinct connected pairs.
    let pairs = g.pairs();
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); g.num_nodes()];
    for slot in 0..pairs.num_pairs() {
        let (a, b) = pairs.key(slot);
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    }
    for list in &mut adj {
        list.sort_unstable();
    }
    let mut out = Vec::new();
    for slot in 0..pairs.num_pairs() {
        let (a, b) = pairs.key(slot);
        // Intersect adj(a) and adj(b), keeping c > b to dedupe.
        let (mut i, mut j) = (0usize, 0usize);
        let (la, lb) = (&adj[a as usize], &adj[b as usize]);
        while i < la.len() && j < lb.len() {
            match la[i].cmp(&lb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if la[i] > b {
                        out.push((a, b, la[i]));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    out
}

/// Label-triple → motif lookup table for the 6-label triangle counter.
/// Label encoding: `pair_slot * 2 + dir_from_lower`, with pair slots
/// 0=(x,y), 1=(x,z), 2=(y,z) for the triangle's sorted nodes x < y < z.
fn tri_label_lut() -> &'static [Option<Motif>; 216] {
    static LUT: OnceLock<[Option<Motif>; 216]> = OnceLock::new();
    LUT.get_or_init(|| {
        let edge_of = |label: usize, t: Timestamp| -> TemporalEdge {
            let (lo, hi) = match label / 2 {
                0 => (0, 1),
                1 => (0, 2),
                _ => (1, 2),
            };
            if label.is_multiple_of(2) {
                TemporalEdge::new(lo, hi, t)
            } else {
                TemporalEdge::new(hi, lo, t)
            }
        };
        let mut lut = [None; 216];
        for l1 in 0..6 {
            for l2 in 0..6 {
                for l3 in 0..6 {
                    // Valid triangle sequences use all three pair slots.
                    let slots = [l1 / 2, l2 / 2, l3 / 2];
                    let mut seen = [false; 3];
                    for &s in &slots {
                        seen[s] = true;
                    }
                    if seen == [true; 3] {
                        lut[(l1 * 6 + l2) * 6 + l3] =
                            classify(edge_of(l1, 1), edge_of(l2, 2), edge_of(l3, 3));
                    }
                }
            }
        }
        lut
    })
}

/// Exact triangle-motif counts via static triangle enumeration plus the
/// merged-sequence counter. Each instance counted once.
#[must_use]
pub fn count_triangles(g: &TemporalGraph, delta: Timestamp) -> MotifMatrix {
    let triangles = static_triangles(g);
    triangles.iter().fold(MotifMatrix::default(), |acc, &tri| {
        count_one_triangle(g, tri, delta, acc)
    })
}

fn count_one_triangle(
    g: &TemporalGraph,
    (x, y, z): StaticTriangle,
    delta: Timestamp,
    mut acc: MotifMatrix,
) -> MotifMatrix {
    // Merge the three pair lists by edge id (chronological total order),
    // labelling each event with pair slot × direction.
    let lists = [
        g.pair_events(x, y),
        g.pair_events(x, z),
        g.pair_events(y, z),
    ];
    let mut merged: Vec<(u8, Timestamp, u32)> =
        Vec::with_capacity(lists.iter().map(|l| l.len()).sum());
    for (slot, list) in lists.iter().enumerate() {
        for p in *list {
            let label = (slot * 2 + p.dir_from_lo.index()) as u8;
            merged.push((label, p.t, p.edge));
        }
    }
    merged.sort_unstable_by_key(|&(_, _, id)| id);
    let events: Vec<(u8, Timestamp)> = merged.iter().map(|&(l, t, _)| (l, t)).collect();

    let mut counter: SequenceCounter<6> = SequenceCounter::default();
    counter.count(&events, delta);
    let lut = tri_label_lut();
    for l1 in 0..6 {
        for l2 in 0..6 {
            for l3 in 0..6 {
                if let Some(m) = lut[(l1 * 6 + l2) * 6 + l3] {
                    acc.add(m, counter.get(l1, l2, l3));
                }
            }
        }
    }
    acc
}

// ---------------------------------------------------------------------
// Full counts
// ---------------------------------------------------------------------

/// Exact counts of all 36 motifs (EX, single-threaded).
#[must_use]
pub fn count_all(g: &TemporalGraph, delta: Timestamp) -> MotifMatrix {
    let mut mx = count_pairs(g, delta);
    let (star, _) = count_stars(g, delta);
    star.add_to_matrix(&mut mx);
    let tri = count_triangles(g, delta);
    mx.merge(&tri);
    mx
}

/// Parallel EX: each phase fans out over its natural unit with rayon.
/// This is the analogue of the paper's OpenMP EX port used in Fig. 11.
#[must_use]
pub fn count_all_parallel(g: &TemporalGraph, delta: Timestamp, num_threads: usize) -> MotifMatrix {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(num_threads)
        .build()
        .expect("rayon pool");
    pool.install(|| {
        let (pairs_mx, (stars, tri_mx)) = rayon::join(
            || {
                let slots: Vec<usize> = (0..g.pairs().num_pairs()).collect();
                let pc = slots
                    .par_chunks(256.max(slots.len() / 64 + 1))
                    .map(|chunk| {
                        chunk.iter().fold(PairCounter::default(), |acc, &slot| {
                            count_pair_slot(g, slot, delta, acc)
                        })
                    })
                    .reduce(PairCounter::default, |mut a, b| {
                        a.merge(&b);
                        a
                    });
                let mut mx = MotifMatrix::default();
                pc.add_to_matrix_pair_based(&mut mx);
                mx
            },
            || {
                rayon::join(
                    || {
                        let nodes: Vec<NodeId> = g.node_ids().collect();
                        nodes
                            .par_chunks(256.max(nodes.len() / 64 + 1))
                            .map(|chunk| {
                                let mut star = StarCounter::default();
                                let mut pair = PairCounter::default();
                                for &u in chunk {
                                    count_stars_at(g, u, delta, &mut star, &mut pair);
                                }
                                star
                            })
                            .reduce(StarCounter::default, |mut a, b| {
                                a.merge(&b);
                                a
                            })
                    },
                    || {
                        let triangles = static_triangles(g);
                        triangles
                            .par_chunks(64.max(triangles.len() / 64 + 1))
                            .map(|chunk| {
                                chunk.iter().fold(MotifMatrix::default(), |acc, &tri| {
                                    count_one_triangle(g, tri, delta, acc)
                                })
                            })
                            .reduce(MotifMatrix::default, |mut a, b| {
                                a.merge(&b);
                                a
                            })
                    },
                )
            },
        );
        let mut mx = pairs_mx;
        stars.add_to_matrix(&mut mx);
        mx.merge(&tri_mx);
        mx
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_all;
    use hare::motif::{m, MotifCategory};
    use temporal_graph::gen::{erdos_renyi_temporal, paper_fig1_toy, GenConfig};

    #[test]
    fn ex_pairs_match_oracle() {
        let g = paper_fig1_toy();
        let mx = count_pairs(&g, 10);
        assert_eq!(mx.get(m(6, 5)), 1);
        assert_eq!(mx.total(), 1);
    }

    #[test]
    fn ex_stars_match_fast_on_random_graphs() {
        for seed in 0..4 {
            let g = erdos_renyi_temporal(15, 250, 300, seed);
            let delta = 80;
            let (ex_star, ex_pair) = count_stars(&g, delta);
            let (fast_star, fast_pair) = hare::fast_star::fast_star(&g, delta);
            assert_eq!(ex_star, fast_star, "stars, seed {seed}");
            assert_eq!(ex_pair, fast_pair, "pairs, seed {seed}");
        }
    }

    #[test]
    fn static_triangle_enumeration_on_known_graph() {
        // Triangle 0-1-2 plus a pendant pair 2-3.
        let g = temporal_graph::TemporalGraph::from_edges(vec![
            TemporalEdge::new(0, 1, 1),
            TemporalEdge::new(1, 2, 2),
            TemporalEdge::new(2, 0, 3),
            TemporalEdge::new(2, 3, 4),
        ]);
        assert_eq!(static_triangles(&g), vec![(0, 1, 2)]);
    }

    #[test]
    fn tri_label_lut_has_48_valid_entries() {
        let lut = tri_label_lut();
        let valid = lut.iter().filter(|e| e.is_some()).count();
        // 3! pair-slot orders × 2^3 directions.
        assert_eq!(valid, 48);
        for motif in lut.iter().flatten() {
            assert_eq!(motif.category(), MotifCategory::Triangle);
        }
    }

    #[test]
    fn ex_triangles_match_oracle_on_random_graphs() {
        for seed in 0..4 {
            let g = erdos_renyi_temporal(12, 220, 250, seed);
            let delta = 70;
            let ex = count_triangles(&g, delta);
            let oracle = enumerate_all(&g, delta);
            for mo in Motif::all().filter(|m| m.category() == MotifCategory::Triangle) {
                assert_eq!(ex.get(mo), oracle.get(mo), "{mo} seed={seed}");
            }
        }
    }

    #[test]
    fn ex_full_count_matches_fast_and_oracle() {
        let g = GenConfig {
            nodes: 60,
            edges: 1_500,
            time_span: 20_000,
            seed: 17,
            ..GenConfig::default()
        }
        .generate();
        let delta = 2_000;
        let ex = count_all(&g, delta);
        let fast = hare::count_motifs(&g, delta);
        assert_eq!(ex, fast.matrix);
        let oracle = enumerate_all(&g, delta);
        assert_eq!(ex, oracle);
    }

    #[test]
    fn parallel_ex_matches_sequential() {
        let g = erdos_renyi_temporal(25, 600, 800, 8);
        let delta = 150;
        let seq = count_all(&g, delta);
        for threads in [1, 2, 4] {
            assert_eq!(
                count_all_parallel(&g, delta, threads),
                seq,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = temporal_graph::TemporalGraph::from_edges(vec![]);
        assert_eq!(count_all(&g, 100).total(), 0);
        assert!(static_triangles(&g).is_empty());
    }
}
