//! Floating-point motif count estimates produced by the sampling
//! baselines (BTS, EWS), plus error metrics against exact counts.

use hare::counters::MotifMatrix;
use hare::motif::Motif;

/// 6×6 grid of estimated (fractional) motif counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EstimateMatrix {
    counts: [[f64; 6]; 6],
}

impl EstimateMatrix {
    /// Estimated count of one motif.
    #[inline]
    #[must_use]
    pub fn get(&self, m: Motif) -> f64 {
        self.counts[m.row() as usize - 1][m.col() as usize - 1]
    }

    /// Add weight to one motif's estimate.
    #[inline]
    pub fn add(&mut self, m: Motif, w: f64) {
        self.counts[m.row() as usize - 1][m.col() as usize - 1] += w;
    }

    /// Element-wise sum (reduction of per-thread partials).
    pub fn merge(&mut self, other: &EstimateMatrix) {
        for r in 0..6 {
            for c in 0..6 {
                self.counts[r][c] += other.counts[r][c];
            }
        }
    }

    /// Sum over all motifs.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.counts.iter().flatten().sum()
    }

    /// Iterate `(motif, estimate)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Motif, f64)> + '_ {
        Motif::all().map(move |m| (m, self.get(m)))
    }

    /// Exact counts promoted to an estimate matrix.
    #[must_use]
    pub fn from_exact(exact: &MotifMatrix) -> EstimateMatrix {
        let mut e = EstimateMatrix::default();
        for (m, n) in exact.iter() {
            e.add(m, n as f64);
        }
        e
    }

    /// Mean relative error against exact counts, over cells whose exact
    /// count is non-zero (the error metric used in the sampling papers).
    #[must_use]
    pub fn mean_relative_error(&self, exact: &MotifMatrix) -> f64 {
        let mut err = 0.0;
        let mut cells = 0usize;
        for (m, n) in exact.iter() {
            if n > 0 {
                err += (self.get(m) - n as f64).abs() / n as f64;
                cells += 1;
            }
        }
        if cells == 0 {
            0.0
        } else {
            err / cells as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hare::motif::m;

    #[test]
    fn add_get_merge_total() {
        let mut a = EstimateMatrix::default();
        a.add(m(1, 1), 2.5);
        let mut b = EstimateMatrix::default();
        b.add(m(1, 1), 1.5);
        b.add(m(6, 6), 1.0);
        a.merge(&b);
        assert!((a.get(m(1, 1)) - 4.0).abs() < 1e-12);
        assert!((a.total() - 5.0).abs() < 1e-12);
        assert_eq!(a.iter().count(), 36);
    }

    #[test]
    fn exact_roundtrip_has_zero_error() {
        let mut exact = MotifMatrix::default();
        exact.add(m(2, 3), 10);
        exact.add(m(5, 5), 4);
        let est = EstimateMatrix::from_exact(&exact);
        assert_eq!(est.mean_relative_error(&exact), 0.0);
    }

    #[test]
    fn relative_error_averages_nonzero_cells() {
        let mut exact = MotifMatrix::default();
        exact.add(m(1, 1), 10);
        exact.add(m(2, 2), 10);
        let mut est = EstimateMatrix::from_exact(&exact);
        est.add(m(1, 1), 5.0); // 50% off on one of two cells
        assert!((est.mean_relative_error(&exact) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_exact_matrix_yields_zero_error() {
        let exact = MotifMatrix::default();
        let est = EstimateMatrix::default();
        assert_eq!(est.mean_relative_error(&exact), 0.0);
    }
}
