//! Explicit instance enumeration — the ground-truth oracle.
//!
//! Enumerates every δ-temporal motif instance (Definition 3): ordered
//! edge triples `e1 < e2 < e3` in the global `(t, id)` order, spanning at
//! most δ, whose induced static graph has ≤ 3 nodes (connectivity is then
//! automatic: two components would need ≥ 4 nodes).
//!
//! This is the simplest correct algorithm in the workspace and the one
//! every other counter is validated against. It is also the closest match
//! to how the HARE paper characterises the EX baseline's origin
//! ("counting ... by leveraging subgraph enumeration"). Complexity is
//! `O(|E| · (d^δ)²)` — noticeably slower than FAST, which is the point.

use hare::counters::MotifMatrix;
use hare::motif::Motif;
use temporal_graph::{EdgeId, TemporalEdge, TemporalGraph, Timestamp};

/// Classify one time-ordered edge triple as a canonical motif.
///
/// Returns `None` if the triple spans more than 3 distinct nodes (not a
/// 2-/3-node motif). Edges must be given in chronological order; the
/// function is agnostic to the actual timestamps (no δ check).
/// (Delegates to [`hare::motif::classify_instance`]; re-exported here
/// because every baseline builds on it.)
#[must_use]
pub fn classify(e1: TemporalEdge, e2: TemporalEdge, e3: TemporalEdge) -> Option<Motif> {
    hare::motif::classify_instance(e1, e2, e3)
}

/// Visit every motif instance in the graph. The callback receives the
/// three edge ids in chronological order plus the classified motif.
pub fn enumerate_instances(
    g: &TemporalGraph,
    delta: Timestamp,
    mut visit: impl FnMut(EdgeId, EdgeId, EdgeId, Motif),
) {
    for i in 0..g.num_edges() {
        enumerate_from_first_edge(g, delta, i as EdgeId, &mut visit);
    }
}

/// Visit every motif instance whose chronologically *first* edge is
/// `first`. Every instance has exactly one first edge, so summing over
/// all edges visits each instance exactly once — the ownership rule the
/// EWS sampler exploits.
pub fn enumerate_from_first_edge(
    g: &TemporalGraph,
    delta: Timestamp,
    first: EdgeId,
    visit: &mut impl FnMut(EdgeId, EdgeId, EdgeId, Motif),
) {
    let e1 = g.edge(first);
    // Candidate later edges sharing a node with e1, within δ.
    let cands = neighbourhood_candidates(g, first, e1, delta);
    for (a, &c2) in cands.iter().enumerate() {
        let e2 = g.edge(c2);
        for &c3 in &cands[a + 1..] {
            let e3 = g.edge(c3);
            if let Some(m) = classify(e1, e2, e3) {
                visit(first, c2, c3, m);
            }
        }
    }
}

/// Later-in-order edges within δ of `e1` that share at least one endpoint
/// with it, sorted by edge id, deduplicated.
fn neighbourhood_candidates(
    g: &TemporalGraph,
    id1: EdgeId,
    e1: TemporalEdge,
    delta: Timestamp,
) -> Vec<EdgeId> {
    let mut out = Vec::new();
    for node in [e1.src, e1.dst] {
        for ev in g.node_events(node) {
            if ev.edge > id1 && ev.t - e1.t <= delta {
                out.push(ev.edge);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Exact 6×6 motif counts by explicit enumeration.
#[must_use]
pub fn enumerate_all(g: &TemporalGraph, delta: Timestamp) -> MotifMatrix {
    let mut mx = MotifMatrix::default();
    enumerate_instances(g, delta, |_, _, _, m| mx.add(m, 1));
    mx
}

#[cfg(test)]
mod tests {
    use super::*;
    use hare::motif::m;
    use temporal_graph::gen::paper_fig1_toy;
    use temporal_graph::NodeId;

    fn e(src: NodeId, dst: NodeId, t: Timestamp) -> TemporalEdge {
        TemporalEdge::new(src, dst, t)
    }

    #[test]
    fn classify_paper_instances() {
        // §III: three named instances of Fig. 1.
        assert_eq!(
            classify(e(0, 2, 4), e(0, 2, 8), e(3, 0, 9)),
            Some(m(6, 3)),
            "M63"
        );
        assert_eq!(
            classify(e(4, 2, 6), e(3, 2, 10), e(3, 4, 14)),
            Some(m(4, 6)),
            "M46"
        );
        assert_eq!(
            classify(e(3, 4, 14), e(4, 3, 18), e(3, 4, 21)),
            Some(m(6, 5)),
            "M65"
        );
        // §IV.B.3: the M25 triangle.
        assert_eq!(
            classify(e(0, 2, 8), e(3, 0, 9), e(2, 3, 17)),
            Some(m(2, 5)),
            "M25"
        );
    }

    #[test]
    fn classify_rejects_four_node_patterns() {
        assert_eq!(classify(e(0, 1, 1), e(0, 2, 2), e(0, 3, 3)), None);
        assert_eq!(classify(e(0, 1, 1), e(2, 3, 2), e(0, 2, 3)), None);
    }

    #[test]
    fn classify_cycle_is_m26() {
        assert_eq!(classify(e(0, 1, 1), e(1, 2, 2), e(2, 0, 3)), Some(m(2, 6)));
        // Rotated node labels — same class.
        assert_eq!(classify(e(1, 2, 1), e(2, 0, 2), e(0, 1, 3)), Some(m(2, 6)));
    }

    #[test]
    fn classify_star_types_by_isolated_position() {
        // Center 0, bonded neighbour 1, isolated neighbour 2.
        // Isolated first:
        let mo = classify(e(0, 2, 1), e(0, 1, 2), e(0, 1, 3)).unwrap();
        assert!(matches!(mo.row(), 1 | 2), "{mo}");
        // Isolated second:
        let mo = classify(e(0, 1, 1), e(0, 2, 2), e(0, 1, 3)).unwrap();
        assert!(matches!(mo.row(), 3 | 4), "{mo}");
        // Isolated third:
        let mo = classify(e(0, 1, 1), e(0, 1, 2), e(0, 2, 3)).unwrap();
        assert!(matches!(mo.row(), 5 | 6), "{mo}");
    }

    #[test]
    fn triangle_class_independent_of_center_choice() {
        // For every direction combination of a path-closing triangle, the
        // classification via center(e1,e2) must equal the one obtained by
        // relabelling so a different vertex hosts e1,e2. We test by
        // classifying all 8 direction variants of a fixed time order and
        // checking they land in triangle cells.
        for b1 in [false, true] {
            for b2 in [false, true] {
                for b3 in [false, true] {
                    let e1 = if b1 { e(0, 1, 1) } else { e(1, 0, 1) };
                    let e2 = if b2 { e(1, 2, 2) } else { e(2, 1, 2) };
                    let e3 = if b3 { e(2, 0, 3) } else { e(0, 2, 3) };
                    let mo = classify(e1, e2, e3).unwrap();
                    assert!(
                        matches!((mo.row(), mo.col()), (1..=4, 5..=6)),
                        "{mo} not a triangle cell"
                    );
                }
            }
        }
    }

    #[test]
    fn toy_graph_enumeration_matches_fast() {
        let g = paper_fig1_toy();
        for delta in [0, 5, 10, 20, 1000] {
            let oracle = enumerate_all(&g, delta);
            let fast = hare::count_motifs(&g, delta);
            assert_eq!(oracle, fast.matrix, "delta={delta}");
        }
    }

    #[test]
    fn enumeration_respects_delta_boundary() {
        let g =
            temporal_graph::TemporalGraph::from_edges(vec![e(0, 1, 0), e(0, 1, 5), e(0, 1, 10)]);
        assert_eq!(enumerate_all(&g, 10).total(), 1);
        assert_eq!(enumerate_all(&g, 9).total(), 0);
    }

    #[test]
    fn instance_callback_reports_ordered_ids() {
        let g = paper_fig1_toy();
        let mut count = 0;
        enumerate_instances(&g, 10, |a, b, c, _| {
            assert!(a < b && b < c);
            count += 1;
        });
        assert_eq!(count as u64, enumerate_all(&g, 10).total());
    }
}
