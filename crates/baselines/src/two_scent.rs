//! 2SCENT-style temporal cycle enumeration (Kumar & Calders, VLDB 2018).
//!
//! 2SCENT enumerates *simple temporal cycles*: edge sequences
//! `v_0 → v_1 → … → v_{k-1} → v_0` with strictly increasing order,
//! distinct intermediate nodes and span ≤ δ. Within the 36-motif grid,
//! 3-edge cycles are exactly the motif **M26** — the HARE paper's
//! "2SCENT-Tri" baseline counts these (§V.B notes 2SCENT can only detect
//! M26 among the triangle motifs).
//!
//! The implementation mirrors 2SCENT's two phases in simplified form:
//!
//! 1. **source detection** — a constant-time prefilter per root edge
//!    (does the head have any outgoing edge, and the tail any incoming
//!    edge, inside the window?) standing in for 2SCENT's reverse
//!    reachability summaries / bloom filters;
//! 2. **constrained DFS** — depth-first extension along outgoing edges
//!    with increasing chronological order, the δ window, and node
//!    simplicity, closing back at the root.
//!
//! The generic enumerator supports any maximum cycle length (2SCENT
//! handles arbitrary lengths); the Table III baseline uses length 3.

use temporal_graph::{EdgeId, NodeId, TemporalGraph, Timestamp};

/// Count simple temporal cycles of length exactly `len` (edges), each
/// instance counted once (rooted at its chronologically first edge).
#[must_use]
pub fn count_cycles(g: &TemporalGraph, delta: Timestamp, len: usize) -> u64 {
    let mut n = 0;
    enumerate_cycles(g, delta, len, |_| n += 1);
    n
}

/// The paper's 2SCENT-Tri baseline: count of temporal 3-cycles (= M26).
#[must_use]
pub fn two_scent_tri(g: &TemporalGraph, delta: Timestamp) -> u64 {
    count_cycles(g, delta, 3)
}

/// Cycle counts by length, as produced by a full 2SCENT run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleCensus {
    /// `by_len[k]` = number of simple temporal cycles with `k` edges
    /// (indices 0 and 1 are always zero).
    pub by_len: Vec<u64>,
}

impl CycleCensus {
    /// Number of 3-edge cycles (the M26 triangle motif).
    #[must_use]
    pub fn triangles(&self) -> u64 {
        self.by_len.get(3).copied().unwrap_or(0)
    }

    /// Total cycles of every length.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.by_len.iter().sum()
    }
}

/// Full 2SCENT workload: enumerate **all** simple temporal cycles with
/// 2..=`max_len` edges and report counts per length. This is what the
/// original system computes (the HARE paper's Table III times 2SCENT on
/// this full enumeration even though only the 3-cycle count is a grid
/// motif — §V.B: "2SCENT can only detect the triangle motif M26").
#[must_use]
pub fn two_scent_census(g: &TemporalGraph, delta: Timestamp, max_len: usize) -> CycleCensus {
    let mut census = CycleCensus {
        by_len: vec![0; max_len + 1],
    };
    if max_len < 2 {
        return census;
    }
    let mut nodes: Vec<NodeId> = Vec::with_capacity(max_len);
    for (id, &e1) in g.edges().iter().enumerate() {
        let id = id as EdgeId;
        if !has_out_after(g, e1.dst, id, e1.t + delta) || !has_in_after(g, e1.src, id, e1.t + delta)
        {
            continue;
        }
        nodes.push(e1.src);
        nodes.push(e1.dst);
        census_dfs(
            g,
            delta,
            max_len,
            e1.t,
            e1.src,
            e1.dst,
            id,
            1,
            &mut nodes,
            &mut census.by_len,
        );
        nodes.clear();
    }
    census
}

#[allow(clippy::too_many_arguments)]
fn census_dfs(
    g: &TemporalGraph,
    delta: Timestamp,
    max_len: usize,
    t0: Timestamp,
    root: NodeId,
    cur: NodeId,
    last_id: EdgeId,
    depth: usize,
    nodes: &mut Vec<NodeId>,
    by_len: &mut [u64],
) {
    let deadline = t0 + delta;
    let evs = g.node_events(cur);
    let start = evs.partition_point(|ev| ev.edge <= last_id);
    for ev in evs.slice(start..evs.len()) {
        if ev.t > deadline {
            break;
        }
        if ev.dir != temporal_graph::Dir::Out {
            continue;
        }
        if ev.other == root {
            by_len[depth + 1] += 1;
        } else if depth + 1 < max_len && !nodes.contains(&ev.other) {
            nodes.push(ev.other);
            census_dfs(
                g,
                delta,
                max_len,
                t0,
                root,
                ev.other,
                ev.edge,
                depth + 1,
                nodes,
                by_len,
            );
            nodes.pop();
        }
    }
}

/// Enumerate simple temporal cycles with exactly `len` edges; the
/// callback receives the edge ids in chronological order.
pub fn enumerate_cycles(
    g: &TemporalGraph,
    delta: Timestamp,
    len: usize,
    mut visit: impl FnMut(&[EdgeId]),
) {
    if len < 2 {
        return;
    }
    let mut path: Vec<EdgeId> = Vec::with_capacity(len);
    let mut nodes: Vec<NodeId> = Vec::with_capacity(len);
    for (id, &e1) in g.edges().iter().enumerate() {
        let id = id as EdgeId;
        // Phase 1: cheap source filter (stand-in for 2SCENT's
        // reverse-reachability pruning): the head must emit and the tail
        // must receive something inside the window.
        if !has_out_after(g, e1.dst, id, e1.t + delta) || !has_in_after(g, e1.src, id, e1.t + delta)
        {
            continue;
        }
        path.push(id);
        nodes.push(e1.src);
        nodes.push(e1.dst);
        dfs(
            g, delta, len, e1.t, e1.src, e1.dst, id, &mut path, &mut nodes, &mut visit,
        );
        nodes.clear();
        path.clear();
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    g: &TemporalGraph,
    delta: Timestamp,
    len: usize,
    t0: Timestamp,
    root: NodeId,
    cur: NodeId,
    last_id: EdgeId,
    path: &mut Vec<EdgeId>,
    nodes: &mut Vec<NodeId>,
    visit: &mut impl FnMut(&[EdgeId]),
) {
    let deadline = t0 + delta;
    let evs = g.node_events(cur);
    let start = evs.partition_point(|ev| ev.edge <= last_id);
    for ev in evs.slice(start..evs.len()) {
        if ev.t > deadline {
            break;
        }
        if ev.dir != temporal_graph::Dir::Out {
            continue;
        }
        if path.len() + 1 == len {
            // Final edge must close the cycle.
            if ev.other == root {
                path.push(ev.edge);
                visit(path);
                path.pop();
            }
        } else if ev.other != root && !nodes.contains(&ev.other) {
            path.push(ev.edge);
            nodes.push(ev.other);
            dfs(
                g, delta, len, t0, root, ev.other, ev.edge, path, nodes, visit,
            );
            nodes.pop();
            path.pop();
        }
    }
}

fn has_out_after(g: &TemporalGraph, node: NodeId, after: EdgeId, deadline: Timestamp) -> bool {
    let evs = g.node_events(node);
    let start = evs.partition_point(|ev| ev.edge <= after);
    evs.slice(start..evs.len())
        .into_iter()
        .take_while(|ev| ev.t <= deadline)
        .any(|ev| ev.dir == temporal_graph::Dir::Out)
}

fn has_in_after(g: &TemporalGraph, node: NodeId, after: EdgeId, deadline: Timestamp) -> bool {
    let evs = g.node_events(node);
    let start = evs.partition_point(|ev| ev.edge <= after);
    evs.slice(start..evs.len())
        .into_iter()
        .take_while(|ev| ev.t <= deadline)
        .any(|ev| ev.dir == temporal_graph::Dir::In)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hare::motif::m;
    use temporal_graph::gen::erdos_renyi_temporal;
    use temporal_graph::TemporalEdge;

    #[test]
    fn counts_single_triangle_cycle() {
        let g = temporal_graph::TemporalGraph::from_edges(vec![
            TemporalEdge::new(0, 1, 1),
            TemporalEdge::new(1, 2, 2),
            TemporalEdge::new(2, 0, 3),
        ]);
        assert_eq!(two_scent_tri(&g, 10), 1);
        assert_eq!(two_scent_tri(&g, 1), 0, "span 2 > delta 1");
    }

    #[test]
    fn matches_fast_m26_on_random_graphs() {
        for seed in 0..5 {
            let g = erdos_renyi_temporal(15, 400, 300, seed);
            let delta = 100;
            let fast = hare::count_motifs(&g, delta);
            assert_eq!(two_scent_tri(&g, delta), fast.get(m(2, 6)), "seed {seed}");
        }
    }

    #[test]
    fn two_cycles_counted_once_each() {
        let g = temporal_graph::TemporalGraph::from_edges(vec![
            TemporalEdge::new(0, 1, 1),
            TemporalEdge::new(1, 2, 2),
            TemporalEdge::new(2, 0, 3),
            TemporalEdge::new(2, 0, 4), // second closing edge
        ]);
        assert_eq!(two_scent_tri(&g, 10), 2);
    }

    #[test]
    fn length_two_cycles_are_ping_pongs() {
        let g = temporal_graph::TemporalGraph::from_edges(vec![
            TemporalEdge::new(0, 1, 1),
            TemporalEdge::new(1, 0, 2),
            TemporalEdge::new(0, 1, 3),
        ]);
        // (0->1@1, 1->0@2) and (1->0@2, 0->1@3).
        assert_eq!(count_cycles(&g, 10, 2), 2);
    }

    #[test]
    fn longer_cycles_respect_simplicity() {
        // 0 -> 1 -> 2 -> 3 -> 0 is a 4-cycle; no 3-cycle exists.
        let g = temporal_graph::TemporalGraph::from_edges(vec![
            TemporalEdge::new(0, 1, 1),
            TemporalEdge::new(1, 2, 2),
            TemporalEdge::new(2, 3, 3),
            TemporalEdge::new(3, 0, 4),
        ]);
        assert_eq!(count_cycles(&g, 10, 4), 1);
        assert_eq!(count_cycles(&g, 10, 3), 0);
        assert_eq!(count_cycles(&g, 2, 4), 0, "delta too small");
    }

    #[test]
    fn repeated_node_visits_are_rejected() {
        // 0 -> 1 -> 0 -> 1 ... cannot form a simple 4-cycle through 0.
        let g = temporal_graph::TemporalGraph::from_edges(vec![
            TemporalEdge::new(0, 1, 1),
            TemporalEdge::new(1, 0, 2),
            TemporalEdge::new(0, 1, 3),
            TemporalEdge::new(1, 0, 4),
        ]);
        assert_eq!(count_cycles(&g, 10, 4), 0);
    }

    #[test]
    fn cycles_ordered_chronologically() {
        let g = temporal_graph::TemporalGraph::from_edges(vec![
            TemporalEdge::new(0, 1, 5),
            TemporalEdge::new(1, 2, 2), // earlier than the 0->1 edge
            TemporalEdge::new(2, 0, 7),
        ]);
        // Time order must be increasing along the cycle starting at the
        // root edge; 1->2 precedes 0->1 so no cycle.
        assert_eq!(two_scent_tri(&g, 10), 0);
    }

    #[test]
    fn empty_and_degenerate() {
        let g = temporal_graph::TemporalGraph::from_edges(vec![]);
        assert_eq!(two_scent_tri(&g, 10), 0);
        assert_eq!(count_cycles(&g, 10, 1), 0);
        assert_eq!(two_scent_census(&g, 10, 10).total(), 0);
    }

    #[test]
    fn census_agrees_with_per_length_enumeration() {
        let g = erdos_renyi_temporal(12, 400, 200, 3);
        let delta = 80;
        let census = two_scent_census(&g, delta, 6);
        for len in 2..=6 {
            assert_eq!(
                census.by_len[len],
                count_cycles(&g, delta, len),
                "length {len}"
            );
        }
        assert_eq!(census.triangles(), two_scent_tri(&g, delta));
        assert_eq!(census.by_len[0] + census.by_len[1], 0);
    }

    #[test]
    fn census_triangles_match_fast_m26() {
        let g = erdos_renyi_temporal(15, 500, 250, 9);
        let delta = 100;
        let census = two_scent_census(&g, delta, 8);
        let fast = hare::count_motifs(&g, delta);
        assert_eq!(census.triangles(), fast.get(m(2, 6)));
    }
}
