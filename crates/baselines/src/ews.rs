//! EWS: edge/wedge sampling approximation (Wang et al., *Efficient
//! sampling algorithms for approximate temporal motif counting*,
//! CIKM 2020).
//!
//! Every motif instance is *owned* by its chronologically first edge.
//! EWS samples edges independently with probability `p`, exactly
//! enumerates the instances owned by each sampled edge (the local wedge
//! completion; the paper's evaluation sets the wedge sub-sampling `q = 1`,
//! which we follow), and scales each found instance by `1/p`. Since each
//! instance has exactly one owner, the estimator is unbiased:
//! `E[count/p] = Σ_i Pr[owner sampled]/p = Σ_i 1`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use temporal_graph::{EdgeId, TemporalGraph, Timestamp};

use crate::enumerate::enumerate_from_first_edge;
use crate::estimate::EstimateMatrix;

/// Configuration of the EWS sampler.
#[derive(Debug, Clone)]
pub struct EwsConfig {
    /// Edge sampling probability `p` in (0, 1].
    pub edge_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EwsConfig {
    fn default() -> Self {
        EwsConfig {
            edge_prob: 0.01,
            seed: 0xE35,
        }
    }
}

/// Estimate all 36 motif counts by edge sampling. Single-threaded.
#[must_use]
pub fn ews_estimate(g: &TemporalGraph, delta: Timestamp, cfg: &EwsConfig) -> EstimateMatrix {
    ews_estimate_parallel(g, delta, cfg, 1)
}

/// Estimate all 36 motif counts with a rayon pool of `threads` workers.
/// Sampling decisions are drawn once up front, so results are identical
/// across thread counts for a fixed seed.
#[must_use]
pub fn ews_estimate_parallel(
    g: &TemporalGraph,
    delta: Timestamp,
    cfg: &EwsConfig,
    threads: usize,
) -> EstimateMatrix {
    assert!(
        cfg.edge_prob > 0.0 && cfg.edge_prob <= 1.0,
        "edge_prob must be in (0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sampled: Vec<EdgeId> = (0..g.num_edges() as EdgeId)
        .filter(|_| rng.gen_bool(cfg.edge_prob))
        .collect();
    let weight = 1.0 / cfg.edge_prob;

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("rayon pool");
    pool.install(|| {
        sampled
            .par_chunks(64.max(sampled.len() / 256 + 1))
            .map(|chunk| {
                let mut est = EstimateMatrix::default();
                for &first in chunk {
                    enumerate_from_first_edge(g, delta, first, &mut |_, _, _, m| {
                        est.add(m, weight);
                    });
                }
                est
            })
            .reduce(EstimateMatrix::default, |mut a, b| {
                a.merge(&b);
                a
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_graph::gen::GenConfig;

    fn workload(seed: u64) -> TemporalGraph {
        GenConfig {
            nodes: 60,
            edges: 3_000,
            time_span: 60_000,
            seed,
            ..GenConfig::default()
        }
        .generate()
    }

    #[test]
    fn p_one_is_exact() {
        let g = workload(1);
        let delta = 600;
        let exact = hare::count_motifs(&g, delta);
        let est = ews_estimate(
            &g,
            delta,
            &EwsConfig {
                edge_prob: 1.0,
                seed: 0,
            },
        );
        for (mo, n) in exact.matrix.iter() {
            assert!((est.get(mo) - n as f64).abs() < 1e-9, "{mo}");
        }
    }

    #[test]
    fn estimator_is_unbiased_across_seeds() {
        let g = workload(2);
        let delta = 600;
        let exact = hare::count_motifs(&g, delta).total() as f64;
        assert!(exact > 100.0, "workload too sparse: {exact}");
        let runs = 40;
        let mut mean = 0.0;
        for seed in 0..runs {
            mean += ews_estimate(
                &g,
                delta,
                &EwsConfig {
                    edge_prob: 0.3,
                    seed,
                },
            )
            .total();
        }
        mean /= runs as f64;
        let rel = (mean - exact).abs() / exact;
        assert!(rel < 0.2, "mean {mean} vs exact {exact} (rel {rel})");
    }

    #[test]
    fn parallel_matches_sequential_for_fixed_seed() {
        let g = workload(3);
        let cfg = EwsConfig {
            edge_prob: 0.5,
            seed: 9,
        };
        let a = ews_estimate(&g, 600, &cfg);
        let b = ews_estimate_parallel(&g, 600, &cfg, 3);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x.1 - y.1).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_graph() {
        let g = TemporalGraph::from_edges(vec![]);
        assert_eq!(ews_estimate(&g, 10, &EwsConfig::default()).total(), 0.0);
    }

    #[test]
    #[should_panic(expected = "edge_prob")]
    fn zero_probability_rejected() {
        let g = workload(4);
        let _ = ews_estimate(
            &g,
            10,
            &EwsConfig {
                edge_prob: 0.0,
                seed: 0,
            },
        );
    }
}
