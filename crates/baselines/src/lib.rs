//! # hare-baselines
//!
//! Every baseline algorithm the HARE paper (ICDE 2022) compares against,
//! implemented from scratch on the shared [`temporal_graph`] substrate:
//!
//! | Module | Paper baseline | Kind |
//! |---|---|---|
//! | [`enumerate`] | (ground truth; "EX by subgraph enumeration" lineage) | exact oracle |
//! | [`ex`] | EX — Paranjape, Benson & Leskovec, WSDM 2017 | exact |
//! | [`bt`] | BT — Mackey et al., IEEE Big Data 2018 | exact, generic k-node l-edge |
//! | [`two_scent`] | 2SCENT — Kumar & Calders, VLDB 2018 | exact, temporal cycles |
//! | [`bts`] | BTS — Liu, Benson & Charikar, WSDM 2019 | sampling |
//! | [`ews`] | EWS — Wang et al., CIKM 2020 | sampling |
//!
//! All exact baselines agree bit-for-bit with FAST/HARE on every tested
//! workload (see the `fast_vs_baselines` integration suite); the sampling
//! baselines are validated for approximate unbiasedness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bt;
pub mod bts;
pub mod enumerate;
pub mod estimate;
pub mod ews;
pub mod ex;
pub mod seq_counter;
pub mod two_scent;

pub use bt::{bt_count_all, bt_count_pairs, MotifPattern, PatternError};
pub use bts::{bts_pair_estimate, bts_pair_estimate_parallel, BtsConfig};
pub use enumerate::{classify, enumerate_all, enumerate_instances};
pub use estimate::EstimateMatrix;
pub use ews::{ews_estimate, ews_estimate_parallel, EwsConfig};
pub use two_scent::{count_cycles, two_scent_census, two_scent_tri, CycleCensus};
