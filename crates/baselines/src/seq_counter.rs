//! The generic δ-windowed 3-edge *sequence counter* used by the EX
//! baseline (the `ThreeTEdgeMotifCounter` of Paranjape et al.).
//!
//! Given a chronological stream of events carrying small integer labels,
//! it counts, for every label triple `(l1, l2, l3)`, the ordered event
//! triples `a < b < c` with `t_c − t_a ≤ δ`. The sliding-window dynamic
//! program maintains singleton (`c1`) and ordered-pair (`c2`) counts for
//! the current window; pushing an event closes `c2[l1][l2]` triples, and
//! evicting the window's oldest event reverses its pair contributions.
//! O(L²) per event.
//!
//! EX instantiates it with `L = 2` (direction labels — the 2-node
//! algorithm) and `L = 6` (pair × direction labels — the per-static-
//! triangle algorithm).

use temporal_graph::Timestamp;

/// δ-windowed counter of ordered 3-event label sequences.
#[derive(Debug, Clone)]
pub struct SequenceCounter<const L: usize> {
    c1: [u64; L],
    c2: [[u64; L]; L],
    c3: Vec<u64>, // flattened [L][L][L]
}

impl<const L: usize> Default for SequenceCounter<L> {
    fn default() -> Self {
        SequenceCounter {
            c1: [0; L],
            c2: [[0; L]; L],
            c3: vec![0; L * L * L],
        }
    }
}

impl<const L: usize> SequenceCounter<L> {
    /// Count all label triples of the event stream `(label, t)`, which
    /// must be in chronological order. Counts accumulate across calls;
    /// window state resets per call.
    pub fn count(&mut self, events: &[(u8, Timestamp)], delta: Timestamp) {
        self.c1 = [0; L];
        self.c2 = [[0; L]; L];
        let mut start = 0usize;
        for &(lc, tc) in events {
            while events[start].1 < tc - delta {
                self.evict(events[start].0 as usize);
                start += 1;
            }
            self.push(lc as usize);
        }
    }

    #[inline]
    fn push(&mut self, l: usize) {
        debug_assert!(l < L);
        // Close triples ending at this event.
        for l1 in 0..L {
            for l2 in 0..L {
                self.c3[(l1 * L + l2) * L + l] += self.c2[l1][l2];
            }
        }
        // Extend pairs and singletons.
        for l1 in 0..L {
            self.c2[l1][l] += self.c1[l1];
        }
        self.c1[l] += 1;
    }

    #[inline]
    fn evict(&mut self, l: usize) {
        debug_assert!(l < L);
        // The evictee is the window's oldest event: remove it as a
        // singleton first, then as the first element of each pair.
        self.c1[l] -= 1;
        for (l2, c) in self.c1.iter().enumerate() {
            self.c2[l][l2] -= c;
        }
    }

    /// Accumulated count of the label triple `(l1, l2, l3)`.
    #[inline]
    #[must_use]
    pub fn get(&self, l1: usize, l2: usize, l3: usize) -> u64 {
        self.c3[(l1 * L + l2) * L + l3]
    }

    /// Reset accumulated triple counts.
    pub fn clear(&mut self) {
        self.c3.fill(0);
    }

    /// Sum of all triple counts.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.c3.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_triples_within_window() {
        // Labels 0,1,0,1 at t=0,1,2,3 with δ=2: triples are positions
        // (0,1,2) -> (0,1,0) and (1,2,3) -> (1,0,1).
        let mut c: SequenceCounter<2> = SequenceCounter::default();
        c.count(&[(0, 0), (1, 1), (0, 2), (1, 3)], 2);
        assert_eq!(c.get(0, 1, 0), 1);
        assert_eq!(c.get(1, 0, 1), 1);
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn big_window_counts_all_combinations() {
        // n same-label events, huge δ: C(n,3) triples of (0,0,0).
        let events: Vec<(u8, Timestamp)> = (0..10).map(|i| (0, i)).collect();
        let mut c: SequenceCounter<1> = SequenceCounter::default();
        c.count(&events, 1_000);
        assert_eq!(c.get(0, 0, 0), 120);
    }

    #[test]
    fn zero_delta_requires_simultaneity() {
        let mut c: SequenceCounter<2> = SequenceCounter::default();
        c.count(&[(0, 5), (1, 5), (0, 5), (1, 6)], 0);
        // Only the three t=5 events form a triple.
        assert_eq!(c.get(0, 1, 0), 1);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn accumulates_across_calls_but_resets_window() {
        let mut c: SequenceCounter<1> = SequenceCounter::default();
        c.count(&[(0, 0), (0, 1), (0, 2)], 10);
        c.count(&[(0, 100), (0, 101), (0, 102)], 10);
        assert_eq!(c.get(0, 0, 0), 2, "one triple per call, no cross-talk");
        c.clear();
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn eviction_boundary_is_inclusive() {
        // t_c - t_a == δ must count (Definition 2 uses ≤).
        let mut c: SequenceCounter<1> = SequenceCounter::default();
        c.count(&[(0, 0), (0, 5), (0, 10)], 10);
        assert_eq!(c.get(0, 0, 0), 1);
        let mut c: SequenceCounter<1> = SequenceCounter::default();
        c.count(&[(0, 0), (0, 5), (0, 11)], 10);
        assert_eq!(c.get(0, 0, 0), 0);
    }

    #[test]
    fn matches_brute_force_on_random_stream() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut events: Vec<(u8, Timestamp)> = (0..120)
            .map(|_| (rng.gen_range(0..3u8), rng.gen_range(0..200)))
            .collect();
        events.sort_by_key(|&(_, t)| t);
        let delta = 40;

        let mut c: SequenceCounter<3> = SequenceCounter::default();
        c.count(&events, delta);

        let mut brute = vec![0u64; 27];
        for i in 0..events.len() {
            for j in i + 1..events.len() {
                for k in j + 1..events.len() {
                    if events[k].1 - events[i].1 <= delta {
                        let (a, b, c) = (
                            events[i].0 as usize,
                            events[j].0 as usize,
                            events[k].0 as usize,
                        );
                        brute[(a * 3 + b) * 3 + c] += 1;
                    }
                }
            }
        }
        for l1 in 0..3 {
            for l2 in 0..3 {
                for l3 in 0..3 {
                    assert_eq!(
                        c.get(l1, l2, l3),
                        brute[(l1 * 3 + l2) * 3 + l3],
                        "triple ({l1},{l2},{l3})"
                    );
                }
            }
        }
    }
}
