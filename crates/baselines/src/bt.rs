//! BT: chronological backtracking temporal subgraph isomorphism
//! (Mackey et al., *A chronological edge-driven approach to temporal
//! subgraph isomorphism*, IEEE Big Data 2018).
//!
//! A motif is specified as a [`MotifPattern`]: a sequence of pattern edges
//! over node variables, in chronological order. The matcher scans graph
//! edges in the global `(t, id)` order as candidates for pattern edge 0,
//! then recursively extends the partial embedding edge by edge, pruning on
//! the δ window and on node-binding consistency. Every instance is
//! matched exactly once because pattern edges map to graph edges in
//! strictly increasing chronological order.
//!
//! Unlike FAST, BT handles **arbitrary k-node l-edge motifs** — it is both
//! the paper's BT/BT-Pair baseline (Table III) and this workspace's
//! implementation of the paper's "future work" direction (higher-order
//! motifs), as well as the exact subroutine inside the BTS sampler.

use hare::counters::MotifMatrix;
use hare::motif::Motif;
use temporal_graph::{EdgeId, NodeId, TemporalEdge, TemporalGraph, Timestamp};

use crate::enumerate::classify;

/// Errors from [`MotifPattern::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// Pattern has no edges.
    Empty,
    /// A pattern edge is a self-loop.
    SelfLoop {
        /// Index of the offending pattern edge.
        edge: usize,
    },
    /// Node variables must be `0..n` with each label first appearing in
    /// order (canonical labelling).
    NonCanonicalLabels,
}

impl std::fmt::Display for PatternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternError::Empty => write!(f, "pattern has no edges"),
            PatternError::SelfLoop { edge } => write!(f, "pattern edge {edge} is a self-loop"),
            PatternError::NonCanonicalLabels => {
                write!(
                    f,
                    "pattern node labels must first appear in 0,1,2,... order"
                )
            }
        }
    }
}

impl std::error::Error for PatternError {}

/// A temporal motif pattern: directed edges over node variables, listed
/// in chronological order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MotifPattern {
    edges: Vec<(u8, u8)>,
    num_nodes: u8,
}

impl MotifPattern {
    /// Validate and build a pattern. Labels must be canonical: the first
    /// edge is `(0, 1)` or `(1, 0)`... more precisely each new label must
    /// be exactly one greater than the largest seen so far.
    pub fn new(edges: Vec<(u8, u8)>) -> Result<MotifPattern, PatternError> {
        if edges.is_empty() {
            return Err(PatternError::Empty);
        }
        let mut next = 0u8;
        for (i, &(a, b)) in edges.iter().enumerate() {
            if a == b {
                return Err(PatternError::SelfLoop { edge: i });
            }
            for n in [a, b] {
                if n > next {
                    return Err(PatternError::NonCanonicalLabels);
                }
                if n == next {
                    next += 1;
                }
            }
        }
        Ok(MotifPattern {
            edges,
            num_nodes: next,
        })
    }

    /// The canonical 3-edge pattern of one of the 36 grid motifs.
    #[must_use]
    pub fn for_motif(target: Motif) -> MotifPattern {
        canonical_patterns()
            .into_iter()
            .find(|(m, _)| *m == target)
            .map(|(_, p)| p)
            .expect("every grid motif has a canonical pattern")
    }

    /// Pattern edges in chronological order.
    #[must_use]
    pub fn edges(&self) -> &[(u8, u8)] {
        &self.edges
    }

    /// Number of node variables.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    /// Number of pattern edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Count embeddings of this pattern in `g` within time window `delta`.
    #[must_use]
    pub fn count(&self, g: &TemporalGraph, delta: Timestamp) -> u64 {
        let mut count = 0;
        self.enumerate(g, delta, |_| count += 1);
        count
    }

    /// Enumerate embeddings; the callback receives the matched graph edge
    /// ids in pattern (chronological) order.
    pub fn enumerate(&self, g: &TemporalGraph, delta: Timestamp, mut visit: impl FnMut(&[EdgeId])) {
        let mut binding: Vec<Option<NodeId>> = vec![None; self.num_nodes()];
        let mut matched: Vec<EdgeId> = Vec::with_capacity(self.num_edges());
        for (id, &e) in g.edges().iter().enumerate() {
            let id = id as EdgeId;
            if self.try_bind(0, e, &mut binding) {
                matched.push(id);
                self.extend(g, delta, e.t, id, 1, &mut binding, &mut matched, &mut visit);
                matched.pop();
                self.unbind(0, &mut binding);
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // recursion state is explicit by design
    fn extend(
        &self,
        g: &TemporalGraph,
        delta: Timestamp,
        t0: Timestamp,
        last_id: EdgeId,
        level: usize,
        binding: &mut Vec<Option<NodeId>>,
        matched: &mut Vec<EdgeId>,
        visit: &mut impl FnMut(&[EdgeId]),
    ) {
        if level == self.num_edges() {
            visit(matched);
            return;
        }
        let (pa, pb) = self.edges[level];
        let deadline = t0 + delta;

        // Choose the cheapest candidate source: pair index if both ends
        // bound, a node's event list if one end is bound, otherwise the
        // global chronological edge array.
        match (binding[pa as usize], binding[pb as usize]) {
            (Some(a), Some(b)) => {
                let evs = g.pair_events(a, b);
                let start = evs.partition_point(|p| p.edge <= last_id);
                for p in &evs[start..] {
                    if p.t > deadline {
                        break;
                    }
                    let e = g.edge(p.edge);
                    if e.src == a && e.dst == b {
                        matched.push(p.edge);
                        self.extend(g, delta, t0, p.edge, level + 1, binding, matched, visit);
                        matched.pop();
                    }
                }
            }
            (Some(a), None) => {
                let evs = g.node_events(a);
                let start = evs.partition_point(|ev| ev.edge <= last_id);
                for ev in evs.slice(start..evs.len()) {
                    if ev.t > deadline {
                        break;
                    }
                    let e = g.edge(ev.edge);
                    if e.src == a && self.try_bind_node(pb, e.dst, binding) {
                        matched.push(ev.edge);
                        self.extend(g, delta, t0, ev.edge, level + 1, binding, matched, visit);
                        matched.pop();
                        binding[pb as usize] = None;
                    }
                }
            }
            (None, Some(b)) => {
                let evs = g.node_events(b);
                let start = evs.partition_point(|ev| ev.edge <= last_id);
                for ev in evs.slice(start..evs.len()) {
                    if ev.t > deadline {
                        break;
                    }
                    let e = g.edge(ev.edge);
                    if e.dst == b && self.try_bind_node(pa, e.src, binding) {
                        matched.push(ev.edge);
                        self.extend(g, delta, t0, ev.edge, level + 1, binding, matched, visit);
                        matched.pop();
                        binding[pa as usize] = None;
                    }
                }
            }
            (None, None) => {
                // Disconnected prefix: scan the chronological edge array.
                for id in (last_id + 1) as usize..g.num_edges() {
                    let e = g.edge(id as EdgeId);
                    if e.t > deadline {
                        break;
                    }
                    if self.try_bind(level, e, binding) {
                        matched.push(id as EdgeId);
                        self.extend(
                            g,
                            delta,
                            t0,
                            id as EdgeId,
                            level + 1,
                            binding,
                            matched,
                            visit,
                        );
                        matched.pop();
                        self.unbind(level, binding);
                    }
                }
            }
        }
    }

    /// Bind both endpoints of pattern edge `level` to graph edge `e`,
    /// respecting existing bindings and injectivity. Returns `false`
    /// without side effects on mismatch.
    fn try_bind(&self, level: usize, e: TemporalEdge, binding: &mut [Option<NodeId>]) -> bool {
        let (pa, pb) = self.edges[level];
        let prev_a = binding[pa as usize];
        match prev_a {
            Some(bound) if bound != e.src => return false,
            _ => {}
        }
        if prev_a.is_none() && !self.try_bind_node(pa, e.src, binding) {
            return false;
        }
        let ok = match binding[pb as usize] {
            Some(bound) => bound == e.dst,
            None => self.try_bind_node(pb, e.dst, binding),
        };
        if !ok && prev_a.is_none() {
            binding[pa as usize] = None;
        }
        ok
    }

    fn unbind(&self, level: usize, binding: &mut [Option<NodeId>]) {
        let (pa, pb) = self.edges[level];
        // Only unbind variables first bound at this level; callers use
        // this only for level 0 and the disconnected-prefix path, where
        // both endpoints were freshly bound (or binding failed cleanly).
        binding[pa as usize] = None;
        binding[pb as usize] = None;
    }

    /// Bind a single node variable, enforcing injectivity.
    fn try_bind_node(&self, var: u8, node: NodeId, binding: &mut [Option<NodeId>]) -> bool {
        if binding.contains(&Some(node)) {
            return false;
        }
        binding[var as usize] = Some(node);
        true
    }
}

/// The canonical pattern of every grid motif, derived by classifying all
/// canonically labelled 3-edge sequences (exactly one per motif).
#[must_use]
pub fn canonical_patterns() -> Vec<(Motif, MotifPattern)> {
    let all_pairs: [(u8, u8); 6] = [(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)];
    let mut out: Vec<(Motif, MotifPattern)> = Vec::with_capacity(36);
    for &e2 in &all_pairs {
        for &e3 in &all_pairs {
            let Ok(pattern) = MotifPattern::new(vec![(0, 1), e2, e3]) else {
                continue;
            };
            let motif = classify(
                TemporalEdge::new(0, 1, 1),
                TemporalEdge::new(e2.0 as NodeId, e2.1 as NodeId, 2),
                TemporalEdge::new(e3.0 as NodeId, e3.1 as NodeId, 3),
            )
            .expect("canonical sequences are 2- or 3-node");
            debug_assert!(
                !out.iter().any(|(m, _)| *m == motif),
                "duplicate canonical pattern for {motif}"
            );
            out.push((motif, pattern));
        }
    }
    debug_assert_eq!(out.len(), 36);
    out
}

/// Count all 36 motifs by running BT once per canonical pattern — the
/// slowest exact algorithm after raw enumeration; used as a secondary
/// oracle and as the paper's BT baseline.
#[must_use]
pub fn bt_count_all(g: &TemporalGraph, delta: Timestamp) -> MotifMatrix {
    let mut mx = MotifMatrix::default();
    for (motif, pattern) in canonical_patterns() {
        mx.add(motif, pattern.count(g, delta));
    }
    mx
}

/// The paper's BT-Pair baseline: BT restricted to the four pair motifs.
#[must_use]
pub fn bt_count_pairs(g: &TemporalGraph, delta: Timestamp) -> MotifMatrix {
    let mut mx = MotifMatrix::default();
    for (motif, pattern) in canonical_patterns() {
        if motif.category() == hare::motif::MotifCategory::Pair {
            mx.add(motif, pattern.count(g, delta));
        }
    }
    mx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_all;
    use hare::motif::{m, MotifCategory};
    use temporal_graph::gen::{erdos_renyi_temporal, paper_fig1_toy};

    #[test]
    fn canonical_patterns_cover_all_36_motifs() {
        let pats = canonical_patterns();
        assert_eq!(pats.len(), 36);
        let motifs: std::collections::HashSet<_> = pats.iter().map(|(m, _)| *m).collect();
        assert_eq!(motifs.len(), 36);
        for (motif, p) in &pats {
            match motif.category() {
                MotifCategory::Pair => assert_eq!(p.num_nodes(), 2),
                _ => assert_eq!(p.num_nodes(), 3),
            }
            assert_eq!(p.num_edges(), 3);
        }
    }

    #[test]
    fn pattern_validation() {
        assert_eq!(MotifPattern::new(vec![]).unwrap_err(), PatternError::Empty);
        assert_eq!(
            MotifPattern::new(vec![(0, 0)]).unwrap_err(),
            PatternError::SelfLoop { edge: 0 }
        );
        assert_eq!(
            MotifPattern::new(vec![(0, 2)]).unwrap_err(),
            PatternError::NonCanonicalLabels
        );
        assert!(MotifPattern::new(vec![(0, 1), (1, 2), (2, 0)]).is_ok());
    }

    #[test]
    fn bt_matches_enumeration_on_toy_graph() {
        let g = paper_fig1_toy();
        for delta in [5, 10, 25] {
            assert_eq!(bt_count_all(&g, delta), enumerate_all(&g, delta));
        }
    }

    #[test]
    fn bt_matches_enumeration_on_random_graphs() {
        for seed in 0..3 {
            let g = erdos_renyi_temporal(12, 150, 200, seed);
            let delta = 60;
            assert_eq!(
                bt_count_all(&g, delta),
                enumerate_all(&g, delta),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn bt_pairs_counts_only_pair_cells() {
        let g = paper_fig1_toy();
        let mx = bt_count_pairs(&g, 10);
        assert_eq!(mx.get(m(6, 5)), 1);
        assert_eq!(mx.total(), 1);
    }

    #[test]
    fn four_edge_burst_pattern() {
        // 2-node, 4-edge motif (beyond the 36 grid motifs): k parallel
        // edges hold C(k,4) instances of the all-same-direction pattern.
        let k = 7u64;
        let edges = (0..k)
            .map(|i| temporal_graph::TemporalEdge::new(0, 1, i as i64))
            .collect();
        let g = temporal_graph::TemporalGraph::from_edges(edges);
        let p = MotifPattern::new(vec![(0, 1); 4]).unwrap();
        let expect = k * (k - 1) * (k - 2) * (k - 3) / 24;
        assert_eq!(p.count(&g, 100), expect);
    }

    #[test]
    fn four_node_path_pattern() {
        // 4-node temporal path a->b->c->d.
        let g = temporal_graph::TemporalGraph::from_edges(vec![
            temporal_graph::TemporalEdge::new(0, 1, 1),
            temporal_graph::TemporalEdge::new(1, 2, 2),
            temporal_graph::TemporalEdge::new(2, 3, 3),
        ]);
        let p = MotifPattern::new(vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(p.count(&g, 10), 1);
        assert_eq!(p.count(&g, 1), 0);
    }

    #[test]
    fn delta_pruning_in_matcher() {
        let g = temporal_graph::TemporalGraph::from_edges(vec![
            temporal_graph::TemporalEdge::new(0, 1, 0),
            temporal_graph::TemporalEdge::new(0, 1, 100),
            temporal_graph::TemporalEdge::new(0, 1, 200),
        ]);
        let p = MotifPattern::for_motif(m(5, 5));
        assert_eq!(p.count(&g, 200), 1);
        assert_eq!(p.count(&g, 199), 0);
    }

    #[test]
    fn injectivity_prevents_node_reuse() {
        // Pattern wants 3 distinct nodes; graph offers only 2.
        let g = temporal_graph::TemporalGraph::from_edges(vec![
            temporal_graph::TemporalEdge::new(0, 1, 1),
            temporal_graph::TemporalEdge::new(1, 0, 2),
            temporal_graph::TemporalEdge::new(0, 1, 3),
        ]);
        let star = MotifPattern::new(vec![(0, 1), (0, 2), (0, 2)]).unwrap();
        assert_eq!(star.count(&g, 10), 0);
    }

    #[test]
    fn enumerate_reports_ids_in_order() {
        let g = paper_fig1_toy();
        let p = MotifPattern::for_motif(m(6, 5));
        let mut seen = Vec::new();
        p.enumerate(&g, 10, |ids| seen.push(ids.to_vec()));
        assert_eq!(seen.len(), 1);
        assert!(seen[0].windows(2).all(|w| w[0] < w[1]));
    }
}
