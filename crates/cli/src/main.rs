//! `hare-count` — command-line temporal motif counter.
//!
//! The shape of the original paper's artifact (a counting executable),
//! rebuilt on this workspace's library:
//!
//! ```text
//! hare-count --input edges.txt --delta 600 [--threads N] [--json]
//! hare-count --dataset CollegeMsg --delta 600           # registry stand-in
//! hare-count --input edges.txt --delta 600 --only pairs # FAST-Pair
//! hare-count --input edges.txt --delta 600 --window 3600 --slack 60
//!                                                       # sliding window
//! ```

use std::process::ExitCode;

use hare::sample::{SampleConfig, SampledCounter};
use hare::stream_sample::{StreamSampleConfig, StreamingEstimator};
use hare::streaming::StreamError;
use hare::windowed::WindowedCounter;
use hare::{Hare, HareConfig, MotifCategory};
use temporal_graph::io::{load_edges, load_graph, LoadOptions};
use temporal_graph::stats::GraphStats;
use temporal_graph::util::FxHashMap;
use temporal_graph::{NodeId, Timestamp};

const USAGE: &str = "\
hare-count: exact δ-temporal motif counting (FAST/HARE, ICDE 2022)

USAGE:
    hare-count (--input FILE | --dataset NAME [--scale K]) --delta SECONDS [options]

OPTIONS:
    --input FILE        SNAP-style edge list: 'src dst timestamp' per line
    --dataset NAME      generate a Table II stand-in from the registry
    --scale K           stand-in scale divisor (default 1)
    --delta SECONDS     the motif time window δ (required)
    --threads N         worker threads (default: all cores; 1 = sequential FAST)
    --only CATEGORY     pairs | stars | triangles | all (default all)
    --timestamp-col N   zero-based timestamp column (default 2)
    --json              machine-readable output
    --stats             print graph statistics only
    --no-timing         omit wall-clock timing for byte-stable output
    --lanes LAYOUT      timestamp-lane layout: raw | compressed (default
                        raw). compressed bit-packs per-node timestamp
                        deltas; counts are bit-identical either way
    --chunk-budget B    out-of-core exact counting: stream delta-haloed
                        time chunks through the fused kernel, keeping
                        the resident lane arenas under B bytes per
                        chunk. Bit-identical to in-RAM counting. Exact
                        all-motif mode only (no --only/--window/
                        --approx/--stats/--nodes)
    --profile           print a per-phase kernel timing table (scan /
                        fold / chunk_load / summarise) to stderr after
                        counting. stdout stays byte-identical to the
                        unprofiled run — the probe only observes phase
                        boundaries. Exact, --approx and --chunk-budget
                        modes (no --window/--stats/--nodes)
    --help              this text

APPROXIMATE (interval-sampling) MODE:
    --approx            estimate counts instead of counting exactly:
                        windows of length (window-factor * delta) are
                        kept with probability --prob, counted exactly,
                        and rescaled into unbiased per-motif estimates
                        with confidence intervals
    --prob P            window keep probability in (0, 1] (default 0.1);
                        1.0 reproduces the exact counts bit-identically
    --ci LEVEL          confidence level in (0, 1) (default 0.95)
    --window-factor C   sampling window length factor c >= 1 (default 10)
    --seed S            sampling seed (default 42; same seed, same windows)

PER-NODE (local motif profile) MODE:
    --nodes             per-node motif participation profiles instead of
                        the global matrix: stars attribute to their
                        center, pairs to both endpoints, triangles to
                        all three vertices. Alone, emits one sparse
                        profile per participating node; with a ranking
                        flag, emits a single ranking
    --rank-motif M      rank nodes by participation in motif M (M11..M66),
                        ties broken by node id; emits the top --top-k
                        rows (default 10)
    --top-k K           with --rank-motif: rows to emit; alone: rank the
                        K most anomalous nodes by the L2 norm of their
                        per-motif z-scores against the graph-wide
                        profile distribution

STREAMING (sliding-window) MODE:
    --window SECONDS    enable streaming: exact counts over the trailing
                        window W >= delta; emits one motif matrix per tick
    --slack SECONDS     reorder slack: accept arrivals up to this far
                        behind the newest timestamp (default 0); later
                        arrivals are dropped and reported, not fatal
    --tick SECONDS      tick interval in event time (default: the window)
    --memory-budget B   bounded-memory estimation: keep a deterministic
                        seeded interval reservoir of at most B bytes and
                        emit per-tick unbiased estimates with stderr and
                        confidence intervals instead of exact counts
                        (the keep probability p halves as the stream
                        fills the budget). Requires --window; accepts
                        --ci/--window-factor/--seed; a budget large
                        enough to retain the whole window reproduces the
                        exact ticks bit-identically

SERVICE PARITY:
    The long-running `hare-serve` daemon answers the same queries over
    HTTP with bodies byte-identical to this tool's --json --no-timing
    output (both render via the shared `hare::report` wire schema).
    See docs/SERVICE.md.
";

#[derive(Debug)]
struct Opts {
    input: Option<String>,
    dataset: Option<String>,
    scale: usize,
    delta: Option<i64>,
    threads: usize,
    only: String,
    timestamp_col: usize,
    json: bool,
    stats: bool,
    no_timing: bool,
    window: Option<i64>,
    slack: i64,
    tick: Option<i64>,
    approx: bool,
    prob: f64,
    ci: f64,
    window_factor: i64,
    seed: u64,
    nodes: bool,
    top_k: Option<usize>,
    rank_motif: Option<String>,
    lanes: String,
    chunk_budget: Option<usize>,
    memory_budget: Option<u64>,
    profile: bool,
}

fn parse_lanes(name: &str) -> Result<temporal_graph::LaneLayout, String> {
    match name {
        "raw" => Ok(temporal_graph::LaneLayout::Raw),
        "compressed" => Ok(temporal_graph::LaneLayout::Compressed),
        other => Err(format!("expected 'raw' or 'compressed', got {other:?}")),
    }
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        input: None,
        dataset: None,
        scale: 1,
        delta: None,
        threads: 0,
        only: "all".into(),
        timestamp_col: 2,
        json: false,
        stats: false,
        no_timing: false,
        window: None,
        slack: 0,
        tick: None,
        approx: false,
        prob: 0.1,
        ci: 0.95,
        window_factor: 10,
        seed: 42,
        nodes: false,
        top_k: None,
        rank_motif: None,
        lanes: "raw".into(),
        chunk_budget: None,
        memory_budget: None,
        profile: false,
    };
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--input" => o.input = Some(value("--input")?),
            "--dataset" => o.dataset = Some(value("--dataset")?),
            "--scale" => {
                o.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--delta" => {
                o.delta = Some(
                    value("--delta")?
                        .parse()
                        .map_err(|e| format!("--delta: {e}"))?,
                )
            }
            "--threads" => {
                o.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--only" => o.only = value("--only")?,
            "--timestamp-col" => {
                o.timestamp_col = value("--timestamp-col")?
                    .parse()
                    .map_err(|e| format!("--timestamp-col: {e}"))?;
            }
            "--json" => o.json = true,
            "--stats" => o.stats = true,
            "--no-timing" => o.no_timing = true,
            "--window" => {
                o.window = Some(
                    value("--window")?
                        .parse()
                        .map_err(|e| format!("--window: {e}"))?,
                )
            }
            "--slack" => {
                o.slack = value("--slack")?
                    .parse()
                    .map_err(|e| format!("--slack: {e}"))?
            }
            "--tick" => {
                o.tick = Some(
                    value("--tick")?
                        .parse()
                        .map_err(|e| format!("--tick: {e}"))?,
                )
            }
            "--approx" => o.approx = true,
            "--prob" => {
                o.prob = value("--prob")?
                    .parse()
                    .map_err(|e| format!("--prob: {e}"))?
            }
            "--ci" => o.ci = value("--ci")?.parse().map_err(|e| format!("--ci: {e}"))?,
            "--window-factor" => {
                o.window_factor = value("--window-factor")?
                    .parse()
                    .map_err(|e| format!("--window-factor: {e}"))?
            }
            "--seed" => {
                o.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--nodes" => o.nodes = true,
            "--top-k" => {
                o.top_k = Some(
                    value("--top-k")?
                        .parse()
                        .map_err(|e| format!("--top-k: {e}"))?,
                )
            }
            "--rank-motif" => o.rank_motif = Some(value("--rank-motif")?),
            "--lanes" => o.lanes = value("--lanes")?,
            "--chunk-budget" => {
                o.chunk_budget = Some(
                    value("--chunk-budget")?
                        .parse()
                        .map_err(|e| format!("--chunk-budget: {e}"))?,
                )
            }
            "--memory-budget" => {
                o.memory_budget = Some(
                    value("--memory-budget")?
                        .parse()
                        .map_err(|e| format!("--memory-budget: {e}"))?,
                )
            }
            "--profile" => o.profile = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if o.input.is_none() && o.dataset.is_none() {
        return Err("one of --input or --dataset is required".into());
    }
    if o.input.is_some() && o.dataset.is_some() {
        return Err("--input and --dataset are mutually exclusive".into());
    }
    if o.delta.is_none() && !o.stats {
        return Err("--delta is required (seconds)".into());
    }
    if o.scale == 0 {
        return Err("--scale must be at least 1".into());
    }
    if let Err(e) = hare::report::parse_only(&o.only) {
        return Err(format!("--only {e}"));
    }
    if let Some(w) = o.window {
        let delta = o.delta.ok_or("--window requires --delta")?;
        if w < delta {
            return Err(format!("--window must be >= --delta ({w} < {delta})"));
        }
        if o.stats {
            return Err("--stats is not supported with --window".into());
        }
        if o.only != "all" {
            return Err("--only is not supported with --window".into());
        }
    }
    if o.slack < 0 {
        return Err("--slack must be non-negative".into());
    }
    if o.window.is_none() && (o.slack != 0 || o.tick.is_some()) {
        return Err("--slack/--tick require --window".into());
    }
    if o.tick.is_some_and(|t| t < 1) {
        return Err("--tick must be at least 1".into());
    }
    if o.approx {
        if o.delta.is_none() {
            return Err("--approx requires --delta".into());
        }
        if o.window.is_some() {
            return Err("--approx and --window are mutually exclusive".into());
        }
        if o.stats {
            return Err("--stats is not supported with --approx".into());
        }
        if o.only != "all" {
            return Err("--only is not supported with --approx".into());
        }
        if !(o.prob > 0.0 && o.prob <= 1.0) {
            return Err(format!("--prob must be in (0, 1], got {}", o.prob));
        }
        if !(o.ci > 0.0 && o.ci < 1.0) {
            return Err(format!("--ci must be in (0, 1), got {}", o.ci));
        }
        if o.window_factor < 1 {
            return Err(format!(
                "--window-factor must be at least 1, got {}",
                o.window_factor
            ));
        }
    } else {
        if args.iter().any(|a| a == "--prob") {
            return Err("--prob requires --approx".into());
        }
        // --ci/--window-factor/--seed tune either estimator.
        if o.memory_budget.is_none()
            && ["--ci", "--window-factor", "--seed"]
                .iter()
                .any(|f| args.iter().any(|a| a == f))
        {
            return Err("--ci/--window-factor/--seed require --approx or --memory-budget".into());
        }
    }
    if let Some(b) = o.memory_budget {
        if b == 0 {
            return Err("--memory-budget must be at least 1 byte".into());
        }
        if o.window.is_none() {
            return Err("--memory-budget requires --window (streaming mode)".into());
        }
        if !(o.ci > 0.0 && o.ci < 1.0) {
            return Err(format!("--ci must be in (0, 1), got {}", o.ci));
        }
        if o.window_factor < 1 {
            return Err(format!(
                "--window-factor must be at least 1, got {}",
                o.window_factor
            ));
        }
    }
    if o.nodes {
        if o.delta.is_none() {
            return Err("--nodes requires --delta".into());
        }
        if o.window.is_some() || o.approx || o.stats {
            return Err("--nodes is exclusive with --window/--approx/--stats".into());
        }
        if o.only != "all" {
            return Err("--only is not supported with --nodes".into());
        }
        if o.top_k == Some(0) {
            return Err("--top-k must be at least 1".into());
        }
        if let Some(m) = &o.rank_motif {
            if let Err(e) = m.parse::<hare::Motif>() {
                return Err(format!("--rank-motif: {e}"));
            }
        }
    } else if o.top_k.is_some() || o.rank_motif.is_some() {
        return Err("--top-k/--rank-motif require --nodes".into());
    }
    if let Err(e) = parse_lanes(&o.lanes) {
        return Err(format!("--lanes: {e}"));
    }
    if o.lanes != "raw" && o.window.is_some() {
        return Err("--lanes is not supported with --window".into());
    }
    if let Some(b) = o.chunk_budget {
        if b == 0 {
            return Err("--chunk-budget must be at least 1 byte".into());
        }
        if o.window.is_some() || o.approx || o.stats || o.nodes || o.only != "all" {
            return Err(
                "--chunk-budget is exclusive with --only/--window/--approx/--stats/--nodes".into(),
            );
        }
    }
    if o.profile && (o.window.is_some() || o.stats || o.nodes) {
        return Err("--profile is not supported with --window/--stats/--nodes".into());
    }
    Ok(o)
}

/// The arrival stream for `--window` mode: `(src, dst, t)` in delivery
/// order (file order / generation order), ids compacted, self-loops kept
/// so the engine's rejection policy is what drops them.
fn load_stream(o: &Opts) -> Result<Vec<(NodeId, NodeId, Timestamp)>, String> {
    match (&o.input, &o.dataset) {
        (Some(path), None) => {
            let opts = LoadOptions {
                timestamp_column: o.timestamp_col,
                ..LoadOptions::default()
            };
            let raw = load_edges(path, &opts).map_err(|e| format!("loading {path}: {e}"))?;
            let mut remap: FxHashMap<u64, NodeId> = FxHashMap::default();
            let mut intern = |x: u64| -> NodeId {
                let next = remap.len() as NodeId;
                *remap.entry(x).or_insert(next)
            };
            Ok(raw
                .into_iter()
                .map(|(s, d, t)| (intern(s), intern(d), t))
                .collect())
        }
        (None, Some(name)) => {
            let g = hare_datasets::by_name(name)
                .ok_or_else(|| {
                    let names: Vec<&str> = hare_datasets::all().iter().map(|d| d.name).collect();
                    format!("unknown dataset {name:?}; known: {}", names.join(", "))
                })?
                .generate(o.scale);
            Ok(g.edges().iter().map(|e| (e.src, e.dst, e.t)).collect())
        }
        _ => unreachable!("validated in parse_args"),
    }
}

/// Cumulative drop statistics of a streaming run.
#[derive(Debug, Default)]
struct DropStats {
    late: u64,
    self_loops: u64,
}

/// The engine behind `--window` mode: exact live-window counting, or —
/// with `--memory-budget` — the bounded-memory streaming estimator.
/// Both mirror the same acceptance semantics, so tick cadence and drop
/// counters are identical for the same stream.
enum StreamEngine {
    Exact(Box<WindowedCounter>),
    Budget(Box<StreamingEstimator>),
}

impl StreamEngine {
    fn push(&mut self, src: NodeId, dst: NodeId, t: Timestamp) -> Result<(), StreamError> {
        match self {
            StreamEngine::Exact(wc) => wc.push(src, dst, t),
            StreamEngine::Budget(est) => est.push(src, dst, t),
        }
    }

    fn advance_to(&mut self, t: Timestamp) {
        match self {
            StreamEngine::Exact(wc) => wc.advance_to(t),
            StreamEngine::Budget(est) => est.advance_to(t),
        }
    }

    fn flush(&mut self) {
        match self {
            StreamEngine::Exact(wc) => wc.flush(),
            StreamEngine::Budget(est) => est.flush(),
        }
    }
}

fn emit_tick(o: &Opts, engine: &StreamEngine, tick_t: Timestamp, drops: &DropStats) {
    match engine {
        StreamEngine::Exact(wc) => {
            if o.json {
                let body =
                    hare::report::windowed_tick_body(tick_t, wc, drops.late, drops.self_loops);
                print!("{}", hare::report::render(&body));
            } else {
                let matrix = wc.counts();
                println!(
                    "tick t={tick_t} | live edges {} | total motifs {} | late dropped {}",
                    wc.live_edges(),
                    matrix.total(),
                    drops.late
                );
                println!("{matrix}");
            }
        }
        StreamEngine::Budget(est) => {
            let tick = est.estimates();
            if o.json {
                let body = hare::report::stream_tick_body(
                    tick_t,
                    o.slack,
                    &tick,
                    drops.late,
                    drops.self_loops,
                );
                print!("{}", hare::report::render(&body));
            } else {
                println!(
                    "tick t={tick_t} | retained {} edges ({}/{} B) | p={} | total estimate {:.1} \
                     | late dropped {}",
                    tick.retained_edges,
                    tick.retained_bytes,
                    tick.budget_bytes,
                    tick.prob,
                    tick.total_estimate(),
                    drops.late
                );
            }
        }
    }
}

/// Sliding-window streaming mode: feed the arrival stream through a
/// `WindowedCounter` (or, under `--memory-budget`, the bounded-memory
/// estimator), emitting the live-window motif matrix at every
/// event-time tick boundary and once more at the final watermark.
fn run_stream(o: &Opts) -> Result<(), String> {
    let delta = o.delta.expect("validated");
    let window = o.window.expect("streaming mode");
    let tick = o.tick.unwrap_or_else(|| window.max(1));
    let arrivals = load_stream(o)?;

    let mut wc = match o.memory_budget {
        None => StreamEngine::Exact(Box::new(WindowedCounter::with_slack(
            delta, window, o.slack,
        ))),
        Some(budget) => {
            StreamEngine::Budget(Box::new(StreamingEstimator::new(StreamSampleConfig {
                slack: o.slack,
                window_factor: o.window_factor,
                confidence: o.ci,
                seed: o.seed,
                threads: o.threads,
                ..StreamSampleConfig::new(delta, window, budget)
            })))
        }
    };
    let mut drops = DropStats::default();
    let mut next_boundary: Option<Timestamp> = None;
    let mut max_accepted: Option<Timestamp> = None;
    for &(src, dst, t) in &arrivals {
        // Drop self-loops before the boundary catch-up below: their
        // timestamp must not advance the ticks (a rejected arrival far
        // in the future would otherwise emit spurious empty ticks and
        // raise the acceptance floor past still-valid in-slack edges).
        if src == dst {
            drops.self_loops += 1;
            continue;
        }
        // Emit every boundary the stream has safely passed: a boundary B
        // is final once an arrival exceeds B + slack (nothing at or
        // before B can arrive any more). Late arrivals can't reach here
        // with t beyond a pending boundary's slack (they are below the
        // acceptance floor, which trails the last accepted timestamp).
        while let Some(boundary) = next_boundary {
            if t <= boundary + o.slack {
                break;
            }
            wc.advance_to(boundary);
            emit_tick(o, &wc, boundary, &drops);
            next_boundary = Some(boundary + tick);
        }
        match wc.push(src, dst, t) {
            Ok(()) => {
                max_accepted = Some(max_accepted.map_or(t, |m| m.max(t)));
                if next_boundary.is_none() {
                    next_boundary = Some(t + tick);
                }
            }
            Err(StreamError::OutOfOrder { .. }) => drops.late += 1,
            Err(StreamError::SelfLoop) => drops.self_loops += 1,
        }
    }
    if let Some(final_t) = max_accepted {
        // Drain the trailing boundaries *before* the final flush:
        // advance_to(B) processes exactly the buffered arrivals with
        // t <= B, so each tick still reports the window as of B (a
        // flush first would fast-forward the watermark past them).
        while let Some(boundary) = next_boundary {
            if boundary >= final_t {
                break;
            }
            wc.advance_to(boundary);
            emit_tick(o, &wc, boundary, &drops);
            next_boundary = Some(boundary + tick);
        }
        wc.flush();
        // Final tick at the end-of-stream watermark.
        emit_tick(o, &wc, final_t, &drops);
    } else if !o.json {
        println!("empty stream: nothing to count");
    }
    Ok(())
}

/// Approximate (interval-sampling) mode: estimate all 36 motif counts
/// with per-motif standard errors and confidence intervals.
fn run_approx(
    o: &Opts,
    graph: &temporal_graph::TemporalGraph,
    stats: &GraphStats,
    delta: i64,
) -> Result<(), String> {
    let counter = SampledCounter::new(SampleConfig {
        prob: o.prob,
        window_factor: o.window_factor,
        confidence: o.ci,
        seed: o.seed,
        threads: o.threads,
    });
    let start = std::time::Instant::now();
    // The probe is observation-only: the profiled estimate is
    // bit-identical to the unprofiled one (pinned end-to-end).
    let probe = o.profile.then(hare::WallClockProbe::new);
    let est = match &probe {
        Some(p) => counter.count_probed(graph, delta, p),
        None => counter.count(graph, delta),
    };
    let secs = start.elapsed().as_secs_f64();
    if let Some(p) = &probe {
        eprint!("{}", p.render_table());
    }

    if o.json {
        let body = hare::report::approx_body(
            stats.num_nodes,
            stats.num_edges,
            delta,
            o.window_factor,
            o.seed,
            &est,
            (!o.no_timing).then_some(secs),
        );
        print!("{}", hare::report::render(&body));
    } else {
        let timing = if o.no_timing {
            String::new()
        } else {
            format!(" | counted in {secs:.3}s")
        };
        println!(
            "graph: {} nodes, {} edges | delta = {delta}s | approx p={:.3} c={} ci={:.0}% \
             seed={} | windows {}/{}{timing}",
            stats.num_nodes,
            stats.num_edges,
            est.prob,
            o.window_factor,
            est.confidence * 100.0,
            o.seed,
            est.windows_sampled,
            est.windows_total,
        );
        println!(
            "{:>6} {:>14} {:>12} {:>14} {:>14}",
            "motif", "estimate", "stderr", "ci_lo", "ci_hi"
        );
        for (m, e) in est.iter() {
            println!(
                "{:>6} {:>14.1} {:>12.1} {:>14.1} {:>14.1}",
                m.to_string(),
                e.estimate,
                e.stderr,
                e.ci_lo,
                e.ci_hi
            );
        }
        println!("total estimate: {:.1}", est.total_estimate());
    }
    Ok(())
}

/// Per-node profile mode: sparse local motif profiles, optionally
/// ranked (top-k by one motif, or by z-score anomaly). JSON output is
/// timing-free by construction — profile bodies are served from the
/// `hare-serve` cache and must be byte-stable.
fn run_nodes(
    o: &Opts,
    graph: &temporal_graph::TemporalGraph,
    stats: &GraphStats,
    delta: i64,
) -> Result<(), String> {
    let start = std::time::Instant::now();
    let profiles = hare::NodeProfiles::compute(graph, delta, o.threads);
    let secs = start.elapsed().as_secs_f64();

    if let Some(name) = &o.rank_motif {
        let motif: hare::Motif = name.parse().expect("validated in parse_args");
        let k = o.top_k.unwrap_or(10);
        let ranked = hare::top_k_nodes(&profiles, motif, k);
        if o.json {
            let body = hare::report::top_nodes_body(delta, motif, k, &ranked);
            print!("{}", hare::report::render(&body));
        } else {
            println!(
                "top {k} nodes by {motif} participation | delta = {delta}s | {} participating nodes",
                profiles.len()
            );
            println!("{:>10} {:>12}", "node", "count");
            for (u, n) in &ranked {
                println!("{u:>10} {n:>12}");
            }
        }
    } else if let Some(k) = o.top_k {
        let dist = hare::ProfileDistribution::compute(&profiles);
        let ranked = hare::rank_by_zscore(&profiles, &dist, k);
        if o.json {
            let body = hare::report::zscore_nodes_body(delta, k, &ranked);
            print!("{}", hare::report::render(&body));
        } else {
            println!(
                "top {k} anomalous nodes by z-score norm | delta = {delta}s | {} participating nodes",
                profiles.len()
            );
            println!("{:>10} {:>12}", "node", "score");
            for (u, s) in &ranked {
                println!("{u:>10} {s:>12.3}");
            }
        }
    } else if o.json {
        // One line per participating node — each line is byte-identical
        // to the `GET /nodes/{id}/motifs` body for that node.
        let mut out = String::new();
        for (u, p) in profiles.iter() {
            out.push_str(&hare::report::render(&hare::report::node_profile_body(
                u, delta, p,
            )));
        }
        print!("{out}");
    } else {
        let timing = if o.no_timing {
            String::new()
        } else {
            format!(" | computed in {secs:.3}s")
        };
        println!(
            "graph: {} nodes, {} edges | delta = {delta}s | {} participating nodes{timing}",
            stats.num_nodes,
            stats.num_edges,
            profiles.len()
        );
        for (u, p) in profiles.iter() {
            let cells: Vec<String> = p
                .iter()
                .filter(|&(_, n)| n > 0)
                .map(|(m, n)| format!("{m}:{n}"))
                .collect();
            println!("node {u:>8} | total {:>8} | {}", p.total(), cells.join(" "));
        }
    }
    Ok(())
}

fn run(o: &Opts) -> Result<(), String> {
    if o.window.is_some() {
        return run_stream(o);
    }
    let graph = match (&o.input, &o.dataset) {
        (Some(path), None) => {
            let opts = LoadOptions {
                timestamp_column: o.timestamp_col,
                ..LoadOptions::default()
            };
            load_graph(path, &opts).map_err(|e| format!("loading {path}: {e}"))?
        }
        (None, Some(name)) => hare_datasets::by_name(name)
            .ok_or_else(|| {
                let names: Vec<&str> = hare_datasets::all().iter().map(|d| d.name).collect();
                format!("unknown dataset {name:?}; known: {}", names.join(", "))
            })?
            .generate(o.scale),
        _ => unreachable!("validated in parse_args"),
    };
    let layout = parse_lanes(&o.lanes).expect("validated in parse_args");
    let graph = graph.into_lane_layout(layout);

    let stats = GraphStats::compute(&graph);
    if o.stats {
        if o.json {
            print!(
                "{}",
                hare::report::render(&hare::report::graph_stats_body(&stats))
            );
        } else {
            println!(
                "nodes {}  edges {}  span {}  max-degree {}  mean-degree {:.2}",
                stats.num_nodes,
                stats.num_edges,
                stats.time_span,
                stats.max_degree,
                stats.mean_degree
            );
        }
        return Ok(());
    }

    let delta = o.delta.expect("validated");
    if o.nodes {
        return run_nodes(o, &graph, &stats, delta);
    }
    if o.approx {
        return run_approx(o, &graph, &stats, delta);
    }
    let start = std::time::Instant::now();
    // `--profile` threads a wall-clock probe through the kernel's phase
    // seams; the probe only observes boundaries, so the matrix — and
    // therefore stdout — is bit-identical to the unprofiled run.
    let probe = o.profile.then(hare::WallClockProbe::new);
    let matrix = if let Some(budget) = o.chunk_budget {
        // Out-of-core path: stream delta-haloed chunks under the budget.
        // Counter addition is commutative, so the matrix (and therefore
        // the rendered body) is bit-identical to the in-RAM path.
        let src = hare::InMemorySource::from_graph(&graph);
        let cfg = hare::OocConfig {
            delta,
            budget_bytes: budget,
            lane_layout: layout,
        };
        let (counts, _stats) = match &probe {
            Some(p) => hare::count_motifs_ooc_probed(&src, cfg, p),
            None => hare::count_motifs_ooc(&src, cfg),
        }
        .map_err(|e| format!("out-of-core counting: {e}"))?;
        counts.matrix
    } else {
        let engine = Hare::new(HareConfig {
            num_threads: o.threads,
            ..HareConfig::default()
        });
        let only = hare::report::parse_only(&o.only).expect("validated in parse_args");
        match &probe {
            Some(p) => engine.count_matrix_probed(&graph, delta, only, p),
            None => engine.count_matrix(&graph, delta, only),
        }
    };
    let secs = start.elapsed().as_secs_f64();
    if let Some(p) = &probe {
        eprint!("{}", p.render_table());
    }

    if o.json {
        // Timing is the one nondeterministic field; --no-timing omits
        // it so output is byte-stable (golden-file tests rely on it).
        let body = hare::report::exact_body(
            stats.num_nodes,
            stats.num_edges,
            delta,
            &matrix,
            (!o.no_timing).then_some(secs),
        );
        print!("{}", hare::report::render(&body));
    } else {
        if o.no_timing {
            println!(
                "graph: {} nodes, {} edges | delta = {delta}s",
                stats.num_nodes, stats.num_edges
            );
        } else {
            println!(
                "graph: {} nodes, {} edges | delta = {delta}s | counted in {:.3}s",
                stats.num_nodes, stats.num_edges, secs
            );
        }
        println!("{matrix}");
        for (label, cat) in [
            ("pair", MotifCategory::Pair),
            ("star", MotifCategory::Star),
            ("triangle", MotifCategory::Triangle),
        ] {
            println!("{label:>9} total: {}", matrix.category_total(cat));
        }
        // Grid layout (rows/cols to motif identities) is documented in
        // `hare::motif`.
        println!("    total: {}", matrix.total());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(opts) => match run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("error: {msg}\n\n{USAGE}");
                ExitCode::FAILURE
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_minimal_invocation() {
        let o = parse_args(&args(&["--input", "x.txt", "--delta", "600"])).unwrap();
        assert_eq!(o.input.as_deref(), Some("x.txt"));
        assert_eq!(o.delta, Some(600));
        assert_eq!(o.only, "all");
    }

    #[test]
    fn rejects_missing_source_and_conflicts() {
        assert!(parse_args(&args(&["--delta", "600"])).is_err());
        assert!(parse_args(&args(&["--input", "a", "--dataset", "b", "--delta", "1"])).is_err());
    }

    #[test]
    fn rejects_zero_scale() {
        let e = parse_args(&args(&[
            "--dataset",
            "CollegeMsg",
            "--delta",
            "1",
            "--scale",
            "0",
        ]))
        .unwrap_err();
        assert!(e.contains("--scale"), "{e}");
    }

    #[test]
    fn rejects_bad_only() {
        let e =
            parse_args(&args(&["--input", "x", "--delta", "1", "--only", "wedges"])).unwrap_err();
        assert!(e.contains("--only"));
    }

    #[test]
    fn stats_mode_needs_no_delta() {
        let o = parse_args(&args(&["--dataset", "CollegeMsg", "--stats"])).unwrap();
        assert!(o.stats);
        assert!(o.delta.is_none());
    }

    #[test]
    fn help_flag_yields_empty_error() {
        assert_eq!(parse_args(&args(&["--help"])).unwrap_err(), "");
    }

    #[test]
    fn parses_streaming_flags() {
        let o = parse_args(&args(&[
            "--input", "x.txt", "--delta", "600", "--window", "3600", "--slack", "60", "--tick",
            "300",
        ]))
        .unwrap();
        assert_eq!(o.window, Some(3600));
        assert_eq!(o.slack, 60);
        assert_eq!(o.tick, Some(300));
    }

    #[test]
    fn rejects_bad_streaming_combinations() {
        // window below delta
        let e =
            parse_args(&args(&["--input", "x", "--delta", "600", "--window", "10"])).unwrap_err();
        assert!(e.contains("--window"), "{e}");
        // window without delta
        assert!(parse_args(&args(&["--input", "x", "--window", "10", "--stats"])).is_err());
        // slack/tick without window
        assert!(parse_args(&args(&["--input", "x", "--delta", "1", "--slack", "5"])).is_err());
        assert!(parse_args(&args(&["--input", "x", "--delta", "1", "--tick", "5"])).is_err());
        // streaming is exclusive with --stats and --only
        assert!(parse_args(&args(&[
            "--input", "x", "--delta", "1", "--window", "5", "--stats"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "--input", "x", "--delta", "1", "--window", "5", "--only", "pairs"
        ]))
        .is_err());
        // negative slack, zero tick
        assert!(parse_args(&args(&[
            "--input", "x", "--delta", "1", "--window", "5", "--slack", "-1"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "--input", "x", "--delta", "1", "--window", "5", "--tick", "0"
        ]))
        .is_err());
    }

    #[test]
    fn parses_lane_and_chunk_budget_flags() {
        let o = parse_args(&args(&["--input", "x", "--delta", "1"])).unwrap();
        assert_eq!(o.lanes, "raw");
        assert_eq!(o.chunk_budget, None);
        let o = parse_args(&args(&[
            "--input",
            "x",
            "--delta",
            "1",
            "--lanes",
            "compressed",
            "--chunk-budget",
            "65536",
        ]))
        .unwrap();
        assert_eq!(o.lanes, "compressed");
        assert_eq!(o.chunk_budget, Some(65536));
    }

    #[test]
    fn rejects_bad_lane_and_chunk_budget_combinations() {
        // unknown layout name
        let e =
            parse_args(&args(&["--input", "x", "--delta", "1", "--lanes", "simd"])).unwrap_err();
        assert!(e.contains("--lanes"), "{e}");
        // lanes other than raw with the streaming window
        assert!(parse_args(&args(&[
            "--input",
            "x",
            "--delta",
            "1",
            "--window",
            "5",
            "--lanes",
            "compressed"
        ]))
        .is_err());
        // zero budget
        let e = parse_args(&args(&[
            "--input",
            "x",
            "--delta",
            "1",
            "--chunk-budget",
            "0",
        ]))
        .unwrap_err();
        assert!(e.contains("--chunk-budget"), "{e}");
        // budget is exclusive with every non-default mode
        for extra in [
            ["--only", "pairs"].as_slice(),
            ["--window", "5"].as_slice(),
            ["--approx"].as_slice(),
            ["--stats"].as_slice(),
            ["--nodes"].as_slice(),
        ] {
            let mut v = args(&["--input", "x", "--delta", "1", "--chunk-budget", "4096"]);
            v.extend(extra.iter().map(|s| (*s).to_string()));
            assert!(parse_args(&v).is_err(), "expected rejection for {extra:?}");
        }
    }

    #[test]
    fn parses_memory_budget_flags() {
        let o = parse_args(&args(&[
            "--input",
            "x.txt",
            "--delta",
            "600",
            "--window",
            "3600",
            "--memory-budget",
            "1048576",
            "--seed",
            "7",
            "--ci",
            "0.99",
            "--window-factor",
            "2",
        ]))
        .unwrap();
        assert_eq!(o.memory_budget, Some(1_048_576));
        assert_eq!(o.seed, 7);
        assert_eq!(o.ci, 0.99);
        assert_eq!(o.window_factor, 2);
    }

    #[test]
    fn rejects_bad_memory_budget_combinations() {
        // budget without --window
        let e = parse_args(&args(&[
            "--input",
            "x",
            "--delta",
            "1",
            "--memory-budget",
            "4096",
        ]))
        .unwrap_err();
        assert!(e.contains("--memory-budget requires --window"), "{e}");
        // zero budget
        let e = parse_args(&args(&[
            "--input",
            "x",
            "--delta",
            "1",
            "--window",
            "5",
            "--memory-budget",
            "0",
        ]))
        .unwrap_err();
        assert!(e.contains("--memory-budget"), "{e}");
        // exclusive with the other engines (transitively via --window)
        for extra in [
            ["--approx"].as_slice(),
            ["--nodes"].as_slice(),
            ["--stats"].as_slice(),
            ["--chunk-budget", "4096"].as_slice(),
        ] {
            let mut v = args(&[
                "--input",
                "x",
                "--delta",
                "1",
                "--window",
                "5",
                "--memory-budget",
                "4096",
            ]);
            v.extend(extra.iter().map(|s| (*s).to_string()));
            assert!(parse_args(&v).is_err(), "expected rejection for {extra:?}");
        }
        // --prob stays approx-only; bad ci / window-factor rejected here too
        for extra in [["--prob", "0.5"], ["--ci", "1"], ["--window-factor", "0"]] {
            let mut v = args(&[
                "--input",
                "x",
                "--delta",
                "1",
                "--window",
                "5",
                "--memory-budget",
                "4096",
            ]);
            v.extend(args(extra.as_slice()));
            assert!(parse_args(&v).is_err(), "expected rejection for {extra:?}");
        }
        // sampling knobs still rejected without either estimator
        let e = parse_args(&args(&["--input", "x", "--delta", "1", "--seed", "9"])).unwrap_err();
        assert!(e.contains("--memory-budget"), "{e}");
    }

    #[test]
    fn memory_budget_mode_runs_on_registry_dataset() {
        let o = parse_args(&args(&[
            "--dataset",
            "CollegeMsg",
            "--scale",
            "8",
            "--delta",
            "600",
            "--window",
            "86400",
            "--memory-budget",
            "65536",
            "--json",
        ]))
        .unwrap();
        run(&o).unwrap();
    }

    #[test]
    fn parses_approx_flags() {
        let o = parse_args(&args(&[
            "--input",
            "x.txt",
            "--delta",
            "600",
            "--approx",
            "--prob",
            "0.3",
            "--ci",
            "0.99",
            "--window-factor",
            "5",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert!(o.approx);
        assert_eq!(o.prob, 0.3);
        assert_eq!(o.ci, 0.99);
        assert_eq!(o.window_factor, 5);
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn rejects_bad_approx_combinations() {
        // approx without delta
        assert!(parse_args(&args(&["--input", "x", "--approx", "--stats"])).is_err());
        // approx is exclusive with streaming, --stats and --only
        assert!(parse_args(&args(&[
            "--input", "x", "--delta", "1", "--approx", "--window", "5"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "--input", "x", "--delta", "1", "--approx", "--stats"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "--input", "x", "--delta", "1", "--approx", "--only", "pairs"
        ]))
        .is_err());
        // out-of-range parameters
        for (flag, bad) in [
            ("--prob", "0"),
            ("--prob", "1.5"),
            ("--ci", "1"),
            ("--ci", "0"),
        ] {
            assert!(
                parse_args(&args(&[
                    "--input", "x", "--delta", "1", "--approx", flag, bad
                ]))
                .is_err(),
                "{flag} {bad} should be rejected"
            );
        }
        assert!(parse_args(&args(&[
            "--input",
            "x",
            "--delta",
            "1",
            "--approx",
            "--window-factor",
            "0"
        ]))
        .is_err());
        // sampling flags without --approx
        let e = parse_args(&args(&["--input", "x", "--delta", "1", "--prob", "0.5"])).unwrap_err();
        assert!(e.contains("--approx"), "{e}");
    }

    #[test]
    fn approx_mode_runs_on_registry_dataset() {
        let o = parse_args(&args(&[
            "--dataset",
            "CollegeMsg",
            "--scale",
            "8",
            "--delta",
            "600",
            "--approx",
            "--prob",
            "0.5",
            "--json",
        ]))
        .unwrap();
        run(&o).unwrap();
    }

    #[test]
    fn no_timing_flag_parses() {
        let o = parse_args(&args(&["--input", "x", "--delta", "1", "--no-timing"])).unwrap();
        assert!(o.no_timing);
    }

    #[test]
    fn profile_flag_parses_and_composes() {
        let o = parse_args(&args(&["--input", "x", "--delta", "1", "--profile"])).unwrap();
        assert!(o.profile);
        // Composes with the approx and out-of-core engines.
        assert!(parse_args(&args(&[
            "--input",
            "x",
            "--delta",
            "1",
            "--approx",
            "--profile"
        ]))
        .is_ok());
        assert!(parse_args(&args(&[
            "--input",
            "x",
            "--delta",
            "1",
            "--chunk-budget",
            "4096",
            "--profile",
        ]))
        .is_ok());
        // Rejected where no probed seam is wired.
        for extra in [
            ["--window", "5"].as_slice(),
            ["--stats"].as_slice(),
            ["--nodes"].as_slice(),
        ] {
            let mut v = args(&["--input", "x", "--delta", "1", "--profile"]);
            v.extend(extra.iter().map(|s| (*s).to_string()));
            let e = parse_args(&v).unwrap_err();
            assert!(e.contains("--profile"), "{extra:?}: {e}");
        }
    }

    #[test]
    fn profiled_run_executes_on_registry_dataset() {
        for extra in [
            vec![],
            vec!["--approx", "--prob", "0.5"],
            vec!["--chunk-budget", "65536"],
        ] {
            let mut a = vec![
                "--dataset",
                "CollegeMsg",
                "--scale",
                "8",
                "--delta",
                "600",
                "--profile",
                "--json",
            ];
            a.extend(extra);
            let o = parse_args(&args(&a)).unwrap();
            run(&o).unwrap();
        }
    }

    #[test]
    fn streaming_mode_runs_on_registry_dataset() {
        let o = parse_args(&args(&[
            "--dataset",
            "CollegeMsg",
            "--scale",
            "8",
            "--delta",
            "600",
            "--window",
            "86400",
            "--json",
        ]))
        .unwrap();
        run(&o).unwrap();
    }

    #[test]
    fn end_to_end_on_registry_dataset() {
        let o = parse_args(&args(&[
            "--dataset",
            "CollegeMsg",
            "--scale",
            "4",
            "--delta",
            "600",
            "--threads",
            "2",
            "--json",
        ]))
        .unwrap();
        run(&o).unwrap();
    }

    #[test]
    fn parses_nodes_flags() {
        let o = parse_args(&args(&[
            "--input",
            "x.txt",
            "--delta",
            "600",
            "--nodes",
            "--rank-motif",
            "M65",
            "--top-k",
            "5",
        ]))
        .unwrap();
        assert!(o.nodes);
        assert_eq!(o.top_k, Some(5));
        assert_eq!(o.rank_motif.as_deref(), Some("M65"));
    }

    #[test]
    fn rejects_bad_nodes_combinations() {
        // --nodes requires --delta
        assert!(parse_args(&args(&["--input", "x", "--nodes", "--stats"])).is_err());
        // exclusive with the other engines and with --only/--stats
        for extra in [
            ["--window", "5"],
            ["--approx", "--nodes"],
            ["--only", "pairs"],
        ] {
            let mut a = args(&["--input", "x", "--delta", "1", "--nodes"]);
            a.extend(args(extra.as_slice()));
            assert!(parse_args(&a).is_err(), "{extra:?}");
        }
        assert!(parse_args(&args(&[
            "--input", "x", "--delta", "1", "--nodes", "--stats"
        ]))
        .is_err());
        // ranking flags require --nodes
        let e = parse_args(&args(&["--input", "x", "--delta", "1", "--top-k", "3"])).unwrap_err();
        assert!(e.contains("--nodes"), "{e}");
        assert!(parse_args(&args(&[
            "--input",
            "x",
            "--delta",
            "1",
            "--rank-motif",
            "M65"
        ]))
        .is_err());
        // zero k, invalid motif name
        assert!(parse_args(&args(&[
            "--input", "x", "--delta", "1", "--nodes", "--top-k", "0"
        ]))
        .is_err());
        let e = parse_args(&args(&[
            "--input",
            "x",
            "--delta",
            "1",
            "--nodes",
            "--rank-motif",
            "M70",
        ]))
        .unwrap_err();
        assert!(e.contains("--rank-motif"), "{e}");
    }

    #[test]
    fn nodes_mode_runs_on_registry_dataset() {
        for extra in [vec![], vec!["--top-k", "5"], vec!["--rank-motif", "M66"]] {
            let mut a = vec![
                "--dataset",
                "CollegeMsg",
                "--scale",
                "8",
                "--delta",
                "600",
                "--nodes",
                "--json",
            ];
            a.extend(extra);
            let o = parse_args(&args(&a)).unwrap();
            run(&o).unwrap();
        }
    }

    #[test]
    fn only_variants_run() {
        for only in ["pairs", "stars", "triangles"] {
            let o = parse_args(&args(&[
                "--dataset",
                "Bitcoinalpha",
                "--scale",
                "4",
                "--delta",
                "600",
                "--only",
                only,
                "--json",
            ]))
            .unwrap();
            run(&o).unwrap();
        }
    }
}
