//! `hare-count` — command-line temporal motif counter.
//!
//! The shape of the original paper's artifact (a counting executable),
//! rebuilt on this workspace's library:
//!
//! ```text
//! hare-count --input edges.txt --delta 600 [--threads N] [--json]
//! hare-count --dataset CollegeMsg --delta 600           # registry stand-in
//! hare-count --input edges.txt --delta 600 --only pairs # FAST-Pair
//! ```

use std::process::ExitCode;

use hare::{Hare, HareConfig, MotifCategory};
use temporal_graph::io::{load_graph, LoadOptions};
use temporal_graph::stats::GraphStats;

const USAGE: &str = "\
hare-count: exact δ-temporal motif counting (FAST/HARE, ICDE 2022)

USAGE:
    hare-count (--input FILE | --dataset NAME [--scale K]) --delta SECONDS [options]

OPTIONS:
    --input FILE        SNAP-style edge list: 'src dst timestamp' per line
    --dataset NAME      generate a Table II stand-in from the registry
    --scale K           stand-in scale divisor (default 1)
    --delta SECONDS     the motif time window δ (required)
    --threads N         worker threads (default: all cores; 1 = sequential FAST)
    --only CATEGORY     pairs | stars | triangles | all (default all)
    --timestamp-col N   zero-based timestamp column (default 2)
    --json              machine-readable output
    --stats             print graph statistics only
    --help              this text
";

#[derive(Debug)]
struct Opts {
    input: Option<String>,
    dataset: Option<String>,
    scale: usize,
    delta: Option<i64>,
    threads: usize,
    only: String,
    timestamp_col: usize,
    json: bool,
    stats: bool,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        input: None,
        dataset: None,
        scale: 1,
        delta: None,
        threads: 0,
        only: "all".into(),
        timestamp_col: 2,
        json: false,
        stats: false,
    };
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--input" => o.input = Some(value("--input")?),
            "--dataset" => o.dataset = Some(value("--dataset")?),
            "--scale" => {
                o.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--delta" => {
                o.delta = Some(
                    value("--delta")?
                        .parse()
                        .map_err(|e| format!("--delta: {e}"))?,
                )
            }
            "--threads" => {
                o.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--only" => o.only = value("--only")?,
            "--timestamp-col" => {
                o.timestamp_col = value("--timestamp-col")?
                    .parse()
                    .map_err(|e| format!("--timestamp-col: {e}"))?;
            }
            "--json" => o.json = true,
            "--stats" => o.stats = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if o.input.is_none() && o.dataset.is_none() {
        return Err("one of --input or --dataset is required".into());
    }
    if o.input.is_some() && o.dataset.is_some() {
        return Err("--input and --dataset are mutually exclusive".into());
    }
    if o.delta.is_none() && !o.stats {
        return Err("--delta is required (seconds)".into());
    }
    if o.scale == 0 {
        return Err("--scale must be at least 1".into());
    }
    if !matches!(o.only.as_str(), "all" | "pairs" | "stars" | "triangles") {
        return Err(format!(
            "--only must be all|pairs|stars|triangles, got {:?}",
            o.only
        ));
    }
    Ok(o)
}

fn run(o: &Opts) -> Result<(), String> {
    let graph = match (&o.input, &o.dataset) {
        (Some(path), None) => {
            let opts = LoadOptions {
                timestamp_column: o.timestamp_col,
                ..LoadOptions::default()
            };
            load_graph(path, &opts).map_err(|e| format!("loading {path}: {e}"))?
        }
        (None, Some(name)) => hare_datasets::by_name(name)
            .ok_or_else(|| {
                let names: Vec<&str> = hare_datasets::all().iter().map(|d| d.name).collect();
                format!("unknown dataset {name:?}; known: {}", names.join(", "))
            })?
            .generate(o.scale),
        _ => unreachable!("validated in parse_args"),
    };

    let stats = GraphStats::compute(&graph);
    if o.stats {
        if o.json {
            println!(
                "{}",
                serde_json::json!({
                    "nodes": stats.num_nodes,
                    "edges": stats.num_edges,
                    "time_span": stats.time_span,
                    "max_degree": stats.max_degree,
                    "mean_degree": stats.mean_degree,
                })
            );
        } else {
            println!(
                "nodes {}  edges {}  span {}  max-degree {}  mean-degree {:.2}",
                stats.num_nodes,
                stats.num_edges,
                stats.time_span,
                stats.max_degree,
                stats.mean_degree
            );
        }
        return Ok(());
    }

    let delta = o.delta.expect("validated");
    let start = std::time::Instant::now();
    let engine = Hare::new(HareConfig {
        num_threads: o.threads,
        ..HareConfig::default()
    });
    let matrix = match o.only.as_str() {
        "pairs" => {
            let pc = engine.count_pair(&graph, delta);
            let mut mx = hare::MotifMatrix::default();
            pc.add_to_matrix_pair_based(&mut mx);
            mx
        }
        "triangles" => {
            let tc = engine.count_tri(&graph, delta);
            let mut mx = hare::MotifMatrix::default();
            tc.add_to_matrix(&mut mx);
            mx
        }
        "stars" => {
            let (sc, _) = engine.count_star_pair(&graph, delta);
            let mut mx = hare::MotifMatrix::default();
            sc.add_to_matrix(&mut mx);
            mx
        }
        _ => engine.count_all(&graph, delta).matrix,
    };
    let secs = start.elapsed().as_secs_f64();

    if o.json {
        let cells: Vec<serde_json::Value> = matrix
            .iter()
            .map(|(m, n)| serde_json::json!({"motif": m.to_string(), "count": n}))
            .collect();
        println!(
            "{}",
            serde_json::json!({
                "delta": delta,
                "nodes": stats.num_nodes,
                "edges": stats.num_edges,
                "seconds": secs,
                "total": matrix.total(),
                "counts": cells,
            })
        );
    } else {
        println!(
            "graph: {} nodes, {} edges | delta = {delta}s | counted in {:.3}s",
            stats.num_nodes, stats.num_edges, secs
        );
        println!("{matrix}");
        for (label, cat) in [
            ("pair", MotifCategory::Pair),
            ("star", MotifCategory::Star),
            ("triangle", MotifCategory::Triangle),
        ] {
            println!("{label:>9} total: {}", matrix.category_total(cat));
        }
        // Grid layout (rows/cols to motif identities) is documented in
        // `hare::motif`.
        println!("    total: {}", matrix.total());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(opts) => match run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("error: {msg}\n\n{USAGE}");
                ExitCode::FAILURE
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_minimal_invocation() {
        let o = parse_args(&args(&["--input", "x.txt", "--delta", "600"])).unwrap();
        assert_eq!(o.input.as_deref(), Some("x.txt"));
        assert_eq!(o.delta, Some(600));
        assert_eq!(o.only, "all");
    }

    #[test]
    fn rejects_missing_source_and_conflicts() {
        assert!(parse_args(&args(&["--delta", "600"])).is_err());
        assert!(parse_args(&args(&["--input", "a", "--dataset", "b", "--delta", "1"])).is_err());
    }

    #[test]
    fn rejects_zero_scale() {
        let e = parse_args(&args(&[
            "--dataset",
            "CollegeMsg",
            "--delta",
            "1",
            "--scale",
            "0",
        ]))
        .unwrap_err();
        assert!(e.contains("--scale"), "{e}");
    }

    #[test]
    fn rejects_bad_only() {
        let e =
            parse_args(&args(&["--input", "x", "--delta", "1", "--only", "wedges"])).unwrap_err();
        assert!(e.contains("--only"));
    }

    #[test]
    fn stats_mode_needs_no_delta() {
        let o = parse_args(&args(&["--dataset", "CollegeMsg", "--stats"])).unwrap();
        assert!(o.stats);
        assert!(o.delta.is_none());
    }

    #[test]
    fn help_flag_yields_empty_error() {
        assert_eq!(parse_args(&args(&["--help"])).unwrap_err(), "");
    }

    #[test]
    fn end_to_end_on_registry_dataset() {
        let o = parse_args(&args(&[
            "--dataset",
            "CollegeMsg",
            "--scale",
            "4",
            "--delta",
            "600",
            "--threads",
            "2",
            "--json",
        ]))
        .unwrap();
        run(&o).unwrap();
    }

    #[test]
    fn only_variants_run() {
        for only in ["pairs", "stars", "triangles"] {
            let o = parse_args(&args(&[
                "--dataset",
                "Bitcoinalpha",
                "--scale",
                "4",
                "--delta",
                "600",
                "--only",
                only,
                "--json",
            ]))
            .unwrap();
            run(&o).unwrap();
        }
    }
}
