//! End-to-end tests of the `hare-count` binary: spawn the real
//! executable (via `CARGO_BIN_EXE_hare-count`) and check exit codes,
//! human output, and the `--json` output shape.

use std::process::{Command, Output};

fn hare_count(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hare-count"))
        .args(args)
        .output()
        .expect("failed to spawn hare-count")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("stdout is utf-8")
}

#[test]
fn help_prints_usage_and_exits_zero() {
    let out = hare_count(&["--help"]);
    assert!(out.status.success());
    let text = stdout_of(&out);
    assert!(text.contains("USAGE"), "{text}");
    assert!(text.contains("--delta"), "{text}");
}

#[test]
fn missing_arguments_fail_with_usage_on_stderr() {
    let out = hare_count(&["--delta", "600"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--input or --dataset"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn unknown_dataset_lists_known_names() {
    let out = hare_count(&["--dataset", "NoSuchNet", "--delta", "600"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown dataset"), "{err}");
    assert!(err.contains("CollegeMsg"), "{err}");
}

#[test]
fn dataset_run_prints_motif_matrix_and_totals() {
    let out = hare_count(&["--dataset", "CollegeMsg", "--scale", "8", "--delta", "600"]);
    assert!(out.status.success());
    let text = stdout_of(&out);
    // The 6×6 canonical grid plus the per-category totals.
    for row in ["row1", "row2", "row3", "row4", "row5", "row6"] {
        assert!(text.contains(row), "missing {row} in output:\n{text}");
    }
    assert!(text.contains("pair total:"), "{text}");
    assert!(text.contains("star total:"), "{text}");
    assert!(text.contains("triangle total:"), "{text}");
}

#[test]
fn json_output_has_the_documented_shape() {
    let out = hare_count(&[
        "--dataset",
        "CollegeMsg",
        "--scale",
        "8",
        "--delta",
        "600",
        "--json",
    ]);
    assert!(out.status.success());
    let v = serde_json::from_str(stdout_of(&out).trim()).expect("stdout is one JSON object");
    assert_eq!(v["delta"].as_i64(), Some(600));
    assert!(v["nodes"].as_u64().unwrap() > 0);
    assert!(v["edges"].as_u64().unwrap() > 0);
    assert!(v["seconds"].as_f64().unwrap() >= 0.0);
    let cells = v["counts"].as_array().expect("counts is an array");
    assert_eq!(cells.len(), 36, "one cell per canonical motif");
    let sum: u64 = cells.iter().map(|c| c["count"].as_u64().unwrap()).sum();
    assert_eq!(v["total"].as_u64(), Some(sum), "total equals cell sum");
    // Every cell names a motif like "M23".
    for cell in cells {
        let name = cell["motif"].as_str().unwrap();
        assert!(
            name.len() == 3 && name.starts_with('M'),
            "unexpected motif name {name:?}"
        );
    }
}

#[test]
fn only_pairs_populates_exactly_the_pair_cells() {
    let out = hare_count(&[
        "--dataset",
        "CollegeMsg",
        "--scale",
        "8",
        "--delta",
        "600",
        "--only",
        "pairs",
        "--json",
    ]);
    assert!(out.status.success());
    let v = serde_json::from_str(stdout_of(&out).trim()).unwrap();
    let cells = v["counts"].as_array().unwrap();
    assert_eq!(cells.len(), 36);
    // The four pair motifs occupy the (5,5)..(6,6) block of the grid:
    // M55, M56, M65, M66. Everything else must be zero in pair-only mode.
    let pair_names = ["M55", "M56", "M65", "M66"];
    let mut pair_total = 0u64;
    for cell in cells {
        let name = cell["motif"].as_str().unwrap();
        let count = cell["count"].as_u64().unwrap();
        if pair_names.contains(&name) {
            pair_total += count;
        } else {
            assert_eq!(count, 0, "non-pair motif {name} counted in pair-only mode");
        }
    }
    assert!(pair_total > 0, "pair-rich messaging workload counted none");
    assert_eq!(v["total"].as_u64(), Some(pair_total));
}

#[test]
fn only_pairs_agrees_with_full_count_on_pair_cells() {
    let common = [
        "--dataset",
        "CollegeMsg",
        "--scale",
        "8",
        "--delta",
        "600",
        "--json",
    ];
    let full = hare_count(&common);
    let pairs: Vec<&str> = common.iter().copied().chain(["--only", "pairs"]).collect();
    let pairs = hare_count(&pairs);
    let vf = serde_json::from_str(stdout_of(&full).trim()).unwrap();
    let vp = serde_json::from_str(stdout_of(&pairs).trim()).unwrap();
    let count_of = |v: &serde_json::Value, name: &str| -> u64 {
        v["counts"]
            .as_array()
            .unwrap()
            .iter()
            .find(|c| c["motif"].as_str() == Some(name))
            .and_then(|c| c["count"].as_u64())
            .unwrap()
    };
    for name in ["M55", "M56", "M65", "M66"] {
        assert_eq!(
            count_of(&vf, name),
            count_of(&vp, name),
            "pair cell {name} differs between full and pair-only runs"
        );
    }
}

#[test]
fn stats_mode_reports_graph_shape_without_delta() {
    let out = hare_count(&[
        "--dataset",
        "CollegeMsg",
        "--scale",
        "8",
        "--stats",
        "--json",
    ]);
    assert!(out.status.success());
    let v = serde_json::from_str(stdout_of(&out).trim()).unwrap();
    assert!(v["nodes"].as_u64().unwrap() > 0);
    assert!(v["edges"].as_u64().unwrap() > 0);
    assert!(v["max_degree"].as_u64().unwrap() > 0);
}

/// A per-test unique temp dir (concurrent test runs must not race).
fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hare_cli_e2e_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn golden_fig1_json_is_byte_identical() {
    // `--json --no-timing` output is deterministic; the checked-in golden
    // file pins it byte-for-byte (field order, number formatting, all 36
    // cells — including the paper's "exactly one M65 at delta=10").
    let data = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/fig1.txt");
    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/fig1_delta10.json"
    );
    let out = hare_count(&["--input", data, "--delta", "10", "--json", "--no-timing"]);
    assert!(out.status.success());
    let expected = std::fs::read(golden).expect("golden file present");
    assert_eq!(
        out.stdout,
        expected,
        "fig1 golden mismatch:\n got: {}\nwant: {}",
        stdout_of(&out),
        String::from_utf8_lossy(&expected)
    );
}

#[test]
fn golden_collegemsg_json_is_byte_identical() {
    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/collegemsg_scale8_delta600.json"
    );
    let out = hare_count(&[
        "--dataset",
        "CollegeMsg",
        "--scale",
        "8",
        "--delta",
        "600",
        "--json",
        "--no-timing",
    ]);
    assert!(out.status.success());
    let expected = std::fs::read(golden).expect("golden file present");
    assert_eq!(
        out.stdout,
        expected,
        "CollegeMsg golden mismatch:\n got: {}\nwant: {}",
        stdout_of(&out),
        String::from_utf8_lossy(&expected)
    );
}

#[test]
fn lanes_and_chunk_budget_bodies_are_byte_identical() {
    // The lane layout and the out-of-core chunk budget are execution
    // strategies, not semantics: every combination must render the exact
    // same `--json --no-timing` bytes — pinned against the checked-in
    // golden files so a drift in either path is caught, not just a
    // mutual drift.
    let fig1 = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/fig1.txt");
    let cases: [(&[&str], &str); 2] = [
        (
            &["--input", fig1, "--delta", "10"],
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/tests/golden/fig1_delta10.json"
            ),
        ),
        (
            &["--dataset", "CollegeMsg", "--scale", "8", "--delta", "600"],
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/tests/golden/collegemsg_scale8_delta600.json"
            ),
        ),
    ];
    for (base, golden) in cases {
        let expected = std::fs::read(golden).expect("golden file present");
        // Budgets from "everything fits in one chunk" down to "a few
        // hundred edges per chunk" (forcing many delta-haloed chunks).
        for variant in [
            ["--lanes", "raw"].as_slice(),
            &["--lanes", "compressed"],
            &["--lanes", "raw", "--chunk-budget", "1000000000"],
            &["--lanes", "raw", "--chunk-budget", "16384"],
            &["--lanes", "compressed", "--chunk-budget", "16384"],
        ] {
            let full: Vec<&str> = base
                .iter()
                .copied()
                .chain(["--json", "--no-timing"])
                .chain(variant.iter().copied())
                .collect();
            let out = hare_count(&full);
            assert!(
                out.status.success(),
                "{variant:?}: {}",
                String::from_utf8(out.stderr.clone()).unwrap()
            );
            assert_eq!(
                out.stdout,
                expected,
                "{golden}: body drifted under {variant:?}:\n got: {}",
                stdout_of(&out)
            );
        }
    }
}

#[test]
fn golden_fig1_nodes_jsonl_is_byte_identical() {
    // Per-node mode: one JSON line per participating node, in ascending
    // node-id order. Node ids here are *interned* by first appearance in
    // the file (fig1.txt starts "4 3 1", so paper node e=4 becomes 0),
    // and the golden pins the paper's single M65 pair on interned nodes
    // 0 and 1.
    let data = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/fig1.txt");
    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/fig1_delta10_nodes.jsonl"
    );
    let out = hare_count(&[
        "--input",
        data,
        "--delta",
        "10",
        "--nodes",
        "--json",
        "--no-timing",
    ]);
    assert!(out.status.success());
    let expected = std::fs::read(golden).expect("golden file present");
    assert_eq!(
        out.stdout,
        expected,
        "fig1 per-node golden mismatch:\n got: {}\nwant: {}",
        stdout_of(&out),
        String::from_utf8_lossy(&expected)
    );
}

#[test]
fn golden_collegemsg_nodes_jsonl_is_byte_identical() {
    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/collegemsg_scale8_delta600_nodes.jsonl"
    );
    let out = hare_count(&[
        "--dataset",
        "CollegeMsg",
        "--scale",
        "8",
        "--delta",
        "600",
        "--nodes",
        "--json",
        "--no-timing",
    ]);
    assert!(out.status.success());
    let expected = std::fs::read(golden).expect("golden file present");
    assert_eq!(
        out.stdout,
        expected,
        "CollegeMsg per-node golden mismatch (first differing line: {:?})",
        stdout_of(&out)
            .lines()
            .zip(String::from_utf8_lossy(&expected).lines())
            .find(|(a, b)| a != b)
    );
}

#[test]
fn nodes_rankings_are_consistent_with_profiles() {
    // `--rank-motif` top-k must agree with what the per-node records say:
    // the reported counts are exactly the highest counts for that motif,
    // ties broken by ascending node id.
    let common = [
        "--dataset",
        "CollegeMsg",
        "--scale",
        "8",
        "--delta",
        "600",
        "--nodes",
        "--json",
        "--no-timing",
    ];
    let profiles = hare_count(&common);
    assert!(profiles.status.success());
    let m66_of = |line: &str| -> (u64, u64) {
        let v: serde_json::Value = serde_json::from_str(line).unwrap();
        let count = v["counts"]
            .as_array()
            .unwrap()
            .iter()
            .find(|c| c["motif"].as_str() == Some("M66"))
            .and_then(|c| c["count"].as_u64())
            .unwrap_or(0);
        (v["node"].as_u64().unwrap(), count)
    };
    let mut by_m66: Vec<(u64, u64)> = stdout_of(&profiles)
        .lines()
        .map(m66_of)
        .filter(|&(_, c)| c > 0)
        .collect();
    by_m66.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    by_m66.truncate(3);

    let ranked: Vec<&str> = common
        .iter()
        .copied()
        .chain(["--rank-motif", "M66", "--top-k", "3"])
        .collect();
    let ranked = hare_count(&ranked);
    assert!(ranked.status.success());
    let v: serde_json::Value = serde_json::from_str(stdout_of(&ranked).trim()).unwrap();
    assert_eq!(v["rank"].as_str(), Some("motif"));
    assert_eq!(v["motif"].as_str(), Some("M66"));
    let got: Vec<(u64, u64)> = v["nodes"]
        .as_array()
        .unwrap()
        .iter()
        .map(|n| (n["node"].as_u64().unwrap(), n["count"].as_u64().unwrap()))
        .collect();
    assert_eq!(got, by_m66, "top-k disagrees with per-node records");
}

#[test]
fn nodes_mode_rejects_incompatible_flags() {
    for args in [
        ["--nodes", "--approx"].as_slice(),
        &["--nodes", "--window", "1200"],
        &["--nodes", "--stats"],
        &["--nodes", "--only", "pairs"],
        &["--top-k", "5"],
        &["--rank-motif", "M66"],
        &["--nodes", "--rank-motif", "M99"],
        &["--nodes", "--top-k", "0"],
    ] {
        let full: Vec<&str> = ["--dataset", "CollegeMsg", "--delta", "600"]
            .iter()
            .copied()
            .chain(args.iter().copied())
            .collect();
        let out = hare_count(&full);
        assert!(!out.status.success(), "expected failure for {args:?}");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(
            err.contains("--nodes") || err.contains("--top-k") || err.contains("motif"),
            "{args:?}: {err}"
        );
    }
}

#[test]
fn malformed_input_reports_line_number_and_fails() {
    let dir = temp_dir("malformed");
    let path = dir.join("bad.txt");
    std::fs::write(&path, "0 1 10\n1 2 twelve\n2 0 14\n").unwrap();
    let out = hare_count(&["--input", path.to_str().unwrap(), "--delta", "600"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("line 2"), "{err}");
    assert!(err.contains("twelve"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_line_is_a_parse_error() {
    let dir = temp_dir("truncated");
    let path = dir.join("short.txt");
    std::fs::write(&path, "0 1\n").unwrap();
    let out = hare_count(&["--input", path.to_str().unwrap(), "--delta", "600"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("line 1"), "{err}");
    assert!(err.contains("fields"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn empty_input_file_counts_nothing() {
    let dir = temp_dir("empty");
    let path = dir.join("empty.txt");
    std::fs::write(&path, "").unwrap();
    let out = hare_count(&[
        "--input",
        path.to_str().unwrap(),
        "--delta",
        "600",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8(out.stderr.clone()).unwrap()
    );
    let v = serde_json::from_str(stdout_of(&out).trim()).unwrap();
    assert_eq!(v["nodes"].as_u64(), Some(0));
    assert_eq!(v["edges"].as_u64(), Some(0));
    assert_eq!(v["total"].as_u64(), Some(0));
    std::fs::remove_file(&path).ok();
}

#[test]
fn non_monotone_input_is_sorted_for_batch_counting() {
    // The same edges in shuffled vs chronological file order must count
    // identically in batch mode (the builder's stable sort normalises).
    let dir = temp_dir("nonmono");
    let shuffled = dir.join("shuffled.txt");
    let sorted = dir.join("sorted.txt");
    std::fs::write(&shuffled, "2 0 14\n0 1 10\n1 2 12\n").unwrap();
    std::fs::write(&sorted, "0 1 10\n1 2 12\n2 0 14\n").unwrap();
    let run = |p: &std::path::Path| {
        let out = hare_count(&[
            "--input",
            p.to_str().unwrap(),
            "--delta",
            "600",
            "--json",
            "--no-timing",
        ]);
        assert!(out.status.success());
        stdout_of(&out)
    };
    assert_eq!(run(&shuffled), run(&sorted));
    std::fs::remove_file(&shuffled).ok();
    std::fs::remove_file(&sorted).ok();
}

#[test]
fn windowed_mode_emits_one_json_object_per_tick() {
    // Two triangle bursts 500s apart with a 100s window: the first burst
    // must be present at the first tick and expired by the later ones.
    let dir = temp_dir("windowed");
    let path = dir.join("stream.txt");
    std::fs::write(&path, "0 1 10\n1 2 12\n2 0 14\n0 1 500\n1 2 505\n2 0 509\n").unwrap();
    let out = hare_count(&[
        "--input",
        path.to_str().unwrap(),
        "--delta",
        "20",
        "--window",
        "100",
        "--tick",
        "100",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8(out.stderr.clone()).unwrap()
    );
    let text = stdout_of(&out);
    let ticks: Vec<serde_json::Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("each tick is one JSON object"))
        .collect();
    assert!(ticks.len() >= 2, "expected multiple ticks:\n{text}");
    for v in &ticks {
        assert_eq!(v["delta"].as_i64(), Some(20));
        assert_eq!(v["window"].as_i64(), Some(100));
        assert_eq!(v["counts"].as_array().unwrap().len(), 36);
        assert_eq!(v["late_dropped"].as_u64(), Some(0));
    }
    let m26_of = |v: &serde_json::Value| -> u64 {
        v["counts"]
            .as_array()
            .unwrap()
            .iter()
            .find(|c| c["motif"].as_str() == Some("M26"))
            .and_then(|c| c["count"].as_u64())
            .unwrap()
    };
    // First tick sees the first cycle; the final tick sees only the
    // second one (the first expired with its edges).
    assert_eq!(m26_of(&ticks[0]), 1, "{text}");
    assert_eq!(ticks[0]["live_edges"].as_u64(), Some(3));
    let last = ticks.last().unwrap();
    assert_eq!(m26_of(last), 1);
    assert_eq!(last["total"].as_u64(), Some(1));
    std::fs::remove_file(&path).ok();
}

#[test]
fn windowed_mode_slack_reorders_and_drops_late_edges() {
    // t=95 arrives after t=100 (inside slack 10: reordered and kept);
    // t=10 arrives at the end (far beyond slack: dropped, not fatal).
    let dir = temp_dir("slack");
    let path = dir.join("ooo.txt");
    std::fs::write(&path, "0 1 100\n1 2 95\n2 0 103\n3 4 10\n").unwrap();
    let out = hare_count(&[
        "--input",
        path.to_str().unwrap(),
        "--delta",
        "20",
        "--window",
        "50",
        "--slack",
        "10",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8(out.stderr.clone()).unwrap()
    );
    let text = stdout_of(&out);
    let last: serde_json::Value = serde_json::from_str(text.lines().last().unwrap()).unwrap();
    assert_eq!(last["late_dropped"].as_u64(), Some(1), "{text}");
    assert_eq!(last["live_edges"].as_u64(), Some(3), "{text}");
    // The reordered triple (1->2 @95, 0->1 @100, 2->0 @103) is a
    // triangle instance — in this chronological order, class M25. Had
    // the late edge been dropped instead of reordered, no 3-edge motif
    // would exist at all, so total == 1 pins the reordering.
    let m25 = last["counts"]
        .as_array()
        .unwrap()
        .iter()
        .find(|c| c["motif"].as_str() == Some("M25"))
        .and_then(|c| c["count"].as_u64())
        .unwrap();
    assert_eq!(m25, 1, "{text}");
    assert_eq!(last["total"].as_u64(), Some(1), "{text}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn windowed_mode_self_loop_timestamp_does_not_advance_ticks() {
    // Regression: a dropped self-loop at a far-future timestamp must not
    // emit spurious ticks or raise the acceptance floor — the in-slack
    // edges after it stay accepted and form the triangle.
    let dir = temp_dir("loop_ts");
    let path = dir.join("loopy.txt");
    std::fs::write(&path, "0 1 100\n5 5 200\n1 2 95\n2 0 103\n").unwrap();
    let out = hare_count(&[
        "--input",
        path.to_str().unwrap(),
        "--delta",
        "20",
        "--window",
        "50",
        "--slack",
        "10",
        "--tick",
        "5",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8(out.stderr.clone()).unwrap()
    );
    let text = stdout_of(&out);
    let ticks: Vec<serde_json::Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    let last = ticks.last().unwrap();
    assert_eq!(last["self_loops_dropped"].as_u64(), Some(1), "{text}");
    assert_eq!(last["late_dropped"].as_u64(), Some(0), "{text}");
    assert_eq!(last["tick"].as_i64(), Some(103), "{text}");
    assert_eq!(last["live_edges"].as_u64(), Some(3), "{text}");
    assert_eq!(last["total"].as_u64(), Some(1), "{text}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn windowed_mode_trailing_ticks_respect_their_boundary() {
    // Regression: trailing boundaries must be drained before the final
    // flush — each tick reports the window as of its own boundary, not
    // end-of-stream counts. At tick 80 the in-slack edges at t=95/t=100
    // are still in the future, so the window holds only the edge at t=50.
    let dir = temp_dir("trailing");
    let path = dir.join("tail.txt");
    std::fs::write(&path, "0 1 0\n4 5 50\n1 2 100\n2 3 95\n").unwrap();
    let out = hare_count(&[
        "--input",
        path.to_str().unwrap(),
        "--delta",
        "20",
        "--window",
        "50",
        "--slack",
        "20",
        "--tick",
        "80",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8(out.stderr.clone()).unwrap()
    );
    let text = stdout_of(&out);
    let ticks: Vec<serde_json::Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    let at_80 = ticks
        .iter()
        .find(|v| v["tick"].as_i64() == Some(80))
        .unwrap_or_else(|| panic!("no tick at 80:\n{text}"));
    assert_eq!(at_80["live_edges"].as_u64(), Some(1), "{text}");
    let last = ticks.last().unwrap();
    assert_eq!(last["tick"].as_i64(), Some(100), "{text}");
    assert_eq!(last["live_edges"].as_u64(), Some(3), "{text}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn windowed_mode_requires_window_at_least_delta() {
    let out = hare_count(&[
        "--dataset",
        "CollegeMsg",
        "--delta",
        "600",
        "--window",
        "10",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--window"), "{err}");
}

#[test]
fn input_file_path_end_to_end() {
    // A triangle within δ plus one far-away edge, through a temp file.
    // Per-process unique path so concurrent test runs don't race.
    let dir = std::env::temp_dir().join(format!("hare_cli_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("edges.txt");
    std::fs::write(&path, "0 1 10\n1 2 12\n2 0 14\n3 4 99999\n").unwrap();
    let out = hare_count(&[
        "--input",
        path.to_str().unwrap(),
        "--delta",
        "600",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8(out.stderr.clone()).unwrap()
    );
    let v = serde_json::from_str(stdout_of(&out).trim()).unwrap();
    assert_eq!(v["nodes"].as_u64(), Some(5));
    assert_eq!(v["edges"].as_u64(), Some(4));
    assert!(
        v["total"].as_u64().unwrap() > 0,
        "triangle instance expected"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn approx_json_output_has_the_documented_shape() {
    let out = hare_count(&[
        "--dataset",
        "CollegeMsg",
        "--scale",
        "8",
        "--delta",
        "600",
        "--approx",
        "--prob",
        "0.5",
        "--ci",
        "0.95",
        "--seed",
        "7",
        "--json",
    ]);
    assert!(out.status.success());
    let v = serde_json::from_str(stdout_of(&out).trim()).expect("stdout is one JSON object");
    assert_eq!(v["delta"].as_i64(), Some(600));
    assert!(v["nodes"].as_u64().unwrap() > 0);
    assert!(v["seconds"].as_f64().unwrap() >= 0.0);
    let approx = &v["approx"];
    assert_eq!(approx["prob"].as_f64(), Some(0.5));
    assert_eq!(approx["confidence"].as_f64(), Some(0.95));
    assert_eq!(approx["seed"].as_u64(), Some(7));
    assert_eq!(approx["window_factor"].as_i64(), Some(10));
    assert_eq!(approx["window_len"].as_i64(), Some(6000));
    let total_w = approx["windows_total"].as_u64().unwrap();
    let sampled_w = approx["windows_sampled"].as_u64().unwrap();
    assert!(total_w > 0 && sampled_w <= total_w);

    let cells = v["counts"].as_array().expect("counts is an array");
    assert_eq!(cells.len(), 36, "one cell per canonical motif");
    let mut sum = 0.0;
    for cell in cells {
        let name = cell["motif"].as_str().unwrap();
        assert!(name.len() == 3 && name.starts_with('M'), "{name:?}");
        let est = cell["estimate"].as_f64().unwrap();
        let stderr = cell["stderr"].as_f64().unwrap();
        let (lo, hi) = (
            cell["ci_lo"].as_f64().unwrap(),
            cell["ci_hi"].as_f64().unwrap(),
        );
        assert!(est >= 0.0 && stderr >= 0.0, "{name}");
        assert!(lo <= est && est <= hi, "{name}: CI must bracket estimate");
        sum += est;
    }
    let total = v["total_estimate"].as_f64().unwrap();
    assert!(
        (total - sum).abs() < 1e-6 * total.max(1.0),
        "total_estimate {total} != cell sum {sum}"
    );
}

#[test]
fn approx_prob_one_reproduces_exact_counts_bit_identically() {
    let common = [
        "--dataset",
        "CollegeMsg",
        "--scale",
        "8",
        "--delta",
        "600",
        "--no-timing",
        "--json",
    ];
    let exact = hare_count(&common);
    let approx: Vec<&str> = common
        .iter()
        .copied()
        .chain(["--approx", "--prob", "1.0"])
        .collect();
    let approx = hare_count(&approx);
    assert!(exact.status.success() && approx.status.success());
    let ve = serde_json::from_str(stdout_of(&exact).trim()).unwrap();
    let va = serde_json::from_str(stdout_of(&approx).trim()).unwrap();
    let exact_of = |v: &serde_json::Value, name: &str| -> u64 {
        v["counts"]
            .as_array()
            .unwrap()
            .iter()
            .find(|c| c["motif"].as_str() == Some(name))
            .and_then(|c| c["count"].as_u64())
            .unwrap()
    };
    for cell in va["counts"].as_array().unwrap() {
        let name = cell["motif"].as_str().unwrap();
        let est = cell["estimate"].as_f64().unwrap();
        let exact_count = exact_of(&ve, name) as f64;
        assert_eq!(est, exact_count, "{name}: p=1.0 must be exact, bit for bit");
        assert_eq!(cell["stderr"].as_f64(), Some(0.0), "{name}");
        assert_eq!(cell["ci_lo"].as_f64(), Some(est), "{name}");
        assert_eq!(cell["ci_hi"].as_f64(), Some(est), "{name}");
    }
}

#[test]
fn golden_memory_budget_fig1_jsonl_is_byte_identical() {
    // Bounded-memory streaming over the Fig. 1 toy with a roomy budget:
    // everything is retained (prob stays 1.0), so the single tick is the
    // exact counts in estimator clothing. Deterministic, so the output
    // is pinned byte for byte.
    let data = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/fig1.txt");
    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/fig1_delta10_budget.jsonl"
    );
    let out = hare_count(&[
        "--input",
        data,
        "--delta",
        "10",
        "--window",
        "40",
        "--memory-budget",
        "1048576",
        "--json",
    ]);
    assert!(out.status.success());
    let expected = std::fs::read(golden).expect("golden file present");
    assert_eq!(
        out.stdout,
        expected,
        "fig1 --memory-budget golden mismatch:\n got: {}\nwant: {}",
        stdout_of(&out),
        String::from_utf8_lossy(&expected)
    );
}

#[test]
fn golden_memory_budget_collegemsg_jsonl_is_byte_identical() {
    // A window spanning the whole CollegeMsg:8 stream against a 1 KiB
    // budget (64 retained edges): the estimator must halve its sampling
    // probability to stay under budget. The golden pins the whole
    // adaptive trajectory — probs, retained bytes, and every estimate —
    // byte for byte, seeded so reruns are identical.
    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/collegemsg_scale8_budget.jsonl"
    );
    let out = hare_count(&[
        "--dataset",
        "CollegeMsg",
        "--scale",
        "8",
        "--delta",
        "600",
        "--window",
        "16000000",
        "--tick",
        "4000000",
        "--memory-budget",
        "1024",
        "--seed",
        "42",
        "--json",
    ]);
    assert!(out.status.success());
    let expected = std::fs::read(golden).expect("golden file present");
    assert_eq!(
        out.stdout, expected,
        "CollegeMsg --memory-budget golden mismatch (run the command in \
         this test and diff against the golden to inspect)"
    );
    // Beyond byte identity, re-check the budget contract on the golden
    // itself: every tick's retained bytes fit, and halving engaged.
    let text = stdout_of(&out);
    let mut min_prob = 1.0f64;
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).unwrap();
        let retained = v["budget"]["retained_bytes"].as_u64().unwrap();
        assert!(retained <= 1024, "tick exceeds budget: {line}");
        min_prob = min_prob.min(v["budget"]["prob"].as_f64().unwrap());
    }
    assert!(
        min_prob < 1.0,
        "tight budget never engaged sampling:\n{text}"
    );
}

#[test]
fn profile_mode_stdout_is_byte_identical_and_table_on_stderr() {
    // `--profile` is pure observability: the per-phase table goes to
    // stderr and stdout must not move by a byte — across the in-RAM
    // exact kernel, the out-of-core path, and the sampling estimator,
    // on both the Fig. 1 toy and CollegeMsg:8.
    let fig1 = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/fig1.txt");
    let cases: &[(&[&str], &str)] = &[
        (&["--input", fig1, "--delta", "10"], "scan"),
        (
            &["--dataset", "CollegeMsg", "--scale", "8", "--delta", "600"],
            "scan",
        ),
        (
            &[
                "--dataset",
                "CollegeMsg",
                "--scale",
                "8",
                "--delta",
                "600",
                "--chunk-budget",
                "16384",
            ],
            "chunk_load",
        ),
        (
            &[
                "--dataset",
                "CollegeMsg",
                "--scale",
                "8",
                "--delta",
                "600",
                "--approx",
                "--prob",
                "0.5",
                "--seed",
                "7",
            ],
            "scan",
        ),
    ];
    for (base, phase) in cases {
        let plain: Vec<&str> = base
            .iter()
            .copied()
            .chain(["--json", "--no-timing"])
            .collect();
        let profiled: Vec<&str> = plain.iter().copied().chain(["--profile"]).collect();
        let plain = hare_count(&plain);
        let profiled = hare_count(&profiled);
        assert!(
            plain.status.success() && profiled.status.success(),
            "{base:?}: {}",
            String::from_utf8_lossy(&profiled.stderr)
        );
        assert_eq!(
            plain.stdout,
            profiled.stdout,
            "{base:?}: --profile moved stdout:\n got: {}\nwant: {}",
            stdout_of(&profiled),
            stdout_of(&plain)
        );
        let err = String::from_utf8(profiled.stderr).unwrap();
        assert!(err.contains("phase"), "{base:?}: no table header:\n{err}");
        assert!(err.contains(phase), "{base:?}: no {phase} row:\n{err}");
    }
}

#[test]
fn memory_budget_flag_combinations_are_rejected() {
    let data = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/fig1.txt");
    let cases: &[(&[&str], &str)] = &[
        // Streaming-only: the budget needs a window.
        (
            &["--input", data, "--delta", "10", "--memory-budget", "4096"],
            "--window",
        ),
        // Zero budget can hold nothing.
        (
            &[
                "--input",
                data,
                "--delta",
                "10",
                "--window",
                "40",
                "--memory-budget",
                "0",
            ],
            "--memory-budget",
        ),
        // --prob belongs to --approx; budget mode adapts p itself.
        (
            &[
                "--input",
                data,
                "--delta",
                "10",
                "--window",
                "40",
                "--memory-budget",
                "4096",
                "--prob",
                "0.5",
            ],
            "--approx",
        ),
        // --approx is batch, --memory-budget is streaming: exclusive.
        (
            &[
                "--input",
                data,
                "--delta",
                "10",
                "--approx",
                "--memory-budget",
                "4096",
            ],
            "--window",
        ),
    ];
    for (args, fragment) in cases {
        let out = hare_count(args);
        assert!(!out.status.success(), "{args:?} should be rejected");
        let err = String::from_utf8(out.stderr.clone()).unwrap();
        assert!(err.contains(fragment), "{args:?}: {err}");
    }
}
