//! End-to-end tests of the `hare-count` binary: spawn the real
//! executable (via `CARGO_BIN_EXE_hare-count`) and check exit codes,
//! human output, and the `--json` output shape.

use std::process::{Command, Output};

fn hare_count(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hare-count"))
        .args(args)
        .output()
        .expect("failed to spawn hare-count")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("stdout is utf-8")
}

#[test]
fn help_prints_usage_and_exits_zero() {
    let out = hare_count(&["--help"]);
    assert!(out.status.success());
    let text = stdout_of(&out);
    assert!(text.contains("USAGE"), "{text}");
    assert!(text.contains("--delta"), "{text}");
}

#[test]
fn missing_arguments_fail_with_usage_on_stderr() {
    let out = hare_count(&["--delta", "600"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--input or --dataset"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn unknown_dataset_lists_known_names() {
    let out = hare_count(&["--dataset", "NoSuchNet", "--delta", "600"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown dataset"), "{err}");
    assert!(err.contains("CollegeMsg"), "{err}");
}

#[test]
fn dataset_run_prints_motif_matrix_and_totals() {
    let out = hare_count(&["--dataset", "CollegeMsg", "--scale", "8", "--delta", "600"]);
    assert!(out.status.success());
    let text = stdout_of(&out);
    // The 6×6 canonical grid plus the per-category totals.
    for row in ["row1", "row2", "row3", "row4", "row5", "row6"] {
        assert!(text.contains(row), "missing {row} in output:\n{text}");
    }
    assert!(text.contains("pair total:"), "{text}");
    assert!(text.contains("star total:"), "{text}");
    assert!(text.contains("triangle total:"), "{text}");
}

#[test]
fn json_output_has_the_documented_shape() {
    let out = hare_count(&[
        "--dataset",
        "CollegeMsg",
        "--scale",
        "8",
        "--delta",
        "600",
        "--json",
    ]);
    assert!(out.status.success());
    let v = serde_json::from_str(stdout_of(&out).trim()).expect("stdout is one JSON object");
    assert_eq!(v["delta"].as_i64(), Some(600));
    assert!(v["nodes"].as_u64().unwrap() > 0);
    assert!(v["edges"].as_u64().unwrap() > 0);
    assert!(v["seconds"].as_f64().unwrap() >= 0.0);
    let cells = v["counts"].as_array().expect("counts is an array");
    assert_eq!(cells.len(), 36, "one cell per canonical motif");
    let sum: u64 = cells.iter().map(|c| c["count"].as_u64().unwrap()).sum();
    assert_eq!(v["total"].as_u64(), Some(sum), "total equals cell sum");
    // Every cell names a motif like "M23".
    for cell in cells {
        let name = cell["motif"].as_str().unwrap();
        assert!(
            name.len() == 3 && name.starts_with('M'),
            "unexpected motif name {name:?}"
        );
    }
}

#[test]
fn only_pairs_populates_exactly_the_pair_cells() {
    let out = hare_count(&[
        "--dataset",
        "CollegeMsg",
        "--scale",
        "8",
        "--delta",
        "600",
        "--only",
        "pairs",
        "--json",
    ]);
    assert!(out.status.success());
    let v = serde_json::from_str(stdout_of(&out).trim()).unwrap();
    let cells = v["counts"].as_array().unwrap();
    assert_eq!(cells.len(), 36);
    // The four pair motifs occupy the (5,5)..(6,6) block of the grid:
    // M55, M56, M65, M66. Everything else must be zero in pair-only mode.
    let pair_names = ["M55", "M56", "M65", "M66"];
    let mut pair_total = 0u64;
    for cell in cells {
        let name = cell["motif"].as_str().unwrap();
        let count = cell["count"].as_u64().unwrap();
        if pair_names.contains(&name) {
            pair_total += count;
        } else {
            assert_eq!(count, 0, "non-pair motif {name} counted in pair-only mode");
        }
    }
    assert!(pair_total > 0, "pair-rich messaging workload counted none");
    assert_eq!(v["total"].as_u64(), Some(pair_total));
}

#[test]
fn only_pairs_agrees_with_full_count_on_pair_cells() {
    let common = [
        "--dataset",
        "CollegeMsg",
        "--scale",
        "8",
        "--delta",
        "600",
        "--json",
    ];
    let full = hare_count(&common);
    let pairs: Vec<&str> = common.iter().copied().chain(["--only", "pairs"]).collect();
    let pairs = hare_count(&pairs);
    let vf = serde_json::from_str(stdout_of(&full).trim()).unwrap();
    let vp = serde_json::from_str(stdout_of(&pairs).trim()).unwrap();
    let count_of = |v: &serde_json::Value, name: &str| -> u64 {
        v["counts"]
            .as_array()
            .unwrap()
            .iter()
            .find(|c| c["motif"].as_str() == Some(name))
            .and_then(|c| c["count"].as_u64())
            .unwrap()
    };
    for name in ["M55", "M56", "M65", "M66"] {
        assert_eq!(
            count_of(&vf, name),
            count_of(&vp, name),
            "pair cell {name} differs between full and pair-only runs"
        );
    }
}

#[test]
fn stats_mode_reports_graph_shape_without_delta() {
    let out = hare_count(&[
        "--dataset",
        "CollegeMsg",
        "--scale",
        "8",
        "--stats",
        "--json",
    ]);
    assert!(out.status.success());
    let v = serde_json::from_str(stdout_of(&out).trim()).unwrap();
    assert!(v["nodes"].as_u64().unwrap() > 0);
    assert!(v["edges"].as_u64().unwrap() > 0);
    assert!(v["max_degree"].as_u64().unwrap() > 0);
}

#[test]
fn input_file_path_end_to_end() {
    // A triangle within δ plus one far-away edge, through a temp file.
    // Per-process unique path so concurrent test runs don't race.
    let dir = std::env::temp_dir().join(format!("hare_cli_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("edges.txt");
    std::fs::write(&path, "0 1 10\n1 2 12\n2 0 14\n3 4 99999\n").unwrap();
    let out = hare_count(&[
        "--input",
        path.to_str().unwrap(),
        "--delta",
        "600",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8(out.stderr.clone()).unwrap()
    );
    let v = serde_json::from_str(stdout_of(&out).trim()).unwrap();
    assert_eq!(v["nodes"].as_u64(), Some(5));
    assert_eq!(v["edges"].as_u64(), Some(4));
    assert!(
        v["total"].as_u64().unwrap() > 0,
        "triangle instance expected"
    );
    std::fs::remove_file(&path).ok();
}
