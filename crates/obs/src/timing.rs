//! hare-lint: timing
//!
//! The wall-clock-backed [`Probe`] implementation. This is the ONE
//! module in the probe seam allowed to read a clock (hence the
//! `hare-lint: timing` opt-out above): the kernels themselves are
//! generic over [`Probe`] and default to [`crate::NoopProbe`], so the
//! determinism invariant — counts bit-identical regardless of probe —
//! is structural, not behavioural. Timing can only ever *observe*.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::probe::{Phase, Probe};
use crate::trace::TraceEvent;

/// Accumulated wall-clock time per [`Phase`], safe to share across the
/// worker threads of one run (atomic adds, no locks).
#[derive(Debug, Default)]
pub struct WallClockProbe {
    totals_ns: [AtomicU64; Phase::ALL.len()],
    spans: [AtomicU64; Phase::ALL.len()],
}

/// One phase's aggregate, as reported by [`WallClockProbe::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTotal {
    /// The phase.
    pub phase: Phase,
    /// Total attributed wall-clock time, nanoseconds.
    pub total_ns: u64,
    /// Number of spans folded into `total_ns`.
    pub spans: u64,
}

impl WallClockProbe {
    /// A probe with all phases at zero.
    #[must_use]
    pub fn new() -> WallClockProbe {
        WallClockProbe::default()
    }

    /// Per-phase totals in [`Phase::ALL`] order, phases with no spans
    /// omitted.
    #[must_use]
    pub fn snapshot(&self) -> Vec<PhaseTotal> {
        Phase::ALL
            .iter()
            .map(|&phase| PhaseTotal {
                phase,
                total_ns: self.totals_ns[phase.index()].load(Ordering::Relaxed),
                spans: self.spans[phase.index()].load(Ordering::Relaxed),
            })
            .filter(|t| t.spans > 0)
            .collect()
    }

    /// The snapshot as [`TraceEvent`]s (durations in µs) for `trace_id`.
    #[must_use]
    pub fn trace_events(&self, trace_id: u64) -> Vec<TraceEvent> {
        self.snapshot()
            .iter()
            .map(|t| TraceEvent {
                trace_id,
                phase: t.phase.name(),
                duration_us: t.total_ns / 1_000,
                spans: t.spans,
            })
            .collect()
    }

    /// A human-readable per-phase table (for `hare-count --profile`;
    /// written to stderr so stdout stays byte-identical to unprofiled
    /// runs).
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>10} {:>12} {:>8}\n",
            "phase", "total_us", "spans"
        ));
        for t in self.snapshot() {
            out.push_str(&format!(
                "{:>10} {:>12} {:>8}\n",
                t.phase.name(),
                t.total_ns / 1_000,
                t.spans
            ));
        }
        out
    }
}

impl Probe for WallClockProbe {
    fn span<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.totals_ns[phase.index()].fetch_add(ns, Ordering::Relaxed);
        self.spans[phase.index()].fetch_add(1, Ordering::Relaxed);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_is_transparent_and_attributed() {
        let probe = WallClockProbe::new();
        let out = probe.span(Phase::Scan, || 7_u32);
        assert_eq!(out, 7);
        probe.span(Phase::Scan, || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        let snap = probe.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].phase, Phase::Scan);
        assert_eq!(snap[0].spans, 2);
        assert!(snap[0].total_ns >= 2_000_000, "{}ns", snap[0].total_ns);
    }

    #[test]
    fn empty_phases_are_omitted_everywhere() {
        let probe = WallClockProbe::new();
        probe.span(Phase::Fold, || ());
        assert_eq!(probe.snapshot().len(), 1);
        let events = probe.trace_events(9);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].trace_id, 9);
        assert_eq!(events[0].phase, "fold");
        let table = probe.render_table();
        assert!(table.contains("fold"), "{table}");
        assert!(!table.contains("scan"), "{table}");
    }
}
