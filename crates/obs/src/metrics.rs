//! Lock-free metric primitives and a hand-rolled Prometheus
//! text-exposition renderer.
//!
//! All values are unsigned 64-bit integers: counters count events,
//! gauges hold byte/entry quantities, histograms observe integer
//! microseconds into power-of-two (log₂) buckets. Staying integral
//! keeps the rendered exposition deterministic (no float formatting)
//! and the hot-path arithmetic branch-free.
//!
//! A [`Registry`] owns families in *registration order*, so repeated
//! scrapes render series in a stable order — pre-register every family
//! at startup and the exposition layout never changes at runtime.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Number of finite histogram buckets: upper bounds `2^0 .. 2^31`.
/// Observations above `2^31` (µs ≈ 36 minutes) land only in `+Inf`.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    #[must_use]
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (bytes resident, sessions
/// open, ...). The daemon sets gauges from authoritative snapshots at
/// scrape time rather than mirroring every mutation.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at zero.
    #[must_use]
    pub fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log₂-bucket histogram over `u64` observations (by convention:
/// microseconds). Bucket `b` spans `(2^(b-1), 2^b]`; observations of 0
/// and 1 share the first bucket (`le="1"`).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    overflow: AtomicU64,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Index of the smallest bucket whose upper bound `2^b` holds `v`,
    /// or `HISTOGRAM_BUCKETS` for overflow into `+Inf` only.
    fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            (u64::BITS - (v - 1).leading_zeros()) as usize
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = Histogram::bucket_index(v);
        match self.buckets.get(idx) {
            Some(b) => b.fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts plus the overflow bucket.
    #[must_use]
    pub fn bucket_counts(&self) -> ([u64; HISTOGRAM_BUCKETS], u64) {
        (
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            self.overflow.load(Ordering::Relaxed),
        )
    }
}

/// A small fixed family of counters whose reads need to be *mutually
/// coherent* (a seqlock): writers mutate all slots as one transition
/// under an internal lock; readers retry until they observe a
/// quiescent version, so a snapshot never mixes two transitions.
///
/// `hare-serve` keeps its queue counters (queued, in-flight,
/// completed, rejected) in one `Group<4>` so `GET /stats` and
/// `GET /metrics` report a consistent picture mid-burst.
#[derive(Debug)]
pub struct Group<const N: usize> {
    write: Mutex<()>,
    version: AtomicU64,
    slots: [AtomicU64; N],
}

impl<const N: usize> Default for Group<N> {
    fn default() -> Group<N> {
        Group::new()
    }
}

impl<const N: usize> Group<N> {
    /// A group with all slots zero.
    #[must_use]
    pub fn new() -> Group<N> {
        Group {
            write: Mutex::new(()),
            version: AtomicU64::new(0),
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Apply one coherent transition to all slots. Concurrent
    /// `update`s serialize; concurrent `snapshot`s never observe a
    /// half-applied transition.
    pub fn update(&self, f: impl FnOnce(&mut [u64; N])) {
        let _guard = self.write.lock().unwrap_or_else(PoisonError::into_inner);
        let mut vals: [u64; N] = std::array::from_fn(|i| self.slots[i].load(Ordering::Relaxed));
        f(&mut vals);
        self.version.fetch_add(1, Ordering::SeqCst); // odd: write in progress
        for (slot, v) in self.slots.iter().zip(vals) {
            slot.store(v, Ordering::SeqCst);
        }
        self.version.fetch_add(1, Ordering::SeqCst); // even: quiescent
    }

    /// One coherent snapshot of all slots (lock-free; retries while a
    /// writer is mid-transition).
    #[must_use]
    pub fn snapshot(&self) -> [u64; N] {
        loop {
            let v1 = self.version.load(Ordering::SeqCst);
            if v1 % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let vals: [u64; N] = std::array::from_fn(|i| self.slots[i].load(Ordering::SeqCst));
            let v2 = self.version.load(Ordering::SeqCst);
            if v1 == v2 {
                return vals;
            }
        }
    }

    /// A single slot's current value (no cross-slot coherence).
    #[must_use]
    pub fn get(&self, i: usize) -> u64 {
        self.slots[i].load(Ordering::Relaxed)
    }
}

/// One registered metric handle.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// One series inside a family: a rendered label set + its handle.
#[derive(Debug)]
struct Series {
    /// Pre-rendered label block (`{path="/count",status="2xx"}`), or
    /// empty for an unlabelled series.
    labels: String,
    metric: Metric,
}

/// A metric family: one name, one help line, one type, many series.
#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    series: Vec<Series>,
}

/// A registry of metric families, rendered in registration order.
///
/// Registration is idempotent: registering the same `(name, labels)`
/// pair again returns the existing handle, so call sites don't need to
/// coordinate. Registering an existing name with a different metric
/// *type* panics (a wiring bug, caught in tests).
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

/// Escape a label value per the exposition format: `\` → `\\`,
/// `"` → `\"`, newline → `\n`.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a label set to its exposition block (empty slice → "").
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", parts.join(","))
}

/// Splice an extra `le="..."` pair into a rendered label block.
fn labels_with_le(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        let inner = &labels[1..labels.len() - 1];
        format!("{{{inner},le=\"{le}\"}}")
    }
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(&self, name: &str, help: &str, labels: &[(&str, &str)], make: Metric) -> Metric {
        let rendered = render_labels(labels);
        let mut families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(family) = families.iter_mut().find(|f| f.name == name) {
            if let Some(series) = family.series.iter().find(|s| s.labels == rendered) {
                assert_eq!(
                    series.metric.type_name(),
                    make.type_name(),
                    "metric {name} re-registered with a different type"
                );
                return series.metric.clone();
            }
            assert_eq!(
                family.series.first().map(|s| s.metric.type_name()),
                Some(make.type_name()),
                "metric {name} re-registered with a different type"
            );
            family.series.push(Series {
                labels: rendered,
                metric: make.clone(),
            });
            return make;
        }
        families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            series: vec![Series {
                labels: rendered,
                metric: make.clone(),
            }],
        });
        make
    }

    /// Register (or fetch) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Register (or fetch) a labelled counter series.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(
            name,
            help,
            labels,
            Metric::Counter(Arc::new(Counter::new())),
        ) {
            Metric::Counter(c) => c,
            _ => unreachable!("type asserted in register"),
        }
    }

    /// Register (or fetch) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        match self.register(name, help, &[], Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => unreachable!("type asserted in register"),
        }
    }

    /// Register (or fetch) an unlabelled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Register (or fetch) a labelled histogram series.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.register(
            name,
            help,
            labels,
            Metric::Histogram(Arc::new(Histogram::new())),
        ) {
            Metric::Histogram(h) => h,
            _ => unreachable!("type asserted in register"),
        }
    }

    /// Render every family as Prometheus text exposition (version
    /// 0.0.4): `# HELP` + `# TYPE` headers, then one line per series,
    /// histograms expanded into cumulative `_bucket`/`_sum`/`_count`.
    #[must_use]
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        for family in families.iter() {
            let name = &family.name;
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            let type_name = family
                .series
                .first()
                .map_or("counter", |s| s.metric.type_name());
            out.push_str(&format!("# TYPE {name} {type_name}\n"));
            for series in &family.series {
                match &series.metric {
                    Metric::Counter(c) => {
                        out.push_str(&format!("{name}{} {}\n", series.labels, c.get()));
                    }
                    Metric::Gauge(g) => {
                        out.push_str(&format!("{name}{} {}\n", series.labels, g.get()));
                    }
                    Metric::Histogram(h) => {
                        let (buckets, overflow) = h.bucket_counts();
                        let mut cumulative = 0_u64;
                        for (b, n) in buckets.iter().enumerate() {
                            cumulative += n;
                            let le = (1_u128 << b).to_string();
                            out.push_str(&format!(
                                "{name}_bucket{} {cumulative}\n",
                                labels_with_le(&series.labels, &le)
                            ));
                        }
                        cumulative += overflow;
                        out.push_str(&format!(
                            "{name}_bucket{} {cumulative}\n",
                            labels_with_le(&series.labels, "+Inf")
                        ));
                        out.push_str(&format!("{name}_sum{} {}\n", series.labels, h.sum()));
                        out.push_str(&format!("{name}_count{} {}\n", series.labels, h.count()));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(77);
        assert_eq!(g.get(), 77);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1 << 31), 31);
        assert_eq!(Histogram::bucket_index((1 << 31) + 1), 32);
    }

    #[test]
    fn histogram_observe_totals() {
        let h = Histogram::new();
        for v in [0, 1, 2, 1000, u64::MAX / 2] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 3 + 1000 + u64::MAX / 2);
        let (buckets, overflow) = h.bucket_counts();
        assert_eq!(buckets.iter().sum::<u64>() + overflow, h.count());
        assert_eq!(buckets[0], 2, "0 and 1 share le=\"1\"");
        assert_eq!(overflow, 1, "huge value lands only in +Inf");
    }

    #[test]
    fn group_snapshot_is_coherent_under_contention() {
        let group: Arc<Group<2>> = Arc::new(Group::new());
        // Writers preserve the invariant slots[0] == slots[1].
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let g = Arc::clone(&group);
                std::thread::spawn(move || {
                    for _ in 0..2000 {
                        g.update(|v| {
                            v[0] += 1;
                            v[1] += 1;
                        });
                    }
                })
            })
            .collect();
        let reader = {
            let g = Arc::clone(&group);
            std::thread::spawn(move || {
                for _ in 0..5000 {
                    let snap = g.snapshot();
                    assert_eq!(snap[0], snap[1], "snapshot mixed two transitions");
                }
            })
        };
        for w in writers {
            w.join().expect("writer");
        }
        reader.join().expect("reader");
        assert_eq!(group.snapshot(), [8000, 8000]);
    }

    #[test]
    fn registry_renders_exposition_format() {
        let reg = Registry::new();
        let c = reg.counter("hare_test_total", "A test counter.");
        c.add(3);
        let g = reg.gauge("hare_test_bytes", "A test gauge.");
        g.set(1024);
        let h = reg.histogram("hare_test_us", "A test histogram.");
        h.observe(3);
        h.observe(100);
        let text = reg.render();
        assert!(text.contains("# HELP hare_test_total A test counter.\n"));
        assert!(text.contains("# TYPE hare_test_total counter\n"));
        assert!(text.contains("hare_test_total 3\n"));
        assert!(text.contains("# TYPE hare_test_bytes gauge\n"));
        assert!(text.contains("hare_test_bytes 1024\n"));
        assert!(text.contains("# TYPE hare_test_us histogram\n"));
        assert!(text.contains("hare_test_us_bucket{le=\"4\"} 1\n"));
        assert!(text.contains("hare_test_us_bucket{le=\"128\"} 2\n"));
        assert!(text.contains("hare_test_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("hare_test_us_sum 103\n"));
        assert!(text.contains("hare_test_us_count 2\n"));
    }

    #[test]
    fn registry_labels_and_idempotent_registration() {
        let reg = Registry::new();
        let a = reg.counter_with(
            "hare_req_total",
            "Requests.",
            &[("path", "/count"), ("status", "2xx")],
        );
        let b = reg.counter_with(
            "hare_req_total",
            "Requests.",
            &[("path", "/count"), ("status", "2xx")],
        );
        a.inc();
        b.inc();
        let other = reg.counter_with(
            "hare_req_total",
            "Requests.",
            &[("path", "/stats"), ("status", "2xx")],
        );
        other.add(7);
        let text = reg.render();
        assert!(
            text.contains("hare_req_total{path=\"/count\",status=\"2xx\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("hare_req_total{path=\"/stats\",status=\"2xx\"} 7\n"),
            "{text}"
        );
        // One family header, two series.
        assert_eq!(text.matches("# TYPE hare_req_total").count(), 1, "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter_with("hare_esc_total", "Escapes.", &[("v", "a\"b\\c\nd")]);
        let text = reg.render();
        assert!(
            text.contains(r#"hare_esc_total{v="a\"b\\c\nd"} 0"#),
            "{text}"
        );
    }

    #[test]
    fn registration_order_is_render_order() {
        let reg = Registry::new();
        reg.counter("hare_z_total", "Z.");
        reg.counter("hare_a_total", "A.");
        let text = reg.render();
        let z = text.find("hare_z_total").expect("z present");
        let a = text.find("hare_a_total").expect("a present");
        assert!(z < a, "families render in registration order");
    }
}
