//! The kernel profiling seam: a monomorphized [`Probe`] trait the
//! counting engines are generic over.
//!
//! Kernels wrap their phase boundaries in `probe.span(phase, || ...)`.
//! With the default [`NoopProbe`] the call monomorphizes to a direct
//! invocation of the closure — no branch, no clock, no allocation — so
//! probe-generic kernels stay inside the D-determinism lint scope and
//! cost nothing in production. The wall-clock implementation
//! ([`crate::timing::WallClockProbe`]) lives behind the
//! `hare-lint: timing` opt-out and is only instantiated by explicitly
//! observability-facing entry points (`hare-count --profile`,
//! `?trace=1`, `exp_obs`).

/// A named phase boundary inside a counting engine.
///
/// The variants map 1:1 onto the seams the kernels expose (see
/// `docs/OBSERVABILITY.md` for which engine reports which):
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The δ-window scan over event lanes (all engines).
    Scan,
    /// Folding per-node/per-window accumulators into final counters.
    Fold,
    /// Loading + arena-building one out-of-core chunk (`hare::ooc`).
    ChunkLoad,
    /// Budget-pressure eviction work (`hare::stream_sample`).
    Evict,
    /// Turning retained state into estimates/CIs (sampling engines).
    Summarise,
}

impl Phase {
    /// Every phase, in stable rendering order.
    pub const ALL: [Phase; 5] = [
        Phase::Scan,
        Phase::Fold,
        Phase::ChunkLoad,
        Phase::Evict,
        Phase::Summarise,
    ];

    /// Stable lower-case name used in traces, tables, and metrics.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Scan => "scan",
            Phase::Fold => "fold",
            Phase::ChunkLoad => "chunk_load",
            Phase::Evict => "evict",
            Phase::Summarise => "summarise",
        }
    }

    /// Dense index into per-phase arrays (`0..Phase::ALL.len()`).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Observation hooks threaded through the counting kernels.
///
/// Implementations MUST be result-transparent: `span` returns exactly
/// what the closure returns, and the closure runs exactly once.
/// Kernels rely on this — counts are bit-identical across probe
/// implementations (differentially tested).
pub trait Probe {
    /// Run `f`, attributing its duration to `phase`. The default does
    /// no observation at all and compiles down to a plain call.
    #[inline(always)]
    fn span<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let _ = phase;
        f()
    }
}

/// The zero-cost probe: every span is a direct closure call.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_span_is_transparent() {
        let p = NoopProbe;
        let mut ran = 0;
        let out = p.span(Phase::Scan, || {
            ran += 1;
            42_u64
        });
        assert_eq!(out, 42);
        assert_eq!(ran, 1);
    }

    #[test]
    fn phase_names_are_stable_and_indexed() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["scan", "fold", "chunk_load", "evict", "summarise"]);
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
