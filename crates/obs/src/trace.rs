//! Per-request phase traces in a fixed-size ring buffer.
//!
//! The daemon allocates one trace id per traced request, records each
//! kernel phase as a [`TraceEvent`], and keeps the most recent events
//! in a bounded [`TraceRing`] — old events are overwritten, memory is
//! constant, and recording is a short critical section (no allocation
//! after construction). The `?trace=1` response is built from the
//! events of that request's trace id.
//!
//! Durations arrive from outside (the timing probe); this module never
//! reads a clock, so it stays inside the determinism lint scope.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// One recorded span: a phase of one traced request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The owning request's trace id.
    pub trace_id: u64,
    /// Stable phase name (`scan`, `fold`, ...).
    pub phase: &'static str,
    /// Total time attributed to this phase, in microseconds.
    pub duration_us: u64,
    /// Number of spans folded into `duration_us`.
    pub spans: u64,
}

/// A bounded ring of the most recent [`TraceEvent`]s.
#[derive(Debug)]
pub struct TraceRing {
    next_id: AtomicU64,
    inner: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index the next event is written to once the ring is full.
    head: usize,
}

impl TraceRing {
    /// A ring holding at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        TraceRing {
            next_id: AtomicU64::new(1),
            inner: Mutex::new(Ring {
                buf: Vec::with_capacity(capacity),
                capacity,
                head: 0,
            }),
        }
    }

    /// Allocate a fresh trace id (unique per ring, starts at 1).
    #[must_use]
    pub fn begin(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Record one event, evicting the oldest once full.
    pub fn record(&self, event: TraceEvent) {
        let mut ring = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.buf.len() < ring.capacity {
            ring.buf.push(event);
        } else {
            let head = ring.head;
            ring.buf[head] = event;
            ring.head = (head + 1) % ring.capacity;
        }
    }

    /// All retained events for one trace id, in recording order.
    #[must_use]
    pub fn events_for(&self, trace_id: u64) -> Vec<TraceEvent> {
        let ring = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        // Oldest-first: the segment at `head..` precedes `..head`.
        let (newer, older) = ring.buf.split_at(ring.head.min(ring.buf.len()));
        older
            .iter()
            .chain(newer.iter())
            .filter(|e| e.trace_id == trace_id)
            .cloned()
            .collect()
    }

    /// Number of events currently retained (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .buf
            .len()
    }

    /// `true` when no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace_id: u64, phase: &'static str, duration_us: u64) -> TraceEvent {
        TraceEvent {
            trace_id,
            phase,
            duration_us,
            spans: 1,
        }
    }

    #[test]
    fn ids_are_unique_and_events_retrievable() {
        let ring = TraceRing::new(8);
        let a = ring.begin();
        let b = ring.begin();
        assert_ne!(a, b);
        ring.record(ev(a, "scan", 10));
        ring.record(ev(b, "scan", 20));
        ring.record(ev(a, "fold", 5));
        let got = ring.events_for(a);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].phase, "scan");
        assert_eq!(got[1].phase, "fold");
        assert_eq!(ring.events_for(b).len(), 1);
    }

    #[test]
    fn ring_is_bounded_and_overwrites_oldest() {
        let ring = TraceRing::new(3);
        for i in 0..5 {
            ring.record(ev(1, "scan", i));
        }
        assert_eq!(ring.len(), 3);
        let durations: Vec<u64> = ring.events_for(1).iter().map(|e| e.duration_us).collect();
        assert_eq!(durations, [2, 3, 4], "oldest two were evicted, order kept");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = TraceRing::new(0);
        ring.record(ev(1, "scan", 1));
        ring.record(ev(1, "fold", 2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.events_for(1)[0].phase, "fold");
    }
}
