//! `hare-obs` — zero-dependency observability for the HARE workspace.
//!
//! Three layers, each usable on its own:
//!
//! * [`metrics`] — lock-free atomic [`Counter`]s/[`Gauge`]s,
//!   log₂-bucket [`Histogram`]s, a seqlock [`Group`] for coherent
//!   multi-counter snapshots, and a [`Registry`] that renders the
//!   Prometheus text exposition format by hand (no protobuf, no
//!   client library). `hare-serve` mounts this at `GET /metrics`.
//! * [`trace`] — a fixed-size [`TraceRing`] of per-request phase
//!   events with monotonically allocated trace ids, backing the
//!   daemon's opt-in `?trace=1` phase breakdown.
//! * [`probe`] — the [`Probe`] seam the counting kernels are generic
//!   over. The default [`NoopProbe`] monomorphizes every
//!   `probe.span(phase, f)` to a plain call of `f` (zero code, zero
//!   branches), so the kernels stay on the D-determinism lint scope;
//!   the wall-clock-backed [`WallClockProbe`] lives only here, in the
//!   [`timing`] module behind the `hare-lint: timing` opt-out.
//!
//! Determinism: nothing outside [`timing`] reads a clock, and no probe
//! implementation can influence counting results — [`Probe::span`]
//! returns the closure's value unchanged, so counts are bit-identical
//! with probes on or off (pinned by differential tests in `hare` and
//! the CLI e2e suite).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod metrics;
pub mod probe;
pub mod timing;
pub mod trace;

pub use metrics::{Counter, Gauge, Group, Histogram, Registry};
pub use probe::{NoopProbe, Phase, Probe};
pub use timing::WallClockProbe;
pub use trace::{TraceEvent, TraceRing};

/// Best-effort resident-set size of the current process in bytes
/// (Linux `/proc/self/status` `VmRSS`, kB × 1024). `None` where procfs
/// is unavailable. The daemon's self-sampler thread feeds this into
/// the `hare_process_resident_bytes` gauge.
#[must_use]
pub fn resident_set_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

#[cfg(test)]
mod tests {
    #[test]
    fn resident_set_bytes_is_positive_on_linux() {
        if let Some(bytes) = super::resident_set_bytes() {
            assert!(bytes > 0);
        }
    }
}
