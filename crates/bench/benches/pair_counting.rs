//! Criterion microbenchmark backing Table III's pair-motif columns:
//! FAST-Pair vs BT-Pair vs EX's 2-node counter vs BTS-Pair.

use criterion::{criterion_group, criterion_main, Criterion};
use hare_baselines::bts::BtsConfig;
use std::hint::black_box;

fn workload() -> (temporal_graph::TemporalGraph, i64) {
    // Messaging family → plenty of multi-edges → pair-motif rich.
    let spec = hare_datasets::by_name("Email-Eu").unwrap();
    (spec.generate(8), 600)
}

fn bench_pair_counting(c: &mut Criterion) {
    let (g, delta) = workload();
    let mut group = c.benchmark_group("pair_counting_emaileu");
    group.sample_size(10);

    group.bench_function("FAST-Pair", |b| {
        b.iter(|| black_box(hare::count_pair_motifs(&g, delta)))
    });
    group.bench_function("EX-2node", |b| {
        b.iter(|| black_box(hare_baselines::ex::count_pairs(&g, delta)))
    });
    group.bench_function("BT-Pair", |b| {
        b.iter(|| black_box(hare_baselines::bt_count_pairs(&g, delta)))
    });
    group.bench_function("BTS-Pair", |b| {
        b.iter(|| {
            black_box(hare_baselines::bts_pair_estimate(
                &g,
                delta,
                &BtsConfig::default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pair_counting);
criterion_main!(benches);
