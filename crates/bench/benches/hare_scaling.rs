//! Criterion microbenchmark backing Fig. 11's shape: HARE runtime as the
//! thread count grows, against single-threaded FAST as the baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hare::{Hare, HareConfig};
use std::hint::black_box;

fn workload() -> (temporal_graph::TemporalGraph, i64) {
    let spec = hare_datasets::by_name("SMS-A").unwrap();
    (spec.generate(8), 600)
}

fn bench_scaling(c: &mut Criterion) {
    let (g, delta) = workload();
    let mut group = c.benchmark_group("hare_scaling_smsa");
    group.sample_size(10);

    group.bench_function("FAST(1 thread, no framework)", |b| {
        b.iter(|| black_box(hare::count_motifs(&g, delta)))
    });
    let max = std::thread::available_parallelism().map_or(2, |n| n.get());
    for threads in [1usize, 2, 4].into_iter().filter(|&t| t <= max.max(2)) {
        let engine = Hare::new(HareConfig {
            num_threads: threads,
            ..HareConfig::default()
        });
        group.bench_function(BenchmarkId::new("HARE", threads), |b| {
            b.iter(|| black_box(engine.count_all(&g, delta)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
