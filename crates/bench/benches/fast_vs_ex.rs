//! Criterion microbenchmark backing Table III's main comparison: FAST vs
//! the exact baselines (EX, BT, raw enumeration) for full 36-motif
//! counting on a CollegeMsg-scale workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn workload() -> (temporal_graph::TemporalGraph, i64) {
    let spec = hare_datasets::by_name("CollegeMsg").unwrap();
    (spec.generate(1), 600)
}

fn bench_full_counting(c: &mut Criterion) {
    let (g, delta) = workload();
    let mut group = c.benchmark_group("full_counting_collegemsg");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("FAST", delta), |b| {
        b.iter(|| black_box(hare::count_motifs(&g, delta)))
    });
    group.bench_function(BenchmarkId::new("EX", delta), |b| {
        b.iter(|| black_box(hare_baselines::ex::count_all(&g, delta)))
    });
    group.bench_function(BenchmarkId::new("BT", delta), |b| {
        b.iter(|| black_box(hare_baselines::bt_count_all(&g, delta)))
    });
    group.bench_function(BenchmarkId::new("ENUM", delta), |b| {
        b.iter(|| black_box(hare_baselines::enumerate_all(&g, delta)))
    });
    group.finish();
}

criterion_group!(benches, bench_full_counting);
criterion_main!(benches);
