//! Criterion benches for the sliding-window streaming engine:
//!
//! * ingest throughput of `WindowedCounter` as the window shrinks from
//!   effectively-unbounded down to `W = δ` (eviction churn rises while
//!   arrival cost stays fixed),
//! * the eviction-cost ablation — the same stream through the
//!   append-only `StreamingCounter` (no retirement work at all),
//! * the reorder-buffer overhead at `slack > 0` on an in-order stream
//!   (pure buffering cost, no actual reordering).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hare_bench::ablations::{stream_append_only, stream_windowed};
use std::hint::black_box;

fn workload() -> (temporal_graph::TemporalGraph, i64) {
    let spec = hare_datasets::by_name("CollegeMsg").unwrap();
    (spec.generate(1), 600)
}

fn bench_window_widths(c: &mut Criterion) {
    let (g, delta) = workload();
    let span = g.time_span() + 1;
    let mut group = c.benchmark_group("windowed_stream_collegemsg");
    group.sample_size(10);
    for (label, window) in [
        ("W=delta", delta),
        ("W=4delta", 4 * delta),
        ("W=64delta", 64 * delta),
        ("W=span", span),
    ] {
        group.bench_function(BenchmarkId::new(label, window), |b| {
            b.iter(|| black_box(stream_windowed(&g, delta, window, 0)))
        });
    }
    group.finish();
}

fn bench_eviction_ablation(c: &mut Criterion) {
    let (g, delta) = workload();
    let mut group = c.benchmark_group("ablation_window_eviction");
    group.sample_size(10);
    // Eviction on (tight window, maximum retirement churn)…
    group.bench_function("windowed_tight", |b| {
        b.iter(|| black_box(stream_windowed(&g, delta, delta, 0)))
    });
    // …vs the append-only counter, which never retires anything.
    group.bench_function("append_only", |b| {
        b.iter(|| black_box(stream_append_only(&g, delta)))
    });
    group.finish();
}

fn bench_reorder_slack(c: &mut Criterion) {
    let (g, delta) = workload();
    let window = 16 * delta;
    let mut group = c.benchmark_group("windowed_reorder_slack");
    group.sample_size(10);
    for slack in [0i64, 60, 600] {
        group.bench_function(BenchmarkId::new("slack", slack), |b| {
            b.iter(|| black_box(stream_windowed(&g, delta, window, slack)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_window_widths,
    bench_eviction_ablation,
    bench_reorder_slack
);
criterion_main!(benches);
