//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * stamped scratch array vs literal HashMaps in FAST-Star,
//! * δ-window binary search vs linear scan in FAST-Tri,
//! * intra-node parallelism on vs off on a hub-dominated graph,
//! * dynamic vs static inter-node scheduling.

use criterion::{criterion_group, criterion_main, Criterion};
use hare::{DegreeThreshold, Hare, HareConfig, Scheduling};
use hare_bench::ablations::{fast_star_hashmap, fast_tri_linear};
use std::hint::black_box;

fn bench_scratch_strategy(c: &mut Criterion) {
    let spec = hare_datasets::by_name("CollegeMsg").unwrap();
    let g = spec.generate(1);
    let delta = 600;
    let mut group = c.benchmark_group("ablation_star_scratch");
    group.sample_size(10);
    group.bench_function("stamped_array", |b| {
        b.iter(|| black_box(hare::fast_star::fast_star(&g, delta)))
    });
    group.bench_function("hashmap", |b| {
        b.iter(|| black_box(fast_star_hashmap(&g, delta)))
    });
    group.finish();
}

fn bench_pair_window_search(c: &mut Criterion) {
    let spec = hare_datasets::by_name("Bitcoinotc").unwrap();
    let g = spec.generate(1);
    let delta = 600;
    let mut group = c.benchmark_group("ablation_tri_window");
    group.sample_size(10);
    group.bench_function("binary_search", |b| {
        b.iter(|| black_box(hare::fast_tri::fast_tri(&g, delta)))
    });
    group.bench_function("linear_scan", |b| {
        b.iter(|| black_box(fast_tri_linear(&g, delta)))
    });
    group.finish();
}

fn bench_hierarchical_parallelism(c: &mut Criterion) {
    // Hub-dominated workload where one node holds most of the work.
    let g = temporal_graph::gen::hub_burst(400, 60_000, 2_000_000, 9);
    let delta = 5_000;
    let threads = 2;
    let mut group = c.benchmark_group("ablation_thrd_hub_graph");
    group.sample_size(10);
    for (name, thrd, sched) in [
        (
            "hierarchical",
            DegreeThreshold::TopK(20),
            Scheduling::Dynamic,
        ),
        (
            "inter_node_only",
            DegreeThreshold::Disabled,
            Scheduling::Dynamic,
        ),
        (
            "static_schedule",
            DegreeThreshold::Disabled,
            Scheduling::Static,
        ),
    ] {
        let engine = Hare::new(HareConfig {
            num_threads: threads,
            degree_threshold: thrd,
            scheduling: sched,
            ..HareConfig::default()
        });
        group.bench_function(name, |b| b.iter(|| black_box(engine.count_all(&g, delta))));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scratch_strategy,
    bench_pair_window_search,
    bench_hierarchical_parallelism
);
criterion_main!(benches);
