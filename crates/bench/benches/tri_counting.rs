//! Criterion microbenchmark backing Table III's triangle columns:
//! FAST-Tri vs 2SCENT-Tri vs EX's static-triangle counter.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn workload() -> (temporal_graph::TemporalGraph, i64) {
    let spec = hare_datasets::by_name("Bitcoinotc").unwrap();
    (spec.generate(1), 600)
}

fn bench_tri_counting(c: &mut Criterion) {
    let (g, delta) = workload();
    let mut group = c.benchmark_group("tri_counting_bitcoinotc");
    group.sample_size(10);

    group.bench_function("FAST-Tri", |b| {
        b.iter(|| black_box(hare::count_triangle_motifs(&g, delta)))
    });
    group.bench_function("EX-Tri", |b| {
        b.iter(|| black_box(hare_baselines::ex::count_triangles(&g, delta)))
    });
    group.bench_function("2SCENT-Tri", |b| {
        b.iter(|| black_box(hare_baselines::two_scent_tri(&g, delta)))
    });
    group.finish();
}

criterion_group!(benches, bench_tri_counting);
criterion_main!(benches);
