//! Serving-layer benchmark for `hare-serve`: cold vs cache-hit query
//! latency and request throughput under concurrent clients, against an
//! in-process server on an ephemeral port.
//!
//! The output schema (`hare-bench/serve/v1`) is documented in the
//! `hare_bench` crate docs and `docs/SERVICE.md`. The binary also
//! asserts the service's contracts — the served body equals the
//! library-rendered `hare::report` body byte-for-byte, `p = 1.0`
//! approximate estimates equal the exact counts, and cache hits return
//! the identical bytes — so a CI run fails on correctness regressions,
//! not just slowdowns. The full (non `--quick`) run additionally
//! asserts the cache-hit latency is at least 10× below cold exact
//! latency, and its snapshot is committed at the repo root
//! (`BENCH_SERVE_<pr>.json`).
//!
//! ```text
//! cargo run --release -p hare-bench --bin exp_serve -- \
//!     [--out BENCH_SERVE.json] [--dataset CollegeMsg] [--scale N] \
//!     [--delta N] [--samples N] [--requests N] [--quick]
//! ```
//!
//! `--quick` drops to 5 timing samples, 25 requests per client level
//! and the CollegeMsg/8 workload — the CI smoke configuration.

use std::time::Instant;

use hare_serve::http::client;
use hare_serve::{Server, ServerConfig};
use serde_json::{json, Value};

/// Median / mean / min over raw second samples.
fn summarize(mut xs: Vec<f64>) -> (f64, f64, f64) {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let median = xs[xs.len() / 2];
    (median, mean, xs[0])
}

fn latency_value(xs: Vec<f64>) -> Value {
    let (median, mean, min) = summarize(xs);
    json!({"median_s": median, "mean_s": mean, "min_s": min})
}

fn main() {
    let args = hare_bench::Args::parse();
    let quick = args.flag("quick");
    let out = args.get("out").unwrap_or("BENCH_SERVE.json").to_string();
    let dataset = args.get("dataset").unwrap_or("CollegeMsg").to_string();
    let scale: usize = args.get_num("scale", if quick { 8 } else { 1 });
    let delta: i64 = args.get_num("delta", 600);
    let samples: usize = args.get_num("samples", if quick { 5 } else { 30 });
    let requests: usize = args.get_num("requests", if quick { 25 } else { 200 });
    let client_levels = [1usize, 4, 8];

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 8,
        queue_capacity: 256,
        preload: vec![(dataset.clone(), scale)],
        ..ServerConfig::default()
    })
    .expect("bind server");
    let addr = server.local_addr().expect("addr");
    let state = server.state();
    let handle = server.spawn();
    let target = format!("/count?dataset={dataset}&delta={delta}");

    // --- Correctness gates -------------------------------------------------
    // Served body == library-rendered report body, byte for byte.
    let entry = state.catalog.get(&dataset).expect("preloaded");
    let matrix =
        hare::Hare::new(hare::HareConfig::default()).count_matrix(&entry.graph, delta, None);
    let expect = hare::report::render(&hare::report::exact_body(
        entry.stats.num_nodes,
        entry.stats.num_edges,
        delta,
        &matrix,
        None,
    ));
    let cold = client::get(addr, &target).expect("cold GET");
    assert_eq!(cold.status, 200, "{}", cold.text());
    assert_eq!(cold.text(), expect, "served body != hare::report bytes");
    // A cache hit returns the identical bytes.
    let hit = client::get(addr, &target).expect("hit GET");
    assert_eq!(hit.body, cold.body, "cache hit changed the body");
    // p = 1.0 approx equals exact, cell for cell.
    let approx = client::get(addr, &format!("{target}&engine=approx&prob=1.0"))
        .expect("approx GET")
        .json()
        .expect("approx JSON");
    let exact = cold.json().expect("exact JSON");
    for (a, e) in approx["counts"]
        .as_array()
        .expect("cells")
        .iter()
        .zip(exact["counts"].as_array().expect("cells"))
    {
        assert_eq!(
            a["estimate"].as_f64(),
            e["count"].as_u64().map(|n| n as f64),
            "p=1.0 approx differs from exact at {}",
            a["motif"]
        );
    }
    println!("correctness gates passed (report bytes, cache identity, p=1 exactness)");

    // --- Cold vs cache-hit latency ----------------------------------------
    let mut cold_s = Vec::with_capacity(samples);
    for _ in 0..samples {
        assert_eq!(
            client::post(addr, "/cache/clear", "")
                .expect("clear")
                .status,
            200
        );
        let t0 = Instant::now();
        let resp = client::get(addr, &target).expect("cold GET");
        cold_s.push(t0.elapsed().as_secs_f64());
        assert_eq!(resp.status, 200);
    }
    let mut hit_s = Vec::with_capacity(samples);
    let _ = client::get(addr, &target).expect("warm");
    for _ in 0..samples {
        let t0 = Instant::now();
        let resp = client::get(addr, &target).expect("hit GET");
        hit_s.push(t0.elapsed().as_secs_f64());
        assert_eq!(resp.status, 200);
    }
    let (cold_median, _, _) = summarize(cold_s.clone());
    let (hit_median, _, _) = summarize(hit_s.clone());
    let hit_speedup = cold_median / hit_median;
    println!(
        "cold {} | cache hit {} | speedup {hit_speedup:.1}x",
        hare_bench::human_secs(cold_median),
        hare_bench::human_secs(hit_median),
    );
    if !quick {
        // Acceptance gate for the committed snapshot: serving from the
        // cache must beat recomputing by at least an order of magnitude.
        assert!(
            hit_speedup >= 10.0,
            "cache-hit latency only {hit_speedup:.1}x below cold"
        );
    }

    // --- Throughput at 1/4/8 concurrent clients (cache-hit path) ----------
    let mut throughput: Vec<Value> = Vec::new();
    for &clients in &client_levels {
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..clients {
                scope.spawn(|| {
                    for _ in 0..requests {
                        let resp = client::get(addr, &target).expect("GET");
                        assert_eq!(resp.status, 200);
                    }
                });
            }
        });
        let total_s = t0.elapsed().as_secs_f64();
        let rps = (clients * requests) as f64 / total_s;
        println!("{clients} client(s) x {requests} requests: {rps:.0} req/s");
        throughput.push(json!({
            "clients": clients,
            "requests": requests,
            "total_s": total_s,
            "rps": rps,
        }));
    }

    let cache = state.cache.stats();
    let server_stats = json!({
        "workers": 8,
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
        "rejected": state.metrics.rejected(),
    });
    let cold_v = latency_value(cold_s);
    let hit_v = latency_value(hit_s);
    let throughput_v = Value::from(throughput);
    let doc = json!({
        "schema": "hare-bench/serve/v1",
        "dataset": dataset,
        "scale": scale,
        "delta": delta,
        "quick": quick,
        "samples": samples,
        "cold_exact_s": cold_v,
        "cache_hit_s": hit_v,
        "hit_speedup": hit_speedup,
        "throughput": throughput_v,
        "server": server_stats,
    });
    std::fs::write(&out, format!("{doc}\n")).expect("write serve snapshot");
    println!("wrote {out}");

    handle.shutdown_and_wait().expect("clean shutdown");
}
