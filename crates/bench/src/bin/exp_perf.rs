//! Perf trajectory harness: re-times the hot-path suites covered by the
//! criterion benches and writes one JSON snapshot per run, so absolute
//! performance is tracked across PRs (`BENCH_<n>.json` at the repo root).
//!
//! The output schema is documented in the `hare_bench` crate docs
//! (*Perf snapshot schema*). The binary also asserts count shapes (the
//! Fig. 1 toy's single M65; FAST / HARE / windowed agreement), so a CI
//! run fails on correctness regressions, not just slowdowns.
//!
//! ```text
//! cargo run --release -p hare-bench --bin exp_perf -- \
//!     [--out BENCH.json] [--samples N] [--scale N] [--quick]
//! ```
//!
//! `--quick` drops to 3 samples and the CollegeMsg/8 workload only — the
//! CI perf-smoke configuration.

use hare_bench::time;
use serde_json::{json, Value};

struct Sample {
    name: String,
    mean_s: f64,
    min_s: f64,
    median_s: f64,
    samples: usize,
}

fn sample(name: impl Into<String>, samples: usize, mut f: impl FnMut()) -> Sample {
    f(); // warm-up (untimed)
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let ((), s) = time(&mut f);
            s
        })
        .collect();
    times.sort_by(f64::total_cmp);
    Sample {
        name: name.into(),
        mean_s: times.iter().sum::<f64>() / times.len() as f64,
        min_s: times[0],
        median_s: times[times.len() / 2],
        samples: times.len(),
    }
}

fn human(s: f64) -> String {
    hare_bench::human_secs(s)
}

fn main() {
    let args = hare_bench::Args::parse();
    let quick = args.flag("quick");
    let samples: usize = args.get_num("samples", if quick { 3 } else { 10 });
    let out = args.get("out").unwrap_or("BENCH_3.json").to_string();
    let delta: i64 = args.get_num("delta", 600);
    let mut rows: Vec<Sample> = Vec::new();

    // --- Fig. 1 toy: shape smoke (the paper's worked example) ---
    let toy = temporal_graph::gen::paper_fig1_toy();
    let toy_counts = hare::count_motifs(&toy, 10);
    assert_eq!(
        toy_counts.get(hare::motif::m(6, 5)),
        1,
        "Fig. 1 toy must contain exactly one M65 at delta=10"
    );
    rows.push(sample("toy_fig1/fast/10", samples, || {
        std::hint::black_box(hare::count_motifs(&toy, 10));
    }));

    // --- CollegeMsg workloads ---
    let spec = hare_datasets::by_name("CollegeMsg").expect("registry");
    let scale: usize = args.get_num("scale", if quick { 8 } else { 1 });
    let g = spec.generate(scale);

    let reference = hare::count_motifs(&g, delta);
    rows.push(sample(
        format!("full_collegemsg_s{scale}/fast/{delta}"),
        samples,
        || {
            std::hint::black_box(hare::count_motifs(&g, delta));
        },
    ));
    rows.push(sample(
        format!("full_collegemsg_s{scale}/fast_star/{delta}"),
        samples,
        || {
            std::hint::black_box(hare::fast_star::fast_star(&g, delta));
        },
    ));
    rows.push(sample(
        format!("full_collegemsg_s{scale}/fast_tri/{delta}"),
        samples,
        || {
            std::hint::black_box(hare::fast_tri::fast_tri(&g, delta));
        },
    ));
    rows.push(sample(
        format!("pair_collegemsg_s{scale}/fast_pair/{delta}"),
        samples,
        || {
            std::hint::black_box(hare::fast_pair::fast_pair(&g, delta));
        },
    ));

    for threads in [1usize, 2] {
        let engine = hare::Hare::with_threads(threads);
        let par = engine.count_all(&g, delta);
        assert_eq!(
            par.matrix, reference.matrix,
            "HARE/{threads} disagrees with sequential FAST"
        );
        rows.push(sample(
            format!("full_collegemsg_s{scale}/hare{threads}/{delta}"),
            samples,
            || {
                std::hint::black_box(engine.count_all(&g, delta));
            },
        ));
    }

    let windowed = hare_bench::ablations::stream_windowed(&g, delta, g.time_span() + 1, 0);
    assert_eq!(
        windowed, reference.matrix,
        "windowed ingest over the full span disagrees with batch FAST"
    );
    rows.push(sample(
        format!("stream_collegemsg_s{scale}/windowed_ingest/{delta}"),
        samples,
        || {
            std::hint::black_box(hare_bench::ablations::stream_windowed(&g, delta, delta, 0));
        },
    ));

    // --- report ---
    println!(
        "{:<48} {:>10} {:>10} {:>10} {:>8}",
        "bench", "mean", "min", "median", "samples"
    );
    for r in &rows {
        println!(
            "{:<48} {:>10} {:>10} {:>10} {:>8}",
            r.name,
            human(r.mean_s),
            human(r.min_s),
            human(r.median_s),
            r.samples
        );
    }

    let doc = json!({
        "schema": "hare-bench/perf/v1",
        "delta": delta,
        "quick": quick,
        "benches": rows
            .iter()
            .map(|r| {
                json!({
                    "name": r.name.clone(),
                    "mean_s": r.mean_s,
                    "min_s": r.min_s,
                    "median_s": r.median_s,
                    "samples": r.samples,
                })
            })
            .collect::<Vec<Value>>(),
    });
    std::fs::write(&out, format!("{doc}\n")).expect("write perf snapshot");
    println!("\nwrote {out}");
}
