//! Perf trajectory harness: re-times the hot-path suites covered by the
//! criterion benches and writes one JSON snapshot per run, so absolute
//! performance is tracked across PRs (`BENCH_<n>.json` at the repo root).
//!
//! The output schema is documented in the `hare_bench` crate docs
//! (*Perf snapshot schema*, `hare-bench/perf/v2`). Besides timing, the
//! binary asserts correctness shapes — the Fig. 1 toy's single M65;
//! FAST / HARE / windowed / out-of-core agreement; the out-of-core run
//! staying under its resident lane-byte budget — so a CI run fails on
//! correctness regressions, not just slowdowns.
//!
//! ```text
//! cargo run --release -p hare-bench --bin exp_perf -- \
//!     [--out BENCH.json] [--samples N] [--scale N] [--threads 1,2,4,8] \
//!     [--quick]
//! ```
//!
//! `--quick` drops to 3 samples and the CollegeMsg/8 workload plus a
//! smaller synthetic graph — the CI perf-smoke configuration. The
//! thread-scaling sweep and the out-of-core row run in both modes.

use hare_bench::{resident_set_bytes, time};
use serde_json::{json, Value};

struct Sample {
    name: String,
    threads: usize,
    mean_s: f64,
    min_s: f64,
    median_s: f64,
    samples: usize,
    rss_bytes: Option<u64>,
}

fn sample(name: impl Into<String>, threads: usize, samples: usize, mut f: impl FnMut()) -> Sample {
    f(); // warm-up (untimed)
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let ((), s) = time(&mut f);
            s
        })
        .collect();
    times.sort_by(f64::total_cmp);
    Sample {
        name: name.into(),
        threads,
        mean_s: times.iter().sum::<f64>() / times.len() as f64,
        min_s: times[0],
        median_s: times[times.len() / 2],
        samples: times.len(),
        rss_bytes: resident_set_bytes(),
    }
}

fn human(s: f64) -> String {
    hare_bench::human_secs(s)
}

/// The synthetic "large graph" workload: hub-skewed, bursty, triangle-
/// and star-rich, and big enough (2|E| above
/// [`hare::hare::SEQ_FALLBACK_EVENTS`]) that the scaling sweep exercises
/// the parallel scheduler rather than the small-graph fallback.
fn synthetic(edges: usize) -> temporal_graph::TemporalGraph {
    temporal_graph::gen::GenConfig {
        nodes: (edges / 40).max(64),
        edges,
        time_span: 4 * edges as temporal_graph::Timestamp,
        zipf_exponent: 1.15,
        seed: 0x5CA1E,
        ..temporal_graph::gen::GenConfig::default()
    }
    .generate()
}

fn main() {
    let args = hare_bench::Args::parse();
    let quick = args.flag("quick");
    let samples: usize = args.get_num("samples", if quick { 3 } else { 10 });
    let out = args.get("out").unwrap_or("BENCH_3.json").to_string();
    let delta: i64 = args.get_num("delta", 600);
    let thread_sweep: Vec<usize> = args.get_list("threads", &[1, 2, 4, 8]);
    let mut rows: Vec<Sample> = Vec::new();

    // --- Fig. 1 toy: shape smoke (the paper's worked example) ---
    let toy = temporal_graph::gen::paper_fig1_toy();
    let toy_counts = hare::count_motifs(&toy, 10);
    assert_eq!(
        toy_counts.get(hare::motif::m(6, 5)),
        1,
        "Fig. 1 toy must contain exactly one M65 at delta=10"
    );
    rows.push(sample("toy_fig1/fast/10", 1, samples, || {
        std::hint::black_box(hare::count_motifs(&toy, 10));
    }));

    // --- CollegeMsg workloads ---
    let spec = hare_datasets::by_name("CollegeMsg").expect("registry");
    let scale: usize = args.get_num("scale", if quick { 8 } else { 1 });
    let g = spec.generate(scale);

    let reference = hare::count_motifs(&g, delta);
    rows.push(sample(
        format!("full_collegemsg_s{scale}/fast/{delta}"),
        1,
        samples,
        || {
            std::hint::black_box(hare::count_motifs(&g, delta));
        },
    ));
    rows.push(sample(
        format!("full_collegemsg_s{scale}/fast_star/{delta}"),
        1,
        samples,
        || {
            std::hint::black_box(hare::fast_star::fast_star(&g, delta));
        },
    ));
    rows.push(sample(
        format!("full_collegemsg_s{scale}/fast_tri/{delta}"),
        1,
        samples,
        || {
            std::hint::black_box(hare::fast_tri::fast_tri(&g, delta));
        },
    ));
    rows.push(sample(
        format!("pair_collegemsg_s{scale}/fast_pair/{delta}"),
        1,
        samples,
        || {
            std::hint::black_box(hare::fast_pair::fast_pair(&g, delta));
        },
    ));

    // --- compressed-lane ablation: same kernel, packed timestamps ---
    let gc = g
        .clone()
        .into_lane_layout(temporal_graph::LaneLayout::Compressed);
    let compressed = hare::count_motifs(&gc, delta);
    assert_eq!(
        compressed.matrix, reference.matrix,
        "compressed lanes disagree with raw lanes"
    );
    rows.push(sample(
        format!("full_collegemsg_s{scale}/fast_compressed/{delta}"),
        1,
        samples,
        || {
            std::hint::black_box(hare::count_motifs(&gc, delta));
        },
    ));

    let windowed = hare_bench::ablations::stream_windowed(&g, delta, g.time_span() + 1, 0);
    assert_eq!(
        windowed, reference.matrix,
        "windowed ingest over the full span disagrees with batch FAST"
    );
    rows.push(sample(
        format!("stream_collegemsg_s{scale}/windowed_ingest/{delta}"),
        1,
        samples,
        || {
            std::hint::black_box(hare_bench::ablations::stream_windowed(&g, delta, delta, 0));
        },
    ));

    // --- thread-scaling sweep on the synthetic large graph ---
    // Big enough that the scheduler engages (2|E| >= SEQ_FALLBACK_EVENTS).
    let syn_edges: usize = args.get_num("syn-edges", if quick { 40_000 } else { 200_000 });
    let syn = synthetic(syn_edges);
    assert!(
        2 * syn.num_edges() >= hare::hare::SEQ_FALLBACK_EVENTS,
        "synthetic workload too small to exercise the scheduler"
    );
    let syn_delta: i64 = args.get_num("syn-delta", 2_000);
    let syn_reference = hare::count_motifs(&syn, syn_delta);
    let engines: Vec<hare::Hare> = thread_sweep
        .iter()
        .map(|&t| hare::Hare::with_threads(t))
        .collect();
    for (engine, &threads) in engines.iter().zip(&thread_sweep) {
        let par = engine.count_all(&syn, syn_delta);
        assert_eq!(
            par.matrix, syn_reference.matrix,
            "HARE/{threads} disagrees with sequential FAST"
        );
    }
    // Samples are interleaved round-robin across thread counts so slow
    // drift in background load on a shared CI box hits every config
    // equally, and each round starts at a rotated position so fixed
    // per-round effects (cache state after the round boundary, periodic
    // daemons) don't systematically favour one slot either.
    let mut sweep_times: Vec<Vec<f64>> = vec![Vec::with_capacity(samples); engines.len()];
    let sweep_round = |round: usize, sweep_times: &mut Vec<Vec<f64>>| {
        for k in 0..engines.len() {
            let slot = (round + k) % engines.len();
            let ((), s) = time(|| {
                std::hint::black_box(engines[slot].count_all(&syn, syn_delta));
            });
            sweep_times[slot].push(s);
        }
    };
    for round in 0..samples {
        sweep_round(round, &mut sweep_times);
    }
    // The clamp collapses every config to the same effective thread
    // count here, so all four distributions share one true floor; the
    // per-config empirical minima converge to it from above. On a noisy
    // box a fixed sample count can leave one config's min a few percent
    // high purely because interference bursts missed the others, so keep
    // adding interleaved rounds (bounded at 4x the base count) until the
    // oversubscribed minima have met HARE/1's — i.e. until the min
    // estimator has actually converged rather than stopping mid-burst.
    let base_slot = thread_sweep.iter().position(|&t| t == 1);
    if let Some(b) = base_slot {
        for extra in 0..3 * samples {
            let base_min = sweep_times[b].iter().cloned().fold(f64::INFINITY, f64::min);
            let converged = sweep_times
                .iter()
                .all(|ts| ts.iter().cloned().fold(f64::INFINITY, f64::min) <= base_min);
            if converged {
                break;
            }
            sweep_round(samples + extra, &mut sweep_times);
        }
    }
    let mut scaling: Vec<Value> = Vec::new();
    let mut by_threads: Vec<(usize, f64)> = Vec::new();
    for ((engine, &threads), mut times) in engines.iter().zip(&thread_sweep).zip(sweep_times) {
        times.sort_by(f64::total_cmp);
        let row = Sample {
            name: format!("synthetic_e{syn_edges}/hare{threads}/{syn_delta}"),
            threads,
            mean_s: times.iter().sum::<f64>() / times.len() as f64,
            min_s: times[0],
            median_s: times[times.len() / 2],
            samples: times.len(),
            rss_bytes: resident_set_bytes(),
        };
        // Throughput from min-of-samples: the most repeatable figure on
        // a shared CI box (the least-interrupted iteration).
        let throughput = syn.num_edges() as f64 / row.min_s;
        scaling.push(json!({
            "threads": threads,
            "effective_threads": engine.effective_threads(),
            "min_s": row.min_s,
            "median_s": row.median_s,
            "throughput_eps": throughput,
        }));
        by_threads.push((threads, throughput));
        rows.push(row);
    }
    // The clamp + sequential fallback guarantee oversubscribed configs
    // never regress below HARE/1 beyond timing noise. A >10% shortfall
    // is the old oversubscription regression, not noise — fail.
    if let Some(&(_, base)) = by_threads.iter().find(|(t, _)| *t == 1) {
        for &(threads, thr) in &by_threads {
            assert!(
                thr >= 0.9 * base,
                "HARE/{threads} throughput {thr:.0} e/s fell >10% below HARE/1 {base:.0} e/s"
            );
        }
    }

    // --- out-of-core: HARELG01 lane file streamed under a lane budget ---
    let full_lane_bytes = syn.num_edges() * hare::ooc::LANE_BYTES_PER_EDGE;
    let budget: usize = args.get_num("chunk-budget", full_lane_bytes / 8 + 1);
    let lane_path =
        std::env::temp_dir().join(format!("hare_exp_perf_{}.lanes", std::process::id()));
    temporal_graph::ooc::write_lane_file(&lane_path, syn.num_nodes(), syn.edges())
        .expect("write lane file");
    let src = hare::LaneFileSource::open(&lane_path).expect("open lane file");
    let cfg = hare::OocConfig {
        delta: syn_delta,
        budget_bytes: budget,
        lane_layout: temporal_graph::LaneLayout::Raw,
    };
    let (ooc_counts, ooc_stats) = hare::count_motifs_ooc(&src, cfg).expect("ooc count");
    assert_eq!(
        ooc_counts.matrix, syn_reference.matrix,
        "out-of-core counts disagree with in-RAM FAST"
    );
    assert_eq!(ooc_stats.forced_cuts, 0, "budget too small for the halo");
    assert!(
        ooc_stats.peak_resident_lane_bytes <= budget,
        "resident lanes {} exceed budget {budget}",
        ooc_stats.peak_resident_lane_bytes
    );
    let ooc_row = sample(
        format!("synthetic_e{syn_edges}/ooc_b{budget}/{syn_delta}"),
        1,
        samples,
        || {
            std::hint::black_box(hare::count_motifs_ooc(&src, cfg).expect("ooc count"));
        },
    );
    let ooc_doc = json!({
        "budget_bytes": budget,
        "full_lane_bytes": full_lane_bytes,
        "peak_resident_lane_bytes": ooc_stats.peak_resident_lane_bytes,
        "chunks": ooc_stats.chunks,
        "forced_cuts": ooc_stats.forced_cuts,
        "min_s": ooc_row.min_s,
    });
    rows.push(ooc_row);
    std::fs::remove_file(&lane_path).ok();

    // --- report ---
    println!(
        "{:<48} {:>8} {:>10} {:>10} {:>10} {:>8}",
        "bench", "threads", "mean", "min", "median", "samples"
    );
    for r in &rows {
        println!(
            "{:<48} {:>8} {:>10} {:>10} {:>10} {:>8}",
            r.name,
            r.threads,
            human(r.mean_s),
            human(r.min_s),
            human(r.median_s),
            r.samples
        );
    }

    let doc = json!({
        "schema": "hare-bench/perf/v2",
        "delta": delta,
        "quick": quick,
        "benches": rows
            .iter()
            .map(|r| {
                json!({
                    "name": r.name.clone(),
                    "threads": r.threads,
                    "mean_s": r.mean_s,
                    "min_s": r.min_s,
                    "median_s": r.median_s,
                    "samples": r.samples,
                    "rss_bytes": r.rss_bytes.map_or(Value::Null, Value::from),
                })
            })
            .collect::<Vec<Value>>(),
        "scaling": scaling,
        "ooc": ooc_doc,
    });
    std::fs::write(&out, format!("{doc}\n")).expect("write perf snapshot");
    println!("\nwrote {out}");
}
