//! Fig. 11: running time of the parallel algorithms vs #threads.
//!
//! Two comparisons per dataset, as in the paper's panels:
//! * HARE (all 36 motifs) vs parallel EX,
//! * HARE-Pair vs BTS-Pair (parallel).
//!
//! The paper sweeps 1..32 threads on a 40-core box; sweep what your
//! machine has with `--threads 1,2,4,...`. `thrd` follows the paper's
//! §V.F default (min degree of the top-20 nodes).
//!
//! ```text
//! cargo run --release -p hare-bench --bin exp_fig11 -- \
//!     [--max-edges N] [--delta N] [--threads 1,2,4,8] [--datasets ...] [--json]
//! ```

use hare::{Hare, HareConfig};
use hare_baselines::bts::BtsConfig;
use hare_bench::{emit_json, human_secs, time, Args, Workloads};

const DEFAULT_DATASETS: [&str; 12] = [
    "StackOverflow",
    "WikiTalk",
    "MathOverflow",
    "SuperUser",
    "FBWall",
    "AskUbuntu",
    "SMS-A",
    "Act-mooc",
    "IA-online-ads",
    "Rec-MovieLens",
    "Soc-bitcoin",
    "RedditComments",
];

fn main() {
    let args = Args::parse();
    let w = Workloads::from_args(&args, 150_000, 600);
    let specs = w.datasets(&args, &DEFAULT_DATASETS);
    let threads = args.get_list("threads", &[1usize, 2, 4, 8, 16, 32]);

    println!(
        "Fig. 11: parallel running time (seconds) vs #threads, delta = {}s",
        w.delta
    );

    for spec in &specs {
        let (g, scale) = w.generate(spec);
        println!("\n{} (scale 1/{scale}: {} edges)", spec.name, g.num_edges());
        println!(
            "{:>8} | {:>10} {:>10} | {:>10} {:>10}",
            "#threads", "HARE", "EX(par)", "HARE-Pair", "BTS-Pair"
        );
        let mut reference: Option<hare::MotifMatrix> = None;
        for &n in &threads {
            let engine = Hare::new(HareConfig {
                num_threads: n,
                ..HareConfig::default()
            });
            let (hare_counts, t_hare) = time(|| engine.count_all(&g, w.delta));
            let (ex_counts, t_ex) = time(|| hare_baselines::ex::count_all_parallel(&g, w.delta, n));
            assert_eq!(hare_counts.matrix, ex_counts);
            match &reference {
                Some(r) => assert_eq!(*r, hare_counts.matrix, "thread-count changed results"),
                None => reference = Some(hare_counts.matrix),
            }
            let (_, t_hare_pair) = time(|| engine.count_pair(&g, w.delta));
            let (_, t_bts) = time(|| {
                hare_baselines::bts_pair_estimate_parallel(&g, w.delta, &BtsConfig::default(), n)
            });
            println!(
                "{:>8} | {:>10} {:>10} | {:>10} {:>10}",
                n,
                human_secs(t_hare),
                human_secs(t_ex),
                human_secs(t_hare_pair),
                human_secs(t_bts)
            );
            if w.json {
                emit_json(&[
                    ("experiment", "fig11".into()),
                    ("dataset", spec.name.into()),
                    ("scale", scale.into()),
                    ("threads", n.into()),
                    ("hare_s", t_hare.into()),
                    ("ex_par_s", t_ex.into()),
                    ("hare_pair_s", t_hare_pair.into()),
                    ("bts_pair_s", t_bts.into()),
                ]);
            }
        }
    }
    println!(
        "\nnote: results are asserted identical across thread counts (HARE is deterministic)."
    );
}
