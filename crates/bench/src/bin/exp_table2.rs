//! Table II: basic statistics of the sixteen temporal networks.
//!
//! Prints the paper's reported statistics next to the generated
//! stand-in's statistics and the scale factor applied.
//!
//! ```text
//! cargo run --release -p hare-bench --bin exp_table2 -- [--max-edges N] [--json]
//! ```

use hare_bench::{emit_json, Args, Workloads};
use temporal_graph::stats::GraphStats;

fn main() {
    let args = Args::parse();
    let w = Workloads::from_args(&args, 200_000, 600);

    println!("Table II: dataset statistics (paper vs generated stand-in)");
    println!("{:-<110}", "");
    println!(
        "{:<16} {:>12} {:>13} {:>10} | {:>6} {:>10} {:>12} {:>10} {:>9}",
        "Dataset",
        "paper |V|",
        "paper |E|",
        "span(d)",
        "scale",
        "gen |V|",
        "gen |E|",
        "span(d)",
        "max deg"
    );
    println!("{:-<110}", "");

    for spec in hare_datasets::all() {
        let (g, scale) = w.generate(&spec);
        let s = GraphStats::compute(&g);
        println!(
            "{:<16} {:>12} {:>13} {:>10.0} | {:>6} {:>10} {:>12} {:>10.0} {:>9}",
            spec.name,
            spec.paper_nodes,
            spec.paper_edges,
            spec.paper_span_days,
            scale,
            s.num_nodes,
            s.num_edges,
            s.time_span_days(),
            s.max_degree
        );
        if w.json {
            emit_json(&[
                ("experiment", "table2".into()),
                ("dataset", spec.name.into()),
                ("paper_nodes", spec.paper_nodes.into()),
                ("paper_edges", spec.paper_edges.into()),
                ("paper_span_days", spec.paper_span_days.into()),
                ("scale", scale.into()),
                ("gen_nodes", s.num_nodes.into()),
                ("gen_edges", s.num_edges.into()),
                ("gen_span_days", s.time_span_days().into()),
                ("gen_max_degree", s.max_degree.into()),
            ]);
        }
    }
    println!("{:-<110}", "");
    println!(
        "note: stand-ins are generated at 1/scale of the paper's size with the time span preserved,\n\
         so per-δ event densities match the full datasets (DESIGN.md §3)."
    );
}
