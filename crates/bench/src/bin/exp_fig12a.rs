//! Fig. 12(a): parameter sensitivity — running time vs time constraint δ.
//!
//! Sweeps δ ∈ {7200, 14400, 21600, 28800} seconds (the paper's 2h..8h
//! range) on MathOverflow, AskUbuntu and SuperUser, comparing HARE with
//! parallel EX at a fixed thread count.
//!
//! ```text
//! cargo run --release -p hare-bench --bin exp_fig12a -- \
//!     [--max-edges N] [--threads N] [--deltas 7200,14400,...] [--json]
//! ```

use hare::{Hare, HareConfig};
use hare_bench::{emit_json, human_secs, time, Args, Workloads};

const DEFAULT_DATASETS: [&str; 3] = ["MathOverflow", "AskUbuntu", "SuperUser"];

fn main() {
    let args = Args::parse();
    let w = Workloads::from_args(&args, 150_000, 600);
    let specs = w.datasets(&args, &DEFAULT_DATASETS);
    let deltas = args.get_list("deltas", &[7_200i64, 14_400, 21_600, 28_800]);
    let threads = args.get_num("threads", 32usize);

    println!("Fig. 12(a): running time vs delta, #threads = {threads}");
    for spec in &specs {
        let (g, scale) = w.generate(spec);
        println!("\n{} (scale 1/{scale}: {} edges)", spec.name, g.num_edges());
        println!(
            "{:>10} | {:>10} {:>10} {:>8}",
            "delta(s)", "HARE", "EX(par)", "ratio"
        );
        for &delta in &deltas {
            let engine = Hare::new(HareConfig {
                num_threads: threads,
                ..HareConfig::default()
            });
            let (hare_counts, t_hare) = time(|| engine.count_all(&g, delta));
            let (ex_counts, t_ex) =
                time(|| hare_baselines::ex::count_all_parallel(&g, delta, threads));
            assert_eq!(hare_counts.matrix, ex_counts);
            println!(
                "{:>10} | {:>10} {:>10} {:>7.1}x",
                delta,
                human_secs(t_hare),
                human_secs(t_ex),
                t_ex / t_hare
            );
            if w.json {
                emit_json(&[
                    ("experiment", "fig12a".into()),
                    ("dataset", spec.name.into()),
                    ("delta", delta.into()),
                    ("threads", threads.into()),
                    ("hare_s", t_hare.into()),
                    ("ex_par_s", t_ex.into()),
                ]);
            }
        }
    }
}
