//! Bounded-memory streaming estimator harness (`hare::stream_sample`):
//! replay CollegeMsg chronologically through `StreamingEstimator` under
//! a sweep of byte budgets expressed as fractions of the full retained
//! footprint, and score the per-budget accuracy, CI coverage, adaptive
//! probability, and budget compliance against the exact sliding-window
//! engine — plus batch comparison rows for the EWS and BTS sampling
//! baselines on the same graph.
//!
//! The output schema (`hare-bench/stream/v1`) is documented in the
//! `hare_bench` crate docs and `docs/ESTIMATORS.md`. In-binary asserts
//! make a CI run fail on correctness regressions:
//!
//! * the full-footprint budget is the degeneracy: every estimate is the
//!   exact count, bit for bit after integer round-trip;
//! * accounted retained bytes never exceed the budget at *any* tick of
//!   *any* run (checked after every push);
//! * at the 1/8-footprint budget the aggregate 95%-CI coverage over the
//!   scored seeds is ≥ 0.90 (full mode; `--quick` applies a looser
//!   regression floor since it scores far fewer seeds).
//!
//! ```text
//! cargo run --release -p hare-bench --bin exp_stream -- \
//!     [--out BENCH_STREAM.json] [--delta N] [--scale N] [--seeds N] \
//!     [--fracs 1,2,8,32] [--window-factor C] [--quick]
//! ```
//!
//! `--quick` drops to 8 scoring seeds on the CollegeMsg/8 workload —
//! the CI smoke configuration.

use hare::stream_sample::{StreamSampleConfig, StreamingEstimator, EDGE_BYTES};
use hare::windowed::WindowedCounter;
use hare_baselines::{bts::BtsConfig, ews::EwsConfig};
use hare_bench::time;
use serde_json::{json, Value};
use temporal_graph::{NodeId, TemporalGraph, Timestamp};

/// Minimum exact count for a motif to enter the gated coverage metric:
/// below this the 95% normal interval is not claimed (rare-motif
/// coverage is bounded by the keep probability itself, not the CI).
const SUPPORT: u64 = 30;

struct Row {
    frac: u64,
    budget_bytes: u64,
    mean_s: f64,
    final_prob: f64,
    max_retained_bytes: u64,
    mean_rel_err: f64,
    coverage: f64,
    coverage_supported: f64,
    mean_total: f64,
}

fn arrivals_of(g: &TemporalGraph) -> Vec<(NodeId, NodeId, Timestamp)> {
    let mut edges: Vec<(NodeId, NodeId, Timestamp)> =
        g.edges().iter().map(|e| (e.src, e.dst, e.t)).collect();
    edges.sort_by_key(|&(_, _, t)| t);
    edges
}

/// Replay the whole stream; returns the final tick estimates and the
/// maximum accounted retained bytes observed after any push.
fn replay(
    arrivals: &[(NodeId, NodeId, Timestamp)],
    cfg: StreamSampleConfig,
) -> (hare::stream_sample::StreamEstimates, u64) {
    let budget = cfg.budget_bytes;
    let mut est = StreamingEstimator::new(cfg);
    let mut max_retained = 0u64;
    for &(s, d, t) in arrivals {
        est.push(s, d, t).expect("chronological replay");
        let retained = est.retained_bytes();
        assert!(
            retained <= budget,
            "budget violated mid-stream: {retained} > {budget} at t={t}"
        );
        max_retained = max_retained.max(retained);
    }
    est.flush();
    let retained = est.retained_bytes();
    assert!(retained <= budget, "budget violated at flush");
    max_retained = max_retained.max(retained);
    (est.estimates(), max_retained)
}

fn main() {
    let args = hare_bench::Args::parse();
    let quick = args.flag("quick");
    let seeds: u64 = args.get_num("seeds", if quick { 8 } else { 50 });
    let out = args.get("out").unwrap_or("BENCH_STREAM.json").to_string();
    let delta: i64 = args.get_num("delta", 600);
    let scale: usize = args.get_num("scale", 1);
    let window_factor: i64 = args.get_num("window-factor", 8);
    let confidence: f64 = args.get_num("ci", 0.95);
    let fracs: Vec<u64> = args.get_list("fracs", &[1, 2, 8, 32]);

    let spec = hare_datasets::by_name("CollegeMsg").expect("registry");
    let g = spec.generate(scale);
    let arrivals = arrivals_of(&g);
    // A window covering the whole stream: nothing expires, so the full
    // retained footprint is every accepted edge and the final tick is
    // comparable to the batch count.
    let window: Timestamp = g.time_span().max(delta) + delta;
    let footprint = arrivals.len() as u64 * EDGE_BYTES;

    // The exact reference: the sliding-window engine over the same
    // replay (bit-compatible tie order with the estimator's ingestion).
    let exact = {
        let mut wc = WindowedCounter::new(delta, window);
        for &(s, d, t) in &arrivals {
            wc.push(s, d, t).expect("chronological replay");
        }
        wc.flush();
        wc.counts()
    };
    let exact_total = exact.total() as f64;

    let cfg = |budget: u64, seed: u64| StreamSampleConfig {
        window_factor,
        confidence,
        seed,
        ..StreamSampleConfig::new(delta, window, budget)
    };

    let mut rows: Vec<Row> = Vec::new();
    for &frac in &fracs {
        let budget = (footprint / frac).max(EDGE_BYTES);
        let (reference, _) = replay(&arrivals, cfg(budget, 0x5EED));
        let (_, mean_s) = time(|| {
            std::hint::black_box(replay(&arrivals, cfg(budget, 0x5EED)));
        });

        let mut rel_sum = 0.0;
        let mut cover_sum = 0.0;
        let mut total_sum = 0.0;
        let mut max_retained = 0u64;
        let (mut sup_covered, mut sup_cells) = (0u64, 0u64);
        for seed in 0..seeds {
            let (tick, retained) = replay(&arrivals, cfg(budget, seed));
            max_retained = max_retained.max(retained);
            cover_sum += tick.covered_fraction(&exact);
            total_sum += tick.total_estimate();
            let (mut err, mut cells) = (0.0, 0u32);
            for (m, n) in exact.iter() {
                if n > 0 {
                    cells += 1;
                    err += (tick.get(m).estimate - n as f64).abs() / n as f64;
                }
                // Normal intervals are only claimed for motifs with
                // enough mass for the CLT to bite (docs/ESTIMATORS.md):
                // a count-1 motif at p = 1/8 is estimated as 0 seven
                // times in eight, so no unbiased sampler's interval can
                // cover it 95% of the time.
                if n >= SUPPORT {
                    sup_cells += 1;
                    sup_covered += u64::from(tick.get(m).covers(n));
                }
            }
            rel_sum += err / f64::from(cells.max(1));
        }

        if frac == 1 {
            // Degeneracy: the full footprint fits, so the estimator must
            // retain everything and reproduce the exact counts.
            assert_eq!(reference.prob, 1.0, "full budget must never sample");
            assert_eq!(
                reference.as_exact(),
                Some(exact),
                "full-budget run must be bit-identical to the exact window"
            );
            assert_eq!(rel_sum, 0.0, "full budget must have zero error");
        }

        rows.push(Row {
            frac,
            budget_bytes: budget,
            mean_s,
            final_prob: reference.prob,
            max_retained_bytes: max_retained,
            mean_rel_err: rel_sum / seeds as f64,
            coverage: cover_sum / seeds as f64,
            coverage_supported: if sup_cells == 0 {
                1.0
            } else {
                sup_covered as f64 / sup_cells as f64
            },
            mean_total: total_sum / seeds as f64,
        });
    }

    // Batch baseline comparison rows on the same graph: the established
    // samplers this estimator is benched against (EWS: Wang et al. CIKM
    // 2020 edge sampling; BTS: pair-motif timestamp sampling).
    let batch_exact = hare::count_motifs(&g, delta);
    let ews_prob = 0.5;
    let mut ews_err = 0.0;
    let (_, ews_s) = time(|| {
        std::hint::black_box(hare_baselines::ews_estimate(
            &g,
            delta,
            &EwsConfig {
                edge_prob: ews_prob,
                seed: 0,
            },
        ));
    });
    for seed in 0..seeds {
        let est = hare_baselines::ews_estimate(
            &g,
            delta,
            &EwsConfig {
                edge_prob: ews_prob,
                seed,
            },
        );
        ews_err += est.mean_relative_error(&batch_exact.matrix);
    }
    let pair_exact = hare::count_pair_motifs(&g, delta).total() as f64;
    let bts_cfg = |seed: u64| BtsConfig {
        window_factor: 8,
        sample_prob: 0.6,
        seed,
    };
    let (_, bts_s) = time(|| {
        std::hint::black_box(hare_baselines::bts_pair_estimate(&g, delta, &bts_cfg(0)));
    });
    let bts_mean: f64 = (0..seeds)
        .map(|seed| hare_baselines::bts_pair_estimate(&g, delta, &bts_cfg(seed)).total())
        .sum::<f64>()
        / seeds as f64;
    let baselines = vec![
        json!({
            "name": "ews",
            "edge_prob": ews_prob,
            "mean_s": ews_s,
            "mean_rel_err": ews_err / seeds as f64,
        }),
        json!({
            "name": "bts",
            "window_factor": 8,
            "sample_prob": 0.6,
            "mean_s": bts_s,
            "pair_total_exact": pair_exact,
            "pair_total_mean": bts_mean,
        }),
    ];

    println!(
        "CollegeMsg/{scale}  delta={delta}  window={window}  c={window_factor}  \
         ci={confidence}  footprint={footprint}B  exact_total={exact_total}  \
         ({seeds} seeds per budget)"
    );
    println!(
        "{:>6} {:>12} {:>10} {:>7} {:>13} {:>13} {:>10} {:>10}",
        "1/frac", "budget", "mean", "prob", "max-retained", "mean-rel-err", "coverage", "cov>=30"
    );
    for r in &rows {
        println!(
            "{:>6} {:>11}B {:>10} {:>7.3} {:>12}B {:>13.4} {:>10.3} {:>10.3}",
            format!("1/{}", r.frac),
            r.budget_bytes,
            hare_bench::human_secs(r.mean_s),
            r.final_prob,
            r.max_retained_bytes,
            r.mean_rel_err,
            r.coverage,
            r.coverage_supported
        );
    }

    // The headline acceptance gate: at the 1/8-footprint budget the
    // normal intervals must be honest. Quick mode scores too few seeds
    // for the aggregate to be stable, so it gets a regression floor.
    if let Some(r) = rows.iter().find(|r| r.frac == 8) {
        let floor = if quick { 0.5 } else { 0.90 };
        assert!(
            r.coverage_supported >= floor,
            "1/8-budget CI coverage {:.3} fell below {floor} (all-motif {:.3})",
            r.coverage_supported,
            r.coverage
        );
        let drift = (r.mean_total - exact_total).abs() / exact_total;
        assert!(
            drift < 0.15,
            "1/8-budget mean total {:.1} drifts from exact {exact_total:.1} ({drift:.3})",
            r.mean_total
        );
    }

    let doc = json!({
        "schema": "hare-bench/stream/v1",
        "dataset": "CollegeMsg",
        "scale": scale,
        "delta": delta,
        "window": window,
        "window_factor": window_factor,
        "confidence": confidence,
        "seeds": seeds,
        "quick": quick,
        "edges": arrivals.len(),
        "footprint_bytes": footprint,
        "exact_total": exact.total(),
        "rows": rows
            .iter()
            .map(|r| {
                json!({
                    "frac": r.frac,
                    "budget_bytes": r.budget_bytes,
                    "mean_s": r.mean_s,
                    "final_prob": r.final_prob,
                    "max_retained_bytes": r.max_retained_bytes,
                    "mean_rel_err": r.mean_rel_err,
                    "coverage": r.coverage,
                    "coverage_supported": r.coverage_supported,
                    "support_min_count": SUPPORT,
                    "mean_total": r.mean_total,
                })
            })
            .collect::<Vec<Value>>(),
        "baselines": baselines,
    });
    std::fs::write(&out, format!("{doc}\n")).expect("write stream snapshot");
    println!("\nwrote {out}");
}
