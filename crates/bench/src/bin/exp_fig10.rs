//! Fig. 10: counts of motif instances of all 36 motifs, FAST vs EX.
//!
//! The paper shows, for four datasets, two 6×6 heat maps (EX in blue,
//! FAST in red) that must be identical. This binary prints both matrices
//! in the figure's K/M notation and asserts cell-for-cell equality.
//!
//! ```text
//! cargo run --release -p hare-bench --bin exp_fig10 -- \
//!     [--max-edges N] [--delta N] [--datasets a,b,c,d] [--json]
//! ```

use hare::Motif;
use hare_bench::{emit_json, human_count, Args, Workloads};

const DEFAULT_DATASETS: [&str; 4] = ["CollegeMsg", "SuperUser", "WikiTalk", "StackOverflow"];

fn print_matrix(label: &str, mx: &hare::MotifMatrix) {
    println!("  {label}:");
    for r in 1..=6u8 {
        print!("    ");
        for c in 1..=6u8 {
            print!("{:>9}", human_count(mx.get(Motif::new(r, c))));
        }
        println!();
    }
}

fn main() {
    let args = Args::parse();
    let w = Workloads::from_args(&args, 150_000, 600);
    let specs = w.datasets(&args, &DEFAULT_DATASETS);

    println!(
        "Fig. 10: motif instance counts, delta = {}s (cell (i,j) = M_ij, Fig. 2 layout)",
        w.delta
    );

    for spec in &specs {
        let (g, scale) = w.generate(spec);
        let ex = hare_baselines::ex::count_all(&g, w.delta);
        let fast = hare::count_motifs(&g, w.delta);

        println!("\n{} (scale 1/{scale}: {} edges)", spec.name, g.num_edges());
        print_matrix("EX", &ex);
        print_matrix("FAST", &fast.matrix);
        let agree = ex == fast.matrix;
        println!(
            "  agreement: {}  (total instances: {})",
            if agree {
                "EXACT — all 36 cells equal"
            } else {
                "MISMATCH"
            },
            human_count(fast.total())
        );
        assert!(agree, "FAST and EX must agree on {}", spec.name);

        if w.json {
            for (mo, n) in fast.matrix.iter() {
                emit_json(&[
                    ("experiment", "fig10".into()),
                    ("dataset", spec.name.into()),
                    ("motif", mo.to_string().into()),
                    ("count", n.into()),
                ]);
            }
        }
    }
}
