//! Table III: single-threaded running time of all algorithms.
//!
//! Columns mirror the paper: EX / EWS / FAST (+speedup over EX),
//! BT-Pair / BTS-Pair / FAST-Pair (+speedup over BT-Pair), and
//! 2SCENT-Tri / FAST-Tri (+speedup over 2SCENT-Tri); δ = 600s, 1 thread.
//!
//! ```text
//! cargo run --release -p hare-bench --bin exp_table3 -- \
//!     [--max-edges N] [--delta N] [--datasets a,b,c] [--json]
//! ```

use hare_baselines::{bts::BtsConfig, ews::EwsConfig};
use hare_bench::{emit_json, human_secs, time, Args, Workloads};

const DEFAULT_DATASETS: [&str; 16] = [
    "Email-Eu",
    "CollegeMsg",
    "Bitcoinotc",
    "Bitcoinalpha",
    "Act-mooc",
    "SMS-A",
    "FBWall",
    "MathOverflow",
    "AskUbuntu",
    "SuperUser",
    "WikiTalk",
    "IA-online-ads",
    "StackOverflow",
    "Rec-MovieLens",
    "Soc-bitcoin",
    "RedditComments",
];

fn main() {
    let args = Args::parse();
    let w = Workloads::from_args(&args, 150_000, 600);
    let specs = w.datasets(&args, &DEFAULT_DATASETS);

    println!(
        "Table III: running time in seconds, delta = {}s, #threads = 1 (scale cap {} edges)",
        w.delta, w.max_edges
    );
    println!("{:-<132}", "");
    println!(
        "{:<15} {:>5} | {:>9} {:>9} {:>9} {:>6} | {:>9} {:>9} {:>9} {:>6} | {:>10} {:>9} {:>6}",
        "Dataset",
        "scale",
        "EX",
        "EWS",
        "FAST",
        "spd",
        "BT-Pair",
        "BTS-Pair",
        "FAST-Pr",
        "spd",
        "2SCENT-Tri",
        "FAST-Tri",
        "spd"
    );
    println!("{:-<132}", "");

    for spec in &specs {
        let (g, scale) = w.generate(spec);
        let delta = w.delta;

        // --- full 36-motif counting ---
        let (ex_counts, t_ex) = time(|| hare_baselines::ex::count_all(&g, delta));
        let (_, t_ews) = time(|| hare_baselines::ews_estimate(&g, delta, &EwsConfig::default()));
        let (fast_counts, t_fast) = time(|| hare::count_motifs(&g, delta));
        assert_eq!(
            ex_counts, fast_counts.matrix,
            "EX and FAST disagree on {}",
            spec.name
        );

        // --- pair motifs only ---
        let (bt_pairs, t_bt) = time(|| hare_baselines::bt_count_pairs(&g, delta));
        let (_, t_bts) =
            time(|| hare_baselines::bts_pair_estimate(&g, delta, &BtsConfig::default()));
        let (fast_pairs, t_fastp) = time(|| hare::count_pair_motifs(&g, delta));
        for mo in hare::Motif::all().filter(|m| m.category() == hare::MotifCategory::Pair) {
            assert_eq!(bt_pairs.get(mo), fast_pairs.get(mo));
        }

        // --- triangle motifs only ---
        // 2SCENT enumerates all simple temporal cycles (we bound length
        // at 10 as its evaluation does); only the 3-cycles are a grid
        // motif, which is the paper's point about this baseline.
        let (census, t_2scent) = time(|| hare_baselines::two_scent_census(&g, delta, 10));
        let (fast_tris, t_fastt) = time(|| hare::count_triangle_motifs(&g, delta));
        assert_eq!(census.triangles(), fast_tris.get(hare::motif::m(2, 6)));

        println!(
            "{:<15} {:>5} | {:>9} {:>9} {:>9} {:>5.1}x | {:>9} {:>9} {:>9} {:>5.1}x | {:>10} {:>9} {:>5.1}x",
            spec.name,
            scale,
            human_secs(t_ex),
            human_secs(t_ews),
            human_secs(t_fast),
            t_ex / t_fast,
            human_secs(t_bt),
            human_secs(t_bts),
            human_secs(t_fastp),
            t_bt / t_fastp,
            human_secs(t_2scent),
            human_secs(t_fastt),
            t_2scent / t_fastt,
        );
        if w.json {
            emit_json(&[
                ("experiment", "table3".into()),
                ("dataset", spec.name.into()),
                ("scale", scale.into()),
                ("delta", delta.into()),
                ("ex_s", t_ex.into()),
                ("ews_s", t_ews.into()),
                ("fast_s", t_fast.into()),
                ("bt_pair_s", t_bt.into()),
                ("bts_pair_s", t_bts.into()),
                ("fast_pair_s", t_fastp.into()),
                ("two_scent_tri_s", t_2scent.into()),
                ("fast_tri_s", t_fastt.into()),
                ("speedup_fast_vs_ex", (t_ex / t_fast).into()),
                ("speedup_pair", (t_bt / t_fastp).into()),
                ("speedup_tri", (t_2scent / t_fastt).into()),
            ]);
        }
    }
    println!("{:-<132}", "");
    println!("exactness asserted per row: EX == FAST, BT-Pair == FAST-Pair, 2SCENT == FAST M26.");
}
