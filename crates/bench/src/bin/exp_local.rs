//! Per-node local-profile harness: time the fused single-scan
//! attribution driver (`hare::NodeProfiles` over `fingerprint::
//! profile_of`, one δ-window pass per center) against the pre-fusion
//! per-kernel path (`profile_of_separate`: separate FAST-Star and
//! FAST-Tri drives per node), and the parallel HARE driver across
//! thread counts.
//!
//! The output schema (`hare-bench/local/v1`) mirrors the other exp_*
//! snapshots. The binary also asserts the refactor's contracts — the
//! fused path is bit-identical to the per-kernel path on every node,
//! and the parallel driver is bit-identical across thread counts — so
//! a CI run fails on correctness regressions, not just slowdowns.
//!
//! ```text
//! cargo run --release -p hare-bench --bin exp_local -- \
//!     [--out BENCH_LOCAL.json] [--delta N] [--scale N] \
//!     [--samples N] [--threads 1,2,4] [--quick]
//! ```
//!
//! `--quick` drops to 3 timing samples and the CollegeMsg/8 workload —
//! the CI smoke configuration.

use hare::NeighborScratch;
use hare_bench::time;
use serde_json::{json, Value};

fn mean_time(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up (untimed)
    (0..samples)
        .map(|_| {
            let ((), s) = time(&mut f);
            s
        })
        .sum::<f64>()
        / samples as f64
}

fn main() {
    let args = hare_bench::Args::parse();
    let quick = args.flag("quick");
    let samples: usize = args.get_num("samples", if quick { 3 } else { 10 });
    let out = args.get("out").unwrap_or("BENCH_LOCAL.json").to_string();
    let delta: i64 = args.get_num("delta", 600);
    let scale: usize = args.get_num("scale", if quick { 8 } else { 1 });
    let threads: Vec<usize> = args
        .get_list("threads", &[1.0, 2.0, 4.0])
        .into_iter()
        .map(|t| t as usize)
        .collect();

    let spec = hare_datasets::by_name("CollegeMsg").expect("registry");
    let g = spec.generate(scale);

    // Contract first: the fused single-scan attribution must equal the
    // pre-fusion per-kernel attribution on every node, bit for bit.
    let mut scratch = NeighborScratch::new(g.num_nodes());
    for u in g.node_ids() {
        assert_eq!(
            hare::fingerprint::profile_of(&g, u, delta, &mut scratch),
            hare::fingerprint::profile_of_separate(&g, u, delta, &mut scratch),
            "fused vs per-kernel profile diverged on node {u}"
        );
    }

    // Sequential timing: fused single-scan vs legacy per-kernel drive.
    let fused_s = mean_time(samples, || {
        let mut scratch = NeighborScratch::new(g.num_nodes());
        for u in g.node_ids() {
            std::hint::black_box(hare::fingerprint::profile_of(&g, u, delta, &mut scratch));
        }
    });
    let separate_s = mean_time(samples, || {
        let mut scratch = NeighborScratch::new(g.num_nodes());
        for u in g.node_ids() {
            std::hint::black_box(hare::fingerprint::profile_of_separate(
                &g,
                u,
                delta,
                &mut scratch,
            ));
        }
    });

    // Parallel HARE driver across thread counts — bit-identical results
    // are asserted against the single-thread run.
    let reference = hare::NodeProfiles::compute(&g, delta, 1);
    let mut rows: Vec<(usize, f64)> = Vec::new();
    for &t in &threads {
        assert_eq!(
            hare::NodeProfiles::compute(&g, delta, t),
            reference,
            "parallel driver diverged at {t} threads"
        );
        let s = mean_time(samples, || {
            std::hint::black_box(hare::NodeProfiles::compute(&g, delta, t));
        });
        rows.push((t, s));
    }

    println!(
        "CollegeMsg/{scale}  delta={delta}  nodes={}  participating={}  ({samples} samples)",
        g.num_nodes(),
        reference.len()
    );
    println!(
        "sequential: fused {}  per-kernel {}  ({:.2}x)",
        hare_bench::human_secs(fused_s),
        hare_bench::human_secs(separate_s),
        separate_s / fused_s
    );
    println!("{:>8} {:>10} {:>9}", "threads", "mean", "speedup");
    for &(t, s) in &rows {
        println!(
            "{t:>8} {:>10} {:>8.2}x",
            hare_bench::human_secs(s),
            fused_s / s
        );
    }

    let doc = json!({
        "schema": "hare-bench/local/v1",
        "dataset": "CollegeMsg",
        "scale": scale,
        "delta": delta,
        "samples": samples,
        "quick": quick,
        "nodes": g.num_nodes(),
        "participating": reference.len(),
        "fused_mean_s": fused_s,
        "separate_mean_s": separate_s,
        "fused_speedup": separate_s / fused_s,
        "parallel": rows
            .iter()
            .map(|&(t, s)| {
                json!({
                    "threads": t,
                    "mean_s": s,
                    "speedup_vs_sequential_fused": fused_s / s,
                })
            })
            .collect::<Vec<Value>>(),
    });
    std::fs::write(&out, format!("{doc}\n")).expect("write local-profile snapshot");
    println!("\nwrote {out}");
}
