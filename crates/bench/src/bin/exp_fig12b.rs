//! Fig. 12(b): parameter sensitivity — running time vs the degree
//! threshold `thrd` of the hierarchical parallel framework.
//!
//! The paper sweeps absolute thresholds (10K..30K) on WikiTalk plus two
//! ablations: `dynamic` (inter-node dynamic scheduling only, no
//! intra-node parallelism) and `without thrd` (static scheduling only).
//! Because the stand-in runs at a reduced scale, absolute thresholds are
//! expressed here as the degree of the k-th largest node (`--topk`
//! list); `--thrds` sets absolute values instead, matching the paper
//! when run at full scale.
//!
//! ```text
//! cargo run --release -p hare-bench --bin exp_fig12b -- \
//!     [--max-edges N] [--delta N] [--threads 1,2,4] [--topk 5,10,20,50] [--json]
//! ```

use hare::{DegreeThreshold, Hare, HareConfig, Scheduling};
use hare_bench::{emit_json, human_secs, time, Args, Workloads};

fn main() {
    let args = Args::parse();
    let w = Workloads::from_args(&args, 300_000, 600);
    let spec = hare_datasets::by_name("WikiTalk").unwrap();
    let (g, scale) = w.generate(&spec);
    let threads = args.get_list("threads", &[1usize, 2, 4, 8, 16, 32]);

    // Threshold policies under test.
    let mut policies: Vec<(String, DegreeThreshold, Scheduling)> = Vec::new();
    if let Some(list) = args.get("thrds") {
        for t in list
            .split(',')
            .filter_map(|s| s.trim().parse::<usize>().ok())
        {
            policies.push((
                format!("thrd={t}"),
                DegreeThreshold::Fixed(t),
                Scheduling::Dynamic,
            ));
        }
    } else {
        for k in args.get_list("topk", &[5usize, 10, 20, 50]) {
            policies.push((
                format!("thrd=top{k}"),
                DegreeThreshold::TopK(k),
                Scheduling::Dynamic,
            ));
        }
    }
    policies.push((
        "dynamic".to_string(),
        DegreeThreshold::Disabled,
        Scheduling::Dynamic,
    ));
    policies.push((
        "without thrd".to_string(),
        DegreeThreshold::Disabled,
        Scheduling::Static,
    ));

    println!(
        "Fig. 12(b): WikiTalk stand-in (scale 1/{scale}: {} edges), delta = {}s",
        g.num_edges(),
        w.delta
    );
    print!("{:>8} |", "#threads");
    for (name, _, _) in &policies {
        print!(" {name:>13}");
    }
    println!();

    let mut reference: Option<hare::MotifMatrix> = None;
    for &n in &threads {
        print!("{n:>8} |");
        for (name, thrd, sched) in &policies {
            let engine = Hare::new(HareConfig {
                num_threads: n,
                degree_threshold: *thrd,
                scheduling: *sched,
                ..HareConfig::default()
            });
            let (counts, secs) = time(|| engine.count_all(&g, w.delta));
            match &reference {
                Some(r) => assert_eq!(*r, counts.matrix, "policy changed results"),
                None => reference = Some(counts.matrix),
            }
            print!(" {:>13}", human_secs(secs));
            if w.json {
                emit_json(&[
                    ("experiment", "fig12b".into()),
                    ("threads", n.into()),
                    ("policy", name.as_str().into()),
                    ("seconds", secs.into()),
                ]);
            }
        }
        println!();
    }
    println!("\nresolved top-k thresholds on this graph:");
    for k in [5usize, 10, 20, 50] {
        println!(
            "  top{k:<3} -> degree {}",
            temporal_graph::stats::default_degree_threshold(&g, k)
        );
    }
}
