//! Accuracy-vs-speedup harness for the interval-sampling estimator
//! (`hare::sample`): sweep the window keep probability `p`, measure
//! wall time against exact FAST, and score estimation error and
//! confidence-interval coverage against the exact counts over many
//! sampling seeds.
//!
//! The output schema (`hare-bench/approx/v1`) is documented in the
//! `hare_bench` crate docs and `docs/ESTIMATORS.md`. The binary also
//! asserts the estimator's contracts (`p = 1` bit-identical to exact,
//! coverage close to the confidence level), so a CI run fails on
//! correctness regressions, not just slowdowns.
//!
//! ```text
//! cargo run --release -p hare-bench --bin exp_approx -- \
//!     [--out BENCH_APPROX.json] [--probs 0.05,0.1,...] [--delta N] \
//!     [--scale N] [--samples N] [--seeds N] [--window-factor C] [--quick]
//! ```
//!
//! `--quick` drops to 3 timing samples, 8 scoring seeds and the
//! CollegeMsg/8 workload — the CI smoke configuration.

use hare::sample::{SampleConfig, SampledCounter};
use hare_bench::time;
use serde_json::{json, Value};

struct Row {
    prob: f64,
    mean_s: f64,
    speedup: f64,
    mean_rel_err: f64,
    max_rel_err: f64,
    coverage: f64,
    windows_sampled: usize,
    windows_total: usize,
}

fn mean_time(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up (untimed)
    (0..samples)
        .map(|_| {
            let ((), s) = time(&mut f);
            s
        })
        .sum::<f64>()
        / samples as f64
}

fn main() {
    let args = hare_bench::Args::parse();
    let quick = args.flag("quick");
    let samples: usize = args.get_num("samples", if quick { 3 } else { 10 });
    let seeds: u64 = args.get_num("seeds", if quick { 8 } else { 25 });
    let out = args.get("out").unwrap_or("BENCH_APPROX.json").to_string();
    let delta: i64 = args.get_num("delta", 600);
    let scale: usize = args.get_num("scale", if quick { 8 } else { 1 });
    let window_factor: i64 = args.get_num("window-factor", 10);
    let confidence: f64 = args.get_num("ci", 0.95);
    // The scale-8 quick graph is too small for the extreme-p tail to
    // say anything (a handful of kept windows per run), so CI smokes
    // only the moderate probabilities plus the exactness degeneracy.
    let default_probs: &[f64] = if quick {
        &[0.5, 1.0]
    } else {
        &[0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0]
    };
    let probs: Vec<f64> = args.get_list("probs", default_probs);

    let spec = hare_datasets::by_name("CollegeMsg").expect("registry");
    let g = spec.generate(scale);
    let exact = hare::count_motifs(&g, delta);
    let exact_s = mean_time(samples, || {
        std::hint::black_box(hare::count_motifs(&g, delta));
    });

    let cfg = |prob: f64, seed: u64| SampleConfig {
        prob,
        window_factor,
        confidence,
        seed,
        threads: 1,
    };

    let mut rows: Vec<Row> = Vec::new();
    for &prob in &probs {
        let counter = SampledCounter::new(cfg(prob, 0x5EED));
        let mean_s = mean_time(samples, || {
            std::hint::black_box(counter.count(&g, delta));
        });
        let reference = counter.count(&g, delta);

        let mut rel_sum = 0.0;
        let mut rel_max = 0.0f64;
        let mut cover_sum = 0.0;
        for seed in 0..seeds {
            let est = SampledCounter::new(cfg(prob, seed)).count(&g, delta);
            let rel = est.mean_relative_error(&exact.matrix);
            rel_sum += rel;
            rel_max = rel_max.max(rel);
            cover_sum += est.covered_fraction(&exact.matrix);
        }

        if prob >= 1.0 {
            assert_eq!(
                reference.as_exact(),
                Some(exact.matrix),
                "p = 1.0 must reproduce the exact counts bit-identically"
            );
            assert_eq!(rel_sum, 0.0, "p = 1.0 must have zero error");
        }

        rows.push(Row {
            prob,
            mean_s,
            speedup: exact_s / mean_s,
            mean_rel_err: rel_sum / seeds as f64,
            max_rel_err: rel_max,
            coverage: cover_sum / seeds as f64,
            windows_sampled: reference.windows_sampled,
            windows_total: reference.windows_total,
        });
    }

    // Regression guard, not a quality bar: a broken variance estimate or
    // rescale drives coverage toward zero, while honest normal intervals
    // on this heavily bursty workload sit around 0.6–0.9 at small p
    // (window counts are concentrated — see docs/ESTIMATORS.md on when
    // the normal approximation is tight).
    let worst = rows
        .iter()
        .map(|r| r.coverage)
        .fold(f64::INFINITY, f64::min);
    assert!(
        worst >= 0.5,
        "CI coverage degraded: worst over the sweep is {worst:.3}"
    );

    println!(
        "CollegeMsg/{scale}  delta={delta}  c={window_factor}  ci={confidence}  \
         exact {}  ({} seeds per p)",
        hare_bench::human_secs(exact_s),
        seeds
    );
    println!(
        "{:>6} {:>10} {:>9} {:>13} {:>12} {:>10} {:>14}",
        "p", "mean", "speedup", "mean-rel-err", "max-rel-err", "coverage", "windows"
    );
    for r in &rows {
        println!(
            "{:>6.2} {:>10} {:>8.2}x {:>13.4} {:>12.4} {:>10.3} {:>8}/{}",
            r.prob,
            hare_bench::human_secs(r.mean_s),
            r.speedup,
            r.mean_rel_err,
            r.max_rel_err,
            r.coverage,
            r.windows_sampled,
            r.windows_total
        );
    }

    let doc = json!({
        "schema": "hare-bench/approx/v1",
        "dataset": "CollegeMsg",
        "scale": scale,
        "delta": delta,
        "window_factor": window_factor,
        "confidence": confidence,
        "samples": samples,
        "seeds": seeds,
        "quick": quick,
        "exact_mean_s": exact_s,
        "exact_total": exact.total(),
        "rows": rows
            .iter()
            .map(|r| {
                json!({
                    "prob": r.prob,
                    "mean_s": r.mean_s,
                    "speedup": r.speedup,
                    "mean_rel_err": r.mean_rel_err,
                    "max_rel_err": r.max_rel_err,
                    "coverage": r.coverage,
                    "windows_sampled": r.windows_sampled,
                    "windows_total": r.windows_total,
                })
            })
            .collect::<Vec<Value>>(),
    });
    std::fs::write(&out, format!("{doc}\n")).expect("write approx snapshot");
    println!("\nwrote {out}");
}
