//! Fig. 9: data statistics on WikiTalk — (a) node degree distribution,
//! (b) average per-node motif-counting time by degree.
//!
//! Reproduces both panels as tables over log-spaced degree bins, showing
//! the long-tailed distribution and the hub nodes' domination of total
//! counting time — the observation motivating HARE's intra-node
//! parallelism.
//!
//! ```text
//! cargo run --release -p hare-bench --bin exp_fig9 -- \
//!     [--max-edges N] [--delta N] [--json]
//! ```

use hare::{NeighborScratch, PairCounter, StarCounter, TriCounter};
use hare_bench::{emit_json, human_secs, Args, Workloads};
use temporal_graph::stats::degree_histogram;

fn main() {
    let args = Args::parse();
    let w = Workloads::from_args(&args, 300_000, 600);
    let spec = hare_datasets::by_name("WikiTalk").unwrap();
    let (g, scale) = w.generate(&spec);

    println!(
        "Fig. 9: WikiTalk stand-in (scale 1/{scale}: {} nodes, {} edges), delta = {}s",
        g.num_nodes(),
        g.num_edges(),
        w.delta
    );

    // Panel (a): degree distribution.
    println!("\n(a) degree distribution (log2 bins)");
    println!("{:<18} {:>12}", "degree range", "#nodes");
    let bins = degree_histogram(&g);
    for b in &bins {
        if b.count > 0 {
            println!("[{:>6}, {:>6})   {:>12}", b.lo, b.hi, b.count);
        }
    }

    // Panel (b): average per-node counting time per degree bin.
    println!("\n(b) average motif-counting time per node, by degree bin");
    println!(
        "{:<18} {:>8} {:>14} {:>16}",
        "degree range", "#timed", "avg time/node", "bin total time"
    );
    let mut scratch = NeighborScratch::new(g.num_nodes());
    let mut rows = Vec::new();
    for b in &bins {
        if b.count == 0 || b.hi <= 1 {
            continue;
        }
        // Time up to 200 nodes per bin, extrapolating the bin total.
        let nodes: Vec<u32> = g
            .node_ids()
            .filter(|&u| {
                let d = g.degree(u);
                d >= b.lo && d < b.hi
            })
            .take(200)
            .collect();
        if nodes.is_empty() {
            continue;
        }
        let start = std::time::Instant::now();
        let mut star = StarCounter::default();
        let mut pair = PairCounter::default();
        let mut tri = TriCounter::default();
        for &u in &nodes {
            hare::fast_star::count_node_star_pair(
                &g,
                u,
                w.delta,
                &mut scratch,
                &mut star,
                &mut pair,
            );
            hare::fast_tri::count_node_tri(&g, u, w.delta, &mut tri);
        }
        let avg = start.elapsed().as_secs_f64() / nodes.len() as f64;
        let bin_total = avg * b.count as f64;
        println!(
            "[{:>6}, {:>6})   {:>8} {:>14} {:>16}",
            b.lo,
            b.hi,
            nodes.len(),
            human_secs(avg),
            human_secs(bin_total)
        );
        rows.push((b.lo, b.hi, b.count, avg, bin_total));
        if w.json {
            emit_json(&[
                ("experiment", "fig9".into()),
                ("degree_lo", b.lo.into()),
                ("degree_hi", b.hi.into()),
                ("nodes_in_bin", b.count.into()),
                ("avg_node_seconds", avg.into()),
                ("bin_total_seconds", bin_total.into()),
            ]);
        }
    }

    // The paper's observation: the top-degree bins dominate total time.
    let total: f64 = rows.iter().map(|r| r.4).sum();
    if let Some(top) = rows.last() {
        println!(
            "\ntop bin holds {:.4}% of nodes but {:.1}% of total counting time",
            100.0 * top.2 as f64 / g.num_nodes() as f64,
            100.0 * top.4 / total
        );
    }
}
