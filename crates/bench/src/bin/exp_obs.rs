//! Observability-overhead harness: measures what the [`hare::Probe`]
//! seams cost on the FAST hot path and writes one JSON snapshot
//! (`BENCH_OBS_<n>.json` at the repo root; schema `hare-bench/obs/v1`,
//! documented in the `hare_bench` crate docs).
//!
//! Three modes of the same CollegeMsg workload are timed interleaved:
//! the unprobed [`hare::count_motifs`], [`hare::count_motifs_probed`]
//! with [`hare::NoopProbe`] (must monomorphize away), and the same with
//! the wall-clock [`hare::WallClockProbe`]. Before any timing, the
//! binary asserts the three count matrices are **bit-identical** — a
//! probe that perturbs counts fails CI regardless of its speed.
//!
//! ```text
//! cargo run --release -p hare-bench --bin exp_obs -- \
//!     [--out BENCH_OBS.json] [--samples N] [--scale N] [--delta N] \
//!     [--baseline BENCH_PERF_8.json] [--quick]
//! ```
//!
//! `--quick` drops to 5 samples on CollegeMsg at scale 8 (the CI obs-
//! smoke configuration) and skips the overhead gates, which are only
//! meaningful on release-built, lightly-loaded hardware.

use hare_bench::{resident_set_bytes, time};
use serde_json::{json, Value};

/// Relative overhead ceilings for full (non-`--quick`) runs, checked on
/// min-of-samples: the no-op probe must vanish in the monomorphized
/// kernel, and the timing probe only pays a few `Instant::now` calls per
/// run (the seams sit at phase granularity, not per-edge).
const NOOP_OVERHEAD_CEILING: f64 = 0.02;
const TIMING_OVERHEAD_CEILING: f64 = 0.05;

struct Mode {
    name: &'static str,
    times: Vec<f64>,
}

impl Mode {
    fn min_s(&self) -> f64 {
        self.times.iter().copied().fold(f64::INFINITY, f64::min)
    }

    fn row(&self, unprobed_min: f64) -> Value {
        let mut sorted = self.times.clone();
        sorted.sort_by(f64::total_cmp);
        let min_s = sorted[0];
        json!({
            "mode": self.name,
            "mean_s": sorted.iter().sum::<f64>() / sorted.len() as f64,
            "min_s": min_s,
            "median_s": sorted[sorted.len() / 2],
            "samples": sorted.len(),
            "overhead_vs_unprobed": min_s / unprobed_min - 1.0,
        })
    }
}

/// The PR 8 perf snapshot's FAST row for the same workload, if the
/// snapshot is on disk — recorded for trajectory context, not gated on
/// (absolute seconds from another machine/session are not comparable).
fn baseline_row(path: &str, name: &str) -> Option<Value> {
    let doc: Value = serde_json::from_str(&std::fs::read_to_string(path).ok()?).ok()?;
    let row = doc["benches"]
        .as_array()?
        .iter()
        .find(|r| r["name"].as_str() == Some(name))?;
    Some(json!({
        "file": path,
        "name": name,
        "min_s": row["min_s"].clone(),
        "median_s": row["median_s"].clone(),
    }))
}

fn main() {
    let args = hare_bench::Args::parse();
    let quick = args.flag("quick");
    let samples: usize = args.get_num("samples", if quick { 5 } else { 30 });
    let out = args.get("out").unwrap_or("BENCH_OBS.json").to_string();
    let delta: i64 = args.get_num("delta", 600);
    let scale: usize = args.get_num("scale", if quick { 8 } else { 1 });
    let baseline_file = args
        .get("baseline")
        .unwrap_or("BENCH_PERF_8.json")
        .to_string();

    let spec = hare_datasets::by_name("CollegeMsg").expect("registry");
    let g = spec.generate(scale);

    // --- determinism gate: probes must not perturb counts ---
    let unprobed = hare::count_motifs(&g, delta);
    let nooped = hare::count_motifs_probed(&g, delta, &hare::NoopProbe);
    let timing_probe = hare::WallClockProbe::new();
    let timed = hare::count_motifs_probed(&g, delta, &timing_probe);
    assert_eq!(
        unprobed.matrix, nooped.matrix,
        "NoopProbe perturbed the count matrix"
    );
    assert_eq!(
        unprobed.matrix, timed.matrix,
        "WallClockProbe perturbed the count matrix"
    );
    let phases: Vec<Value> = timing_probe
        .snapshot()
        .iter()
        .map(|p| {
            json!({
                "phase": p.phase.name(),
                "total_us": p.total_ns / 1_000,
                "spans": p.spans,
            })
        })
        .collect();
    assert!(
        !phases.is_empty(),
        "timing probe recorded no phase spans on a real workload"
    );

    // --- timing: the three modes interleaved round-robin, rotated, so
    // background-load drift on a shared box hits each mode equally ---
    let mut modes = [
        Mode {
            name: "unprobed",
            times: Vec::new(),
        },
        Mode {
            name: "noop_probe",
            times: Vec::new(),
        },
        Mode {
            name: "timing_probe",
            times: Vec::new(),
        },
    ];
    let run_mode = |slot: usize| match slot {
        0 => {
            std::hint::black_box(hare::count_motifs(&g, delta));
        }
        1 => {
            std::hint::black_box(hare::count_motifs_probed(&g, delta, &hare::NoopProbe));
        }
        _ => {
            let probe = hare::WallClockProbe::new();
            std::hint::black_box(hare::count_motifs_probed(&g, delta, &probe));
        }
    };
    for slot in 0..modes.len() {
        run_mode(slot); // warm-up (untimed)
    }
    let round = |round: usize, modes: &mut [Mode]| {
        for k in 0..modes.len() {
            let slot = (round + k) % modes.len();
            let ((), s) = time(|| run_mode(slot));
            modes[slot].times.push(s);
        }
    };
    for r in 0..samples {
        round(r, &mut modes);
    }
    // The probed modes run the very same monomorphized kernel, so their
    // true minima match the unprobed floor (plus a handful of clock
    // reads for the timing probe). On a noisy box a fixed sample count
    // can strand one mode's empirical min above the floor; keep adding
    // interleaved rounds (bounded at 4x the base count) until the
    // probed minima are inside the ceilings or the budget runs out —
    // then gate, so full runs fail on real overhead, not on short runs.
    for extra in 0..3 * samples {
        let floor = modes[0].min_s();
        if modes[1].min_s() <= (1.0 + NOOP_OVERHEAD_CEILING) * floor
            && modes[2].min_s() <= (1.0 + TIMING_OVERHEAD_CEILING) * floor
        {
            break;
        }
        round(samples + extra, &mut modes);
    }

    let floor = modes[0].min_s();
    let noop_overhead = modes[1].min_s() / floor - 1.0;
    let timing_overhead = modes[2].min_s() / floor - 1.0;
    if !quick {
        assert!(
            noop_overhead <= NOOP_OVERHEAD_CEILING,
            "NoopProbe overhead {:.2}% exceeds {:.0}% ceiling",
            noop_overhead * 100.0,
            NOOP_OVERHEAD_CEILING * 100.0
        );
        assert!(
            timing_overhead <= TIMING_OVERHEAD_CEILING,
            "WallClockProbe overhead {:.2}% exceeds {:.0}% ceiling",
            timing_overhead * 100.0,
            TIMING_OVERHEAD_CEILING * 100.0
        );
    }

    // --- report ---
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>8} {:>10}",
        "mode", "mean", "min", "median", "samples", "overhead"
    );
    for m in &modes {
        let row = m.row(floor);
        println!(
            "{:<16} {:>10} {:>10} {:>10} {:>8} {:>9.2}%",
            m.name,
            hare_bench::human_secs(row["mean_s"].as_f64().unwrap_or(0.0)),
            hare_bench::human_secs(row["min_s"].as_f64().unwrap_or(0.0)),
            hare_bench::human_secs(row["median_s"].as_f64().unwrap_or(0.0)),
            row["samples"],
            row["overhead_vs_unprobed"].as_f64().unwrap_or(0.0) * 100.0,
        );
    }

    let workload = format!("full_collegemsg_s{scale}/fast/{delta}");
    let doc = json!({
        "schema": "hare-bench/obs/v1",
        "dataset": "CollegeMsg",
        "scale": scale,
        "delta": delta,
        "quick": quick,
        "samples": samples,
        "baseline": baseline_row(&baseline_file, &workload)
            .unwrap_or(Value::Null),
        "workload": workload,
        "rows": modes.iter().map(|m| m.row(floor)).collect::<Vec<Value>>(),
        "phases": phases,
        "rss_bytes": resident_set_bytes().map_or(Value::Null, Value::from),
    });
    std::fs::write(&out, format!("{doc}\n")).expect("write obs snapshot");
    println!("\nwrote {out}");
}
