//! # hare-bench
//!
//! Shared harness utilities for the experiment binaries that regenerate
//! every table and figure of the paper (see DESIGN.md §4 for the index):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `exp_perf`    | Perf trajectory snapshot (`BENCH_<n>.json` per PR) |
//! | `exp_approx`  | Accuracy-vs-speedup sweep of the sampling estimator |
//! | `exp_stream`  | Bounded-memory streaming estimator battery (`BENCH_STREAM_<n>.json`) |
//! | `exp_serve`   | `hare-serve` latency/throughput (cold vs cache hit) |
//! | `exp_obs`     | Probe-seam overhead battery (`BENCH_OBS_<n>.json`) |
//! | `exp_table2`  | Table II — dataset statistics |
//! | `exp_fig9`    | Fig. 9 — WikiTalk degree skew & per-node cost |
//! | `exp_fig10`   | Fig. 10 — FAST vs EX count matrices |
//! | `exp_table3`  | Table III — single-thread runtimes & speedups |
//! | `exp_fig11`   | Fig. 11 — runtime vs #threads |
//! | `exp_fig12a`  | Fig. 12(a) — runtime vs δ |
//! | `exp_fig12b`  | Fig. 12(b) — runtime vs degree threshold |
//!
//! Every binary accepts `--max-edges N` (dataset scale cap; the scale
//! factor actually applied is printed per row), `--delta N`, and
//! `--json` (machine-readable result rows on stdout). Run with
//! `cargo run --release -p hare-bench --bin <name> -- [flags]`.
//!
//! ## Perf snapshot schema (`exp_perf`)
//!
//! `exp_perf` re-times the workloads covered by the criterion suites and
//! writes one JSON document (default `BENCH_3.json`; override with
//! `--out`). Schema `hare-bench/perf/v2`:
//!
//! ```json
//! {
//!   "schema": "hare-bench/perf/v2",
//!   "delta": 600,
//!   "quick": false,
//!   "benches": [
//!     { "name": "full_collegemsg_s1/fast/600", "threads": 1,
//!       "mean_s": 0.00102, "min_s": 0.00097,
//!       "median_s": 0.00101, "samples": 10, "rss_bytes": 24903680 }
//!   ],
//!   "scaling": [
//!     { "threads": 2, "effective_threads": 1, "min_s": 0.081,
//!       "median_s": 0.083, "throughput_eps": 2469135.8 }
//!   ],
//!   "ooc": {
//!     "budget_bytes": 800001, "full_lane_bytes": 6400000,
//!     "peak_resident_lane_bytes": 793728, "chunks": 11,
//!     "forced_cuts": 0, "min_s": 0.112
//!   }
//! }
//! ```
//!
//! * `name` — `<workload>_s<scale>/<algorithm>/<delta>` (registry
//!   dataset, `toy_fig1`, or `synthetic_e<edges>` for the generated
//!   large-graph workload), `s<scale>` the dataset's scale divisor.
//! * `mean_s` / `min_s` / `median_s` — per-iteration wall-clock seconds
//!   over `samples` timed iterations after one untimed warm-up.
//! * `threads` — the *requested* HARE thread count (1 for sequential
//!   kernels); `rss_bytes` — process resident set right after the row's
//!   samples ([`resident_set_bytes`]; `null` off-procfs platforms).
//! * `scaling` — the HARE thread sweep (`--threads 1,2,4,8`) on the
//!   synthetic graph. `effective_threads` is what the clamp actually
//!   granted, and `throughput_eps` (edges/second, from min-of-samples)
//!   must stay within 10% of the `threads = 1` row — oversubscribed
//!   configs never regress below sequential (asserted in-binary).
//! * `ooc` — the out-of-core row: the same synthetic graph written to a
//!   `HARELG01` lane file and streamed under `budget_bytes`. In-binary
//!   asserts pin `forced_cuts == 0`, `peak_resident_lane_bytes <=
//!   budget_bytes`, and bit-identical counts to in-RAM FAST.
//! * `quick` — `true` when run with `--quick` (CI perf-smoke: 3 samples,
//!   CollegeMsg at scale 8, 40k-edge synthetic; the sweep and the
//!   out-of-core row still run).
//!
//! One snapshot is committed at the repo root per perf-focused PR
//! (`BENCH_<pr>.json`), so the absolute trajectory of the hot paths is
//! reviewable over time. The binary also asserts count shapes (Fig. 1
//! toy M65; HARE/FAST/windowed/compressed-lane/out-of-core agreement)
//! so a CI run fails on correctness regressions too.
//!
//! ## Approximate-counting snapshot schema (`exp_approx`)
//!
//! `exp_approx` sweeps the interval-sampling estimator's window keep
//! probability `p` on CollegeMsg and writes one JSON document (default
//! `BENCH_APPROX.json`; override with `--out`). Schema
//! `hare-bench/approx/v1`:
//!
//! ```json
//! {
//!   "schema": "hare-bench/approx/v1",
//!   "dataset": "CollegeMsg", "scale": 1, "delta": 600,
//!   "window_factor": 10, "confidence": 0.95,
//!   "samples": 10, "seeds": 25, "quick": false,
//!   "exact_mean_s": 0.00102, "exact_total": 40075,
//!   "rows": [
//!     { "prob": 0.3, "mean_s": 0.00084, "speedup": 1.21,
//!       "mean_rel_err": 0.345, "max_rel_err": 0.614,
//!       "coverage": 0.793,
//!       "windows_sampled": 795, "windows_total": 2776 }
//!   ]
//! }
//! ```
//!
//! * `exact_mean_s` — mean wall-clock seconds of exact FAST over
//!   `samples` timed iterations (after one untimed warm-up); each row's
//!   `mean_s` is the same measurement for the estimator at that `prob`,
//!   and `speedup` is their ratio.
//! * `mean_rel_err` / `max_rel_err` — mean/max over `seeds` sampling
//!   seeds of the mean relative error across motifs with non-zero exact
//!   count ([`hare::sample::SampledCounts::mean_relative_error`]).
//! * `coverage` — mean over seeds of the fraction of non-zero motifs
//!   whose confidence interval covers the exact count
//!   ([`hare::sample::SampledCounts::covered_fraction`]).
//! * `windows_sampled` / `windows_total` — kept vs total windows for
//!   the timing seed.
//!
//! The estimator's derivation (unbiasedness, variance, the boundary
//! correction) lives in `docs/ESTIMATORS.md`. The binary asserts that
//! `prob = 1.0` rows reproduce the exact counts bit-identically and
//! that coverage never collapses (a broken variance estimate or rescale
//! fails CI).
//!
//! ## Streaming-estimator snapshot schema (`exp_stream`)
//!
//! `exp_stream` replays CollegeMsg through
//! [`hare::stream_sample::StreamingEstimator`] under a ladder of byte
//! budgets (fractions of the full retained footprint) and scores the
//! final tick against the exact sliding-window engine over 50 seeds
//! per budget (8 with `--quick`). Schema `hare-bench/stream/v1`
//! (default `BENCH_STREAM.json`; override with `--out`):
//!
//! ```json
//! {
//!   "schema": "hare-bench/stream/v1",
//!   "dataset": "CollegeMsg", "scale": 1, "delta": 600,
//!   "window": 16651257, "window_factor": 8, "confidence": 0.95,
//!   "seeds": 50, "quick": false,
//!   "edges": 20296, "footprint_bytes": 324736, "exact_total": 40075,
//!   "rows": [
//!     { "frac": 8, "budget_bytes": 40592, "mean_s": 0.0102,
//!       "final_prob": 0.5, "max_retained_bytes": 40592,
//!       "mean_rel_err": 0.0054,
//!       "coverage": 0.93, "coverage_supported": 1.0,
//!       "support_min_count": 30, "mean_total": 40034.2 }
//!   ]
//! }
//! ```
//!
//! * `frac` — the budget is `footprint_bytes / frac`, so `frac = 1` is
//!   the never-binding roomy budget and larger fractions squeeze
//!   harder; `max_retained_bytes` — the largest accounted footprint
//!   observed after any push across all seeds (asserted `<=` budget
//!   after every single push, not just at ticks).
//! * `final_prob` — mean over seeds of the coin-tier `p` at the final
//!   tick; `mean_rel_err` — mean over seeds of the mean relative error
//!   across motifs with non-zero exact count.
//! * `coverage` — fraction of (seed × non-zero motif) cells whose 95%
//!   CI covers the exact count; `coverage_supported` restricts to
//!   motifs with exact count ≥ `support_min_count`, where the normal
//!   intervals' CLT assumption has enough mass to bite.
//! * In-binary asserts: the roomy budget reproduces the exact counts
//!   with degenerate intervals, every push stays under budget, the
//!   `frac = 8` supported coverage clears 0.90 (0.5 with `--quick`),
//!   and the mean total drifts < 15% from exact. One snapshot is
//!   committed per streaming-focused PR (`BENCH_STREAM_<pr>.json`).
//!
//! ## Service snapshot schema (`exp_serve`)
//!
//! `exp_serve` starts an in-process `hare-serve` on an ephemeral port
//! and measures `GET /count` end to end (TCP connect → full body).
//! Schema `hare-bench/serve/v1` (default `BENCH_SERVE.json`; override
//! with `--out`):
//!
//! ```json
//! {
//!   "schema": "hare-bench/serve/v1",
//!   "dataset": "CollegeMsg", "scale": 1, "delta": 600,
//!   "quick": false, "samples": 30,
//!   "cold_exact_s":  { "median_s": 0.0019, "mean_s": 0.0020, "min_s": 0.0017 },
//!   "cache_hit_s":   { "median_s": 0.00004, "mean_s": 0.00004, "min_s": 0.00003 },
//!   "hit_speedup": 52.8,
//!   "throughput": [
//!     { "clients": 1, "requests": 200, "total_s": 0.011, "rps": 17844.0 }
//!   ],
//!   "server": { "workers": 8, "cache_hits": 2632, "cache_misses": 32, "rejected": 0 }
//! }
//! ```
//!
//! * `cold_exact_s` — per-request latency with the result cache cleared
//!   before every sample (the query recomputes); `cache_hit_s` — the
//!   same query answered from the LRU cache. `hit_speedup` is the ratio
//!   of medians, asserted ≥ 10× in full (non-`--quick`) runs.
//! * `throughput` — wall-clock requests/second with N concurrent
//!   clients hammering the cache-hit path (`--requests` each).
//! * The binary also asserts the serving contracts before timing:
//!   served bytes equal the library-rendered `hare::report` body, cache
//!   hits return identical bytes, and `p = 1.0` approximate estimates
//!   equal the exact counts — so CI fails on correctness drift.
//!
//! ## Observability-overhead snapshot schema (`exp_obs`)
//!
//! `exp_obs` times the same CollegeMsg FAST workload in three modes —
//! unprobed, [`hare::NoopProbe`], and the wall-clock
//! [`hare::WallClockProbe`] — interleaved round-robin, after asserting
//! the three count matrices are bit-identical. Schema
//! `hare-bench/obs/v1` (default `BENCH_OBS.json`; override with
//! `--out`):
//!
//! ```json
//! {
//!   "schema": "hare-bench/obs/v1",
//!   "dataset": "CollegeMsg", "scale": 1, "delta": 600,
//!   "quick": false, "samples": 30,
//!   "workload": "full_collegemsg_s1/fast/600",
//!   "baseline": { "file": "BENCH_PERF_8.json",
//!                 "name": "full_collegemsg_s1/fast/600",
//!                 "min_s": 0.00115, "median_s": 0.00127 },
//!   "rows": [
//!     { "mode": "unprobed", "mean_s": 0.00121, "min_s": 0.00115,
//!       "median_s": 0.00119, "samples": 30,
//!       "overhead_vs_unprobed": 0.0 }
//!   ],
//!   "phases": [ { "phase": "scan", "total_us": 1100, "spans": 1 } ],
//!   "rss_bytes": 4898816
//! }
//! ```
//!
//! * `overhead_vs_unprobed` — `min_s / unprobed.min_s - 1`, computed on
//!   min-of-samples (the least-interrupted iteration). Full runs gate
//!   the no-op probe at ≤ 2% and the timing probe at ≤ 5%; `--quick`
//!   (the CI obs-smoke configuration) still asserts bit-identity but
//!   skips the overhead gates, which need release-built quiet hardware.
//! * `baseline` — the PR 8 perf snapshot's FAST row for the same
//!   workload when `--baseline` (default `BENCH_PERF_8.json`) is on
//!   disk; recorded for trajectory context, never gated on (absolute
//!   seconds from another session are not comparable).
//! * `phases` — the timing probe's per-phase totals from the
//!   correctness pass (`scan`/`fold` for in-RAM FAST).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablations;

use std::time::Instant;

/// Time a closure, returning its result and elapsed seconds.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// The process's current resident set size in bytes, read from
/// `/proc/self/status` (`VmRSS`). Returns `None` on platforms without
/// procfs — snapshot rows record `null` there rather than guessing.
#[must_use]
pub fn resident_set_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// Format a count the way Fig. 10 does (`14.3K`, `65.7M`, `1.08B`).
#[must_use]
pub fn human_count(n: u64) -> String {
    let nf = n as f64;
    if nf >= 1e9 {
        format!("{:.2}B", nf / 1e9)
    } else if nf >= 1e6 {
        format!("{:.1}M", nf / 1e6)
    } else if nf >= 1e3 {
        format!("{:.1}K", nf / 1e3)
    } else {
        n.to_string()
    }
}

/// Format seconds with sensible precision for runtime tables.
#[must_use]
pub fn human_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.2}ms", s * 1e3)
    }
}

/// Minimal flag parser shared by the experiment binaries. Supports
/// `--flag value` and `--flag=value` forms plus boolean switches.
#[derive(Debug, Default, Clone)]
pub struct Args {
    raw: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parse the process arguments (skipping the program name).
    #[must_use]
    pub fn parse() -> Args {
        Args::from_iter(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    #[allow(clippy::should_implement_trait)] // not a FromIterator: parses flags
    pub fn from_iter(iter: impl IntoIterator<Item = String>) -> Args {
        let mut raw = Vec::new();
        let mut items = iter.into_iter().peekable();
        while let Some(item) = items.next() {
            let Some(stripped) = item.strip_prefix("--") else {
                eprintln!("ignoring positional argument {item:?}");
                continue;
            };
            if let Some((k, v)) = stripped.split_once('=') {
                raw.push((k.to_string(), Some(v.to_string())));
            } else {
                let value = match items.peek() {
                    Some(next) if !next.starts_with("--") => items.next(),
                    _ => None,
                };
                raw.push((stripped.to_string(), value));
            }
        }
        Args { raw }
    }

    /// `true` if the switch is present.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|(k, _)| k == name)
    }

    /// The value of `--name`, if given with a value.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.raw
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Parsed numeric flag with default.
    #[must_use]
    pub fn get_num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Comma-separated list flag with default.
    #[must_use]
    pub fn get_list<T: std::str::FromStr + Clone>(&self, name: &str, default: &[T]) -> Vec<T> {
        match self.get(name) {
            Some(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
            None => default.to_vec(),
        }
    }
}

/// Standard workload selection shared by the experiment binaries.
pub struct Workloads {
    /// Scale cap: datasets are generated with at most this many edges.
    pub max_edges: usize,
    /// δ in seconds.
    pub delta: i64,
    /// Emit JSON rows instead of only the human table.
    pub json: bool,
}

impl Workloads {
    /// Read the common flags (`--max-edges`, `--delta`, `--json`).
    #[must_use]
    pub fn from_args(args: &Args, default_max_edges: usize, default_delta: i64) -> Workloads {
        Workloads {
            max_edges: args.get_num("max-edges", default_max_edges),
            delta: args.get_num("delta", default_delta),
            json: args.flag("json"),
        }
    }

    /// Generate one dataset under the scale cap; returns the graph and
    /// the applied scale factor.
    #[must_use]
    pub fn generate(
        &self,
        spec: &hare_datasets::DatasetSpec,
    ) -> (temporal_graph::TemporalGraph, usize) {
        let scale = spec.scale_for(self.max_edges);
        (spec.generate(scale), scale)
    }

    /// Resolve `--datasets a,b,c` against the registry; defaults to the
    /// given list of names.
    #[must_use]
    pub fn datasets(&self, args: &Args, default: &[&str]) -> Vec<hare_datasets::DatasetSpec> {
        let names: Vec<String> = match args.get("datasets") {
            Some(v) => v.split(',').map(|s| s.trim().to_string()).collect(),
            None => default.iter().map(|s| s.to_string()).collect(),
        };
        names
            .iter()
            .filter_map(|n| {
                let d = hare_datasets::by_name(n);
                if d.is_none() {
                    eprintln!("unknown dataset {n:?}, skipping");
                }
                d
            })
            .collect()
    }
}

/// Emit one machine-readable result row (JSON object on its own line).
pub fn emit_json(fields: &[(&str, serde_json::Value)]) {
    let mut map = serde_json::Map::new();
    for (k, v) in fields {
        map.insert((*k).to_string(), v.clone());
    }
    println!("{}", serde_json::Value::Object(map));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_forms() {
        let a = Args::from_iter(
            [
                "--delta",
                "600",
                "--json",
                "--max-edges=5000",
                "--list",
                "1,2,3",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(a.get_num("delta", 0i64), 600);
        assert!(a.flag("json"));
        assert_eq!(a.get_num("max-edges", 0usize), 5000);
        assert_eq!(a.get_list::<u32>("list", &[]), vec![1, 2, 3]);
        assert_eq!(a.get_num("missing", 42i32), 42);
        assert!(!a.flag("absent"));
    }

    #[test]
    fn args_boolean_followed_by_flag() {
        let a = Args::from_iter(["--json", "--delta", "5"].iter().map(|s| s.to_string()));
        assert!(a.flag("json"));
        assert_eq!(a.get_num("delta", 0i64), 5);
    }

    #[test]
    fn human_formats() {
        assert_eq!(human_count(950), "950");
        assert_eq!(human_count(14_300), "14.3K");
        assert_eq!(human_count(65_700_000), "65.7M");
        assert_eq!(human_count(1_080_000_000), "1.08B");
        assert_eq!(human_secs(0.00123), "1.23ms");
        assert_eq!(human_secs(1.5), "1.50s");
        assert_eq!(human_secs(120.0), "120s");
    }

    #[test]
    fn workload_generation_respects_cap() {
        let args = Args::from_iter(std::iter::empty());
        let w = Workloads::from_args(&args, 10_000, 600);
        let spec = hare_datasets::by_name("SuperUser").unwrap();
        let (g, scale) = w.generate(&spec);
        assert!(g.num_edges() <= 10_000 + 100);
        assert!(scale >= 144);
    }

    #[test]
    fn timing_returns_result() {
        let (v, secs) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
