//! Alternative implementations of FAST's design choices, used by the
//! `ablations` criterion bench to quantify each choice called out in
//! DESIGN.md:
//!
//! * [`fast_star_hashmap`] — Algorithm 1 with literal `HashMap`s for
//!   `m_in`/`m_out` (the paper's pseudocode) instead of the stamped
//!   scratch array.
//! * [`fast_tri_linear`] — Algorithm 2 scanning each pair list from the
//!   start instead of binary-searching the δ window (the paper's
//!   "implementation trick" disabled, letting `ξ` grow to the full list
//!   length).
//! * [`stream_windowed`] vs [`stream_append_only`] — the eviction-cost
//!   ablation for the sliding-window engine: the same chronological
//!   stream through `WindowedCounter` (arrival counting **plus**
//!   first-edge retirement at expiry) and through the append-only
//!   `StreamingCounter` (arrival counting only). Their runtime gap is
//!   the price of exact expiry; shrinking `window` towards `delta`
//!   raises eviction churn without changing arrival cost.
//!
//! All are exact (asserted by tests) — only their constants differ.

use hare::counters::{MotifMatrix, PairCounter, StarCounter, TriCounter};
use hare::motif::{StarType, TriType};
use hare::streaming::StreamingCounter;
use hare::windowed::WindowedCounter;
use temporal_graph::util::FxHashMap;
use temporal_graph::{Dir, NodeId, TemporalGraph, Timestamp};

/// FAST-Star with per-iteration `HashMap` second-edge accounting
/// (ablation of the stamped scratch array).
#[must_use]
pub fn fast_star_hashmap(g: &TemporalGraph, delta: Timestamp) -> (StarCounter, PairCounter) {
    let mut star = StarCounter::default();
    let mut pair = PairCounter::default();
    let mut counts: FxHashMap<NodeId, [u64; 2]> = FxHashMap::default();
    for u in g.node_ids() {
        let s = g.node_events(u);
        for i in 0..s.len() {
            let e1 = s.get(i);
            counts.clear();
            let mut n = [0u64; 2];
            for e3 in s.slice(i + 1..s.len()) {
                if e3.t - e1.t > delta {
                    break;
                }
                let (d1, d3) = (e1.dir, e3.dir);
                if e3.other == e1.other {
                    let cnt = counts.get(&e1.other).copied().unwrap_or_default();
                    for d2 in Dir::BOTH {
                        pair.add(d1, d2, d3, cnt[d2.index()]);
                        star.add(StarType::II, d1, d2, d3, n[d2.index()] - cnt[d2.index()]);
                    }
                } else {
                    let cw = counts.get(&e3.other).copied().unwrap_or_default();
                    let cv = counts.get(&e1.other).copied().unwrap_or_default();
                    for d2 in Dir::BOTH {
                        star.add(StarType::I, d1, d2, d3, cw[d2.index()]);
                        star.add(StarType::III, d1, d2, d3, cv[d2.index()]);
                    }
                }
                counts.entry(e3.other).or_default()[e3.dir.index()] += 1;
                n[e3.dir.index()] += 1;
            }
        }
    }
    (star, pair)
}

/// FAST-Tri scanning pair lists linearly from the beginning (ablation of
/// the δ-window binary search).
#[must_use]
pub fn fast_tri_linear(g: &TemporalGraph, delta: Timestamp) -> TriCounter {
    let mut tri = TriCounter::default();
    for u in g.node_ids() {
        let s = g.node_events(u);
        for i in 0..s.len() {
            let ei = s.get(i);
            for ej in s.slice(i + 1..s.len()) {
                if ej.t - ei.t > delta {
                    break;
                }
                if ej.other == ei.other {
                    continue;
                }
                let (v, w) = (ei.other, ej.other);
                let v_is_lo = v < w;
                for p in g.pair_events(v, w) {
                    if p.t > ei.t + delta {
                        break;
                    }
                    if p.t < ej.t - delta {
                        continue; // linear skip instead of binary search
                    }
                    let dk = p.dir_from(v_is_lo);
                    let ty = if (p.t, p.edge) < (ei.t, ei.edge) {
                        TriType::I
                    } else if (p.t, p.edge) < (ej.t, ej.edge) {
                        TriType::II
                    } else {
                        TriType::III
                    };
                    tri.add(ty, ei.dir, ej.dir, dk, 1);
                }
            }
        }
    }
    tri
}

/// Drive a whole graph's chronological edge stream through the
/// sliding-window engine and return the final live-window counts. The
/// eviction work (retire-at-expiry) scales with how often edges fall out
/// of `window`, which is what the ablation varies.
#[must_use]
pub fn stream_windowed(
    g: &TemporalGraph,
    delta: Timestamp,
    window: Timestamp,
    slack: Timestamp,
) -> MotifMatrix {
    let mut wc = WindowedCounter::with_slack(delta, window, slack);
    for e in g.edges() {
        wc.push(e.src, e.dst, e.t).expect("chronological stream");
    }
    wc.flush();
    wc.counts()
}

/// The no-eviction baseline: the same stream through the append-only
/// streaming counter (full-history counts, no retirement work).
#[must_use]
pub fn stream_append_only(g: &TemporalGraph, delta: Timestamp) -> MotifMatrix {
    let mut sc = StreamingCounter::new(delta);
    for e in g.edges() {
        sc.push(e.src, e.dst, e.t).expect("chronological stream");
    }
    sc.counts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_graph::gen::{erdos_renyi_temporal, GenConfig};

    #[test]
    fn hashmap_variant_is_exact() {
        let g = erdos_renyi_temporal(30, 800, 2_000, 11);
        let delta = 300;
        let (star_a, pair_a) = fast_star_hashmap(&g, delta);
        let (star_b, pair_b) = hare::fast_star::fast_star(&g, delta);
        assert_eq!(star_a, star_b);
        assert_eq!(pair_a, pair_b);
    }

    #[test]
    fn linear_tri_variant_is_exact() {
        let g = GenConfig {
            nodes: 50,
            edges: 1_500,
            seed: 3,
            ..GenConfig::default()
        }
        .generate();
        let delta = 5_000;
        assert_eq!(
            fast_tri_linear(&g, delta),
            hare::fast_tri::fast_tri(&g, delta)
        );
    }

    #[test]
    fn streaming_hooks_are_exact() {
        let g = erdos_renyi_temporal(20, 600, 1_500, 5);
        let delta = 200;
        // Append-only and a wider-than-the-stream window both equal the
        // full batch count.
        let batch = hare::count_motifs(&g, delta).matrix;
        assert_eq!(stream_append_only(&g, delta), batch);
        let span = g.time_span() + 1;
        assert_eq!(stream_windowed(&g, delta, span, 0), batch);
        // A tight window equals batch over the trailing window.
        let windowed = stream_windowed(&g, delta, delta, 0);
        assert!(windowed.total() <= batch.total());
    }
}
