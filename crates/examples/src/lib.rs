//! Thin wiring package: hosts the runnable examples in `/examples` (see
//! `[[example]]` entries in this crate's manifest). The crate itself
//! exports nothing.
