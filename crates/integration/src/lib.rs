//! Thin wiring package: hosts the workspace-level integration tests in
//! `/tests` (see `[[test]]` entries in this crate's manifest). The crate
//! itself exports nothing.
