//! hare-lint: no-alloc
//!
//! Fixture: allocation (A) violations in an opted-in module.

fn hot(xs: &[u64], out: &mut [u64]) {
    let v = Vec::new();
    let w = vec![0u64; xs.len()];
    let b = Box::new(42u64);
    let doubled: Vec<u64> = xs.iter().map(|x| x * 2).collect();
    let label = format!("{} items", xs.len());
    let owned = label.to_string();
    let _ = (v, w, b, doubled, owned);
    out[0] = 0;
}

fn also_hot(n: usize) -> u64 {
    let mut big = Vec::with_capacity(n);
    big.resize(n, 0u64);
    big.iter().sum()
}

#[cfg(test)]
mod tests {
    #[test]
    fn allocating_in_tests_is_fine() {
        let v: Vec<u64> = (0..8).collect();
        assert_eq!(v.len(), 8);
    }
}
