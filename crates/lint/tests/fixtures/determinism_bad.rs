//! Fixture: every determinism (D) violation flavour.
//! Linted as if it were a counting module (D scope forced).

use std::collections::HashMap;

struct Counts {
    per_node: FxHashMap<u32, u64>,
    lanes: Vec<u64>,
}

impl Counts {
    fn total(&self) -> u64 {
        let mut sum = 0;
        for (_k, v) in self.per_node.iter() {
            sum += v;
        }
        for v in &self.per_node {
            sum += v.1;
        }
        for l in &self.lanes {
            sum += l; // Vec iteration is ordered: fine
        }
        sum
    }

    fn keys_snapshot(&self) -> Vec<u32> {
        self.per_node.keys().copied().collect()
    }
}

fn fresh_table() -> HashMap<u32, u64> {
    HashMap::new()
}

fn stamp() -> u64 {
    let t = std::time::Instant::now();
    let _ = t;
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn shadowing() {
    let slot_of = vec![0u32; 4];
    for s in slot_of.iter() {
        let _ = s; // Vec named like a map elsewhere: not flagged
    }
    let slot_of: FxHashMap<u64, u32> = FxHashMap::default();
    for (k, s) in slot_of.iter() {
        let _ = (k, s); // the map under the same name: flagged
    }
}
