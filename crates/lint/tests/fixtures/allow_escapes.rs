//! hare-lint: no-alloc
//!
//! Fixture: the `allow(...)` escape hatch, good and bad.

fn setup(n: usize) -> Vec<u64> {
    // hare-lint: allow(alloc, reason = "setup path, runs once per graph")
    let mut v = Vec::with_capacity(n);
    // hare-lint: allow(alloc, reason = "same: filled once, then read-only")
    v.resize(n, 0);
    v
}

fn covered_same_line(n: usize) -> Vec<u64> {
    vec![0; n] // hare-lint: allow(alloc, reason = "trailing form also works")
}

fn missing_reason() -> Vec<u64> {
    // hare-lint: allow(alloc)
    Vec::new()
}

fn unknown_tag() -> Vec<u64> {
    // hare-lint: allow(allocation, reason = "typo in the tag")
    Vec::new()
}

fn too_far_away(n: usize) -> Vec<u64> {
    // hare-lint: allow(alloc, reason = "only reaches the next line")
    let _gap = n;
    vec![0; n]
}
