//! hare-lint: no-alloc
//!
//! Fixture: rule-abiding code — D, A, P all forced, zero findings.

struct Lanes {
    times: Vec<i64>,
    heads: Vec<u32>,
}

impl Lanes {
    fn scan(&self, out: &mut [u64]) {
        for (i, &t) in self.times.iter().enumerate() {
            if let Some(slot) = out.get_mut(i % out.len().max(1)) {
                *slot = (*slot).wrapping_add(t as u64);
            }
        }
        for &h in &self.heads {
            if let Some(slot) = out.first_mut() {
                *slot += u64::from(h);
            }
        }
    }
}

fn lookup(map: &FxHashMap<u32, u64>, k: u32) -> u64 {
    map.get(&k).copied().unwrap_or(0)
}

fn safe_parse(s: &str) -> Option<u64> {
    s.parse().ok()
}
