//! Fixture: panic-safety (P) violations in a request-path module.

fn handle(parts: &[&str], body: &[u8]) -> u64 {
    let first = parts[0];
    let id: u64 = first.parse().unwrap();
    let n = body.first().expect("empty body");
    if *n > 100 {
        panic!("bad request");
    }
    match id {
        0 => unreachable!("id zero is reserved"),
        1 => todo!(),
        _ => {}
    }
    let window = &body[1..4];
    let i = (id as usize) % body.len();
    let by_var = body[i];
    id + u64::from(*n) + u64::from(by_var) + window.len() as u64
}
