//! Fixture: unsafe-hygiene (U) violations and satisfied cases.

fn bare_block(p: *const u64) -> u64 {
    unsafe { *p }
}

unsafe fn bare_fn(p: *const u64) -> u64 {
    *p
}

fn commented(p: *const u64) -> u64 {
    // SAFETY: caller guarantees `p` points at a live u64 (checked at
    // the only call site, which takes it from a pinned buffer).
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unsafe_in_tests_still_needs_safety() {
        let x = 7u64;
        let got = unsafe { *(&x as *const u64) };
        assert_eq!(got, 7);
    }
}
