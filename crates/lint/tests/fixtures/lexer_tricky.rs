//! hare-lint: no-alloc
//!
//! Fixture: rule tokens hidden where the lexer must not look.
//! D, A, P all forced — every finding here would be a lexer bug,
//! except the one real violation at the end.

// A comment saying .unwrap() and Vec::new() and panic!() is harmless.

/* Block comment: Instant::now() inside /* nested! .collect() */ here. */

fn strings() -> &'static str {
    let a = "call .unwrap() or panic!(now) please";
    let b = r#"raw with // not-a-comment and .expect("x")"#;
    let c = "escaped \" quote then .to_string() inside";
    let d = b"bytes with vec![1] inside";
    let _ = (a, b, c, d);
    "done"
}

fn chars_and_lifetimes<'a>(x: &'a [u8]) -> u8 {
    let quote = '"';
    let newline = '\n';
    let letter = 'r';
    let _ = (quote, newline, letter);
    match x.first() {
        Some(&f) => f,
        None => 0,
    }
}

fn the_one_real_violation() -> String {
    String::new()
}
