//! Golden tests: lint each fixture under `tests/fixtures/` and compare
//! against its checked-in `.expected` file (lines of
//! `<line>\t<rule-code>\t<snippet>`).
//!
//! Regenerate after an intentional rule change with
//! `BLESS=1 cargo test -p hare-lint --test goldens`.

use std::fs;
use std::path::Path;

use hare_lint::rules::{lint_source, ScopeSet};

/// Fixtures and the scopes they are linted under (path scoping doesn't
/// apply to fixture files, so scopes are forced explicitly).
const FIXTURES: [(&str, ScopeSet); 7] = [
    (
        "determinism_bad.rs",
        ScopeSet {
            determinism: true,
            panic_safety: false,
            force_no_alloc: false,
        },
    ),
    (
        "alloc_bad.rs",
        ScopeSet {
            determinism: false,
            panic_safety: false,
            force_no_alloc: true,
        },
    ),
    (
        "panic_bad.rs",
        ScopeSet {
            determinism: false,
            panic_safety: true,
            force_no_alloc: false,
        },
    ),
    (
        "unsafe_bad.rs",
        ScopeSet {
            determinism: false,
            panic_safety: false,
            force_no_alloc: false,
        },
    ),
    (
        "allow_escapes.rs",
        ScopeSet {
            determinism: false,
            panic_safety: false,
            force_no_alloc: true,
        },
    ),
    (
        "clean.rs",
        ScopeSet {
            determinism: true,
            panic_safety: true,
            force_no_alloc: true,
        },
    ),
    (
        "lexer_tricky.rs",
        ScopeSet {
            determinism: true,
            panic_safety: true,
            force_no_alloc: true,
        },
    ),
];

#[test]
fn fixtures_match_expected_findings() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let bless = std::env::var_os("BLESS").is_some();
    let mut failures = Vec::new();
    for (name, scopes) in FIXTURES {
        let src = fs::read_to_string(dir.join(name)).expect(name);
        let findings = lint_source(name, &src, scopes);
        let mut actual = String::new();
        for f in &findings {
            actual.push_str(&format!("{}\t{}\t{}\n", f.line, f.kind.code(), f.snippet));
        }
        let expected_path = dir.join(format!("{name}.expected"));
        if bless {
            fs::write(&expected_path, &actual).expect("write expected");
            continue;
        }
        let expected = fs::read_to_string(&expected_path).unwrap_or_default();
        if actual != expected {
            failures.push(format!(
                "== {name} ==\n--- expected ---\n{expected}--- actual ---\n{actual}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "fixture findings diverged (run with BLESS=1 to regenerate after an \
         intentional change):\n{}",
        failures.join("\n")
    );
}

#[test]
fn clean_fixture_is_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let src = fs::read_to_string(dir.join("clean.rs")).unwrap();
    let findings = lint_source(
        "clean.rs",
        &src,
        ScopeSet {
            determinism: true,
            panic_safety: true,
            force_no_alloc: true,
        },
    );
    assert!(
        findings.is_empty(),
        "clean fixture produced findings: {findings:?}"
    );
}
