//! End-to-end tests of the `hare-lint` binary: the acceptance bar is
//! that a deliberately-introduced violation from each rule family
//! (D/A/P/U) makes `--deny` exit non-zero with a `file:line`
//! diagnostic, and that the real repository stays clean against its
//! checked-in baseline.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_hare-lint")
}

/// A throwaway workspace directory, removed on drop.
struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn new(tag: &str) -> TempWorkspace {
        let root = std::env::temp_dir().join(format!("hare-lint-e2e-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        TempWorkspace { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, contents).unwrap();
    }

    fn run(&self, args: &[&str]) -> Output {
        Command::new(bin())
            .arg("--root")
            .arg(&self.root)
            .args(args)
            .output()
            .expect("spawn hare-lint")
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn clean_workspace_passes_deny() {
    let ws = TempWorkspace::new("clean");
    ws.write(
        "crates/core/src/fused.rs",
        "fn kernel(out: &mut [u64]) {\n    if let Some(first) = out.first_mut() {\n        *first += 1;\n    }\n}\n",
    );
    let out = ws.run(&["--deny"]);
    assert!(out.status.success(), "clean workspace must pass --deny");
}

#[test]
fn each_rule_family_fails_deny_with_file_line() {
    // One violation per family, each in a path its scope covers.
    let cases: [(&str, &str, &str, &str); 4] = [
        (
            "D",
            "crates/core/src/fused.rs",
            "use std::collections::HashMap;\nfn f() -> HashMap<u32, u32> {\n    HashMap::new()\n}\n",
            "D-std-hash",
        ),
        (
            "A",
            "crates/core/src/anywhere.rs",
            "//! hare-lint: no-alloc\nfn f() -> Vec<u64> {\n    Vec::new()\n}\n",
            "A-alloc",
        ),
        (
            "P",
            "crates/serve/src/api.rs",
            "fn f(x: Option<u64>) -> u64 {\n    x.unwrap()\n}\n",
            "P-panic",
        ),
        (
            "U",
            "crates/core/src/raw.rs",
            "fn f(p: *const u64) -> u64 {\n    unsafe { *p }\n}\n",
            "U-unsafe-comment",
        ),
    ];
    for (family, rel, src, rule) in cases {
        let ws = TempWorkspace::new(&format!("family-{family}"));
        ws.write(rel, src);
        let out = ws.run(&["--deny"]);
        assert!(
            !out.status.success(),
            "family {family}: --deny must fail on a {rule} violation"
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        let diagnostic_line = stdout
            .lines()
            .find(|l| l.contains(rule))
            .unwrap_or_else(|| panic!("family {family}: no {rule} diagnostic in:\n{stdout}"));
        // file:line format, e.g. `crates/core/src/fused.rs:1: [D-std-hash] ...`
        assert!(
            diagnostic_line.starts_with(&format!("{rel}:")),
            "family {family}: diagnostic must lead with file:line, got: {diagnostic_line}"
        );
        let after_path = &diagnostic_line[rel.len() + 1..];
        let line_no: String = after_path
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        assert!(
            !line_no.is_empty(),
            "family {family}: diagnostic must carry a line number: {diagnostic_line}"
        );
    }
}

#[test]
fn baseline_grandfathers_and_goes_stale() {
    let ws = TempWorkspace::new("baseline");
    ws.write(
        "crates/serve/src/api.rs",
        "fn f(x: Option<u64>) -> u64 {\n    x.unwrap()\n}\n",
    );
    // Snapshot the violation into a baseline: --deny now passes.
    let out = ws.run(&["--write-baseline"]);
    assert!(out.status.success());
    let out = ws.run(&["--deny"]);
    assert!(
        out.status.success(),
        "grandfathered finding must pass --deny"
    );

    // Fix the violation: the baseline entry is stale and --deny fails
    // until the file is pruned (keeps the baseline from rotting).
    ws.write(
        "crates/serve/src/api.rs",
        "fn f(x: Option<u64>) -> u64 {\n    x.unwrap_or(0)\n}\n",
    );
    let out = ws.run(&["--deny"]);
    assert!(
        !out.status.success(),
        "stale baseline entry must fail --deny"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("stale baseline entry"),
        "stale entry reported: {stdout}"
    );
}

#[test]
fn json_output_is_machine_readable() {
    let ws = TempWorkspace::new("json");
    ws.write(
        "crates/serve/src/api.rs",
        "fn f(x: Option<u64>) -> u64 {\n    x.unwrap()\n}\n",
    );
    let out = ws.run(&["--json"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"rule\": \"P-panic\""), "{stdout}");
    assert!(
        stdout.contains("\"path\": \"crates/serve/src/api.rs\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"line\": 2"), "{stdout}");
    assert!(stdout.contains("\"grandfathered\": false"), "{stdout}");
    assert!(stdout.contains("\"fresh\": 1"), "{stdout}");
}

/// The real repository must stay clean: this is the same check CI's
/// lint job runs, kept as a test so `cargo test` catches a regression
/// before the workflow does.
#[test]
fn repository_passes_its_own_baseline() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root");
    let out = Command::new(bin())
        .arg("--root")
        .arg(repo_root)
        .arg("--deny")
        .output()
        .expect("spawn hare-lint");
    assert!(
        out.status.success(),
        "hare-lint --deny failed on the repository:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
