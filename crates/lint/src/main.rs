//! `hare-lint` CLI.
//!
//! ```text
//! hare-lint [--root DIR] [--baseline FILE] [--deny] [--json] [--write-baseline]
//! ```
//!
//! Exit codes: `0` clean (or informational run), `1` `--deny` with
//! fresh findings or a stale baseline, `2` usage or I/O error.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use hare_lint::baseline;
use hare_lint::rules::Finding;
use hare_lint::scan_workspace;

struct Opts {
    root: PathBuf,
    baseline_path: PathBuf,
    deny: bool,
    json: bool,
    write_baseline: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut root = PathBuf::from(".");
    let mut baseline_path = None;
    let mut deny = false;
    let mut json = false;
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root needs a directory argument")?);
            }
            "--baseline" => {
                baseline_path = Some(PathBuf::from(
                    args.next().ok_or("--baseline needs a file argument")?,
                ));
            }
            "--deny" => deny = true,
            "--json" => json = true,
            "--write-baseline" => write_baseline = true,
            "--help" | "-h" => {
                return Err(
                    "usage: hare-lint [--root DIR] [--baseline FILE] [--deny] [--json] \
                     [--write-baseline]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));
    Ok(Opts {
        root,
        baseline_path,
        deny,
        json,
        write_baseline,
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let findings = match scan_workspace(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("hare-lint: scanning {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };

    if opts.write_baseline {
        let contents = baseline::render(&findings);
        if let Err(e) = fs::write(&opts.baseline_path, contents) {
            eprintln!("hare-lint: writing {}: {e}", opts.baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "hare-lint: wrote {} entries to {}",
            findings.len(),
            opts.baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let entries = match fs::read_to_string(&opts.baseline_path) {
        Ok(contents) => match baseline::parse(&contents) {
            Ok(e) => e,
            Err(msg) => {
                eprintln!("hare-lint: {}: {msg}", opts.baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Vec::new(), // no baseline file: everything is fresh
    };
    let applied = baseline::apply(findings, &entries);

    if opts.json {
        println!("{}", render_json(&applied));
    } else {
        render_text(&applied);
    }

    if opts.deny && (!applied.fresh.is_empty() || !applied.stale.is_empty()) {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn render_text(applied: &baseline::Applied) {
    for f in &applied.fresh {
        println!("{}:{}: [{}] {}", f.path, f.line, f.kind.code(), f.message);
        println!("    {}", f.snippet);
    }
    for e in &applied.stale {
        println!(
            "stale baseline entry (fixed? prune it): {}\t{}\t{}",
            e.rule, e.path, e.snippet
        );
    }
    eprintln!(
        "hare-lint: {} fresh, {} grandfathered, {} stale baseline entries",
        applied.fresh.len(),
        applied.grandfathered.len(),
        applied.stale.len()
    );
}

fn render_json(applied: &baseline::Applied) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    let mut first = true;
    let mut emit = |out: &mut String, f: &Finding, grandfathered: bool| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \
             \"snippet\": {}, \"grandfathered\": {}}}",
            json_str(f.kind.code()),
            json_str(&f.path),
            f.line,
            json_str(&f.message),
            json_str(&f.snippet),
            grandfathered
        ));
    };
    for f in &applied.fresh {
        emit(&mut out, f, false);
    }
    for f in &applied.grandfathered {
        emit(&mut out, f, true);
    }
    out.push_str("\n  ],\n  \"stale_baseline\": [");
    for (i, e) in applied.stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"snippet\": {}}}",
            json_str(&e.rule),
            json_str(&e.path),
            json_str(&e.snippet)
        ));
    }
    out.push_str(&format!(
        "\n  ],\n  \"fresh\": {},\n  \"grandfathered\": {},\n  \"stale\": {}\n}}",
        applied.fresh.len(),
        applied.grandfathered.len(),
        applied.stale.len()
    ));
    out
}

/// Minimal JSON string escaping (the only JSON we emit, so no serde).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
