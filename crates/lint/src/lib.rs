//! `hare-lint` — the workspace invariant checker.
//!
//! The hare codebase rests on invariants rustc never checks: motif
//! counts must be bit-identical across thread counts and engines, hot
//! kernels must not allocate, `hare-serve` request paths must not
//! panic, and `unsafe` must be argued. This crate is a zero-dependency
//! lexical linter that enforces those invariants mechanically; see
//! `docs/LINTS.md` for the rulebook and [`rules`] for the scanners.
//!
//! Layering: [`lexer`] turns a source file into a masked view
//! (comments/literals blanked), [`rules`] scans that view per rule
//! family, [`baseline`] absorbs grandfathered findings, and `main.rs`
//! is the CLI (`--deny` for CI, `--json` for machines).

pub mod baseline;
pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rules::{Finding, ScopeSet};

/// Counting/estimation modules bound by the determinism (D) rules.
const DETERMINISM_SCOPE: [&str; 7] = [
    "crates/core/src/fused.rs",
    "crates/core/src/hare.rs",
    "crates/core/src/sample.rs",
    "crates/core/src/windowed.rs",
    "crates/core/src/streaming.rs",
    "crates/core/src/stream_sample.rs",
    "crates/core/src/ooc.rs",
];

/// `hare-serve` request-path modules bound by the panic-safety (P)
/// rules: a panic here kills a pool worker mid-request.
const PANIC_SCOPE: [&str; 6] = [
    "crates/serve/src/api.rs",
    "crates/serve/src/http.rs",
    "crates/serve/src/sessions.rs",
    "crates/serve/src/catalog.rs",
    "crates/serve/src/cache.rs",
    "crates/serve/src/nodes.rs",
];

/// Rule scopes for a repo-relative path (forward slashes). The A family
/// is not path-scoped — modules opt in with a `//! hare-lint: no-alloc`
/// header — and U applies everywhere.
#[must_use]
pub fn scopes_for(rel: &str) -> ScopeSet {
    ScopeSet {
        // `crates/obs/src/` carries the probe seams the D-scoped
        // kernels call into: the same wall-clock/iteration-order rules
        // apply there, with the one timing implementation opting out
        // via its `//! hare-lint: timing` header.
        determinism: DETERMINISM_SCOPE.contains(&rel)
            || rel.starts_with("crates/temporal-graph/src/")
            || rel.starts_with("crates/obs/src/"),
        panic_safety: PANIC_SCOPE.contains(&rel),
        force_no_alloc: false,
    }
}

/// Lint one file with path-derived scopes.
#[must_use]
pub fn lint_file(rel: &str, src: &str) -> Vec<Finding> {
    rules::lint_source(rel, src, scopes_for(rel))
}

/// Walk the workspace under `root` and lint every `.rs` file. Skips
/// `target/`, VCS metadata, and the linter's own bad-on-purpose golden
/// fixtures. Output is sorted by path then line, so runs are
/// byte-reproducible.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        findings.extend(lint_file(&rel_str, &src));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.kind).cmp(&(&b.path, b.line, b.kind)));
    Ok(findings)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rules::RuleKind;

    #[test]
    fn scopes_follow_paths() {
        assert!(scopes_for("crates/core/src/fused.rs").determinism);
        assert!(scopes_for("crates/core/src/ooc.rs").determinism);
        assert!(scopes_for("crates/core/src/stream_sample.rs").determinism);
        assert!(scopes_for("crates/temporal-graph/src/graph.rs").determinism);
        assert!(scopes_for("crates/temporal-graph/src/ooc.rs").determinism);
        assert!(!scopes_for("crates/core/src/lib.rs").determinism);
        assert!(scopes_for("crates/obs/src/probe.rs").determinism);
        assert!(scopes_for("crates/obs/src/metrics.rs").determinism);
        // timing.rs is D-scoped too — its wall-clock use is legal only
        // because the module opts out via `//! hare-lint: timing`.
        assert!(scopes_for("crates/obs/src/timing.rs").determinism);
        assert!(scopes_for("crates/serve/src/api.rs").panic_safety);
        assert!(scopes_for("crates/serve/src/nodes.rs").panic_safety);
        assert!(!scopes_for("crates/serve/src/main.rs").panic_safety);
    }

    #[test]
    fn determinism_scope_flags_std_hash_and_wall_clock() {
        let src = "use std::collections::HashMap;\nfn t() { let s = std::time::Instant::now(); }\n";
        let f = lint_file("crates/core/src/fused.rs", src);
        assert!(f.iter().any(|f| f.kind == RuleKind::DStdHash));
        assert!(f.iter().any(|f| f.kind == RuleKind::DWallClock));
        // Same code outside the scope: clean.
        assert!(lint_file("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn map_iteration_resolves_nearest_declaration() {
        // Same name `slot_of`: a Vec in one fn (iteration fine), an
        // FxHashMap in another (iteration flagged).
        let src = "fn a() {\n    let mut slot_of = vec![0u32; 8];\n    for s in slot_of.iter_mut() { *s = 1; }\n}\nfn b() {\n    let mut slot_of: FxHashMap<u32, u32> = FxHashMap::default();\n    for (k, v) in slot_of.iter() { let _ = (k, v); }\n}\n";
        let f = lint_file("crates/core/src/sample.rs", src);
        let lines: Vec<usize> = f
            .iter()
            .filter(|f| f.kind == RuleKind::DMapIter)
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![7], "only the FxHashMap iteration is flagged");
    }

    #[test]
    fn map_iteration_sees_self_fields_and_for_loops() {
        let src = "struct S {\n    index: FxHashMap<u32, u32>,\n    lanes: Vec<u32>,\n}\nimpl S {\n    fn f(&self) {\n        for k in self.index.keys() {\n            let _ = k;\n        }\n        for (k, v) in &self.index {\n            let _ = (k, v);\n        }\n        for l in &self.lanes {\n            let _ = l;\n        }\n        self.index.get(&0);\n    }\n}\n";
        let f = lint_file("crates/temporal-graph/src/g.rs", src);
        let iters: Vec<usize> = f
            .iter()
            .filter(|f| f.kind == RuleKind::DMapIter)
            .map(|f| f.line)
            .collect();
        assert_eq!(
            iters,
            vec![7, 10],
            "keys() and for-in flagged; Vec and get() not"
        );
    }

    #[test]
    fn no_alloc_header_gates_allocation_rules() {
        let with = "//! hare-lint: no-alloc\nfn f() { let v: Vec<u32> = Vec::new(); let _ = v; }\n";
        let without = "fn f() { let v: Vec<u32> = Vec::new(); let _ = v; }\n";
        assert!(lint_file("crates/core/src/x.rs", with)
            .iter()
            .any(|f| f.kind == RuleKind::AAlloc));
        assert!(lint_file("crates/core/src/x.rs", without).is_empty());
    }

    #[test]
    fn allow_directive_suppresses_with_reason_only() {
        let good = "//! hare-lint: no-alloc\nfn f() {\n    // hare-lint: allow(alloc, reason = \"setup path, runs once\")\n    let v: Vec<u32> = Vec::new();\n    let _ = v;\n}\n";
        let bad = "//! hare-lint: no-alloc\nfn f() {\n    // hare-lint: allow(alloc)\n    let v: Vec<u32> = Vec::new();\n    let _ = v;\n}\n";
        assert!(lint_file("crates/core/src/x.rs", good).is_empty());
        let f = lint_file("crates/core/src/x.rs", bad);
        assert!(f.iter().any(|f| f.kind == RuleKind::BadDirective));
        assert!(
            f.iter().any(|f| f.kind == RuleKind::AAlloc),
            "bad allow does not suppress"
        );
    }

    #[test]
    fn panic_scope_flags_unwrap_and_literal_index() {
        let src = "fn h(r: &[u64]) -> u64 { let x = r[0]; r.first().unwrap() + x }\nfn i(b: &[u8], i: usize) -> u8 { b[i] }\n";
        let f = lint_file("crates/serve/src/api.rs", src);
        assert!(f.iter().any(|f| f.kind == RuleKind::PPanic && f.line == 1));
        assert!(f.iter().any(|f| f.kind == RuleKind::PIndex && f.line == 1));
        assert!(
            !f.iter().any(|f| f.line == 2),
            "variable index is out of scope (len-guarded patterns are common)"
        );
    }

    #[test]
    fn cfg_test_regions_are_exempt_except_unsafe() {
        let src = "//! hare-lint: no-alloc\nfn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {\n        let v = vec![1];\n        v.first().unwrap();\n        unsafe { std::hint::unreachable_unchecked() }\n    }\n}\n";
        let f = lint_file("crates/serve/src/api.rs", src);
        assert!(!f
            .iter()
            .any(|f| matches!(f.kind, RuleKind::AAlloc | RuleKind::PPanic)));
        assert!(
            f.iter().any(|f| f.kind == RuleKind::UUnsafe),
            "unsafe needs SAFETY even in tests"
        );
    }

    #[test]
    fn safety_comment_satisfies_unsafe_rule() {
        let commented = "fn f() {\n    // SAFETY: the pointer is valid for the lifetime of `buf`.\n    unsafe { do_it() }\n}\n";
        let bare = "fn f() {\n    unsafe { do_it() }\n}\n";
        assert!(lint_file("crates/core/src/x.rs", commented).is_empty());
        assert_eq!(lint_file("crates/core/src/x.rs", bare).len(), 1);
    }

    #[test]
    fn timing_header_permits_wall_clock() {
        let src =
            "//! hare-lint: timing\nfn t() { let s = std::time::Instant::now(); let _ = s; }\n";
        assert!(lint_file("crates/core/src/fused.rs", src).is_empty());
    }
}
