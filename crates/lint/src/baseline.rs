//! The grandfathered-findings baseline.
//!
//! A baseline file (`lint-baseline.txt` at the repo root) lists findings
//! that predate the linter and are accepted for now. Keys deliberately
//! omit line numbers — `rule \t path \t trimmed-snippet` — so unrelated
//! edits above a grandfathered line don't invalidate the entry. Matching
//! is multiset: two identical snippets in the baseline absorb at most
//! two identical findings.
//!
//! Workflow: `hare-lint --write-baseline` snapshots the current
//! findings; CI runs `hare-lint --deny`, which fails on anything *not*
//! in the baseline. Shrink the file as entries are fixed; a stale entry
//! (nothing matches it any more) is reported so the file can't rot.

use crate::rules::Finding;

/// One grandfathered entry: `rule \t path \t snippet`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule code, e.g. `D-std-hash`.
    pub rule: String,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// The trimmed source line at the time of grandfathering.
    pub snippet: String,
}

impl BaselineEntry {
    fn line(&self) -> String {
        format!("{}\t{}\t{}", self.rule, self.path, self.snippet)
    }
}

/// Parse a baseline file's contents. Blank lines and `#` comments are
/// skipped; malformed lines are returned as errors with their 1-based
/// line number.
pub fn parse(contents: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut entries = Vec::new();
    for (i, line) in contents.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.splitn(3, '\t');
        let (Some(rule), Some(path), Some(snippet)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {}: expected `rule<TAB>path<TAB>snippet`, got {t:?}",
                i + 1
            ));
        };
        entries.push(BaselineEntry {
            rule: rule.to_string(),
            path: path.to_string(),
            snippet: snippet.to_string(),
        });
    }
    Ok(entries)
}

/// Render findings as baseline file contents (sorted, with a header).
#[must_use]
pub fn render(findings: &[Finding]) -> String {
    let mut lines: Vec<String> = findings
        .iter()
        .map(|f| {
            BaselineEntry {
                rule: f.kind.code().to_string(),
                path: f.path.clone(),
                snippet: f.snippet.clone(),
            }
            .line()
        })
        .collect();
    lines.sort();
    let mut out = String::from(
        "# hare-lint baseline: grandfathered findings (rule<TAB>path<TAB>snippet).\n\
         # Remove entries as they are fixed; `hare-lint --write-baseline` regenerates.\n",
    );
    for l in &lines {
        out.push_str(l);
        out.push('\n');
    }
    out
}

/// Result of applying a baseline to a finding set.
pub struct Applied {
    /// Findings not absorbed by the baseline (these fail `--deny`).
    pub fresh: Vec<Finding>,
    /// Findings absorbed by a baseline entry.
    pub grandfathered: Vec<Finding>,
    /// Baseline entries that matched nothing (fix landed — prune them).
    pub stale: Vec<BaselineEntry>,
}

/// Split `findings` into fresh vs grandfathered using multiset matching
/// against `entries`.
#[must_use]
pub fn apply(findings: Vec<Finding>, entries: &[BaselineEntry]) -> Applied {
    let mut budget: Vec<(BaselineEntry, usize)> = Vec::new();
    for e in entries {
        if let Some(slot) = budget.iter_mut().find(|(b, _)| b == e) {
            slot.1 += 1;
        } else {
            budget.push((e.clone(), 1));
        }
    }
    let mut fresh = Vec::new();
    let mut grandfathered = Vec::new();
    for f in findings {
        let key = BaselineEntry {
            rule: f.kind.code().to_string(),
            path: f.path.clone(),
            snippet: f.snippet.clone(),
        };
        match budget.iter_mut().find(|(b, n)| *n > 0 && *b == key) {
            Some(slot) => {
                slot.1 -= 1;
                grandfathered.push(f);
            }
            None => fresh.push(f),
        }
    }
    let stale = budget
        .into_iter()
        .filter(|(_, n)| *n > 0)
        .map(|(b, _)| b)
        .collect();
    Applied {
        fresh,
        grandfathered,
        stale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, RuleKind};

    fn finding(snippet: &str) -> Finding {
        Finding {
            kind: RuleKind::PPanic,
            path: "crates/x/src/lib.rs".into(),
            line: 10,
            message: "m".into(),
            snippet: snippet.into(),
        }
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let entries = parse("# header\n\nP-panic\tcrates/x/src/lib.rs\tfoo.unwrap();\n").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "P-panic");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("just-one-field\n").is_err());
    }

    #[test]
    fn multiset_matching_absorbs_per_occurrence() {
        let entries = parse(
            "P-panic\tcrates/x/src/lib.rs\tfoo.unwrap();\n\
             P-panic\tcrates/x/src/lib.rs\tfoo.unwrap();\n",
        )
        .unwrap();
        let findings = vec![
            finding("foo.unwrap();"),
            finding("foo.unwrap();"),
            finding("foo.unwrap();"),
        ];
        let applied = apply(findings, &entries);
        assert_eq!(applied.grandfathered.len(), 2, "two entries absorb two");
        assert_eq!(applied.fresh.len(), 1, "third occurrence is fresh");
        assert!(applied.stale.is_empty());
    }

    #[test]
    fn unmatched_entries_are_stale() {
        let entries = parse("P-panic\tcrates/x/src/lib.rs\tgone.unwrap();\n").unwrap();
        let applied = apply(vec![], &entries);
        assert!(applied.fresh.is_empty());
        assert_eq!(applied.stale.len(), 1);
    }

    #[test]
    fn render_round_trips() {
        let rendered = render(&[finding("foo.unwrap();")]);
        let entries = parse(&rendered).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].snippet, "foo.unwrap();");
    }
}
