//! A small hand-rolled Rust lexer: just enough token classification to
//! lint lexically without `syn` (the environment is offline, and the
//! rules only need to know *code* from *comment* from *literal*).
//!
//! [`lex`] produces a [`Lexed`] view of one source file:
//!
//! * `masked` — the source with every comment and every string/char
//!   literal *interior* replaced by spaces (newlines and the quote
//!   delimiters survive). Rule token scans run on this view, so
//!   `"call .unwrap() please"` in a string or comment can never
//!   produce a finding, while line/column arithmetic still maps 1:1
//!   onto the original text.
//! * `comments` — every comment with its text and start line, the
//!   input for directive parsing (`hare-lint:` headers and
//!   `allow(...)` escapes) and `// SAFETY:` detection.
//! * `test_lines` — per-line flags marking `#[cfg(test)]` item bodies,
//!   so rules can skip test-only code.
//!
//! Handled lexical shapes: nested `/* /* */ */` block comments, line
//! comments (incl. `///` and `//!` docs), `"..."` strings with escapes,
//! raw strings `r"..."` / `r#"..."#` (any hash depth, `b`/`br` forms
//! too), char literals (`'a'`, `'\n'`, `'\u{7FFF}'`) and their
//! ambiguity with lifetimes (`'static`, `'_`).

/// One comment in the file.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` sigils.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: usize,
    /// `true` for `//!` inner doc comments (module headers).
    pub inner_doc: bool,
}

/// The lexed view of one source file. See the module docs.
#[derive(Debug)]
pub struct Lexed {
    /// Source with comment and literal interiors blanked to spaces.
    pub masked: String,
    /// All comments in order of appearance.
    pub comments: Vec<Comment>,
    /// Byte offset of the start of each line (index 0 = line 1).
    pub line_starts: Vec<usize>,
    /// `test_lines[i]` is `true` when 1-based line `i + 1` lies inside a
    /// `#[cfg(test)]` item body (attribute line included).
    pub test_lines: Vec<bool>,
}

impl Lexed {
    /// 1-based line containing byte `offset`.
    #[must_use]
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i, // insertion point is the next line start
        }
    }

    /// `true` when 1-based `line` is inside a `#[cfg(test)]` region.
    #[must_use]
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lex one source file. Never fails: unterminated constructs simply
/// consume to end of input (good enough for linting — rustc will reject
/// such a file anyway).
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut masked = b.to_vec();
    let mut comments = Vec::new();
    let mut i = 0usize;
    // Whether the previous unmasked byte continues an identifier —
    // distinguishes the raw-string prefix in `r"x"` from the `r` of
    // `for r in rows`.
    let mut prev_ident = false;

    let blank = |masked: &mut [u8], range: std::ops::Range<usize>| {
        for m in &mut masked[range] {
            if *m != b'\n' {
                *m = b' ';
            }
        }
    };

    while i < b.len() {
        let c = b[i];
        match c {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                comments.push((start, i));
                blank(&mut masked, start..i);
                prev_ident = false;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                comments.push((start, i));
                blank(&mut masked, start..i);
                prev_ident = false;
            }
            b'"' => {
                // Consume atomically so `//` inside a string is never a
                // comment; the interior is blanked by a second pass
                // ([`mask_plain_strings`]) once comments are spaces.
                i = consume_string(b, i);
                prev_ident = false;
            }
            b'r' | b'b' if !prev_ident => {
                // Possible raw/byte string prefix: r" r#" b" br" br#" ...
                if let Some(end) = try_raw_or_byte_string(b, i) {
                    // Blank everything between the opening and closing
                    // delimiter runs; keeping the exact quotes is not
                    // important, keeping line structure is.
                    blank(&mut masked, i..end);
                    i = end;
                    prev_ident = false;
                } else {
                    prev_ident = true;
                    i += 1;
                }
            }
            b'\'' => {
                if let Some(end) = try_char_literal(b, i) {
                    blank(&mut masked, i + 1..end - 1);
                    i = end;
                } else {
                    // Lifetime: consume the quote and the identifier.
                    i += 1;
                    while i < b.len() && is_ident_char(b[i]) {
                        i += 1;
                    }
                }
                prev_ident = false;
            }
            _ => {
                prev_ident = is_ident_char(c);
                i += 1;
            }
        }
    }

    // Fix up plain-string masking: the match arm above couldn't express
    // it inline, so strings are re-scanned here on the original bytes.
    // (Comments are already blanked, so this pass sees only real code.)
    mask_plain_strings(b, &mut masked);

    let masked = String::from_utf8_lossy(&masked).into_owned();
    let line_starts = compute_line_starts(src);
    let comments = comments
        .into_iter()
        .map(|(start, end)| {
            let text = src[start..end].to_string();
            let line = line_of(&line_starts, start);
            let inner_doc = text.starts_with("//!");
            Comment {
                text,
                line,
                inner_doc,
            }
        })
        .collect();
    let test_lines = compute_test_lines(&masked, &line_starts);
    Lexed {
        masked,
        comments,
        line_starts,
        test_lines,
    }
}

/// Consume a `"..."` string starting at the opening quote; returns the
/// offset just past the closing quote.
fn consume_string(b: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

/// If offset `i` starts a raw or byte string (`r"`, `r#"`, `b"`, `br"`,
/// `br#"` ...), consume it and return the end offset.
fn try_raw_or_byte_string(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    let mut raw = false;
    if b[j] == b'b' {
        j += 1;
        if b.get(j) == Some(&b'r') {
            raw = true;
            j += 1;
        }
    } else if b[j] == b'r' {
        raw = true;
        j += 1;
    }
    if !raw {
        // b"..." — escapes behave like a normal string.
        if b.get(j) == Some(&b'"') {
            return Some(consume_string(b, j));
        }
        return None;
    }
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        return None; // e.g. `r#[ident]` style macro hygiene names, or plain `r`
    }
    j += 1;
    // Scan for `"` followed by `hashes` hashes; no escapes in raw strings.
    while j < b.len() {
        if b[j] == b'"' {
            let close = &b[j + 1..];
            if close.len() >= hashes && close[..hashes].iter().all(|&h| h == b'#') {
                return Some(j + 1 + hashes);
            }
        }
        j += 1;
    }
    Some(b.len())
}

/// If offset `i` (at a `'`) starts a char literal, return the offset
/// just past the closing quote; `None` means it is a lifetime.
fn try_char_literal(b: &[u8], i: usize) -> Option<usize> {
    let next = *b.get(i + 1)?;
    if next == b'\\' {
        // Escaped char: scan to the closing quote.
        let mut j = i + 2;
        if j < b.len() {
            j += 1; // the escaped character itself (n, t, ', u, x, ...)
        }
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return Some((j + 1).min(b.len()));
    }
    if is_ident_char(next) {
        // `'a'` is a char only when a quote immediately follows one
        // identifier character; `'abc`, `'static`, `'_` are lifetimes.
        if b.get(i + 2) == Some(&b'\'') {
            return Some(i + 3);
        }
        return None; // lifetime
    }
    // Non-identifier single char: '(' , ' ' , multi-byte UTF-8, etc.
    let mut j = i + 1;
    while j < b.len() && b[j] != b'\'' && b[j] != b'\n' && j - i < 8 {
        j += 1;
    }
    if b.get(j) == Some(&b'\'') {
        return Some(j + 1);
    }
    None
}

/// Blank the interiors of plain `"..."` strings in `masked`, walking the
/// original bytes (comments in `masked` are already spaces, so quote
/// characters inside comments are invisible to this pass).
fn mask_plain_strings(orig: &[u8], masked: &mut [u8]) {
    let mut i = 0usize;
    while i < masked.len() {
        match masked[i] {
            b'"' => {
                let end = consume_string(orig, i);
                for m in &mut masked[i + 1..end.saturating_sub(1)] {
                    if *m != b'\n' {
                        *m = b' ';
                    }
                }
                i = end;
            }
            b'\'' => {
                // Skip char literals / lifetimes so an apostrophe can't
                // open a bogus string scan; interiors were handled in lex.
                match try_char_literal(orig, i) {
                    Some(end) => i = end,
                    None => {
                        i += 1;
                        while i < masked.len() && is_ident_char(masked[i]) {
                            i += 1;
                        }
                    }
                }
            }
            _ => i += 1,
        }
    }
}

fn compute_line_starts(src: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in src.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

fn line_of(line_starts: &[usize], offset: usize) -> usize {
    match line_starts.binary_search(&offset) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

/// Mark the lines covered by `#[cfg(test)]` items (the attribute, the
/// item header, and its brace-matched body).
fn compute_test_lines(masked: &str, line_starts: &[usize]) -> Vec<bool> {
    let mut flags = vec![false; line_starts.len()];
    let bytes = masked.as_bytes();
    let mut search = 0usize;
    while let Some(rel) = masked[search..].find("#[cfg(") {
        let attr_start = search + rel;
        // The attribute's argument list: check it mentions `test` as a
        // bare word (`cfg(test)`, `cfg(all(test, ...))`).
        let attr_end = match_bracket(bytes, attr_start + 1, b'[', b']');
        let args = &masked[attr_start..attr_end.min(masked.len())];
        search = attr_start + 6;
        // `cfg(not(test))` guards production-only code — the opposite of
        // a test region.
        if !mentions_test(args) || args.contains("not(test") {
            continue;
        }
        // Skip whitespace and any further attributes to the item, then
        // find its body: the first `{` before any `;`.
        let mut j = attr_end;
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'#' && bytes.get(j + 1) == Some(&b'[') {
                j = match_bracket(bytes, j + 1, b'[', b']');
                continue;
            }
            break;
        }
        let mut body_open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    body_open = Some(j);
                    break;
                }
                b';' => break, // e.g. `#[cfg(test)] mod tests;`
                _ => j += 1,
            }
        }
        let Some(open) = body_open else { continue };
        let close = match_bracket(bytes, open, b'{', b'}');
        let first = line_of(line_starts, attr_start);
        let last = line_of(line_starts, close.saturating_sub(1).min(bytes.len() - 1));
        for line in first..=last {
            if let Some(f) = flags.get_mut(line - 1) {
                *f = true;
            }
        }
    }
    flags
}

/// `true` when a `cfg` argument list mentions `test` as a bare word.
fn mentions_test(args: &str) -> bool {
    let b = args.as_bytes();
    let mut from = 0;
    while let Some(rel) = args[from..].find("test") {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident_char(b[at - 1]);
        let after = at + 4;
        let after_ok = after >= b.len() || !is_ident_char(b[after]);
        if before_ok && after_ok {
            return true;
        }
        from = at + 4;
    }
    false
}

/// Offset just past the bracket matching `open_at` (which must point at
/// the opening bracket). Unbalanced input returns the end of input.
fn match_bracket(bytes: &[u8], open_at: usize, open: u8, close: u8) -> usize {
    let mut depth = 0usize;
    let mut i = open_at;
    while i < bytes.len() {
        if bytes[i] == open {
            depth += 1;
        } else if bytes[i] == close {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_block_comments_are_blanked() {
        let src = "let a = 1; /* x /* .unwrap() */ y */ let b = 2;";
        let lx = lex(src);
        assert!(!lx.masked.contains("unwrap"));
        assert!(lx.masked.contains("let a = 1;"));
        assert!(lx.masked.contains("let b = 2;"));
        assert_eq!(lx.comments.len(), 1);
        assert!(lx.comments[0].text.starts_with("/* x /*"));
        assert!(lx.comments[0].text.ends_with("y */"));
    }

    #[test]
    fn line_comments_and_doc_flavours() {
        let src = "//! module header\n/// item doc\n// plain .unwrap()\nfn f() {}\n";
        let lx = lex(src);
        assert!(!lx.masked.contains("unwrap"));
        assert_eq!(lx.comments.len(), 3);
        assert!(lx.comments[0].inner_doc);
        assert!(!lx.comments[1].inner_doc);
        assert_eq!(lx.comments[2].line, 3);
        assert!(lx.masked.contains("fn f() {}"));
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let src = r###"let s = r#"// not a comment, .unwrap() inside"#; let t = 1;"###;
        let lx = lex(src);
        assert!(!lx.masked.contains("unwrap"));
        assert!(!lx.masked.contains("not a comment"));
        assert!(lx.masked.contains("let t = 1;"));
        assert!(lx.comments.is_empty(), "raw string is not a comment");
    }

    #[test]
    fn plain_strings_hide_contents_but_keep_quotes() {
        let src = "let s = \"call .unwrap() // now\"; let u = 2;";
        let lx = lex(src);
        assert!(!lx.masked.contains("unwrap"));
        assert!(lx.masked.contains('"'), "delimiters survive masking");
        assert!(lx.masked.contains("let u = 2;"));
        assert!(
            lx.comments.is_empty(),
            "// inside a string is not a comment"
        );
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let src = r#"let s = "a\"b // c"; let v = 3;"#;
        let lx = lex(src);
        assert!(lx.comments.is_empty());
        assert!(lx.masked.contains("let v = 3;"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = "let a = b\"// x\"; let b2 = br#\"/* y */\"#; let c = 4;";
        let lx = lex(src);
        assert!(lx.comments.is_empty());
        assert!(!lx.masked.contains("/* y */"));
        assert!(lx.masked.contains("let c = 4;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { let c = 'x'; let q = '\\''; x }";
        let lx = lex(src);
        // Lifetimes survive masking; char contents are blanked.
        assert!(lx.masked.contains("'a"));
        assert!(lx.masked.contains("'static"));
        assert!(!lx.masked.contains("'x'"));
        assert!(lx.masked.contains("{ let c ="), "code around chars intact");
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        let src = "for r in rows { var\n= 1; } let s = r\"real raw\";";
        let lx = lex(src);
        assert!(lx.masked.contains("for r in rows"));
        assert!(!lx.masked.contains("real raw"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn live() {}\n\n#[cfg(test)]\nmod tests {\n    fn inner() { x.unwrap(); }\n}\n\nfn live2() {}\n";
        let lx = lex(src);
        assert!(!lx.is_test_line(1), "live code before");
        assert!(lx.is_test_line(3), "attribute line");
        assert!(lx.is_test_line(4), "mod header");
        assert!(lx.is_test_line(5), "body");
        assert!(lx.is_test_line(6), "closing brace");
        assert!(!lx.is_test_line(8), "live code after");
    }

    #[test]
    fn cfg_all_test_counts_cfg_not_test_does_not() {
        let src = "#[cfg(all(test, unix))]\nmod a { }\n#[cfg(not(test))]\nmod b { }\n#[cfg(feature = \"test-utils\")]\nmod c { }\n";
        let lx = lex(src);
        assert!(lx.is_test_line(2), "all(test, ...) is a test region");
        assert!(!lx.is_test_line(4), "not(test) is production code");
        assert!(!lx.is_test_line(6), "feature string must not match");
    }

    #[test]
    fn cfg_test_with_extra_attributes_and_semicolon_items() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n    fn f() {}\n}\n#[cfg(test)]\nmod decl_only;\nfn live() {}\n";
        let lx = lex(src);
        assert!(lx.is_test_line(4), "body behind stacked attributes");
        assert!(!lx.is_test_line(8), "semicolon item has no body to mark");
    }

    #[test]
    fn braces_inside_strings_do_not_break_test_region_matching() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}}}\";\n    fn f() {}\n}\nfn live() {}\n";
        let lx = lex(src);
        assert!(lx.is_test_line(4));
        assert!(!lx.is_test_line(6), "region ends at the real brace");
    }

    #[test]
    fn line_of_maps_offsets_to_lines() {
        let src = "a\nbb\nccc\n";
        let lx = lex(src);
        assert_eq!(lx.line_of(0), 1);
        assert_eq!(lx.line_of(2), 2);
        assert_eq!(lx.line_of(3), 2);
        assert_eq!(lx.line_of(5), 3);
    }
}
