//! The rule families and their scanners.
//!
//! Four families, lettered as in `docs/LINTS.md`:
//!
//! * **D — determinism**: counting/estimation modules must not depend on
//!   hash-map iteration order (std `HashMap`/`HashSet` are banned
//!   outright — `RandomState` reorders per process — and *iterating*
//!   any hash map, Fx included, is flagged), nor read wall clocks.
//! * **A — hot-path allocation**: modules opted in with a
//!   `//! hare-lint: no-alloc` header must not allocate outside
//!   `#[cfg(test)]` regions or explicitly `allow`ed lines.
//! * **P — panic-safety**: request-path modules of `hare-serve` must
//!   not `unwrap`/`expect`/`panic!` (a panicking handler costs a
//!   request; a poisoned lock must be recovered, not re-thrown) nor
//!   index slices with bare integer literals.
//! * **U — unsafe hygiene**: every `unsafe` must carry a nearby
//!   `// SAFETY:` comment.
//!
//! Escape hatch: `// hare-lint: allow(<tag>, reason = "...")` on the
//! offending line or the line above; the reason is mandatory. Malformed
//! directives are themselves findings (`lint-directive`).

use crate::lexer::{lex, Lexed};

/// Which rule family (and sub-rule) produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleKind {
    /// D: std `HashMap`/`HashSet` (random iteration order) in a
    /// determinism-scoped module.
    DStdHash,
    /// D: iterating a hash map / hash set in a determinism-scoped module.
    DMapIter,
    /// D: wall-clock reads in a determinism-scoped module.
    DWallClock,
    /// A: allocation in a `no-alloc` module.
    AAlloc,
    /// P: panicking call in a request-path module.
    PPanic,
    /// P: bare integer-literal slice index in a request-path module.
    PIndex,
    /// U: `unsafe` without a `// SAFETY:` comment.
    UUnsafe,
    /// A malformed `hare-lint:` directive.
    BadDirective,
}

impl RuleKind {
    /// Stable machine-readable code (used in output and baseline keys).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            RuleKind::DStdHash => "D-std-hash",
            RuleKind::DMapIter => "D-map-iter",
            RuleKind::DWallClock => "D-wall-clock",
            RuleKind::AAlloc => "A-alloc",
            RuleKind::PPanic => "P-panic",
            RuleKind::PIndex => "P-index",
            RuleKind::UUnsafe => "U-unsafe-comment",
            RuleKind::BadDirective => "lint-directive",
        }
    }

    /// The `allow(...)` tag that suppresses this rule (`None` for
    /// directive errors, which cannot be allowed away).
    #[must_use]
    pub fn allow_tag(self) -> Option<&'static str> {
        match self {
            RuleKind::DStdHash => Some("std-hash"),
            RuleKind::DMapIter => Some("map-iter"),
            RuleKind::DWallClock => Some("wall-clock"),
            RuleKind::AAlloc => Some("alloc"),
            RuleKind::PPanic => Some("panic"),
            RuleKind::PIndex => Some("index"),
            RuleKind::UUnsafe => Some("unsafe"),
            RuleKind::BadDirective => None,
        }
    }

    /// Every allow tag the directive parser accepts.
    pub const ALLOW_TAGS: [&'static str; 7] = [
        "std-hash",
        "map-iter",
        "wall-clock",
        "alloc",
        "panic",
        "index",
        "unsafe",
    ];
}

/// One finding: a rule violation at a file:line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violated rule.
    pub kind: RuleKind,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The trimmed source line (also the drift-stable baseline key).
    pub snippet: String,
}

/// Which rule families apply to a file (derived from its path, plus the
/// `no-alloc`/`timing` module headers found during the scan).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScopeSet {
    /// D rules apply.
    pub determinism: bool,
    /// P rules apply.
    pub panic_safety: bool,
    /// Treat the module as `no-alloc` even without the header (fixture
    /// and self-test mode).
    pub force_no_alloc: bool,
}

/// Parsed `hare-lint:` directives of one file.
struct Directives {
    no_alloc: bool,
    timing: bool,
    /// `(line, tag)` pairs; an allow covers its own line and the next.
    allows: Vec<(usize, String)>,
    /// Malformed directives: `(line, message)`.
    bad: Vec<(usize, String)>,
}

/// If a comment line is a directive, return the text after
/// `hare-lint:`. The directive must be the line's whole content (after
/// the comment sigil) — prose *mentioning* `hare-lint:` mid-sentence,
/// like this linter's own docs, is not a directive.
fn directive_text(comment_line: &str) -> Option<&str> {
    let t = comment_line.trim_start();
    let t = t
        .strip_prefix("//!")
        .or_else(|| t.strip_prefix("///"))
        .or_else(|| t.strip_prefix("//"))
        .or_else(|| t.strip_prefix("/*!"))
        .or_else(|| t.strip_prefix("/**"))
        .or_else(|| t.strip_prefix("/*"))
        .unwrap_or(t);
    // Block-comment continuation stars.
    let t = t.trim_start().trim_start_matches('*').trim_start();
    t.strip_prefix("hare-lint:").map(str::trim)
}

fn parse_directives(lx: &Lexed) -> Directives {
    let mut d = Directives {
        no_alloc: false,
        timing: false,
        allows: Vec::new(),
        bad: Vec::new(),
    };
    for c in &lx.comments {
        for (line_off, text) in c.text.lines().enumerate() {
            let Some(rest) = directive_text(text) else {
                continue;
            };
            let line = c.line + line_off;
            if let Some(args) = rest.strip_prefix("allow(") {
                match parse_allow(args) {
                    Ok(tag) => d.allows.push((line, tag)),
                    Err(msg) => d.bad.push((line, msg)),
                }
            } else if rest.starts_with("no-alloc") {
                if c.inner_doc {
                    d.no_alloc = true;
                } else {
                    d.bad.push((
                        line,
                        "`hare-lint: no-alloc` must be a `//!` module header".into(),
                    ));
                }
            } else if rest.starts_with("timing") {
                if c.inner_doc {
                    d.timing = true;
                } else {
                    d.bad.push((
                        line,
                        "`hare-lint: timing` must be a `//!` module header".into(),
                    ));
                }
            } else {
                d.bad.push((
                    line,
                    format!(
                        "unknown hare-lint directive {:?}; expected no-alloc, timing, \
                         or allow(<tag>, reason = \"...\")",
                        rest.split_whitespace().next().unwrap_or("")
                    ),
                ));
            }
        }
    }
    d
}

/// Parse the inside of `allow(<tag>, reason = "...")`; returns the tag.
fn parse_allow(args: &str) -> Result<String, String> {
    let Some((tag, rest)) = args.split_once(',') else {
        return Err("allow(...) needs a reason: allow(<tag>, reason = \"...\")".into());
    };
    let tag = tag.trim().to_string();
    if !RuleKind::ALLOW_TAGS.contains(&tag.as_str()) {
        return Err(format!(
            "unknown allow tag {tag:?}; known: {}",
            RuleKind::ALLOW_TAGS.join(", ")
        ));
    }
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("reason") else {
        return Err("allow(...) needs `reason = \"...\"` after the tag".into());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('=') else {
        return Err("allow(...) needs `reason = \"...\"` after the tag".into());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('"') else {
        return Err("allow(...) reason must be a quoted string".into());
    };
    let Some(end) = rest.find('"') else {
        return Err("allow(...) reason string is unterminated".into());
    };
    if rest[..end].trim().is_empty() {
        return Err("allow(...) reason must not be empty".into());
    }
    Ok(tag)
}

/// Lint one file's source. `rel` is the repo-relative path used in
/// findings; `scopes` selects the path-dependent rule families.
#[must_use]
pub fn lint_source(rel: &str, src: &str, scopes: ScopeSet) -> Vec<Finding> {
    let lx = lex(src);
    let directives = parse_directives(&lx);
    let raw_lines: Vec<&str> = src.lines().collect();
    let no_alloc = scopes.force_no_alloc || directives.no_alloc;

    let mut out = Vec::new();
    let mut ctx = Ctx {
        rel,
        lx: &lx,
        raw_lines: &raw_lines,
        directives: &directives,
        out: &mut out,
    };

    for (line, msg) in &directives.bad {
        ctx.push_raw(RuleKind::BadDirective, *line, msg.clone());
    }
    if scopes.determinism {
        scan_std_hash(&mut ctx);
        scan_map_iteration(&mut ctx);
        if !directives.timing {
            scan_wall_clock(&mut ctx);
        }
    }
    if no_alloc {
        scan_allocations(&mut ctx);
    }
    if scopes.panic_safety {
        scan_panics(&mut ctx);
        scan_literal_indexing(&mut ctx);
    }
    scan_unsafe(&mut ctx);

    out.sort_by_key(|a| (a.line, a.kind));
    out
}

struct Ctx<'a> {
    rel: &'a str,
    lx: &'a Lexed,
    raw_lines: &'a [&'a str],
    directives: &'a Directives,
    out: &'a mut Vec<Finding>,
}

impl Ctx<'_> {
    fn allowed(&self, kind: RuleKind, line: usize) -> bool {
        let Some(tag) = kind.allow_tag() else {
            return false;
        };
        self.directives
            .allows
            .iter()
            .any(|(l, t)| t == tag && (*l == line || *l + 1 == line))
    }

    /// Push a finding unless the line is in a test region or allowed.
    fn push(&mut self, kind: RuleKind, line: usize, message: String) {
        if self.lx.is_test_line(line) || self.allowed(kind, line) {
            return;
        }
        self.push_raw(kind, line, message);
    }

    /// Push without the test-region filter (U and directive errors).
    fn push_raw(&mut self, kind: RuleKind, line: usize, message: String) {
        let snippet = self
            .raw_lines
            .get(line.saturating_sub(1))
            .map_or(String::new(), |l| l.trim().to_string());
        self.out.push(Finding {
            kind,
            path: self.rel.to_string(),
            line,
            message,
            snippet,
        });
    }

    /// Masked text of 1-based `line`.
    fn masked_line(&self, line: usize) -> &str {
        let start = self.lx.line_starts[line - 1];
        let end = self
            .lx
            .line_starts
            .get(line)
            .map_or(self.lx.masked.len(), |e| e - 1);
        &self.lx.masked[start..end.max(start)]
    }

    fn num_lines(&self) -> usize {
        self.lx.line_starts.len()
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets of every occurrence of `needle` in `hay`.
fn occurrences(hay: &str, needle: &str) -> Vec<usize> {
    let mut v = Vec::new();
    let mut from = 0;
    while let Some(rel) = hay[from..].find(needle) {
        v.push(from + rel);
        from += rel + needle.len().max(1);
    }
    v
}

// ---------------------------------------------------------------- D --

fn scan_std_hash(ctx: &mut Ctx<'_>) {
    for line in 1..=ctx.num_lines() {
        let text = ctx.masked_line(line);
        let std_path = text.contains("std::collections::")
            && (text.contains("HashMap") || text.contains("HashSet"));
        let bare_ctor = ["HashMap::new(", "HashSet::new(", "HashMap::with_capacity("]
            .iter()
            .any(|t| text.contains(t));
        if std_path || bare_ctor {
            ctx.push(
                RuleKind::DStdHash,
                line,
                "std HashMap/HashSet iterates in RandomState order (differs per process); \
                 use temporal_graph::util::FxHashMap or a sorted structure"
                    .to_string(),
            );
        }
    }
}

fn scan_wall_clock(ctx: &mut Ctx<'_>) {
    for line in 1..=ctx.num_lines() {
        let text = ctx.masked_line(line);
        for token in ["Instant::now(", "SystemTime::now(", "UNIX_EPOCH"] {
            if text.contains(token) {
                ctx.push(
                    RuleKind::DWallClock,
                    line,
                    format!(
                        "wall-clock read ({}) in a determinism-scoped module; tag the \
                         module `//! hare-lint: timing` if it is timing infrastructure",
                        token.trim_end_matches('(')
                    ),
                );
                break;
            }
        }
    }
}

const MAP_ITER_METHODS: [&str; 10] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".retain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

/// A `let` binding (or a struct field) whose declared type or
/// initialiser lexically mentions a hash map/set.
struct Decl {
    offset: usize,
    name: String,
    is_map: bool,
}

fn scan_map_iteration(ctx: &mut Ctx<'_>) {
    let masked = ctx.lx.masked.as_str();
    let decls = collect_let_decls(masked);
    let map_fields = collect_map_fields(masked);

    let mut hits: Vec<(usize, String)> = Vec::new(); // (offset, receiver)
    for method in MAP_ITER_METHODS {
        for at in occurrences(masked, method) {
            let Some(path) = receiver_path(masked.as_bytes(), at) else {
                continue;
            };
            if receiver_is_map(&path, at, &decls, &map_fields) {
                hits.push((at, path.join(".")));
            }
        }
    }
    // `for x in &map` / `for x in map` loops.
    for at in word_occurrences(masked, "for") {
        let Some(hit) = for_loop_map_receiver(masked, at, &decls, &map_fields) else {
            continue;
        };
        hits.push((at, hit));
    }

    hits.sort();
    hits.dedup();
    for (at, receiver) in hits {
        let line = ctx.lx.line_of(at);
        ctx.push(
            RuleKind::DMapIter,
            line,
            format!(
                "iterating hash map/set `{receiver}` — iteration order is not part of \
                 the determinism contract; sort the keys first or use a vector"
            ),
        );
    }
}

fn collect_let_decls(masked: &str) -> Vec<Decl> {
    let bytes = masked.as_bytes();
    let mut decls = Vec::new();
    for at in word_occurrences(masked, "let") {
        let mut j = at + 3;
        while bytes.get(j).is_some_and(u8::is_ascii_whitespace) {
            j += 1;
        }
        if masked[j..].starts_with("mut") && bytes.get(j + 3).is_some_and(u8::is_ascii_whitespace) {
            j += 4;
            while bytes.get(j).is_some_and(u8::is_ascii_whitespace) {
                j += 1;
            }
        }
        let start = j;
        while bytes.get(j).copied().is_some_and(is_ident) {
            j += 1;
        }
        if j == start {
            continue; // destructuring pattern, not a simple binding
        }
        let name = masked[start..j].to_string();
        // Classify by the rest of the statement (bounded scan).
        let end = masked[j..]
            .find(';')
            .map_or(masked.len(), |e| j + e)
            .min(j + 400);
        let tail = &masked[j..end];
        let is_map = tail.contains("HashMap") || tail.contains("HashSet");
        decls.push(Decl {
            offset: at,
            name,
            is_map,
        });
    }
    decls
}

fn collect_map_fields(masked: &str) -> Vec<String> {
    let mut fields = Vec::new();
    for line in masked.lines() {
        let t = line.trim();
        if !(t.contains("HashMap<") || t.contains("HashSet<")) {
            continue;
        }
        let t = t
            .strip_prefix("pub(crate) ")
            .or_else(|| t.strip_prefix("pub(super) "))
            .or_else(|| t.strip_prefix("pub "))
            .unwrap_or(t);
        if ["let ", "use ", "fn ", "type ", "impl ", "for ", "where "]
            .iter()
            .any(|kw| t.starts_with(kw))
        {
            continue;
        }
        let Some((name, _)) = t.split_once(':') else {
            continue;
        };
        let name = name.trim();
        if !name.is_empty() && name.bytes().all(is_ident) {
            fields.push(name.to_string());
        }
    }
    fields
}

/// Walk backwards from the `.` of a method call to extract a simple
/// receiver path (`self.map`, `slot_of`). Chained calls (`f().iter()`)
/// and indexed receivers return `None`.
fn receiver_path(bytes: &[u8], dot: usize) -> Option<Vec<String>> {
    let mut segments = Vec::new();
    let mut j = dot;
    loop {
        while j > 0 && bytes[j - 1].is_ascii_whitespace() {
            j -= 1;
        }
        if j == 0 {
            break;
        }
        if !is_ident(bytes[j - 1]) {
            return None; // `)`, `]`, `?` ... not a simple path
        }
        let end = j;
        while j > 0 && is_ident(bytes[j - 1]) {
            j -= 1;
        }
        segments.push(String::from_utf8_lossy(&bytes[j..end]).into_owned());
        while j > 0 && bytes[j - 1].is_ascii_whitespace() {
            j -= 1;
        }
        if j > 0 && bytes[j - 1] == b'.' {
            j -= 1;
            continue;
        }
        break;
    }
    if segments.is_empty() {
        return None;
    }
    segments.reverse();
    Some(segments)
}

fn receiver_is_map(path: &[String], at: usize, decls: &[Decl], map_fields: &[String]) -> bool {
    match path {
        [single] => {
            // Nearest preceding `let` of the same name decides (handles
            // shadowing: the same name may be a Vec in one fn and a map
            // in another).
            let decl = decls.iter().rfind(|d| d.name == *single && d.offset < at);
            match decl {
                Some(d) => d.is_map,
                None => map_fields.iter().any(|f| f == single),
            }
        }
        [obj, field] if obj == "self" => map_fields.iter().any(|f| f == field),
        _ => false,
    }
}

/// Occurrences of `word` with identifier boundaries on both sides.
fn word_occurrences(hay: &str, word: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    occurrences(hay, word)
        .into_iter()
        .filter(|&at| {
            let before_ok = at == 0 || !is_ident(bytes[at - 1]);
            let after = at + word.len();
            let after_ok = after >= bytes.len() || !is_ident(bytes[after]);
            before_ok && after_ok
        })
        .collect()
}

/// If the `for` loop starting at `at` iterates a hash map/set receiver,
/// return a display name for it.
fn for_loop_map_receiver(
    masked: &str,
    at: usize,
    decls: &[Decl],
    map_fields: &[String],
) -> Option<String> {
    let window_end = (at + 240).min(masked.len());
    let window = &masked[at..window_end];
    let brace = window.find('{')?;
    let in_at = window[..brace].find(" in ")?;
    let expr = window[in_at + 4..brace].trim();
    let expr = expr
        .strip_prefix("&mut ")
        .or_else(|| expr.strip_prefix('&'))
        .unwrap_or(expr)
        .trim();
    if expr.is_empty() || !expr.bytes().all(|b| is_ident(b) || b == b'.') {
        return None; // calls, slices, ranges: not a bare map path
    }
    let path: Vec<String> = expr.split('.').map(str::to_string).collect();
    if receiver_is_map(&path, at, decls, map_fields) {
        Some(expr.to_string())
    } else {
        None
    }
}

// ---------------------------------------------------------------- A --

const ALLOC_TOKENS: [&str; 15] = [
    "Vec::new(",
    "Vec::with_capacity(",
    "vec![",
    "Box::new(",
    ".collect()",
    ".collect::<",
    "format!(",
    ".to_string()",
    ".to_owned()",
    ".to_vec()",
    "String::new(",
    "String::from(",
    "String::with_capacity(",
    ".resize(",
    ".resize_with(",
];

fn scan_allocations(ctx: &mut Ctx<'_>) {
    for line in 1..=ctx.num_lines() {
        let text = ctx.masked_line(line);
        for token in ALLOC_TOKENS {
            if text.contains(token) {
                ctx.push(
                    RuleKind::AAlloc,
                    line,
                    format!(
                        "`{}` allocates in a `no-alloc` module; hoist it out of the hot \
                         path or annotate `// hare-lint: allow(alloc, reason = \"...\")`",
                        token.trim_end_matches(['(', '<', ':'])
                    ),
                );
                break; // one finding per line keeps baselines stable
            }
        }
    }
}

// ---------------------------------------------------------------- P --

const PANIC_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

fn scan_panics(ctx: &mut Ctx<'_>) {
    for line in 1..=ctx.num_lines() {
        let text = ctx.masked_line(line);
        for token in PANIC_TOKENS {
            if text.contains(token) {
                ctx.push(
                    RuleKind::PPanic,
                    line,
                    format!(
                        "`{}` can panic a request worker; return an error response, and \
                         recover poisoned locks with unwrap_or_else(PoisonError::into_inner)",
                        token.trim_end_matches('(').trim_start_matches('.')
                    ),
                );
                break;
            }
        }
    }
}

fn scan_literal_indexing(ctx: &mut Ctx<'_>) {
    let masked = ctx.lx.masked.as_str();
    let bytes = masked.as_bytes();
    for at in occurrences(masked, "[") {
        // Receiver must be an identifier (rules out array types/literals
        // and attributes).
        if at == 0 || !is_ident(bytes[at - 1]) {
            continue;
        }
        let close = masked[at..].find(']').map(|e| at + e);
        let Some(close) = close else { continue };
        let inner = masked[at + 1..close].trim();
        let is_literal_index =
            !inner.is_empty() && inner.bytes().all(|b| b.is_ascii_digit() || b == b'_');
        if !is_literal_index {
            continue; // ranges, variables, string keys: out of scope
        }
        let line = ctx.lx.line_of(at);
        ctx.push(
            RuleKind::PIndex,
            line,
            format!(
                "bare literal index `[{inner}]` panics when out of bounds; \
                 use .get({inner}) and handle None"
            ),
        );
    }
}

// ---------------------------------------------------------------- U --

fn scan_unsafe(ctx: &mut Ctx<'_>) {
    // Lines covered by a SAFETY comment: the comment's own lines plus a
    // short reach below it (attribute lines may sit between). A run of
    // `//` comments on consecutive lines is one logical comment, so a
    // multi-line SAFETY argument covers past its last line, not its
    // first.
    let mut safety_cover: Vec<(usize, usize)> = Vec::new();
    let mut block: Option<(usize, usize, bool)> = None; // (first, last, has_safety)
    for c in &ctx.lx.comments {
        let lines = c.text.lines().count().max(1);
        let last = c.line + lines - 1;
        let has = c.text.contains("SAFETY:");
        match &mut block {
            Some((_, block_last, block_has)) if c.line <= *block_last + 1 => {
                *block_last = last.max(*block_last);
                *block_has |= has;
            }
            _ => {
                if let Some((first, last, true)) = block.take() {
                    safety_cover.push((first, last + 3));
                }
                block = Some((c.line, last, has));
            }
        }
    }
    if let Some((first, last, true)) = block {
        safety_cover.push((first, last + 3));
    }
    for at in word_occurrences(&ctx.lx.masked, "unsafe") {
        let line = ctx.lx.line_of(at);
        let covered = safety_cover
            .iter()
            .any(|&(lo, hi)| line >= lo && line <= hi);
        if covered {
            continue;
        }
        if ctx.allowed(RuleKind::UUnsafe, line) {
            continue;
        }
        // Deliberately NOT test-filtered: unsafe in tests needs a safety
        // argument too.
        ctx.push_raw(
            RuleKind::UUnsafe,
            line,
            "unsafe without a `// SAFETY:` comment explaining why the invariants hold".to_string(),
        );
    }
}
