//! # hare-datasets
//!
//! Registry of the sixteen real-world temporal networks of the paper's
//! Table II, each backed by a **calibrated synthetic generator**
//! (DESIGN.md §3: the real files are not downloadable in this
//! environment; the generators match the workload properties that drive
//! every algorithm's cost — |E|, degree skew, δ-window density, pair
//! multiplicity and wedge closure — at the paper's node/edge/time-span
//! scale).
//!
//! Large datasets are generated at a reduced scale by default so the full
//! benchmark suite fits a laptop-class machine; the scale factor is part
//! of the spec and is reported by every experiment binary. Passing
//! `scale = 1` reproduces the paper's full |E| (given enough RAM/time).
//!
//! If you have the real SNAP/NetworkRepository files, load them with
//! [`temporal_graph::io::load_graph`] instead — every harness in
//! `hare-bench` accepts either source.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use temporal_graph::gen::GenConfig;
use temporal_graph::{TemporalGraph, Timestamp};

/// Workload family, controlling the generator's shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Person-to-person messaging (email, SMS, wall posts): strong
    /// reciprocity, bursty conversations.
    Messaging,
    /// Web-of-trust / transaction networks: low reciprocity, mild skew.
    Transaction,
    /// Q&A forums: moderate skew, reply bursts.
    Forum,
    /// Talk/edit networks: extreme hub skew (Fig. 9's WikiTalk shape).
    TalkPages,
    /// User-to-item interactions (ratings, clicks, MOOC actions): no
    /// reciprocity, strong item popularity skew.
    Interaction,
}

impl Family {
    fn shape(self) -> (f64, f64, f64, f64, f64) {
        // (zipf_exponent, mean_burst_len, reciprocate_prob,
        //  triangle_prob, time_cluster_prob)
        // A higher Zipf exponent concentrates more traffic on the top
        // ranks (heavier hubs); TalkPages is calibrated to the extreme
        // skew of Fig. 9 (top node carries a few percent of all edges).
        // time_cluster_prob controls how strongly activity bunches in
        // time, which drives the δ-window motif densities of Fig. 10.
        match self {
            Family::Messaging => (0.80, 1.6, 0.40, 0.20, 0.92),
            Family::Transaction => (0.75, 1.2, 0.10, 0.10, 0.75),
            Family::Forum => (0.85, 1.4, 0.30, 0.15, 0.88),
            Family::TalkPages => (1.05, 1.3, 0.15, 0.10, 0.85),
            Family::Interaction => (0.95, 1.2, 0.02, 0.05, 0.80),
        }
    }
}

/// Specification of one Table II dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// `|V|` reported in Table II.
    pub paper_nodes: usize,
    /// `|E|` reported in Table II.
    pub paper_edges: usize,
    /// Time span in days reported in Table II.
    pub paper_span_days: f64,
    /// Workload family → generator shape.
    pub family: Family,
    /// Deterministic seed (distinct per dataset).
    pub seed: u64,
}

impl DatasetSpec {
    /// Scale factor needed to keep the generated graph at or below
    /// `max_edges` (1 = full size).
    #[must_use]
    pub fn scale_for(&self, max_edges: usize) -> usize {
        self.paper_edges.div_ceil(max_edges).max(1)
    }

    /// Generator configuration at `1/scale` of the paper's size. Node and
    /// edge counts shrink together (mean degree preserved) and the time
    /// span is kept, so the δ-window density matches the full dataset.
    #[must_use]
    pub fn gen_config(&self, scale: usize) -> GenConfig {
        assert!(scale >= 1, "scale must be >= 1");
        let (zipf, burst, recip, tri, cluster) = self.family.shape();
        let edges = (self.paper_edges / scale).max(100);
        let nodes = (self.paper_nodes / scale).clamp(10, edges.max(10));
        GenConfig {
            nodes,
            edges,
            time_span: (self.paper_span_days * 86_400.0) as Timestamp,
            zipf_exponent: zipf,
            mean_burst_len: burst,
            reciprocate_prob: recip,
            burst_gap: 150,
            triangle_prob: tri,
            time_cluster_prob: cluster,
            seed: self.seed,
        }
    }

    /// Generate the stand-in graph at the given scale.
    #[must_use]
    pub fn generate(&self, scale: usize) -> TemporalGraph {
        self.gen_config(scale).generate()
    }
}

/// All sixteen datasets of Table II, in the paper's order.
#[must_use]
pub fn all() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "Email-Eu",
            paper_nodes: 986,
            paper_edges: 332_334,
            paper_span_days: 803.0,
            family: Family::Messaging,
            seed: 0xD5_01,
        },
        DatasetSpec {
            name: "CollegeMsg",
            paper_nodes: 1_899,
            paper_edges: 20_296,
            paper_span_days: 193.0,
            family: Family::Messaging,
            seed: 0xD5_02,
        },
        DatasetSpec {
            name: "Bitcoinotc",
            paper_nodes: 5_881,
            paper_edges: 35_592,
            paper_span_days: 1_903.0,
            family: Family::Transaction,
            seed: 0xD5_03,
        },
        DatasetSpec {
            name: "Bitcoinalpha",
            paper_nodes: 3_783,
            paper_edges: 24_186,
            paper_span_days: 1_901.0,
            family: Family::Transaction,
            seed: 0xD5_04,
        },
        DatasetSpec {
            name: "Act-mooc",
            paper_nodes: 7_143,
            paper_edges: 411_749,
            paper_span_days: 29.0,
            family: Family::Interaction,
            seed: 0xD5_05,
        },
        DatasetSpec {
            name: "SMS-A",
            paper_nodes: 44_090,
            paper_edges: 544_817,
            paper_span_days: 338.0,
            family: Family::Messaging,
            seed: 0xD5_06,
        },
        DatasetSpec {
            name: "FBWall",
            paper_nodes: 45_813,
            paper_edges: 855_542,
            paper_span_days: 1_591.0,
            family: Family::Messaging,
            seed: 0xD5_07,
        },
        DatasetSpec {
            name: "MathOverflow",
            paper_nodes: 24_818,
            paper_edges: 506_550,
            paper_span_days: 2_350.0,
            family: Family::Forum,
            seed: 0xD5_08,
        },
        DatasetSpec {
            name: "AskUbuntu",
            paper_nodes: 159_316,
            paper_edges: 964_437,
            paper_span_days: 2_613.0,
            family: Family::Forum,
            seed: 0xD5_09,
        },
        DatasetSpec {
            name: "SuperUser",
            paper_nodes: 194_085,
            paper_edges: 1_443_339,
            paper_span_days: 2_773.0,
            family: Family::Forum,
            seed: 0xD5_0A,
        },
        DatasetSpec {
            name: "Rec-MovieLens",
            paper_nodes: 283_228,
            paper_edges: 27_753_444,
            paper_span_days: 1_128.0,
            family: Family::Interaction,
            seed: 0xD5_0B,
        },
        DatasetSpec {
            name: "WikiTalk",
            paper_nodes: 1_140_149,
            paper_edges: 7_833_140,
            paper_span_days: 2_320.0,
            family: Family::TalkPages,
            seed: 0xD5_0C,
        },
        DatasetSpec {
            name: "StackOverflow",
            paper_nodes: 2_601_977,
            paper_edges: 63_497_050,
            paper_span_days: 2_774.0,
            family: Family::Forum,
            seed: 0xD5_0D,
        },
        DatasetSpec {
            name: "IA-online-ads",
            paper_nodes: 15_336_555,
            paper_edges: 15_995_634,
            paper_span_days: 2_461.0,
            family: Family::Interaction,
            seed: 0xD5_0E,
        },
        DatasetSpec {
            name: "Soc-bitcoin",
            paper_nodes: 24_575_382,
            paper_edges: 122_948_162,
            paper_span_days: 2_584.0,
            family: Family::Transaction,
            seed: 0xD5_0F,
        },
        DatasetSpec {
            name: "RedditComments",
            paper_nodes: 8_036_164,
            paper_edges: 613_289_746,
            paper_span_days: 3_686.0,
            family: Family::Messaging,
            seed: 0xD5_10,
        },
    ]
}

/// Look a dataset up by (case-insensitive) name.
#[must_use]
pub fn by_name(name: &str) -> Option<DatasetSpec> {
    all()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
}

/// The subset used in the paper's per-figure panels: the twelve datasets
/// of Fig. 11 (everything except the four largest).
#[must_use]
pub fn fig11_set() -> Vec<DatasetSpec> {
    let names = [
        "StackOverflow",
        "WikiTalk",
        "MathOverflow",
        "SuperUser",
        "FBWall",
        "AskUbuntu",
        "SMS-A",
        "Act-mooc",
        "IA-online-ads",
        "Rec-MovieLens",
        "Soc-bitcoin",
        "RedditComments",
    ];
    names.iter().map(|n| by_name(n).unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_graph::stats::GraphStats;

    #[test]
    fn registry_has_sixteen_datasets_with_unique_names_and_seeds() {
        let specs = all();
        assert_eq!(specs.len(), 16);
        let names: std::collections::HashSet<_> = specs.iter().map(|d| d.name).collect();
        assert_eq!(names.len(), 16);
        let seeds: std::collections::HashSet<_> = specs.iter().map(|d| d.seed).collect();
        assert_eq!(seeds.len(), 16);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(by_name("wikitalk").is_some());
        assert!(by_name("WIKITALK").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn scale_for_caps_edges() {
        let d = by_name("RedditComments").unwrap();
        let s = d.scale_for(1_000_000);
        assert!(d.paper_edges / s <= 1_000_000);
        assert_eq!(by_name("CollegeMsg").unwrap().scale_for(1_000_000), 1);
    }

    #[test]
    fn generated_graph_matches_scaled_spec() {
        let d = by_name("CollegeMsg").unwrap();
        let g = d.generate(1);
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.num_edges, d.paper_edges);
        assert!(stats.num_nodes <= d.paper_nodes);
        // Span should be within the configured budget.
        assert!(stats.time_span <= (d.paper_span_days * 86_400.0) as i64);
    }

    #[test]
    fn scaling_preserves_mean_degree_roughly() {
        let d = by_name("SuperUser").unwrap();
        let g1 = d.generate(20);
        let g2 = d.generate(40);
        let m1 = GraphStats::compute(&g1).mean_degree;
        let m2 = GraphStats::compute(&g2).mean_degree;
        assert!(
            (m1 - m2).abs() / m1 < 0.35,
            "mean degree drifted: {m1} vs {m2}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let d = by_name("Bitcoinotc").unwrap();
        let a = d.generate(4);
        let b = d.generate(4);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn talkpages_family_is_most_skewed() {
        // Compare the two families at identical size so only the shape
        // parameters differ: the hub's share of edges must be clearly
        // larger for TalkPages.
        let top_share = |family: Family| {
            let cfg = GenConfig {
                nodes: 4_000,
                edges: 30_000,
                time_span: 10_000_000,
                seed: 77,
                zipf_exponent: family.shape().0,
                ..GenConfig::default()
            };
            let g = cfg.generate();
            let s = GraphStats::compute(&g);
            s.max_degree as f64 / (2.0 * s.num_edges as f64)
        };
        assert!(top_share(Family::TalkPages) > 1.5 * top_share(Family::Forum));
    }

    #[test]
    fn fig11_set_has_twelve() {
        assert_eq!(fig11_set().len(), 12);
    }
}
