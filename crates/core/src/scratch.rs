//! Reusable per-thread scratch state for FAST-Star.
//!
//! Algorithm 1 keeps two HashMaps (`m_in`, `m_out`) that are re-initialised
//! for every first-edge position. Allocating/clearing maps in the inner
//! loop dominates run time on large graphs, so we use the classic *stamped
//! array* trick: one flat array indexed by neighbour id, with a generation
//! stamp marking which entries belong to the current iteration. Reset is
//! O(1); lookups are a single indexed load.
//!
//! Each neighbour's stamp and both direction counts live in **one**
//! 12-byte `Entry`, so a lookup or increment touches a single cache
//! line (the previous two-array layout paid two misses per random
//! neighbour access). `u32` counts are safe: a count never exceeds the
//! builder-asserted edge-count bound of `u32::MAX`.
//!
//! hare-lint: no-alloc

use temporal_graph::{Dir, NodeId};

/// One neighbour's scratch state: generation mark plus `[out, in]`
/// counts, sized to share a cache line with its neighbours.
#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    mark: u32,
    counts: [u32; 2],
}

/// Stamped per-neighbour `(in, out)` counters, equivalent to the paper's
/// `m_in`/`m_out` HashMaps but with O(1) reset.
#[derive(Debug, Clone)]
pub struct NeighborScratch {
    stamp: u32,
    entries: Vec<Entry>,
}

impl NeighborScratch {
    /// Scratch able to index neighbours `0..num_nodes`.
    #[must_use]
    pub fn new(num_nodes: usize) -> NeighborScratch {
        NeighborScratch {
            stamp: 1,
            // hare-lint: allow(alloc, reason = "pool construction, once per thread")
            entries: vec![Entry::default(); num_nodes],
        }
    }

    /// Forget all entries (O(1) amortised; on stamp wrap-around the mark
    /// array is rezeroed).
    #[inline]
    pub fn reset(&mut self) {
        self.stamp = match self.stamp.checked_add(1) {
            Some(s) => s,
            None => {
                for e in &mut self.entries {
                    e.mark = 0;
                }
                1
            }
        };
    }

    /// Grow the scratch to index neighbours `0..num_nodes` (no-op when
    /// already large enough). New entries carry mark 0, which can never
    /// equal the live stamp (≥ 1), so they read as empty — this lets one
    /// thread-local scratch be reused across graphs and tasks.
    pub fn ensure_nodes(&mut self, num_nodes: usize) {
        if self.entries.len() < num_nodes {
            // hare-lint: allow(alloc, reason = "amortised growth, only on a larger graph")
            self.entries.resize(num_nodes, Entry::default());
        }
    }

    /// Increment the count of `(v, dir)`.
    #[inline]
    pub fn add(&mut self, v: NodeId, dir: Dir) {
        self.bump(v, dir.index());
    }

    /// Increment the count of `(v, dir)` with the direction given as a
    /// counter index (`0` = out, `1` = in) — the form the data-oriented
    /// kernels already hold in hand.
    #[inline]
    pub fn bump(&mut self, v: NodeId, dir_index: usize) {
        let e = &mut self.entries[v as usize];
        if e.mark != self.stamp {
            e.mark = self.stamp;
            e.counts = [0; 2];
        }
        e.counts[dir_index] += 1;
    }

    /// Current `[out, in]` counts for neighbour `v`.
    #[inline]
    #[must_use]
    pub fn get(&self, v: NodeId) -> [u64; 2] {
        let e = self.entries[v as usize];
        if e.mark == self.stamp {
            [u64::from(e.counts[0]), u64::from(e.counts[1])]
        } else {
            [0; 2]
        }
    }
}

thread_local! {
    // One scratch per thread, reused across calls, runs and graphs
    // (`ensure_nodes` grows it monotonically). Shared by the sequential
    // drivers and every HARE worker so no counting path allocates
    // per-call scratch.
    static THREAD_SCRATCH: std::cell::RefCell<NeighborScratch> =
        std::cell::RefCell::new(NeighborScratch::new(0));
}

/// Run `f` with this thread's reusable scratch, grown to cover
/// `num_nodes`.
///
/// The scratch grows monotonically and is retained for the thread's
/// lifetime (~12 bytes per node of the largest graph counted on that
/// thread). That is the right trade for counting workloads — reset is
/// O(1), re-allocation never happens — but a long-lived process that
/// counted one huge graph keeps that thread's high-water allocation
/// until the thread exits.
pub fn with_thread_scratch<R>(num_nodes: usize, f: impl FnOnce(&mut NeighborScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        scratch.ensure_nodes(num_nodes);
        f(&mut scratch)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_per_direction() {
        let mut s = NeighborScratch::new(4);
        s.add(2, Dir::Out);
        s.add(2, Dir::Out);
        s.add(2, Dir::In);
        assert_eq!(s.get(2), [2, 1]);
        assert_eq!(s.get(3), [0, 0]);
    }

    #[test]
    fn reset_clears_logically() {
        let mut s = NeighborScratch::new(4);
        s.add(1, Dir::In);
        assert_eq!(s.get(1), [0, 1]);
        s.reset();
        assert_eq!(s.get(1), [0, 0]);
        s.add(1, Dir::Out);
        assert_eq!(s.get(1), [1, 0]);
    }

    #[test]
    fn stamp_wraparound_is_safe() {
        let mut s = NeighborScratch::new(2);
        s.stamp = u32::MAX - 1;
        s.add(0, Dir::Out);
        s.reset(); // stamp = MAX
        s.add(1, Dir::In);
        s.reset(); // wraps: marks rezeroed, stamp = 1
        assert_eq!(s.get(0), [0, 0]);
        assert_eq!(s.get(1), [0, 0]);
        s.add(0, Dir::In);
        assert_eq!(s.get(0), [0, 1]);
    }
}
