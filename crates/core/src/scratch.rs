//! Reusable per-thread scratch state for FAST-Star.
//!
//! Algorithm 1 keeps two HashMaps (`m_in`, `m_out`) that are re-initialised
//! for every first-edge position. Allocating/clearing maps in the inner
//! loop dominates run time on large graphs, so we use the classic *stamped
//! array* trick: one flat array indexed by neighbour id, with a generation
//! stamp marking which entries belong to the current iteration. Reset is
//! O(1); lookups are a single indexed load.

use temporal_graph::{Dir, NodeId};

/// Stamped per-neighbour `(in, out)` counters, equivalent to the paper's
/// `m_in`/`m_out` HashMaps but with O(1) reset.
#[derive(Debug, Clone)]
pub struct NeighborScratch {
    stamp: u32,
    marks: Vec<u32>,
    counts: Vec<[u64; 2]>,
}

impl NeighborScratch {
    /// Scratch able to index neighbours `0..num_nodes`.
    #[must_use]
    pub fn new(num_nodes: usize) -> NeighborScratch {
        NeighborScratch {
            stamp: 1,
            marks: vec![0; num_nodes],
            counts: vec![[0; 2]; num_nodes],
        }
    }

    /// Forget all entries (O(1) amortised; on stamp wrap-around the mark
    /// array is rezeroed).
    #[inline]
    pub fn reset(&mut self) {
        self.stamp = match self.stamp.checked_add(1) {
            Some(s) => s,
            None => {
                self.marks.fill(0);
                1
            }
        };
    }

    /// Increment the count of `(v, dir)`.
    #[inline]
    pub fn add(&mut self, v: NodeId, dir: Dir) {
        let i = v as usize;
        if self.marks[i] != self.stamp {
            self.marks[i] = self.stamp;
            self.counts[i] = [0; 2];
        }
        self.counts[i][dir.index()] += 1;
    }

    /// Current `[out, in]` counts for neighbour `v`.
    #[inline]
    #[must_use]
    pub fn get(&self, v: NodeId) -> [u64; 2] {
        let i = v as usize;
        if self.marks[i] == self.stamp {
            self.counts[i]
        } else {
            [0; 2]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_per_direction() {
        let mut s = NeighborScratch::new(4);
        s.add(2, Dir::Out);
        s.add(2, Dir::Out);
        s.add(2, Dir::In);
        assert_eq!(s.get(2), [2, 1]);
        assert_eq!(s.get(3), [0, 0]);
    }

    #[test]
    fn reset_clears_logically() {
        let mut s = NeighborScratch::new(4);
        s.add(1, Dir::In);
        assert_eq!(s.get(1), [0, 1]);
        s.reset();
        assert_eq!(s.get(1), [0, 0]);
        s.add(1, Dir::Out);
        assert_eq!(s.get(1), [1, 0]);
    }

    #[test]
    fn stamp_wraparound_is_safe() {
        let mut s = NeighborScratch::new(2);
        s.stamp = u32::MAX - 1;
        s.add(0, Dir::Out);
        s.reset(); // stamp = MAX
        s.add(1, Dir::In);
        s.reset(); // wraps: marks rezeroed, stamp = 1
        assert_eq!(s.get(0), [0, 0]);
        assert_eq!(s.get(1), [0, 0]);
        s.add(0, Dir::In);
        assert_eq!(s.get(0), [0, 1]);
    }
}
