//! Incremental (streaming) motif counting.
//!
//! The paper's §I argues that multi-second batch counters are
//! "insufficient in handling frequently updated dynamic systems". This
//! module maintains exact 36-motif counts **as edges arrive** in
//! chronological order: every motif instance is counted exactly once, at
//! the moment its chronologically last edge arrives, using the same
//! per-neighbour counting identity as Algorithm 1 run *backwards* from
//! the new edge, plus pair-list lookups for the triangles it closes.
//!
//! Amortised cost per arrival is `O(d^δ)` for the star/pair part (the
//! same window term as FAST) plus the number of closed triangles — no
//! recomputation over history. The final counts are asserted equal to a
//! batch FAST run in the tests.
//!
//! ```
//! use hare::streaming::StreamingCounter;
//! let mut sc = StreamingCounter::new(100); // δ = 100
//! sc.push(0, 1, 100).unwrap();
//! sc.push(1, 2, 150).unwrap();
//! sc.push(2, 0, 180).unwrap(); // closes the cyclic triangle M26
//! assert_eq!(sc.counts().get(hare::motif::m(2, 6)), 1);
//! ```

use crate::counters::{MotifMatrix, PairCounter, StarCounter};
use crate::motif::{classify_instance, StarType};
use temporal_graph::util::FxHashMap;
use temporal_graph::{Dir, NodeId, TemporalEdge, Timestamp};

/// Error returned by [`StreamingCounter::push`] and
/// [`crate::windowed::WindowedCounter::push`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The edge arrived too late. [`StreamingCounter`] requires
    /// non-decreasing timestamps (equal timestamps are fine; only a
    /// *strictly smaller* one is rejected); the windowed counter rejects
    /// arrivals below its acceptance floor (reorder slack / watermark).
    OutOfOrder {
        /// Timestamp of the rejected edge.
        got: Timestamp,
        /// Earliest acceptable timestamp: the latest timestamp accepted
        /// so far (append-only streaming) or the acceptance floor
        /// (windowed).
        last: Timestamp,
    },
    /// Self-loops cannot participate in motifs and are rejected.
    SelfLoop,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::OutOfOrder { got, last } => {
                write!(f, "edge at t={got} arrived after t={last}")
            }
            StreamError::SelfLoop => write!(f, "self-loop rejected"),
        }
    }
}

impl std::error::Error for StreamError {}

#[derive(Debug, Clone, Copy)]
struct StreamEvent {
    t: Timestamp,
    other: NodeId,
    dir: Dir,
    id: u64,
}

/// Exact incremental counter over a chronological edge stream.
///
/// `delta` is fixed at construction; counts grow monotonically as edges
/// arrive. Memory holds the full event history, so the streaming counts
/// are checkable against batch runs over the same history; for bounded
/// memory and counts over a sliding window, use
/// [`crate::windowed::WindowedCounter`].
#[derive(Debug, Clone)]
pub struct StreamingCounter {
    delta: Timestamp,
    node_events: Vec<Vec<StreamEvent>>,
    pair_events: FxHashMap<(NodeId, NodeId), Vec<StreamEvent>>, // dir rel. lo
    star: StarCounter,
    pair: PairCounter,
    tri_matrix: MotifMatrix,
    last_t: Option<Timestamp>,
    next_id: u64,
    // reusable scratch (plain map: arrival windows are usually small)
    mid: FxHashMap<NodeId, [u64; 2]>,
}

impl StreamingCounter {
    /// New counter for node ids `< capacity_hint` (grows on demand).
    #[must_use]
    pub fn new(delta: Timestamp) -> StreamingCounter {
        StreamingCounter {
            delta,
            node_events: Vec::new(),
            pair_events: FxHashMap::default(),
            star: StarCounter::default(),
            pair: PairCounter::default(),
            tri_matrix: MotifMatrix::default(),
            last_t: None,
            next_id: 0,
            mid: FxHashMap::default(),
        }
    }

    /// The configured δ.
    #[must_use]
    pub fn delta(&self) -> Timestamp {
        self.delta
    }

    /// Number of edges accepted so far.
    #[must_use]
    pub fn num_edges(&self) -> u64 {
        self.next_id
    }

    /// Ingest one edge; timestamps must be non-decreasing.
    ///
    /// An edge timestamped *equal* to the latest accepted timestamp is
    /// accepted — ties are broken by arrival order, the same stable
    /// `(t, input position)` total order batch counting uses — so only a
    /// strictly decreasing timestamp is rejected:
    ///
    /// ```
    /// use hare::streaming::{StreamError, StreamingCounter};
    /// let mut sc = StreamingCounter::new(10);
    /// sc.push(0, 1, 100).unwrap();
    /// sc.push(1, 2, 100).unwrap(); // equal timestamp: accepted
    /// assert_eq!(
    ///     sc.push(2, 0, 99), // strictly earlier: rejected
    ///     Err(StreamError::OutOfOrder { got: 99, last: 100 })
    /// );
    /// ```
    ///
    /// # Errors
    /// [`StreamError::OutOfOrder`] if `t` is strictly smaller than the
    /// latest accepted timestamp; [`StreamError::SelfLoop`] if
    /// `src == dst`.
    pub fn push(&mut self, src: NodeId, dst: NodeId, t: Timestamp) -> Result<(), StreamError> {
        if src == dst {
            return Err(StreamError::SelfLoop);
        }
        if let Some(last) = self.last_t {
            if t < last {
                return Err(StreamError::OutOfOrder { got: t, last });
            }
        }
        let needed = src.max(dst) as usize + 1;
        if self.node_events.len() < needed {
            self.node_events.resize_with(needed, Vec::new);
        }

        // 1. Star/pair instances completed by this edge, from both
        //    centers: backward Algorithm 1 anchored at the new third edge.
        self.count_star_pair_completions(src, Dir::Out, dst, t);
        self.count_star_pair_completions(dst, Dir::In, src, t);

        // 2. Triangle instances closed by this edge.
        self.count_triangle_completions(src, dst, t);

        // 3. Append to history.
        let id = self.next_id;
        self.next_id += 1;
        self.last_t = Some(t);
        self.node_events[src as usize].push(StreamEvent {
            t,
            other: dst,
            dir: Dir::Out,
            id,
        });
        self.node_events[dst as usize].push(StreamEvent {
            t,
            other: src,
            dir: Dir::In,
            id,
        });
        let (lo, hi) = if src <= dst { (src, dst) } else { (dst, src) };
        let dir_from_lo = if src == lo { Dir::Out } else { Dir::In };
        self.pair_events
            .entry((lo, hi))
            .or_default()
            .push(StreamEvent {
                t,
                other: 0,
                dir: dir_from_lo,
                id,
            });
        Ok(())
    }

    /// New star/pair instances whose center is `u`, third edge = the
    /// arrival (direction `d3` w.r.t. `u`, far endpoint `w`, time `t3`).
    fn count_star_pair_completions(&mut self, u: NodeId, d3: Dir, w: NodeId, t3: Timestamp) {
        let events = &self.node_events[u as usize];
        if events.is_empty() {
            return;
        }
        self.mid.clear();
        let mut n = [0u64; 2];
        // Scan candidate first edges backwards; `mid` holds the events
        // strictly between the candidate and the arrival.
        for k in (0..events.len()).rev() {
            let e1 = events[k];
            if t3 - e1.t > self.delta {
                break;
            }
            let d1 = e1.dir;
            if e1.other == w {
                let cnt = self.mid.get(&w).copied().unwrap_or_default();
                for d2 in Dir::BOTH {
                    let c = cnt[d2.index()];
                    self.pair.add(d1, d2, d3, c);
                    self.star.add(StarType::II, d1, d2, d3, n[d2.index()] - c);
                }
            } else {
                let cw = self.mid.get(&w).copied().unwrap_or_default();
                let cv = self.mid.get(&e1.other).copied().unwrap_or_default();
                for d2 in Dir::BOTH {
                    self.star.add(StarType::I, d1, d2, d3, cw[d2.index()]);
                    self.star.add(StarType::III, d1, d2, d3, cv[d2.index()]);
                }
            }
            // e1 becomes a middle candidate for earlier first edges.
            self.mid.entry(e1.other).or_default()[e1.dir.index()] += 1;
            n[e1.dir.index()] += 1;
        }
    }

    /// New triangle instances closed by the arrival `(a -> b, t3)`: one
    /// earlier edge a–u and one earlier edge b–u for some third node u,
    /// both within δ of `t3` (which bounds the span exactly).
    fn count_triangle_completions(&mut self, a: NodeId, b: NodeId, t3: Timestamp) {
        let closing = TemporalEdge::new(a, b, t3);
        let a_events = &self.node_events[a as usize];
        for k in (0..a_events.len()).rev() {
            let ea = a_events[k];
            if t3 - ea.t > self.delta {
                break;
            }
            let u = ea.other;
            if u == b {
                continue;
            }
            let (lo, hi) = if b <= u { (b, u) } else { (u, b) };
            let Some(bu) = self.pair_events.get(&(lo, hi)) else {
                continue;
            };
            let ea_edge = match ea.dir {
                Dir::Out => TemporalEdge::new(a, u, ea.t),
                Dir::In => TemporalEdge::new(u, a, ea.t),
            };
            for j in (0..bu.len()).rev() {
                let eb = bu[j];
                if t3 - eb.t > self.delta {
                    break;
                }
                let eb_edge = match eb.dir {
                    // dir is relative to `lo`.
                    Dir::Out => TemporalEdge::new(lo, hi, eb.t),
                    Dir::In => TemporalEdge::new(hi, lo, eb.t),
                };
                // Chronological order of the two earlier edges by
                // (t, arrival id) — the same total order as batch mode.
                let (first, second) = if (ea.t, ea.id) < (eb.t, eb.id) {
                    (ea_edge, eb_edge)
                } else {
                    (eb_edge, ea_edge)
                };
                let motif = classify_instance(first, second, closing)
                    .expect("closed triple is a 3-node motif");
                self.tri_matrix.add(motif, 1);
            }
        }
    }

    /// Exact counts over everything ingested so far.
    #[must_use]
    pub fn counts(&self) -> MotifMatrix {
        let mut mx = MotifMatrix::default();
        self.star.add_to_matrix(&mut mx);
        self.pair.add_to_matrix_center_based(&mut mx);
        mx.merge(&self.tri_matrix);
        mx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motif::m;
    use temporal_graph::gen::{erdos_renyi_temporal, paper_fig1_toy, GenConfig};

    fn stream_graph(g: &temporal_graph::TemporalGraph, delta: Timestamp) -> StreamingCounter {
        let mut sc = StreamingCounter::new(delta);
        for e in g.edges() {
            sc.push(e.src, e.dst, e.t).unwrap();
        }
        sc
    }

    #[test]
    fn streaming_equals_batch_on_toy_graph() {
        let g = paper_fig1_toy();
        for delta in [0, 5, 10, 50] {
            let sc = stream_graph(&g, delta);
            assert_eq!(
                sc.counts(),
                crate::count_motifs(&g, delta).matrix,
                "{delta}"
            );
        }
    }

    #[test]
    fn streaming_equals_batch_on_random_graphs() {
        for seed in 0..4 {
            let g = erdos_renyi_temporal(15, 400, 300, seed);
            let delta = 90;
            let sc = stream_graph(&g, delta);
            assert_eq!(
                sc.counts(),
                crate::count_motifs(&g, delta).matrix,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn streaming_equals_batch_on_bursty_graph() {
        let g = GenConfig {
            nodes: 30,
            edges: 800,
            time_span: 5_000,
            seed: 13,
            ..GenConfig::default()
        }
        .generate();
        let delta = 400;
        let sc = stream_graph(&g, delta);
        assert_eq!(sc.counts(), crate::count_motifs(&g, delta).matrix);
    }

    #[test]
    fn counts_are_monotone_during_the_stream() {
        let g = erdos_renyi_temporal(10, 150, 100, 5);
        let mut sc = StreamingCounter::new(40);
        let mut prev = 0u64;
        for e in g.edges() {
            sc.push(e.src, e.dst, e.t).unwrap();
            let now = sc.counts().total();
            assert!(now >= prev);
            prev = now;
        }
    }

    #[test]
    fn doc_example_cycle() {
        let mut sc = StreamingCounter::new(10);
        sc.push(0, 1, 100).unwrap();
        sc.push(1, 2, 105).unwrap();
        assert_eq!(sc.counts().total(), 0);
        sc.push(2, 0, 108).unwrap();
        assert_eq!(sc.counts().get(m(2, 6)), 1);
        assert_eq!(sc.num_edges(), 3);
    }

    #[test]
    fn rejects_out_of_order_and_self_loops() {
        let mut sc = StreamingCounter::new(10);
        sc.push(0, 1, 100).unwrap();
        assert_eq!(
            sc.push(1, 2, 99),
            Err(StreamError::OutOfOrder { got: 99, last: 100 })
        );
        assert_eq!(sc.push(3, 3, 100), Err(StreamError::SelfLoop));
        // Counter still usable afterwards.
        sc.push(1, 2, 100).unwrap();
        assert_eq!(sc.num_edges(), 2);
    }

    #[test]
    fn equal_timestamps_are_accepted_only_decreasing_rejected() {
        // Pins the documented boundary: push accepts t == last and
        // rejects only t < last.
        let mut sc = StreamingCounter::new(10);
        sc.push(0, 1, 100).unwrap();
        sc.push(1, 2, 100).unwrap();
        sc.push(2, 3, 100).unwrap();
        assert_eq!(sc.num_edges(), 3);
        assert_eq!(
            sc.push(3, 4, 99),
            Err(StreamError::OutOfOrder { got: 99, last: 100 })
        );
        // The rejection did not disturb the accepted prefix.
        sc.push(3, 4, 100).unwrap();
        assert_eq!(sc.num_edges(), 4);
    }

    #[test]
    fn equal_timestamps_match_batch_tie_breaking() {
        // All edges at the same instant: streaming arrival order must
        // agree with the builder's stable input order.
        let edges = vec![
            temporal_graph::TemporalEdge::new(0, 1, 7),
            temporal_graph::TemporalEdge::new(1, 2, 7),
            temporal_graph::TemporalEdge::new(2, 0, 7),
            temporal_graph::TemporalEdge::new(0, 1, 7),
        ];
        let g = temporal_graph::TemporalGraph::from_edges(edges.clone());
        let mut sc = StreamingCounter::new(0);
        for e in &edges {
            sc.push(e.src, e.dst, e.t).unwrap();
        }
        assert_eq!(sc.counts(), crate::count_motifs(&g, 0).matrix);
    }
}
