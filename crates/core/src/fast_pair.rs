//! FAST-Pair: dedicated exact counting of the four pair temporal motifs.
//!
//! Table III reports FAST-Pair as a separate (much cheaper) variant:
//! counting only 2-node motifs does not need the center-based scan of
//! Algorithm 1 — it suffices to visit every unordered node pair once and
//! count ordered 3-edge subsequences of its edge list within δ.
//!
//! Per pair we run a sliding-window dynamic program over the time-ordered
//! list `E(v, w)` (directions taken relative to the smaller endpoint):
//! maintaining `c1[d]` (edges in window) and `c2[d1][d2]` (ordered pairs
//! in window), each new edge `e` closes `c2[d1][d2]` triples of pattern
//! `(d1, d2, e.dir)`. Evicting the oldest edge reverses its contribution.
//! This is O(1) amortised per edge — `O(|E|)` total — the complexity the
//! paper credits FAST-Pair with.
//!
//! Because every unordered pair is visited exactly once, each instance is
//! counted **once** (unlike Algorithm 1's once-per-endpoint); fold with
//! [`PairCounter::add_to_matrix_pair_based`].
//!
//! hare-lint: no-alloc

use crate::counters::PairCounter;
use temporal_graph::{PairEvent, TemporalGraph, Timestamp};

/// Count all pair motif instances inside one pair edge list (directions
/// relative to the pair's smaller endpoint, as stored).
pub fn count_pair_events(events: &[PairEvent], delta: Timestamp, pair: &mut PairCounter) {
    let mut c1 = [0u64; 2];
    let mut c2 = [[0u64; 2]; 2];
    let mut start = 0usize;

    for ej in events {
        // Evict edges that can no longer open a window containing `ej`.
        while events[start].t < ej.t - delta {
            let d = events[start].dir_from_lo.index();
            c1[d] -= 1;
            // The evictee is the oldest edge, hence the *first* element of
            // every ordered pair it participates in.
            for (y, c) in c1.iter().enumerate() {
                c2[d][y] -= c;
            }
            start += 1;
        }
        let dj = ej.dir_from_lo;
        // Close triples: every in-window ordered pair becomes a triple
        // with `ej` as third edge.
        for d1 in temporal_graph::Dir::BOTH {
            for d2 in temporal_graph::Dir::BOTH {
                let n = c2[d1.index()][d2.index()];
                if n > 0 {
                    pair.add(d1, d2, dj, n);
                }
            }
        }
        // Extend pairs and singletons with `ej`.
        for (x, c) in c1.iter().enumerate() {
            c2[x][dj.index()] += c;
        }
        c1[dj.index()] += 1;
    }
}

/// Sequential FAST-Pair over the whole graph. Fold the result with
/// [`PairCounter::add_to_matrix_pair_based`].
#[must_use]
pub fn fast_pair(g: &TemporalGraph, delta: Timestamp) -> PairCounter {
    let mut pair = PairCounter::default();
    let pairs = g.pairs();
    for slot in 0..pairs.num_pairs() {
        count_pair_events(pairs.events_of_slot(slot), delta, &mut pair);
    }
    pair
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::MotifMatrix;
    use crate::fast_star::fast_star;
    use crate::motif::m;
    use temporal_graph::gen::{erdos_renyi_temporal, paper_fig1_toy};
    use temporal_graph::Dir::{In, Out};
    use temporal_graph::{TemporalEdge, TemporalGraph};

    #[test]
    fn toy_graph_single_pair_instance() {
        // <(v_d,v_e,14s),(v_e,v_d,18s),(v_d,v_e,21s)> is M65 (§III).
        let g = paper_fig1_toy();
        let pair = fast_pair(&g, 10);
        assert_eq!(pair.total(), 1);
        let mut mx = MotifMatrix::default();
        pair.add_to_matrix_pair_based(&mut mx);
        assert_eq!(mx.get(m(6, 5)), 1);
        assert_eq!(mx.total(), 1);
    }

    #[test]
    fn agrees_with_fast_star_pair_counts() {
        for seed in 0..5 {
            let g = erdos_renyi_temporal(10, 400, 300, seed);
            let delta = 60;
            let dedicated = fast_pair(&g, delta);
            let (_, via_star) = fast_star(&g, delta);
            let mut mx_a = MotifMatrix::default();
            dedicated.add_to_matrix_pair_based(&mut mx_a);
            let mut mx_b = MotifMatrix::default();
            via_star.add_to_matrix_center_based(&mut mx_b);
            // Compare only the pair cells.
            for mo in [m(5, 5), m(5, 6), m(6, 5), m(6, 6)] {
                assert_eq!(mx_a.get(mo), mx_b.get(mo), "{mo} seed={seed}");
            }
        }
    }

    #[test]
    fn burst_of_k_edges_counts_choose_three() {
        // k same-direction edges in window: C(k,3) instances, all M55.
        let k = 10u64;
        let edges = (0..k).map(|i| TemporalEdge::new(0, 1, i as i64)).collect();
        let g = TemporalGraph::from_edges(edges);
        let pair = fast_pair(&g, 1_000);
        let expect = k * (k - 1) * (k - 2) / 6;
        assert_eq!(pair.get(Out, Out, Out), expect);
        assert_eq!(pair.total(), expect);
    }

    #[test]
    fn window_eviction_is_exact() {
        // Edges at t = 0, 10, 20, 30 with δ=20: triples are (0,10,20),
        // (10,20,30), (0,20,... span 20 ok) (0,10,30 span 30 no),
        // (10,... ) — enumerate: {0,10,20}✓ {0,10,30}✗ {0,20,30}✗(30)
        // {10,20,30}✓ -> 2.
        let edges = [0, 10, 20, 30]
            .iter()
            .map(|&t| TemporalEdge::new(0, 1, t))
            .collect();
        let g = TemporalGraph::from_edges(edges);
        assert_eq!(fast_pair(&g, 20).total(), 2);
        assert_eq!(fast_pair(&g, 30).total(), 4);
        assert_eq!(fast_pair(&g, 9).total(), 0);
    }

    #[test]
    fn directions_tracked_relative_to_lo() {
        // 1->0, 0->1, 1->0: relative to node 0 that's (in, out, in) = M65.
        let g = TemporalGraph::from_edges(vec![
            TemporalEdge::new(1, 0, 1),
            TemporalEdge::new(0, 1, 2),
            TemporalEdge::new(1, 0, 3),
        ]);
        let pair = fast_pair(&g, 10);
        assert_eq!(pair.get(In, Out, In), 1);
        let mut mx = MotifMatrix::default();
        pair.add_to_matrix_pair_based(&mut mx);
        assert_eq!(mx.get(m(6, 5)), 1);
    }

    #[test]
    fn empty_inputs() {
        let g = TemporalGraph::from_edges(vec![]);
        assert_eq!(fast_pair(&g, 10).total(), 0);
        let mut pc = PairCounter::default();
        count_pair_events(&[], 10, &mut pc);
        assert_eq!(pc.total(), 0);
    }

    #[test]
    fn ties_all_same_timestamp() {
        let edges = (0..4).map(|_| TemporalEdge::new(0, 1, 7)).collect();
        let g = TemporalGraph::from_edges(edges);
        // C(4,3) = 4 triples even at δ=0.
        assert_eq!(fast_pair(&g, 0).total(), 4);
    }
}
