//! The canonical JSON wire schema, defined once for every front-end.
//!
//! `hare-count --json` and the `hare-serve` HTTP service emit the *same*
//! bytes for the same query — a differential guarantee the end-to-end
//! suites pin byte-for-byte. That only stays true if the schema lives in
//! exactly one place: this module builds every response body, and the
//! front-ends do nothing but print (CLI) or write (server) the rendered
//! line.
//!
//! Four body shapes exist, one per query family:
//!
//! * [`exact_body`] — exact counting (`GET /count`, batch `hare-count`):
//!   `{"delta","nodes","edges",["seconds"],"total","counts":[{"motif","count"}×36]}`
//! * [`approx_body`] — interval-sampling estimation (`engine=approx`,
//!   `hare-count --approx`): `{"delta","nodes","edges","approx":{...},
//!   ["seconds"],"total_estimate","counts":[{"motif","estimate","stderr","ci_lo","ci_hi"}×36]}`
//! * [`windowed_tick_body`] — one sliding-window tick (streaming CLI
//!   mode, `GET /sessions/{id}`): `{"tick","delta","window","slack",
//!   "live_edges","late_dropped","self_loops_dropped","total","counts"}`
//! * [`stream_tick_body`] — one bounded-memory estimator tick
//!   (`--memory-budget` CLI mode, budgeted sessions): `{"tick","delta",
//!   "window","slack","budget":{...},"late_dropped",
//!   "self_loops_dropped","total_estimate","counts":[{"motif",
//!   "estimate","stderr","ci_lo","ci_hi"}×36]}`
//! * [`graph_stats_body`] — graph shape only (`hare-count --stats`,
//!   dataset registration responses).
//!
//! The per-node query family adds three more shapes, all timing-free by
//! construction (profiles are served from the cache, so their bytes must
//! be stable):
//!
//! * [`node_profile_body`] — one node's sparse motif profile
//!   (`GET /nodes/{id}/motifs`, one line per node of
//!   `hare-count --nodes --json`):
//!   `{"node","delta","total","counts":[{"motif","count"}… nonzero only]}`
//! * [`top_nodes_body`] — top-k nodes by one motif's participation
//!   (`GET /nodes/top?motif=M`, `hare-count --nodes --rank-motif M`)
//! * [`zscore_nodes_body`] — top-k anomalous nodes by z-score norm
//!   (`GET /nodes/top` without `motif`, `hare-count --nodes --top-k K`)
//!
//! Timing (`"seconds"`) is the single nondeterministic field; it is
//! `Option`al and omitted under `--no-timing` — and *always* omitted by
//! the server, whose bodies must be cacheable and byte-stable. Rendering
//! goes through [`render`], which appends the trailing newline so a
//! served body is identical to the CLI's stdout.

use serde_json::Value;

use crate::counters::MotifMatrix;
use crate::fingerprint::NodeProfile;
use crate::motif::{Motif, MotifCategory};
use crate::sample::SampledCounts;
use crate::stream_sample::StreamEstimates;
use crate::windowed::WindowedCounter;
use temporal_graph::stats::GraphStats;
use temporal_graph::{NodeId, Timestamp};

/// The 36 exact-count cells, row-major over the canonical grid:
/// `[{"motif":"M11","count":n}, ...]`.
#[must_use]
pub fn count_cells(matrix: &MotifMatrix) -> Value {
    let cells: Vec<Value> = matrix
        .iter()
        .map(|(m, n)| serde_json::json!({"motif": m.to_string(), "count": n}))
        .collect();
    Value::from(cells)
}

/// The exact-count response body. `seconds` is omitted when `None`
/// (byte-stable output; golden files and the server cache rely on it).
#[must_use]
pub fn exact_body(
    nodes: usize,
    edges: usize,
    delta: Timestamp,
    matrix: &MotifMatrix,
    seconds: Option<f64>,
) -> Value {
    let mut obj = serde_json::json!({
        "delta": delta,
        "nodes": nodes,
        "edges": edges,
    });
    if let Some(map) = obj.as_object_mut() {
        if let Some(secs) = seconds {
            map.insert("seconds".into(), Value::from(secs));
        }
        map.insert("total".into(), Value::from(matrix.total()));
        map.insert("counts".into(), count_cells(matrix));
    }
    obj
}

/// The approximate-count response body: per-motif estimate, standard
/// error and confidence interval, plus the sampling metadata block.
#[must_use]
pub fn approx_body(
    nodes: usize,
    edges: usize,
    delta: Timestamp,
    window_factor: i64,
    seed: u64,
    est: &SampledCounts,
    seconds: Option<f64>,
) -> Value {
    let cells: Vec<Value> = est
        .iter()
        .map(|(m, e)| {
            serde_json::json!({
                "motif": m.to_string(),
                "estimate": e.estimate,
                "stderr": e.stderr,
                "ci_lo": e.ci_lo,
                "ci_hi": e.ci_hi,
            })
        })
        .collect();
    let approx = serde_json::json!({
        "prob": est.prob,
        "confidence": est.confidence,
        "window_factor": window_factor,
        "window_len": est.window_len,
        "seed": seed,
        "windows_total": est.windows_total,
        "windows_sampled": est.windows_sampled,
    });
    let mut obj = serde_json::json!({
        "delta": delta,
        "nodes": nodes,
        "edges": edges,
    });
    if let Some(map) = obj.as_object_mut() {
        map.insert("approx".into(), approx);
        if let Some(secs) = seconds {
            map.insert("seconds".into(), Value::from(secs));
        }
        map.insert("total_estimate".into(), Value::from(est.total_estimate()));
        map.insert("counts".into(), Value::from(cells));
    }
    obj
}

/// One sliding-window tick: the live-window motif matrix of `wc` as of
/// event time `tick`, with the stream's cumulative drop counters.
#[must_use]
pub fn windowed_tick_body(
    tick: Timestamp,
    wc: &WindowedCounter,
    late_dropped: u64,
    self_loops_dropped: u64,
) -> Value {
    let matrix = wc.counts();
    serde_json::json!({
        "tick": tick,
        "delta": wc.delta(),
        "window": wc.window(),
        "slack": wc.slack(),
        "live_edges": wc.live_edges(),
        "late_dropped": late_dropped,
        "self_loops_dropped": self_loops_dropped,
        "total": matrix.total(),
        "counts": count_cells(&matrix),
    })
}

/// One bounded-memory streaming-estimator tick: per-motif estimates
/// with error bounds over the retained reservoir as of event time
/// `tick`, plus the budget block and the stream's cumulative drop
/// counters. Emitted by `hare-count --window W --memory-budget B` and,
/// byte-identically, by budgeted `hare-serve` sessions.
#[must_use]
pub fn stream_tick_body(
    tick: Timestamp,
    slack: Timestamp,
    est: &StreamEstimates,
    late_dropped: u64,
    self_loops_dropped: u64,
) -> Value {
    let cells: Vec<Value> = est
        .iter()
        .map(|(m, e)| {
            serde_json::json!({
                "motif": m.to_string(),
                "estimate": e.estimate,
                "stderr": e.stderr,
                "ci_lo": e.ci_lo,
                "ci_hi": e.ci_hi,
            })
        })
        .collect();
    let budget = serde_json::json!({
        "bytes": est.budget_bytes,
        "retained_edges": est.retained_edges,
        "retained_bytes": est.retained_bytes,
        "prob": est.prob,
        "confidence": est.confidence,
        "interval_len": est.interval_len,
        "intervals_sampled": est.intervals_sampled,
        "intervals_exact": est.intervals_exact,
        "intervals_summarized": est.intervals_summarized,
    });
    serde_json::json!({
        "tick": tick,
        "delta": est.delta,
        "window": est.window,
        "slack": slack,
        "budget": budget,
        "late_dropped": late_dropped,
        "self_loops_dropped": self_loops_dropped,
        "total_estimate": est.total_estimate(),
        "counts": Value::from(cells),
    })
}

/// Graph shape statistics (`hare-count --stats --json`).
#[must_use]
pub fn graph_stats_body(stats: &GraphStats) -> Value {
    serde_json::json!({
        "nodes": stats.num_nodes,
        "edges": stats.num_edges,
        "time_span": stats.time_span,
        "max_degree": stats.max_degree,
        "mean_degree": stats.mean_degree,
    })
}

/// One node's sparse motif profile: only the nonzero cells, in
/// row-major grid order. The dense 36-vector is recoverable (absent
/// motifs are zero), but real per-node profiles are overwhelmingly
/// sparse and these bytes go over the wire per node.
#[must_use]
pub fn node_profile_body(node: NodeId, delta: Timestamp, profile: &NodeProfile) -> Value {
    let cells: Vec<Value> = profile
        .iter()
        .filter(|&(_, n)| n > 0)
        .map(|(m, n)| serde_json::json!({"motif": m.to_string(), "count": n}))
        .collect();
    serde_json::json!({
        "node": node,
        "delta": delta,
        "total": profile.total(),
        "counts": Value::from(cells),
    })
}

/// Top-k nodes ranked by participation in one motif (count descending,
/// node id ascending on ties — the ranking is already deterministic
/// when it reaches this builder).
#[must_use]
pub fn top_nodes_body(delta: Timestamp, motif: Motif, k: usize, ranked: &[(NodeId, u64)]) -> Value {
    let rows: Vec<Value> = ranked
        .iter()
        .map(|&(u, n)| serde_json::json!({"node": u, "count": n}))
        .collect();
    serde_json::json!({
        "delta": delta,
        "rank": "motif",
        "motif": motif.to_string(),
        "k": k,
        "nodes": Value::from(rows),
    })
}

/// Top-k most anomalous nodes by the L2 norm of their per-motif
/// z-scores against the graph-wide profile distribution.
#[must_use]
pub fn zscore_nodes_body(delta: Timestamp, k: usize, ranked: &[(NodeId, f64)]) -> Value {
    let rows: Vec<Value> = ranked
        .iter()
        .map(|&(u, s)| serde_json::json!({"node": u, "score": s}))
        .collect();
    serde_json::json!({
        "delta": delta,
        "rank": "zscore",
        "k": k,
        "nodes": Value::from(rows),
    })
}

/// Render a body exactly as every front-end emits it: the compact JSON
/// document plus one trailing newline (the CLI's `println!`). Server
/// responses use these bytes verbatim, which is what makes them
/// byte-identical to `hare-count --json --no-timing` output.
#[must_use]
pub fn render(body: &Value) -> String {
    format!("{body}\n")
}

/// Parse a `--only` / `?only=` selector into the engine subset it names:
/// `Ok(None)` = all 36 motifs, `Ok(Some(cat))` = that category only,
/// `Err` = not a valid selector. The accepted strings (`all`, `pairs`,
/// `stars`, `triangles`) are part of the wire schema.
pub fn parse_only(s: &str) -> Result<Option<MotifCategory>, String> {
    match s {
        "all" => Ok(None),
        "pairs" => Ok(Some(MotifCategory::Pair)),
        "stars" => Ok(Some(MotifCategory::Star)),
        "triangles" => Ok(Some(MotifCategory::Triangle)),
        other => Err(format!("must be all|pairs|stars|triangles, got {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::{SampleConfig, SampledCounter};
    use crate::Hare;
    use temporal_graph::gen::paper_fig1_toy;
    use temporal_graph::stats::GraphStats;

    #[test]
    fn exact_body_bytes_are_pinned() {
        // The wire schema is golden-tested once, here: field order,
        // motif order, and number formatting must never drift — both
        // front-ends inherit these bytes.
        let g = paper_fig1_toy();
        let matrix = crate::count_motifs(&g, 10).matrix;
        let body = render(&exact_body(g.num_nodes(), g.num_edges(), 10, &matrix, None));
        assert!(
            body.starts_with(r#"{"delta":10,"nodes":5,"edges":12,"total":27,"counts":[{"motif":"M11","count":0},"#),
            "prefix drifted: {body}"
        );
        assert!(body.ends_with("}]}\n"), "suffix drifted: {body}");
        assert!(body.contains(r#"{"motif":"M65","count":1}"#), "{body}");
        assert_eq!(body.matches("\"motif\"").count(), 36);
        // Timing present iff requested, between "edges" and "total".
        let timed = render(&exact_body(5, 12, 10, &matrix, Some(0.25)));
        assert!(
            timed.contains(r#""edges":12,"seconds":0.25,"total":27"#),
            "{timed}"
        );
    }

    #[test]
    fn approx_body_matches_schema_and_p1_is_exact() {
        let g = paper_fig1_toy();
        let cfg = SampleConfig {
            prob: 1.0,
            window_factor: 3,
            seed: 9,
            ..SampleConfig::default()
        };
        let est = SampledCounter::new(cfg).count(&g, 10);
        let body = render(&approx_body(
            g.num_nodes(),
            g.num_edges(),
            10,
            3,
            9,
            &est,
            None,
        ));
        assert!(
            body.starts_with(r#"{"delta":10,"nodes":5,"edges":12,"approx":{"prob":1.0,"confidence":0.95,"window_factor":3,"#),
            "prefix drifted: {body}"
        );
        assert!(body.contains(r#""total_estimate":27.0"#), "{body}");
        assert!(
            body.contains(r#"{"motif":"M65","estimate":1.0,"stderr":0.0,"ci_lo":1.0,"ci_hi":1.0}"#),
            "{body}"
        );
        assert_eq!(body.matches("\"motif\"").count(), 36);
    }

    #[test]
    fn windowed_tick_body_matches_schema() {
        let mut wc = WindowedCounter::new(20, 100);
        for (s, d, t) in [(0u32, 1u32, 10i64), (1, 2, 12), (2, 0, 14)] {
            wc.push(s, d, t).unwrap();
        }
        wc.flush();
        let body = render(&windowed_tick_body(14, &wc, 2, 1));
        assert!(
            body.starts_with(r#"{"tick":14,"delta":20,"window":100,"slack":0,"live_edges":3,"late_dropped":2,"self_loops_dropped":1,"total":1,"counts":["#),
            "prefix drifted: {body}"
        );
        assert_eq!(body.matches("\"motif\"").count(), 36);
    }

    #[test]
    fn stream_tick_body_bytes_are_pinned() {
        use crate::stream_sample::{StreamSampleConfig, StreamingEstimator};
        let mut est = StreamingEstimator::new(StreamSampleConfig::new(20, 100, 1 << 20));
        for (s, d, t) in [(0u32, 1u32, 10i64), (1, 2, 12), (2, 0, 14)] {
            est.push(s, d, t).unwrap();
        }
        est.flush();
        let body = render(&stream_tick_body(14, 0, &est.estimates(), 2, 1));
        assert!(
            body.starts_with(
                r#"{"tick":14,"delta":20,"window":100,"slack":0,"budget":{"bytes":1048576,"retained_edges":3,"retained_bytes":48,"prob":1.0,"confidence":0.95,"interval_len":200,"intervals_sampled":0,"intervals_exact":1,"intervals_summarized":0},"late_dropped":2,"self_loops_dropped":1,"total_estimate":1.0,"counts":[{"motif":"M11","estimate":0.0,"stderr":0.0,"ci_lo":0.0,"ci_hi":0.0},"#
            ),
            "prefix drifted: {body}"
        );
        assert!(
            body.contains(r#"{"motif":"M26","estimate":1.0,"stderr":0.0,"ci_lo":1.0,"ci_hi":1.0}"#),
            "{body}"
        );
        assert_eq!(body.matches("\"motif\"").count(), 36);
    }

    #[test]
    fn graph_stats_body_matches_schema() {
        let g = paper_fig1_toy();
        let body = render(&graph_stats_body(&GraphStats::compute(&g)));
        assert!(
            body.starts_with(r#"{"nodes":5,"edges":12,"time_span":20,"max_degree":7,"#),
            "drifted: {body}"
        );
        assert!(body.contains("\"mean_degree\":"), "{body}");
    }

    #[test]
    fn node_profile_body_bytes_are_pinned() {
        // The M65 pair instance on the Fig. 1 toy is attributed to
        // v_d = 3; its profile body is sparse (no zero cells).
        let g = paper_fig1_toy();
        let profiles = crate::fingerprint::NodeProfiles::compute(&g, 10, 1);
        let p = profiles.get(3).expect("node 3 participates");
        let body = render(&node_profile_body(3, 10, p));
        assert!(
            body.starts_with(r#"{"node":3,"delta":10,"total":"#),
            "prefix drifted: {body}"
        );
        assert!(body.contains(r#"{"motif":"M65","count":1}"#), "{body}");
        assert!(!body.contains(r#""count":0"#), "zero cells leaked: {body}");
        // Cells stay in row-major grid order after the sparse filter.
        let mut last = 0u8;
        for (i, _) in body.match_indices(r#""motif":"M"#) {
            let cell = &body.as_bytes()[i + 10..i + 12];
            let rank = (cell[0] - b'0') * 6 + (cell[1] - b'0');
            assert!(rank > last, "out of order: {body}");
            last = rank;
        }
    }

    #[test]
    fn top_nodes_body_bytes_are_pinned() {
        let body = render(&top_nodes_body(
            10,
            crate::motif::m(6, 5),
            2,
            &[(3, 1), (4, 1)],
        ));
        assert_eq!(
            body,
            "{\"delta\":10,\"rank\":\"motif\",\"motif\":\"M65\",\"k\":2,\"nodes\":[{\"node\":3,\"count\":1},{\"node\":4,\"count\":1}]}\n"
        );
    }

    #[test]
    fn zscore_nodes_body_bytes_are_pinned() {
        let body = render(&zscore_nodes_body(10, 2, &[(0, 2.5), (4, 1.0)]));
        assert_eq!(
            body,
            "{\"delta\":10,\"rank\":\"zscore\",\"k\":2,\"nodes\":[{\"node\":0,\"score\":2.5},{\"node\":4,\"score\":1.0}]}\n"
        );
    }

    #[test]
    fn parse_only_covers_the_wire_strings() {
        assert_eq!(parse_only("all"), Ok(None));
        assert_eq!(parse_only("pairs"), Ok(Some(MotifCategory::Pair)));
        assert_eq!(parse_only("stars"), Ok(Some(MotifCategory::Star)));
        assert_eq!(parse_only("triangles"), Ok(Some(MotifCategory::Triangle)));
        assert!(parse_only("wedges").is_err());
        assert!(parse_only("Pairs").is_err(), "selectors are case-sensitive");
    }

    #[test]
    fn count_matrix_subsets_agree_with_body_totals() {
        let g = paper_fig1_toy();
        let engine = Hare::with_threads(1);
        let full = engine.count_matrix(&g, 10, None);
        for only in ["pairs", "stars", "triangles"] {
            let cat = parse_only(only).unwrap();
            let sub = engine.count_matrix(&g, 10, cat);
            assert_eq!(sub.total(), full.category_total(cat.unwrap()), "{only}");
        }
        assert_eq!(full.total(), 27);
    }
}
