//! HARE: the hierarchical parallel framework of §IV.C.
//!
//! FAST converts motif counting into an embarrassingly parallel problem —
//! different center nodes share no mutable state — but naive node-level
//! parallelism founders on the long-tailed degree distribution of real
//! temporal graphs: a handful of hub nodes carry most of the total work
//! (Fig. 9). HARE therefore combines two strategies:
//!
//! * **inter-node parallel** — nodes with degree ≤ `thrd` are distributed
//!   across threads in small chunks with work stealing (the rayon
//!   equivalent of OpenMP `schedule(dynamic)`);
//! * **intra-node parallel** — for each node with degree > `thrd`, the
//!   first-edge loop of Algorithms 1 and 2 is itself split across threads,
//!   each thread accumulating into a private counter that is reduced at
//!   the end (the rayon equivalent of OpenMP `reduction`).
//!
//! The default `thrd` follows the paper's §V.F setting: the minimum degree
//! among the top-20 nodes. Counter addition is commutative and
//! associative, so results are **bit-identical** across thread counts and
//! schedules — asserted by the integration tests.
//!
//! Scheduling and allocation discipline (this crate's additions to §IV.C):
//!
//! * tasks allocate **nothing** — each worker thread keeps one
//!   [`crate::NeighborScratch`] in thread-local storage, grown on demand and
//!   reused across tasks, runs and graphs; per-task counters are inline
//!   arrays on the stack;
//! * both node phases visit nodes in **degree-descending** order, so the
//!   most expensive work is scheduled first and cannot straggle at the
//!   end of the run (counter addition commutes, so ordering cannot change
//!   results);
//! * full 36-motif tasks run the **fused** star+pair+triangle kernel
//!   ([`crate::fused::count_node_all_range`]) — one window scan per node
//!   instead of two;
//! * requested thread counts are **clamped to the machine's available
//!   parallelism** (oversubscribing cores only adds scheduling overhead),
//!   and graphs below [`SEQ_FALLBACK_EVENTS`] total events skip the
//!   thread pool entirely and run the sequential kernels — on small
//!   inputs pool construction and task hand-off used to make `HARE/k`
//!   slower than `HARE/1`. Both adaptations only change *scheduling*;
//!   counters stay bit-identical to every other configuration.

use rayon::prelude::*;

use crate::counters::{MotifCounts, PairCounter, StarCounter, TriCounter};
use crate::fast_pair::count_pair_events;
use crate::fast_star::count_node_star_pair_range;
use crate::fast_tri::count_node_tri_range;
use crate::fused::count_node_all_range;
use crate::scratch::with_thread_scratch as with_scratch;
use hare_obs::{NoopProbe, Phase, Probe};
use temporal_graph::{stats, NodeId, TemporalGraph, Timestamp};

/// Below this many events (`2|E|`) a graph runs sequentially regardless
/// of the configured thread count: the fixed cost of building a thread
/// pool and stealing tasks exceeds the whole counting run, which made
/// multi-threaded HARE *slower* than single-threaded on small graphs.
/// The counters are unaffected — only the schedule changes.
pub const SEQ_FALLBACK_EVENTS: usize = 1 << 15;

/// How HARE decides which nodes get intra-node parallel treatment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegreeThreshold {
    /// `thrd` = minimum degree among the `k` highest-degree nodes
    /// (paper default: `TopK(20)`).
    TopK(usize),
    /// Fixed absolute threshold (Fig. 12b sweeps this).
    Fixed(usize),
    /// Disable intra-node parallelism entirely ("without thrd").
    Disabled,
}

/// Chunking discipline for the inter-node phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduling {
    /// Many small chunks + work stealing (≈ OpenMP `schedule(dynamic)`).
    Dynamic,
    /// One contiguous chunk per thread (≈ OpenMP default static
    /// schedule). Used as the "without thrd" baseline in Fig. 12b.
    Static,
}

/// Configuration of the HARE framework.
#[derive(Debug, Clone)]
pub struct HareConfig {
    /// Worker threads; `0` uses all available cores.
    pub num_threads: usize,
    /// Degree threshold policy for intra-node parallelism.
    pub degree_threshold: DegreeThreshold,
    /// Inter-node chunking discipline.
    pub scheduling: Scheduling,
    /// Minimum nodes per inter-node task under dynamic scheduling.
    pub min_task_nodes: usize,
    /// Minimum first-edge positions per intra-node task.
    pub min_task_events: usize,
}

impl Default for HareConfig {
    fn default() -> Self {
        HareConfig {
            num_threads: 0,
            degree_threshold: DegreeThreshold::TopK(20),
            scheduling: Scheduling::Dynamic,
            min_task_nodes: 128,
            min_task_events: 512,
        }
    }
}

/// The HARE counting engine. Construct once, run any number of counts.
///
/// ```
/// use hare::{Hare, HareConfig};
/// use temporal_graph::gen::paper_fig1_toy;
///
/// let engine = Hare::with_threads(2);
/// let counts = engine.count_all(&paper_fig1_toy(), 10);
/// assert_eq!(counts.get(hare::motif::m(6, 5)), 1); // the M65 instance
/// ```
#[derive(Debug, Clone, Default)]
pub struct Hare {
    cfg: HareConfig,
}

impl Hare {
    /// Engine with an explicit configuration.
    #[must_use]
    pub fn new(cfg: HareConfig) -> Hare {
        Hare { cfg }
    }

    /// Engine with default policies and a fixed thread count.
    #[must_use]
    pub fn with_threads(num_threads: usize) -> Hare {
        Hare::new(HareConfig {
            num_threads,
            ..HareConfig::default()
        })
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &HareConfig {
        &self.cfg
    }

    fn pool(&self) -> rayon::ThreadPool {
        rayon::ThreadPoolBuilder::new()
            .num_threads(self.effective_threads())
            .build()
            .expect("failed to build rayon thread pool")
    }

    /// Worker threads a run will actually use: the configured count
    /// clamped to the machine's available parallelism (`0` = all cores).
    /// Oversubscription cannot help a CPU-bound kernel, and the clamp
    /// keeps `HARE/k` on one shared code path for every `k` on a given
    /// machine.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
        if self.cfg.num_threads > 0 {
            self.cfg.num_threads.min(avail)
        } else {
            avail
        }
    }

    /// `true` when a graph is small enough that the sequential fallback
    /// (no pool, no task splitting) is the better schedule.
    fn run_sequential(&self, g: &TemporalGraph) -> bool {
        self.effective_threads() <= 1 || 2 * g.num_edges() < SEQ_FALLBACK_EVENTS
    }

    /// Resolve the degree threshold for a concrete graph. Returns
    /// `usize::MAX` when intra-node parallelism is disabled.
    #[must_use]
    pub fn resolve_threshold(&self, g: &TemporalGraph) -> usize {
        match self.cfg.degree_threshold {
            DegreeThreshold::TopK(k) => stats::default_degree_threshold(g, k),
            DegreeThreshold::Fixed(t) => t,
            DegreeThreshold::Disabled => usize::MAX,
        }
    }

    fn inter_chunk(&self, items: usize) -> usize {
        let threads = self.effective_threads();
        match self.cfg.scheduling {
            Scheduling::Dynamic => (items / (threads * 8)).max(self.cfg.min_task_nodes).max(1),
            Scheduling::Static => items.div_ceil(threads).max(1),
        }
    }

    fn intra_ranges(&self, len: usize) -> Vec<std::ops::Range<usize>> {
        let threads = self.effective_threads();
        let chunk = (len / (threads * 4)).max(self.cfg.min_task_events).max(1);
        (0..len)
            .step_by(chunk)
            .map(|start| start..(start + chunk).min(len))
            .collect()
    }

    /// Count all 36 motifs (FAST-Star + FAST-Tri under the hierarchical
    /// schedule) and fold into the canonical grid.
    #[must_use]
    pub fn count_all(&self, g: &TemporalGraph, delta: Timestamp) -> MotifCounts {
        self.count_all_probed(g, delta, &NoopProbe)
    }

    /// [`Hare::count_all`] with a [`Probe`] observing the engine's
    /// phase boundaries: [`Phase::Scan`] wraps the scheduled kernel
    /// scans, [`Phase::Fold`] wraps the counter → grid fold. The probe
    /// stays on the calling thread (spans bracket whole parallel
    /// sections), and counts are bit-identical across probe
    /// implementations.
    #[must_use]
    pub fn count_all_probed<P: Probe>(
        &self,
        g: &TemporalGraph,
        delta: Timestamp,
        probe: &P,
    ) -> MotifCounts {
        let (star, pair, tri) = probe.span(Phase::Scan, || self.run(g, delta, Work::All));
        probe.span(Phase::Fold, || {
            MotifCounts::from_center_counters(star, pair, tri)
        })
    }

    /// *Approximately* count all 36 motifs by interval sampling
    /// ([`crate::sample`]), scheduling the sampled windows across this
    /// engine's worker threads (the estimator inherits
    /// [`HareConfig::num_threads`]; the rest of `cfg` is taken as
    /// given). Returns unbiased per-motif estimates with confidence
    /// intervals; `cfg.prob = 1.0` reproduces [`Hare::count_all`]'s
    /// matrix bit-identically.
    #[must_use]
    pub fn estimate_all(
        &self,
        g: &TemporalGraph,
        delta: Timestamp,
        cfg: &crate::sample::SampleConfig,
    ) -> crate::sample::SampledCounts {
        let cfg = crate::sample::SampleConfig {
            threads: self.cfg.num_threads,
            ..cfg.clone()
        };
        crate::sample::SampledCounter::new(cfg).count(g, delta)
    }

    /// Count into the canonical 6×6 grid, optionally restricted to one
    /// motif category (`None` = all 36 motifs). This is the single
    /// entry point behind every `--only` / `?only=` query shape, so the
    /// CLI and the HTTP service cannot drift apart: `Some(Pair)` runs
    /// FAST-Pair over pair slots, `Some(Star)` / `Some(Triangle)` run
    /// the corresponding kernel per center node, `None` runs the fused
    /// scan. Results are bit-identical across thread counts.
    #[must_use]
    pub fn count_matrix(
        &self,
        g: &TemporalGraph,
        delta: Timestamp,
        only: Option<crate::MotifCategory>,
    ) -> crate::MotifMatrix {
        self.count_matrix_probed(g, delta, only, &NoopProbe)
    }

    /// [`Hare::count_matrix`] with a [`Probe`] observing the phase
    /// boundaries ([`Phase::Scan`] around each arm's kernel run,
    /// [`Phase::Fold`] around the grid fold). Bit-identical to
    /// [`Hare::count_matrix`] for every probe implementation.
    #[must_use]
    pub fn count_matrix_probed<P: Probe>(
        &self,
        g: &TemporalGraph,
        delta: Timestamp,
        only: Option<crate::MotifCategory>,
        probe: &P,
    ) -> crate::MotifMatrix {
        use crate::MotifCategory;
        match only {
            Some(MotifCategory::Pair) => {
                let pc = probe.span(Phase::Scan, || self.count_pair(g, delta));
                probe.span(Phase::Fold, || {
                    let mut mx = crate::MotifMatrix::default();
                    pc.add_to_matrix_pair_based(&mut mx);
                    mx
                })
            }
            Some(MotifCategory::Triangle) => {
                let tc = probe.span(Phase::Scan, || self.count_tri(g, delta));
                probe.span(Phase::Fold, || {
                    let mut mx = crate::MotifMatrix::default();
                    tc.add_to_matrix(&mut mx);
                    mx
                })
            }
            Some(MotifCategory::Star) => {
                let (sc, _) = probe.span(Phase::Scan, || self.count_star_pair(g, delta));
                probe.span(Phase::Fold, || {
                    let mut mx = crate::MotifMatrix::default();
                    sc.add_to_matrix(&mut mx);
                    mx
                })
            }
            None => self.count_all_probed(g, delta, probe).matrix,
        }
    }

    /// Count star and pair motifs only (parallel FAST-Star).
    #[must_use]
    pub fn count_star_pair(
        &self,
        g: &TemporalGraph,
        delta: Timestamp,
    ) -> (StarCounter, PairCounter) {
        let (star, pair, _) = self.run(g, delta, Work::StarPair);
        (star, pair)
    }

    /// Count triangle motifs only (parallel FAST-Tri). The counter holds
    /// each instance three times; fold with
    /// [`TriCounter::add_to_matrix`].
    #[must_use]
    pub fn count_tri(&self, g: &TemporalGraph, delta: Timestamp) -> TriCounter {
        let (_, _, tri) = self.run(g, delta, Work::Tri);
        tri
    }

    /// Count pair motifs only (parallel FAST-Pair over pair slots; each
    /// instance counted once — fold with
    /// [`PairCounter::add_to_matrix_pair_based`]).
    #[must_use]
    pub fn count_pair(&self, g: &TemporalGraph, delta: Timestamp) -> PairCounter {
        let pairs = g.pairs();
        if self.run_sequential(g) {
            let mut pc = PairCounter::default();
            for slot in 0..pairs.num_pairs() {
                count_pair_events(pairs.events_of_slot(slot), delta, &mut pc);
            }
            return pc;
        }
        let slots: Vec<usize> = (0..pairs.num_pairs()).collect();
        if slots.is_empty() {
            return PairCounter::default();
        }
        let chunk = self.inter_chunk(slots.len());
        self.pool().install(|| {
            slots
                .par_chunks(chunk)
                .map(|chunk| {
                    let mut pc = PairCounter::default();
                    for &slot in chunk {
                        count_pair_events(pairs.events_of_slot(slot), delta, &mut pc);
                    }
                    pc
                })
                .reduce(PairCounter::default, |mut a, b| {
                    a.merge(&b);
                    a
                })
        })
    }

    fn run(
        &self,
        g: &TemporalGraph,
        delta: Timestamp,
        work: Work,
    ) -> (StarCounter, PairCounter, TriCounter) {
        let thrd = self.resolve_threshold(g);
        let mut light: Vec<NodeId> = Vec::new();
        let mut heavy: Vec<NodeId> = Vec::new();
        for u in g.node_ids() {
            if g.degree(u) > thrd {
                heavy.push(u);
            } else {
                light.push(u);
            }
        }
        // Schedule hubs first: degree-descending order front-loads the
        // expensive nodes so stragglers cannot serialise the tail of the
        // run. Node id breaks degree ties to keep the order deterministic.
        let by_degree_desc = |&u: &NodeId| (std::cmp::Reverse(g.degree(u)), u);
        light.sort_unstable_by_key(by_degree_desc);
        heavy.sort_unstable_by_key(by_degree_desc);

        // Adaptive fallback: below the work threshold the pool costs
        // more than the count. Same kernels, same per-node full ranges —
        // counter addition commutes, so the fold is bit-identical.
        if self.run_sequential(g) {
            let mut acc = Partial::new(work);
            for &u in light.iter().chain(heavy.iter()) {
                acc.count_node(g, u, 0..g.node_events(u).len(), delta);
            }
            return (acc.star, acc.pair, acc.tri);
        }

        let pool = self.pool();
        pool.install(|| {
            // Phase 1: inter-node parallelism over the light nodes.
            let chunk = self.inter_chunk(light.len().max(1));
            let mut acc = light
                .par_chunks(chunk)
                .map(|nodes| {
                    let mut partial = Partial::new(work);
                    for &u in nodes {
                        partial.count_node(g, u, 0..g.node_events(u).len(), delta);
                    }
                    partial
                })
                .reduce(|| Partial::new(work), Partial::merge);

            // Phase 2: intra-node parallelism, one heavy node at a time.
            for &u in &heavy {
                let len = g.node_events(u).len();
                let ranges = self.intra_ranges(len);
                let heavy_acc = ranges
                    .into_par_iter()
                    .map(|range| {
                        let mut partial = Partial::new(work);
                        partial.count_node(g, u, range, delta);
                        partial
                    })
                    .reduce(|| Partial::new(work), Partial::merge);
                acc = Partial::merge(acc, heavy_acc);
            }

            (acc.star, acc.pair, acc.tri)
        })
    }
}

/// Which counters a run must populate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Work {
    All,
    StarPair,
    Tri,
}

/// Per-task accumulator: private inline counters (no heap allocation;
/// scratch lives in thread-local storage).
struct Partial {
    star: StarCounter,
    pair: PairCounter,
    tri: TriCounter,
    work: Work,
}

impl Partial {
    fn new(work: Work) -> Partial {
        Partial {
            star: StarCounter::default(),
            pair: PairCounter::default(),
            tri: TriCounter::default(),
            work,
        }
    }

    fn count_node(
        &mut self,
        g: &TemporalGraph,
        u: NodeId,
        range: std::ops::Range<usize>,
        delta: Timestamp,
    ) {
        match self.work {
            Work::All => with_scratch(g.num_nodes(), |scratch| {
                count_node_all_range(
                    g,
                    u,
                    range,
                    delta,
                    scratch,
                    &mut self.star,
                    &mut self.pair,
                    &mut self.tri,
                );
            }),
            Work::StarPair => with_scratch(g.num_nodes(), |scratch| {
                count_node_star_pair_range(
                    g,
                    u,
                    range,
                    delta,
                    scratch,
                    &mut self.star,
                    &mut self.pair,
                );
            }),
            Work::Tri => count_node_tri_range(g, u, range, delta, &mut self.tri),
        }
    }

    fn merge(mut a: Partial, b: Partial) -> Partial {
        a.star.merge(&b.star);
        a.pair.merge(&b.pair);
        a.tri.merge(&b.tri);
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast_pair::fast_pair;
    use crate::fast_star::fast_star;
    use crate::fast_tri::fast_tri;
    use temporal_graph::gen::{erdos_renyi_temporal, hub_burst, paper_fig1_toy, GenConfig};

    fn engines() -> Vec<Hare> {
        vec![
            Hare::with_threads(1),
            Hare::with_threads(2),
            Hare::with_threads(4),
            Hare::new(HareConfig {
                num_threads: 3,
                degree_threshold: DegreeThreshold::Fixed(5),
                min_task_nodes: 1,
                min_task_events: 4,
                ..HareConfig::default()
            }),
            Hare::new(HareConfig {
                num_threads: 2,
                degree_threshold: DegreeThreshold::Disabled,
                scheduling: Scheduling::Static,
                ..HareConfig::default()
            }),
        ]
    }

    #[test]
    fn all_configs_match_sequential_on_random_graph() {
        let g = erdos_renyi_temporal(30, 600, 500, 13);
        let delta = 80;
        let (star_seq, pair_seq) = fast_star(&g, delta);
        let tri_seq = fast_tri(&g, delta);
        for engine in engines() {
            let (star, pair) = engine.count_star_pair(&g, delta);
            assert_eq!(star, star_seq, "{:?}", engine.config());
            assert_eq!(pair, pair_seq, "{:?}", engine.config());
            let tri = engine.count_tri(&g, delta);
            assert_eq!(tri, tri_seq, "{:?}", engine.config());
        }
    }

    #[test]
    fn count_all_matches_sequential_on_skewed_graph() {
        let g = GenConfig {
            nodes: 150,
            edges: 4_000,
            zipf_exponent: 1.1,
            seed: 99,
            ..GenConfig::default()
        }
        .generate();
        let delta = 50_000;
        let (star, pair) = fast_star(&g, delta);
        let tri = fast_tri(&g, delta);
        let seq = MotifCounts::from_center_counters(star, pair, tri);
        for engine in engines() {
            let par = engine.count_all(&g, delta);
            assert_eq!(par.matrix, seq.matrix, "{:?}", engine.config());
        }
    }

    #[test]
    fn intra_node_path_exercised_by_hub_graph() {
        let g = hub_burst(50, 3_000, 20_000, 5);
        let delta = 2_000;
        // Force the hub through the intra-node path.
        let engine = Hare::new(HareConfig {
            num_threads: 4,
            degree_threshold: DegreeThreshold::Fixed(100),
            min_task_events: 16,
            ..HareConfig::default()
        });
        assert!(g.degree(0) > 100, "hub must exceed threshold");
        let (star, pair) = fast_star(&g, delta);
        let tri = fast_tri(&g, delta);
        let seq = MotifCounts::from_center_counters(star, pair, tri);
        assert_eq!(engine.count_all(&g, delta).matrix, seq.matrix);
    }

    #[test]
    fn parallel_pair_matches_sequential() {
        let g = erdos_renyi_temporal(10, 800, 400, 21);
        let delta = 100;
        let seq = fast_pair(&g, delta);
        for engine in engines() {
            assert_eq!(engine.count_pair(&g, delta), seq);
        }
    }

    #[test]
    fn toy_graph_end_to_end() {
        let g = paper_fig1_toy();
        let counts = Hare::with_threads(2).count_all(&g, 10);
        assert_eq!(counts.get(crate::motif::m(6, 5)), 1);
    }

    #[test]
    fn threshold_resolution_policies() {
        let g = hub_burst(20, 500, 5_000, 2);
        let auto = Hare::new(HareConfig {
            degree_threshold: DegreeThreshold::TopK(5),
            ..HareConfig::default()
        });
        let t = auto.resolve_threshold(&g);
        assert!(t >= 1 && t < g.degree(0));
        let fixed = Hare::new(HareConfig {
            degree_threshold: DegreeThreshold::Fixed(7),
            ..HareConfig::default()
        });
        assert_eq!(fixed.resolve_threshold(&g), 7);
        let off = Hare::new(HareConfig {
            degree_threshold: DegreeThreshold::Disabled,
            ..HareConfig::default()
        });
        assert_eq!(off.resolve_threshold(&g), usize::MAX);
    }

    #[test]
    fn estimate_all_matches_one_shot_counter_and_exact_at_p_one() {
        let g = erdos_renyi_temporal(25, 700, 2_000, 8);
        let delta = 150;
        let cfg = crate::sample::SampleConfig {
            prob: 0.6,
            window_factor: 3,
            seed: 4,
            ..crate::sample::SampleConfig::default()
        };
        // The engine overrides only the thread count; estimates stay
        // bit-identical to the sequential one-shot counter.
        let engine = Hare::with_threads(2);
        let via_engine = engine.estimate_all(&g, delta, &cfg);
        let one_shot = crate::sample::SampledCounter::new(cfg.clone()).count(&g, delta);
        assert_eq!(via_engine, one_shot);

        let exact_cfg = crate::sample::SampleConfig { prob: 1.0, ..cfg };
        let exact = engine.estimate_all(&g, delta, &exact_cfg);
        assert_eq!(exact.as_exact(), Some(engine.count_all(&g, delta).matrix));
    }

    /// Pinned: HARE/k is bit-identical to sequential FAST at every k,
    /// on both sides of the sequential-fallback threshold (the small
    /// graph takes the fallback, the large one the pool path).
    #[test]
    fn hare_k_equals_fast_at_every_k() {
        let small = erdos_renyi_temporal(40, 900, 700, 17);
        assert!(2 * small.num_edges() < SEQ_FALLBACK_EVENTS);
        let large = GenConfig {
            nodes: 400,
            edges: 20_000,
            time_span: 40_000,
            zipf_exponent: 1.1,
            seed: 23,
            ..GenConfig::default()
        }
        .generate();
        assert!(2 * large.num_edges() >= SEQ_FALLBACK_EVENTS);
        for (g, delta) in [(&small, 90), (&large, 400)] {
            let seq = crate::count_motifs(g, delta);
            for k in [1, 2, 4, 8] {
                let engine = Hare::with_threads(k);
                assert!(engine.effective_threads() >= 1);
                let par = engine.count_all(g, delta);
                assert_eq!(par.matrix, seq.matrix, "k={k}");
                assert_eq!(par.star, seq.star, "k={k}");
                assert_eq!(par.tri, seq.tri, "k={k}");
            }
        }
    }

    #[test]
    fn effective_threads_is_clamped_to_available_parallelism() {
        let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(Hare::with_threads(1).effective_threads(), 1);
        assert_eq!(Hare::with_threads(usize::MAX).effective_threads(), avail);
        assert_eq!(Hare::with_threads(0).effective_threads(), avail);
    }

    #[test]
    fn empty_graph_all_apis() {
        let g = temporal_graph::TemporalGraph::from_edges(vec![]);
        let engine = Hare::with_threads(2);
        assert_eq!(engine.count_all(&g, 10).total(), 0);
        assert_eq!(engine.count_pair(&g, 10).total(), 0);
        assert_eq!(engine.count_tri(&g, 10).total(), 0);
    }
}
