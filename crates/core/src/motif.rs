//! The 36-motif taxonomy of Fig. 2 and its canonical counter mappings.
//!
//! The paper categorises all 2- and 3-node, 3-edge δ-temporal motifs into
//! three classes by topology (§IV):
//!
//! * **pair** motifs — 2 nodes, all 3 edges between them (4 classes,
//!   grid cells `M55, M56, M65, M66`),
//! * **star** motifs — 3 nodes, center node touching all 3 edges
//!   (24 classes, grid columns 1–4),
//! * **triangle** motifs — 3 nodes, 3 distinct node pairs (8 classes,
//!   cells `M15..M45, M16..M46`).
//!
//! Counting happens in *counter space* (`Star[type][d1][d2][d3]`,
//! `Pair[d1][d2][d3]`, `Tri[type][di][dj][dk]`) and is folded into the
//! canonical 6×6 grid at the end. The fold tables in this module are
//! anchored to every constraint the paper states in text:
//!
//! * `Star[I, in, o, in] = M24` (§IV.A.2);
//! * the all-outward stars of types I/III are `M13`/`M53` (§V.D compares
//!   their near-equal counts on WikiTalk);
//! * the four pair isomorphism classes (§IV.A.3, with the paper's obvious
//!   typo in the last identity corrected — see DESIGN.md §2.1);
//! * all 24 triangle cells of Fig. 8, cross-validated against the three
//!   worked instances of Fig. 1 (`M63`, `M46`, `M65`, `M25`).

use temporal_graph::Dir;

/// One of the 36 canonical δ-temporal motifs, addressed by its Fig. 2 grid
/// position `M{row}{col}` with `row, col ∈ 1..=6`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Motif {
    row: u8,
    col: u8,
}

impl Motif {
    /// Construct `M{row}{col}`.
    ///
    /// # Panics
    /// Panics unless `1 <= row, col <= 6`.
    #[must_use]
    pub const fn new(row: u8, col: u8) -> Motif {
        assert!(row >= 1 && row <= 6 && col >= 1 && col <= 6);
        Motif { row, col }
    }

    /// Grid row, `1..=6`.
    #[inline]
    #[must_use]
    pub const fn row(self) -> u8 {
        self.row
    }

    /// Grid column, `1..=6`.
    #[inline]
    #[must_use]
    pub const fn col(self) -> u8 {
        self.col
    }

    /// Topological category of this grid cell.
    #[must_use]
    pub const fn category(self) -> MotifCategory {
        match (self.row, self.col) {
            (1..=4, 5..=6) => MotifCategory::Triangle,
            (5..=6, 5..=6) => MotifCategory::Pair,
            _ => MotifCategory::Star,
        }
    }

    /// All 36 motifs in row-major order.
    pub fn all() -> impl Iterator<Item = Motif> {
        (1..=6).flat_map(|r| (1..=6).map(move |c| Motif::new(r, c)))
    }
}

impl std::str::FromStr for Motif {
    type Err = String;

    /// Parse the canonical `M{row}{col}` grid name (`"M11"`..`"M66"`,
    /// case-insensitive on the `M`) — the inverse of [`Motif`]'s
    /// `Display`. Used by `--rank-motif` and the `/nodes/top?motif=`
    /// query parameter.
    fn from_str(s: &str) -> Result<Motif, String> {
        let err = || format!("invalid motif {s:?}: expected M11..M66");
        let digits = s.strip_prefix('M').or_else(|| s.strip_prefix('m'));
        let [r, c] = digits.ok_or_else(err)?.as_bytes() else {
            return Err(err());
        };
        let (row, col) = (r.wrapping_sub(b'0'), c.wrapping_sub(b'0'));
        if (1..=6).contains(&row) && (1..=6).contains(&col) {
            Ok(Motif { row, col })
        } else {
            Err(err())
        }
    }
}

impl std::fmt::Display for Motif {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "M{}{}", self.row, self.col)
    }
}

/// Shorthand constructor used pervasively in tables and tests.
#[inline]
#[must_use]
pub const fn m(row: u8, col: u8) -> Motif {
    Motif::new(row, col)
}

/// Topological category of a motif (§IV, Fig. 2 colour coding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MotifCategory {
    /// 2 nodes, 3 edges between them (green cells).
    Pair,
    /// 3 nodes, one center incident to all 3 edges (blue cells).
    Star,
    /// 3 nodes, 3 distinct pairs (yellow cells).
    Triangle,
}

/// Star motif type by the time position of the *isolated* edge — the edge
/// whose non-center endpoint differs from the other two (§IV.A.1, Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StarType {
    /// Isolated edge is first in time.
    I = 0,
    /// Isolated edge is second in time.
    II = 1,
    /// Isolated edge is third in time.
    III = 2,
}

impl StarType {
    /// Counter index (0, 1, 2).
    #[inline]
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// All three types in index order.
    pub const ALL: [StarType; 3] = [StarType::I, StarType::II, StarType::III];
}

/// Triangle motif type by the time position of the *opposite* edge `e_k`
/// relative to the center's two edges `e_i < e_j` (§IV.B.1, Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriType {
    /// `t_k < t_i`: opposite edge comes first.
    I = 0,
    /// `t_i <= t_k <= t_j`: opposite edge in the middle.
    II = 1,
    /// `t_j < t_k`: opposite edge comes last.
    III = 2,
}

impl TriType {
    /// Counter index (0, 1, 2).
    #[inline]
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// All three types in index order.
    pub const ALL: [TriType; 3] = [TriType::I, TriType::II, TriType::III];
}

/// Grid cell for a star counter entry `Star[ty, d1, d2, d3]`, where
/// `d1..d3` are the directions (w.r.t. the center) of the three edges in
/// time order.
///
/// Convention (DESIGN.md §2.1): the *isolated* edge's direction picks the
/// row inside the type's row block (`Out` → first row); the two bonded
/// edges `(d_a, d_b)` in time order pick the column
/// `2·[d_a = Out] + [d_b = In] + 1`.
#[must_use]
pub fn star_motif(ty: StarType, d1: Dir, d2: Dir, d3: Dir) -> Motif {
    let (isolated, bond_a, bond_b) = match ty {
        StarType::I => (d1, d2, d3),
        StarType::II => (d2, d1, d3),
        StarType::III => (d3, d1, d2),
    };
    let base_row = match ty {
        StarType::I => 1,
        StarType::II => 3,
        StarType::III => 5,
    };
    let row = base_row + matches!(isolated, Dir::In) as u8;
    let col = 2 * matches!(bond_a, Dir::Out) as u8 + matches!(bond_b, Dir::In) as u8 + 1;
    Motif::new(row, col)
}

/// Grid cell for a pair counter entry `Pair[d1, d2, d3]` (directions
/// w.r.t. one endpoint, edges in time order).
///
/// Swapping the two nodes flips every direction, so cells come in
/// isomorphic mirror pairs; both map to the same motif (§IV.A.3):
/// `M55 = {ooo, iii}`, `M56 = {oii, ioo}`, `M65 = {oio, ioi}`,
/// `M66 = {ooi, iio}`.
#[must_use]
pub fn pair_motif(d1: Dir, d2: Dir, d3: Dir) -> Motif {
    // Canonicalise so the first edge is outward.
    let (d2, d3) = if d1 == Dir::Out {
        (d2, d3)
    } else {
        (d2.flip(), d3.flip())
    };
    match (d2, d3) {
        (Dir::Out, Dir::Out) => m(5, 5),
        (Dir::In, Dir::In) => m(5, 6),
        (Dir::In, Dir::Out) => m(6, 5),
        (Dir::Out, Dir::In) => m(6, 6),
    }
}

/// Grid cell for a triangle counter entry `Tri[ty, di, dj, dk]`.
///
/// `di, dj` are the directions (w.r.t. the center `u`) of the center's two
/// edges in time order; `dk` is the direction of the opposite edge w.r.t.
/// `v = e_i.v` (`Out` = `v -> w`). Each of the 8 motif classes corresponds
/// to exactly one cell of each type (Fig. 8); the full 24-cell table below
/// is transcribed from the paper's Fig. 8.
#[must_use]
pub fn tri_motif(ty: TriType, di: Dir, dj: Dir, dk: Dir) -> Motif {
    use Dir::{In as I, Out as O};
    match (ty, di, dj, dk) {
        // M15: Tri[I,in,in,o] ~ Tri[II,in,o,o] ~ Tri[III,o,o,o]
        (TriType::I, I, I, O) | (TriType::II, I, O, O) | (TriType::III, O, O, O) => m(1, 5),
        // M16: Tri[I,in,in,in] ~ Tri[II,o,o,o] ~ Tri[III,in,o,o]
        (TriType::I, I, I, I) | (TriType::II, O, O, O) | (TriType::III, I, O, O) => m(1, 6),
        // M25: Tri[I,o,in,o] ~ Tri[II,in,o,in] ~ Tri[III,o,in,o]
        (TriType::I, O, I, O) | (TriType::II, I, O, I) | (TriType::III, O, I, O) => m(2, 5),
        // M26: Tri[I,in,o,in] ~ Tri[II,o,in,o] ~ Tri[III,in,o,in]
        (TriType::I, I, O, I) | (TriType::II, O, I, O) | (TriType::III, I, O, I) => m(2, 6),
        // M35: Tri[I,o,o,o] ~ Tri[II,in,in,in] ~ Tri[III,o,in,in]
        (TriType::I, O, O, O) | (TriType::II, I, I, I) | (TriType::III, O, I, I) => m(3, 5),
        // M36: Tri[I,o,in,in] ~ Tri[II,o,o,in] ~ Tri[III,in,in,o]
        (TriType::I, O, I, I) | (TriType::II, O, O, I) | (TriType::III, I, I, O) => m(3, 6),
        // M45: Tri[I,in,o,o] ~ Tri[II,in,in,o] ~ Tri[III,o,o,in]
        (TriType::I, I, O, O) | (TriType::II, I, I, O) | (TriType::III, O, O, I) => m(4, 5),
        // M46: Tri[I,o,o,in] ~ Tri[II,o,in,in] ~ Tri[III,in,in,in]
        (TriType::I, O, O, I) | (TriType::II, O, I, I) | (TriType::III, I, I, I) => m(4, 6),
    }
}

/// Classify one chronologically ordered edge triple as a canonical
/// motif. Returns `None` if the triple spans more than 3 distinct nodes
/// (not a 2-/3-node motif). Timestamps are not δ-checked — callers
/// enforce the window.
#[must_use]
pub fn classify_instance(
    e1: temporal_graph::TemporalEdge,
    e2: temporal_graph::TemporalEdge,
    e3: temporal_graph::TemporalEdge,
) -> Option<Motif> {
    use temporal_graph::NodeId;
    let edges = [e1, e2, e3];
    let mut nodes: [NodeId; 6] = [0; 6];
    let mut n = 0usize;
    for e in &edges {
        for node in [e.src, e.dst] {
            if !nodes[..n].contains(&node) {
                nodes[n] = node;
                n += 1;
            }
        }
    }
    match n {
        2 => {
            // Pair motif: directions relative to e1's source.
            let anchor = e1.src;
            let dir = |e: &temporal_graph::TemporalEdge| {
                if e.src == anchor {
                    Dir::Out
                } else {
                    Dir::In
                }
            };
            Some(pair_motif(Dir::Out, dir(&e2), dir(&e3)))
        }
        3 => {
            // Star if some node touches all three edges.
            if let Some(&center) = nodes[..3]
                .iter()
                .find(|&&v| edges.iter().all(|e| e.src == v || e.dst == v))
            {
                let far = edges.map(|e| if e.src == center { e.dst } else { e.src });
                let ty = if far[1] == far[2] {
                    StarType::I
                } else if far[0] == far[2] {
                    StarType::II
                } else {
                    debug_assert_eq!(far[0], far[1]);
                    StarType::III
                };
                let d = |i: usize| edges[i].dir_from(center);
                Some(star_motif(ty, d(0), d(1), d(2)))
            } else {
                // Triangle: use the vertex shared by e1 and e2 as center
                // (its opposite edge is then e3 → Triangle-III); Fig. 8
                // guarantees any center choice yields the same class.
                let center = if e1.src == e2.src || e1.src == e2.dst {
                    e1.src
                } else {
                    e1.dst
                };
                let v = if e1.src == center { e1.dst } else { e1.src };
                let dk = if e3.src == v { Dir::Out } else { Dir::In };
                Some(tri_motif(
                    TriType::III,
                    e1.dir_from(center),
                    e2.dir_from(center),
                    dk,
                ))
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use temporal_graph::Dir::{In, Out};

    #[test]
    fn grid_categories_match_fig2_colour_blocks() {
        let mut pair = 0;
        let mut star = 0;
        let mut tri = 0;
        for mo in Motif::all() {
            match mo.category() {
                MotifCategory::Pair => pair += 1,
                MotifCategory::Star => star += 1,
                MotifCategory::Triangle => tri += 1,
            }
        }
        assert_eq!((pair, star, tri), (4, 24, 8));
    }

    #[test]
    fn motif_display_and_accessors() {
        let mo = m(2, 4);
        assert_eq!(mo.to_string(), "M24");
        assert_eq!((mo.row(), mo.col()), (2, 4));
    }

    #[test]
    #[should_panic]
    fn motif_out_of_range_panics() {
        let _ = Motif::new(0, 3);
    }

    #[test]
    fn star_anchor_from_paper_text() {
        // §IV.A.2: "Star[I,in,o,in] records the number of motif instances
        // of M24".
        assert_eq!(star_motif(StarType::I, In, Out, In), m(2, 4));
        // §V.D: M13 / M53 are the all-outward type-I / type-III stars.
        assert_eq!(star_motif(StarType::I, Out, Out, Out), m(1, 3));
        assert_eq!(star_motif(StarType::III, Out, Out, Out), m(5, 3));
    }

    #[test]
    fn star_mapping_is_a_bijection_onto_star_cells() {
        let mut seen: HashMap<Motif, (StarType, Dir, Dir, Dir)> = HashMap::new();
        for ty in StarType::ALL {
            for d1 in Dir::BOTH {
                for d2 in Dir::BOTH {
                    for d3 in Dir::BOTH {
                        let mo = star_motif(ty, d1, d2, d3);
                        assert_eq!(mo.category(), MotifCategory::Star, "{mo}");
                        let prev = seen.insert(mo, (ty, d1, d2, d3));
                        assert!(prev.is_none(), "{mo} mapped twice");
                    }
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn star_types_occupy_their_fig3_row_blocks() {
        for d1 in Dir::BOTH {
            for d2 in Dir::BOTH {
                for d3 in Dir::BOTH {
                    assert!(matches!(star_motif(StarType::I, d1, d2, d3).row(), 1 | 2));
                    assert!(matches!(star_motif(StarType::II, d1, d2, d3).row(), 3 | 4));
                    assert!(matches!(star_motif(StarType::III, d1, d2, d3).row(), 5 | 6));
                }
            }
        }
    }

    #[test]
    fn pair_mapping_matches_paper_identities() {
        // §IV.A.3 (typo-corrected; see DESIGN.md §2.1).
        assert_eq!(pair_motif(In, In, In), m(5, 5));
        assert_eq!(pair_motif(Out, Out, Out), m(5, 5));
        assert_eq!(pair_motif(In, Out, Out), m(5, 6));
        assert_eq!(pair_motif(Out, In, In), m(5, 6));
        assert_eq!(pair_motif(In, Out, In), m(6, 5));
        assert_eq!(pair_motif(Out, In, Out), m(6, 5));
        assert_eq!(pair_motif(In, In, Out), m(6, 6));
        assert_eq!(pair_motif(Out, Out, In), m(6, 6));
    }

    #[test]
    fn pair_mapping_is_flip_invariant() {
        for d1 in Dir::BOTH {
            for d2 in Dir::BOTH {
                for d3 in Dir::BOTH {
                    assert_eq!(
                        pair_motif(d1, d2, d3),
                        pair_motif(d1.flip(), d2.flip(), d3.flip())
                    );
                }
            }
        }
    }

    #[test]
    fn pair_cells_cover_all_four_pair_motifs() {
        let mut seen = std::collections::HashSet::new();
        for d1 in Dir::BOTH {
            for d2 in Dir::BOTH {
                for d3 in Dir::BOTH {
                    let mo = pair_motif(d1, d2, d3);
                    assert_eq!(mo.category(), MotifCategory::Pair);
                    seen.insert(mo);
                }
            }
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn tri_mapping_covers_each_class_once_per_type() {
        // Fig. 8: each of the 8 triangle motifs corresponds to exactly one
        // cell of each type, and the 24 cells partition exactly.
        let mut by_class: HashMap<Motif, Vec<TriType>> = HashMap::new();
        for ty in TriType::ALL {
            let mut per_type = std::collections::HashSet::new();
            for di in Dir::BOTH {
                for dj in Dir::BOTH {
                    for dk in Dir::BOTH {
                        let mo = tri_motif(ty, di, dj, dk);
                        assert_eq!(mo.category(), MotifCategory::Triangle);
                        assert!(per_type.insert(mo), "{mo} duplicated within type");
                        by_class.entry(mo).or_default().push(ty);
                    }
                }
            }
            assert_eq!(per_type.len(), 8);
        }
        assert_eq!(by_class.len(), 8);
        for (mo, types) in by_class {
            assert_eq!(types.len(), 3, "{mo} must appear once per type");
        }
    }

    #[test]
    fn tri_worked_examples_from_fig1() {
        // §IV.B.2 example 1: center v_e, e_i=(1s,d,o), e_j=(6s,c,o),
        // e_k = (v_d -> v_c, 10s): dir w.r.t. v = v_d is Out, type III.
        // "thus Tri[III,o,o,o] += 1" — and §III has no class claim; Fig. 8
        // puts Tri[III,o,o,o] in M15.
        assert_eq!(tri_motif(TriType::III, Out, Out, Out), m(1, 5));
        // §III: <(v_e,v_c,6s),(v_d,v_c,10s),(v_d,v_e,14s)> is M46. With
        // center v_e this is Tri[II, o, in, dk] with e_k = v_d -> v_c seen
        // from v = v_c: In. (The §IV.B.2 text writes Tri[II,o,in,o] — a
        // typo; Fig. 8 and the §III class statement require dk = in.)
        assert_eq!(tri_motif(TriType::II, Out, In, In), m(4, 6));
        // §IV.B.3: <(v_a,v_c,8s),(v_d,v_a,9s),(v_c,v_d,17s)> is M25 and is
        // seen as Tri[III,o,in,o] / Tri[II,in,o,in] / Tri[I,o,in,o] from
        // centers v_a / v_c / v_d.
        assert_eq!(tri_motif(TriType::III, Out, In, Out), m(2, 5));
        assert_eq!(tri_motif(TriType::II, In, Out, In), m(2, 5));
        assert_eq!(tri_motif(TriType::I, Out, In, Out), m(2, 5));
    }

    #[test]
    fn tri_fig8_first_column_cells() {
        // Spot-check the remaining Fig. 8 rows.
        assert_eq!(tri_motif(TriType::I, In, Out, Out), m(4, 5));
        assert_eq!(tri_motif(TriType::II, In, In, Out), m(4, 5));
        assert_eq!(tri_motif(TriType::III, Out, Out, In), m(4, 5));
        assert_eq!(tri_motif(TriType::I, Out, Out, Out), m(3, 5));
        assert_eq!(tri_motif(TriType::II, In, In, In), m(3, 5));
        assert_eq!(tri_motif(TriType::III, Out, In, In), m(3, 5));
        assert_eq!(tri_motif(TriType::I, In, Out, In), m(2, 6));
        assert_eq!(tri_motif(TriType::II, Out, In, Out), m(2, 6));
        assert_eq!(tri_motif(TriType::III, In, Out, In), m(2, 6));
        assert_eq!(tri_motif(TriType::I, In, In, In), m(1, 6));
        assert_eq!(tri_motif(TriType::II, Out, Out, Out), m(1, 6));
        assert_eq!(tri_motif(TriType::III, In, Out, Out), m(1, 6));
        assert_eq!(tri_motif(TriType::I, Out, In, In), m(3, 6));
        assert_eq!(tri_motif(TriType::II, Out, Out, In), m(3, 6));
        assert_eq!(tri_motif(TriType::III, In, In, Out), m(3, 6));
    }

    #[test]
    fn motif_parse_roundtrips_display() {
        for motif in Motif::all() {
            assert_eq!(motif.to_string().parse::<Motif>(), Ok(motif));
        }
        assert_eq!("m65".parse::<Motif>(), Ok(m(6, 5)));
        for bad in ["", "M", "M1", "M111", "M07", "M70", "X11", "M 1", "Mab"] {
            assert!(bad.parse::<Motif>().is_err(), "{bad:?}");
        }
    }
}
