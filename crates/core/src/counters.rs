//! The compact counting structures of §IV: the quadruple counters
//! `Star[·,·,·,·]` and `Tri[·,·,·,·]`, the triple counter `Pair[·,·,·]`,
//! and the canonical 6×6 result grid they fold into.

use crate::motif::{pair_motif, star_motif, tri_motif, Motif, MotifCategory, StarType, TriType};
use temporal_graph::Dir;

/// Quadruple counter for star temporal motifs:
/// `Star[type][d1][d2][d3]` (§IV.A.2). 3×2×2×2 = 24 cells, one per
/// non-isomorphic star motif.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StarCounter {
    cells: [[[[u64; 2]; 2]; 2]; 3],
}

impl StarCounter {
    /// Counter value for `Star[ty, d1, d2, d3]`.
    #[inline]
    #[must_use]
    pub fn get(&self, ty: StarType, d1: Dir, d2: Dir, d3: Dir) -> u64 {
        self.cells[ty.index()][d1.index()][d2.index()][d3.index()]
    }

    /// Add `n` to `Star[ty, d1, d2, d3]`.
    #[inline]
    pub fn add(&mut self, ty: StarType, d1: Dir, d2: Dir, d3: Dir, n: u64) {
        self.cells[ty.index()][d1.index()][d2.index()][d3.index()] += n;
    }

    /// Subtract `n` from `Star[ty, d1, d2, d3]` (used by windowed counting
    /// to retire expired instances; the caller guarantees `n` was added
    /// earlier, so the cell never goes negative).
    #[inline]
    pub fn sub(&mut self, ty: StarType, d1: Dir, d2: Dir, d3: Dir, n: u64) {
        self.cells[ty.index()][d1.index()][d2.index()][d3.index()] -= n;
    }

    /// Fold a flat per-node accumulator into the counter. The flat index
    /// is `ty·8 + d1·4 + d2·2 + d3` — the layout the data-oriented
    /// kernels ([`crate::fused`], [`crate::fast_star`]) accumulate into
    /// before touching the shared counter once per node.
    #[inline]
    pub fn add_flat(&mut self, flat: &[u64; 24]) {
        for (i, &n) in flat.iter().enumerate() {
            self.cells[i >> 3][(i >> 2) & 1][(i >> 1) & 1][i & 1] += n;
        }
    }

    /// Element-wise accumulate another counter (used to reduce per-thread
    /// partials in HARE).
    pub fn merge(&mut self, other: &StarCounter) {
        for t in 0..3 {
            for a in 0..2 {
                for b in 0..2 {
                    for c in 0..2 {
                        self.cells[t][a][b][c] += other.cells[t][a][b][c];
                    }
                }
            }
        }
    }

    /// Sum over all 24 cells.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.iter().map(|(_, _, _, _, n)| n).sum()
    }

    /// Iterate `(type, d1, d2, d3, count)` over all cells.
    pub fn iter(&self) -> impl Iterator<Item = (StarType, Dir, Dir, Dir, u64)> + '_ {
        StarType::ALL.into_iter().flat_map(move |ty| {
            Dir::BOTH.into_iter().flat_map(move |d1| {
                Dir::BOTH.into_iter().flat_map(move |d2| {
                    Dir::BOTH
                        .into_iter()
                        .map(move |d3| (ty, d1, d2, d3, self.get(ty, d1, d2, d3)))
                })
            })
        })
    }

    /// Fold into the canonical grid. Star cells map 1:1 onto star motifs,
    /// so this is a plain relabelling.
    pub fn add_to_matrix(&self, matrix: &mut MotifMatrix) {
        for (ty, d1, d2, d3, n) in self.iter() {
            matrix.add(star_motif(ty, d1, d2, d3), n);
        }
    }
}

/// Triple counter for pair temporal motifs: `Pair[d1][d2][d3]` (§IV.A.3).
/// 8 cells; isomorphic mirror cells fold onto the 4 pair motifs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PairCounter {
    cells: [[[u64; 2]; 2]; 2],
}

impl PairCounter {
    /// Counter value for `Pair[d1, d2, d3]`.
    #[inline]
    #[must_use]
    pub fn get(&self, d1: Dir, d2: Dir, d3: Dir) -> u64 {
        self.cells[d1.index()][d2.index()][d3.index()]
    }

    /// Add `n` to `Pair[d1, d2, d3]`.
    #[inline]
    pub fn add(&mut self, d1: Dir, d2: Dir, d3: Dir, n: u64) {
        self.cells[d1.index()][d2.index()][d3.index()] += n;
    }

    /// Subtract `n` from `Pair[d1, d2, d3]` (used by windowed counting to
    /// retire expired instances; the caller guarantees `n` was added
    /// earlier, so the cell never goes negative).
    #[inline]
    pub fn sub(&mut self, d1: Dir, d2: Dir, d3: Dir, n: u64) {
        self.cells[d1.index()][d2.index()][d3.index()] -= n;
    }

    /// Fold a flat per-node accumulator into the counter. The flat index
    /// is `d1·4 + d2·2 + d3` (see [`StarCounter::add_flat`]).
    #[inline]
    pub fn add_flat(&mut self, flat: &[u64; 8]) {
        for (i, &n) in flat.iter().enumerate() {
            self.cells[i >> 2][(i >> 1) & 1][i & 1] += n;
        }
    }

    /// Element-wise accumulate another counter.
    pub fn merge(&mut self, other: &PairCounter) {
        for a in 0..2 {
            for b in 0..2 {
                for c in 0..2 {
                    self.cells[a][b][c] += other.cells[a][b][c];
                }
            }
        }
    }

    /// Sum over all 8 cells.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.iter().map(|(_, _, _, n)| n).sum()
    }

    /// Iterate `(d1, d2, d3, count)` over all cells.
    pub fn iter(&self) -> impl Iterator<Item = (Dir, Dir, Dir, u64)> + '_ {
        Dir::BOTH.into_iter().flat_map(move |d1| {
            Dir::BOTH.into_iter().flat_map(move |d2| {
                Dir::BOTH
                    .into_iter()
                    .map(move |d3| (d1, d2, d3, self.get(d1, d2, d3)))
            })
        })
    }

    /// Fold into the grid for a **center-based** count (FAST-Star visits
    /// both endpoints of each pair instance as center, so every instance
    /// lands once in each of its two mirror cells → divide the folded sum
    /// by 2).
    ///
    /// In debug builds, asserts the mirror-cell equality invariant.
    pub fn add_to_matrix_center_based(&self, matrix: &mut MotifMatrix) {
        debug_assert!(self.mirror_cells_balanced(), "mirror cells out of balance");
        for (d1, d2, d3, n) in self.iter() {
            // Attribute only the canonical (first-edge-outward) cell to
            // avoid double counting; its mirror carries an equal value.
            if d1 == Dir::Out {
                let mirror = self.get(d1.flip(), d2.flip(), d3.flip());
                matrix.add(pair_motif(d1, d2, d3), (n + mirror) / 2);
            }
        }
    }

    /// Fold into the grid for a **pair-based** count (FAST-Pair visits
    /// each unordered pair once, so cells already hold disjoint instance
    /// sets; mirror cells are summed without division).
    pub fn add_to_matrix_pair_based(&self, matrix: &mut MotifMatrix) {
        for (d1, d2, d3, n) in self.iter() {
            matrix.add(pair_motif(d1, d2, d3), n);
        }
    }

    /// Invariant of center-based counting: `Pair[a,b,c] == Pair[¬a,¬b,¬c]`
    /// because every instance is seen once from each endpoint.
    #[must_use]
    pub fn mirror_cells_balanced(&self) -> bool {
        Dir::BOTH.into_iter().all(|d2| {
            Dir::BOTH
                .into_iter()
                .all(|d3| self.get(Dir::Out, d2, d3) == self.get(Dir::In, d2.flip(), d3.flip()))
        })
    }
}

/// Quadruple counter for triangle temporal motifs:
/// `Tri[type][di][dj][dk]` (§IV.B.2). 24 cells folding 3:1 onto the 8
/// triangle motifs (Fig. 8).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TriCounter {
    cells: [[[[u64; 2]; 2]; 2]; 3],
}

impl TriCounter {
    /// Counter value for `Tri[ty, di, dj, dk]`.
    #[inline]
    #[must_use]
    pub fn get(&self, ty: TriType, di: Dir, dj: Dir, dk: Dir) -> u64 {
        self.cells[ty.index()][di.index()][dj.index()][dk.index()]
    }

    /// Add `n` to `Tri[ty, di, dj, dk]`.
    #[inline]
    pub fn add(&mut self, ty: TriType, di: Dir, dj: Dir, dk: Dir, n: u64) {
        self.cells[ty.index()][di.index()][dj.index()][dk.index()] += n;
    }

    /// Fold a flat per-node accumulator into the counter. The flat index
    /// is `ty·8 + di·4 + dj·2 + dk` (see [`StarCounter::add_flat`]).
    #[inline]
    pub fn add_flat(&mut self, flat: &[u64; 24]) {
        for (i, &n) in flat.iter().enumerate() {
            self.cells[i >> 3][(i >> 2) & 1][(i >> 1) & 1][i & 1] += n;
        }
    }

    /// Element-wise accumulate another counter.
    pub fn merge(&mut self, other: &TriCounter) {
        for t in 0..3 {
            for a in 0..2 {
                for b in 0..2 {
                    for c in 0..2 {
                        self.cells[t][a][b][c] += other.cells[t][a][b][c];
                    }
                }
            }
        }
    }

    /// Sum over all 24 cells.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.iter().map(|(_, _, _, _, n)| n).sum()
    }

    /// Iterate `(type, di, dj, dk, count)` over all cells.
    pub fn iter(&self) -> impl Iterator<Item = (TriType, Dir, Dir, Dir, u64)> + '_ {
        TriType::ALL.into_iter().flat_map(move |ty| {
            Dir::BOTH.into_iter().flat_map(move |di| {
                Dir::BOTH.into_iter().flat_map(move |dj| {
                    Dir::BOTH
                        .into_iter()
                        .map(move |dk| (ty, di, dj, dk, self.get(ty, di, dj, dk)))
                })
            })
        })
    }

    /// Fold into the grid. FAST-Tri counts each triangle instance once per
    /// vertex (3×), landing once in each of its class's three cells
    /// (§IV.B.3) — so the per-class fold divides the cell sum by 3.
    ///
    /// In debug builds, asserts the three cells of every class agree.
    pub fn add_to_matrix(&self, matrix: &mut MotifMatrix) {
        debug_assert!(self.class_cells_balanced(), "class cells out of balance");
        let mut sums = MotifMatrix::default();
        for (ty, di, dj, dk, n) in self.iter() {
            sums.add(tri_motif(ty, di, dj, dk), n);
        }
        for mo in Motif::all().filter(|mo| mo.category() == MotifCategory::Triangle) {
            matrix.add(mo, sums.get(mo) / 3);
        }
    }

    /// Invariant of whole-graph FAST-Tri: the three isomorphic cells of
    /// each class each count every instance exactly once, so they agree.
    #[must_use]
    pub fn class_cells_balanced(&self) -> bool {
        let mut per_class: std::collections::HashMap<Motif, Vec<u64>> = Default::default();
        for (ty, di, dj, dk, n) in self.iter() {
            per_class
                .entry(tri_motif(ty, di, dj, dk))
                .or_default()
                .push(n);
        }
        per_class.values().all(|v| v.iter().all(|&n| n == v[0]))
    }
}

/// The canonical 6×6 result grid of Fig. 2 / Fig. 10: `counts[r][c]` is
/// the number of instances of motif `M{r+1}{c+1}`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MotifMatrix {
    counts: [[u64; 6]; 6],
}

impl MotifMatrix {
    /// Count of the given motif.
    #[inline]
    #[must_use]
    pub fn get(&self, m: Motif) -> u64 {
        self.counts[m.row() as usize - 1][m.col() as usize - 1]
    }

    /// Set the count of the given motif.
    #[inline]
    pub fn set(&mut self, m: Motif, n: u64) {
        self.counts[m.row() as usize - 1][m.col() as usize - 1] = n;
    }

    /// Add to the count of the given motif.
    #[inline]
    pub fn add(&mut self, m: Motif, n: u64) {
        self.counts[m.row() as usize - 1][m.col() as usize - 1] += n;
    }

    /// Subtract from the count of the given motif (used by windowed
    /// counting to retire expired instances; the caller guarantees `n` was
    /// added earlier, so the cell never goes negative).
    #[inline]
    pub fn sub(&mut self, m: Motif, n: u64) {
        self.counts[m.row() as usize - 1][m.col() as usize - 1] -= n;
    }

    /// Element-wise sum.
    pub fn merge(&mut self, other: &MotifMatrix) {
        for r in 0..6 {
            for c in 0..6 {
                self.counts[r][c] += other.counts[r][c];
            }
        }
    }

    /// Iterate `(motif, count)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Motif, u64)> + '_ {
        Motif::all().map(move |m| (m, self.get(m)))
    }

    /// Total instances across all 36 motifs.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.iter().map(|(_, n)| n).sum()
    }

    /// Total instances within one category.
    #[must_use]
    pub fn category_total(&self, cat: MotifCategory) -> u64 {
        self.iter()
            .filter(|(m, _)| m.category() == cat)
            .map(|(_, n)| n)
            .sum()
    }

    /// Raw row-major array (row/col are 0-based here).
    #[must_use]
    pub fn as_array(&self) -> &[[u64; 6]; 6] {
        &self.counts
    }
}

impl std::fmt::Display for MotifMatrix {
    /// Render in the layout of Fig. 10: six rows of six counts.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "        col1        col2        col3        col4        col5        col6"
        )?;
        for r in 0..6 {
            write!(f, "row{}", r + 1)?;
            for c in 0..6 {
                write!(f, "{:>12}", self.counts[r][c])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Final result of a full 36-motif count: the canonical grid plus access
/// to the raw counters for diagnostics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MotifCounts {
    /// Canonical 6×6 grid.
    pub matrix: MotifMatrix,
    /// Raw star counter (per-center attribution).
    pub star: StarCounter,
    /// Raw pair counter (attribution depends on the producing algorithm).
    pub pair: PairCounter,
    /// Raw triangle counter (3× attribution).
    pub tri: TriCounter,
}

impl MotifCounts {
    /// Assemble from center-based counters (the FAST/HARE pipeline).
    #[must_use]
    pub fn from_center_counters(star: StarCounter, pair: PairCounter, tri: TriCounter) -> Self {
        let mut matrix = MotifMatrix::default();
        star.add_to_matrix(&mut matrix);
        pair.add_to_matrix_center_based(&mut matrix);
        tri.add_to_matrix(&mut matrix);
        MotifCounts {
            matrix,
            star,
            pair,
            tri,
        }
    }

    /// Count of one motif.
    #[inline]
    #[must_use]
    pub fn get(&self, m: Motif) -> u64 {
        self.matrix.get(m)
    }

    /// Total across all 36 motifs.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.matrix.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motif::m;
    use temporal_graph::Dir::{In, Out};

    #[test]
    fn star_counter_get_add_merge() {
        let mut a = StarCounter::default();
        a.add(StarType::I, In, Out, In, 3);
        assert_eq!(a.get(StarType::I, In, Out, In), 3);
        assert_eq!(a.get(StarType::II, In, Out, In), 0);
        let mut b = StarCounter::default();
        b.add(StarType::I, In, Out, In, 2);
        b.add(StarType::III, Out, Out, Out, 5);
        a.merge(&b);
        assert_eq!(a.get(StarType::I, In, Out, In), 5);
        assert_eq!(a.get(StarType::III, Out, Out, Out), 5);
        assert_eq!(a.total(), 10);
    }

    #[test]
    fn counters_subtract_what_was_added() {
        let mut s = StarCounter::default();
        s.add(StarType::II, Out, In, Out, 5);
        s.sub(StarType::II, Out, In, Out, 3);
        assert_eq!(s.get(StarType::II, Out, In, Out), 2);
        let mut p = PairCounter::default();
        p.add(In, In, Out, 4);
        p.sub(In, In, Out, 4);
        assert_eq!(p.total(), 0);
        let mut mx = MotifMatrix::default();
        mx.add(m(2, 6), 7);
        mx.sub(m(2, 6), 6);
        assert_eq!(mx.get(m(2, 6)), 1);
    }

    #[test]
    fn star_counter_folds_to_correct_cells() {
        let mut s = StarCounter::default();
        s.add(StarType::I, In, Out, In, 7);
        let mut mx = MotifMatrix::default();
        s.add_to_matrix(&mut mx);
        assert_eq!(mx.get(m(2, 4)), 7);
        assert_eq!(mx.total(), 7);
    }

    #[test]
    fn pair_counter_center_based_fold_halves() {
        let mut p = PairCounter::default();
        // A center-based count sees each instance from both endpoints.
        p.add(Out, Out, Out, 4);
        p.add(In, In, In, 4);
        let mut mx = MotifMatrix::default();
        p.add_to_matrix_center_based(&mut mx);
        assert_eq!(mx.get(m(5, 5)), 4);
        assert_eq!(mx.total(), 4);
    }

    #[test]
    fn pair_counter_pair_based_fold_sums() {
        let mut p = PairCounter::default();
        p.add(Out, In, Out, 2); // M65
        p.add(In, Out, In, 3); // M65 mirror — disjoint instances here
        let mut mx = MotifMatrix::default();
        p.add_to_matrix_pair_based(&mut mx);
        assert_eq!(mx.get(m(6, 5)), 5);
    }

    #[test]
    fn pair_mirror_balance_invariant() {
        let mut p = PairCounter::default();
        p.add(Out, In, Out, 2);
        assert!(!p.mirror_cells_balanced());
        p.add(In, Out, In, 2);
        assert!(p.mirror_cells_balanced());
    }

    #[test]
    fn tri_counter_fold_divides_by_three() {
        let mut t = TriCounter::default();
        // M25's three isomorphic cells (Fig. 8), one count each.
        t.add(TriType::I, Out, In, Out, 1);
        t.add(TriType::II, In, Out, In, 1);
        t.add(TriType::III, Out, In, Out, 1);
        assert!(t.class_cells_balanced());
        let mut mx = MotifMatrix::default();
        t.add_to_matrix(&mut mx);
        assert_eq!(mx.get(m(2, 5)), 1);
        assert_eq!(mx.total(), 1);
    }

    #[test]
    fn tri_class_balance_detects_mismatch() {
        let mut t = TriCounter::default();
        t.add(TriType::I, Out, In, Out, 2);
        t.add(TriType::II, In, Out, In, 1);
        assert!(!t.class_cells_balanced());
    }

    #[test]
    fn matrix_accessors_and_totals() {
        let mut mx = MotifMatrix::default();
        mx.set(m(1, 1), 5);
        mx.add(m(1, 1), 2);
        mx.add(m(5, 5), 1);
        mx.add(m(1, 5), 10);
        assert_eq!(mx.get(m(1, 1)), 7);
        assert_eq!(mx.total(), 18);
        assert_eq!(mx.category_total(MotifCategory::Star), 7);
        assert_eq!(mx.category_total(MotifCategory::Pair), 1);
        assert_eq!(mx.category_total(MotifCategory::Triangle), 10);
    }

    #[test]
    fn matrix_merge_and_display() {
        let mut a = MotifMatrix::default();
        a.add(m(3, 3), 1);
        let mut b = MotifMatrix::default();
        b.add(m(3, 3), 2);
        a.merge(&b);
        assert_eq!(a.get(m(3, 3)), 3);
        let shown = a.to_string();
        assert!(shown.contains("row3"));
        assert!(shown.lines().count() >= 7);
    }

    #[test]
    fn counter_iterators_visit_every_cell() {
        assert_eq!(StarCounter::default().iter().count(), 24);
        assert_eq!(PairCounter::default().iter().count(), 8);
        assert_eq!(TriCounter::default().iter().count(), 24);
        assert_eq!(MotifMatrix::default().iter().count(), 36);
    }

    #[test]
    fn motif_counts_assembly() {
        let mut star = StarCounter::default();
        star.add(StarType::I, Out, Out, Out, 2);
        let mut pair = PairCounter::default();
        pair.add(Out, Out, Out, 1);
        pair.add(In, In, In, 1);
        let mut tri = TriCounter::default();
        for (ty, di, dj, dk) in [
            (TriType::I, Out, Out, Out),
            (TriType::II, In, In, In),
            (TriType::III, Out, In, In),
        ] {
            tri.add(ty, di, dj, dk, 1);
        }
        let counts = MotifCounts::from_center_counters(star, pair, tri);
        assert_eq!(counts.get(m(1, 3)), 2); // star
        assert_eq!(counts.get(m(5, 5)), 1); // pair
        assert_eq!(counts.get(m(3, 5)), 1); // triangle (M35 class)
        assert_eq!(counts.total(), 4);
    }
}
