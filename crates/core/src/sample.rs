//! Approximate motif counting by interval sampling, with per-motif error
//! bounds.
//!
//! Exact FAST answers a whole-history query in one pass, but the
//! ROADMAP's serving scenario wants *interactive* answers on graphs where
//! even the fused scan is too slow. This module trades a controlled,
//! *quantified* amount of accuracy for speed, following the
//! interval-sampling framework of Liu–Benson–Charikar (*A sampling
//! framework for counting temporal motifs*) and the partition-sampling
//! estimators of Wang et al. (*Efficient sampling algorithms for
//! approximate temporal motif counting*):
//!
//! 1. partition the time axis into windows of length `c·δ`
//!    ([`temporal_graph::WindowSlices`]);
//! 2. keep each window independently with probability `p` (a
//!    deterministic per-window coin derived from the seed);
//! 3. run the **exact fused kernel** on every kept window, restricted to
//!    first-edge positions inside the window but free to read up to `δ`
//!    past its right boundary (the *boundary correction* — instances
//!    spanning a window edge are attributed to the window of their first
//!    edge and never truncated);
//! 4. rescale the summed counts by `1/p` into an unbiased per-motif
//!    estimate, with a variance estimate and a normal-approximation
//!    confidence interval per motif.
//!
//! Because step 3 partitions the exact computation (every unit of kernel
//! work belongs to exactly one window), `p = 1` degenerates to the exact
//! count **bit for bit**, and the estimator's expectation equals the
//! exact count for every `p`. The full derivation (unbiasedness,
//! variance, the boundary correction, and why triangle work may split
//! fractionally across two windows without breaking either property)
//! lives in `docs/ESTIMATORS.md`.
//!
//! ```
//! use hare::sample::{SampleConfig, SampledCounter};
//! use temporal_graph::gen::erdos_renyi_temporal;
//!
//! let g = erdos_renyi_temporal(50, 2_000, 20_000, 11);
//! let exact = hare::count_motifs(&g, 500);
//! let cfg = SampleConfig { prob: 1.0, ..SampleConfig::default() };
//! let est = SampledCounter::new(cfg).count(&g, 500);
//! // p = 1 samples every window: the estimate *is* the exact count.
//! assert_eq!(est.as_exact(), Some(exact.matrix));
//! ```
//!
//! hare-lint: no-alloc

use rayon::prelude::*;

use crate::counters::{MotifCounts, MotifMatrix, PairCounter, StarCounter, TriCounter};
use crate::motif::{pair_motif, star_motif, tri_motif, Motif, StarType, TriType};
use crate::scratch::with_thread_scratch;
use hare_obs::{NoopProbe, Phase, Probe};
use temporal_graph::{Dir, TemporalGraph, Timestamp, WindowSlices};

/// Configuration of the interval-sampling estimator.
#[derive(Debug, Clone)]
pub struct SampleConfig {
    /// Window keep probability `p` in `(0, 1]`. Expected speedup over
    /// exact counting approaches `1/p`; variance scales with `(1-p)/p`.
    pub prob: f64,
    /// Window length factor `c ≥ 1`: the time axis is cut into windows
    /// of length `c·δ`. Larger windows amortise the per-window boundary
    /// work but concentrate more count into each Bernoulli trial
    /// (raising variance on bursty graphs).
    pub window_factor: i64,
    /// Confidence level of the reported intervals, in `(0, 1)`
    /// (e.g. `0.95` for 95% normal-approximation intervals).
    pub confidence: f64,
    /// Seed of the per-window sampling coins. Two runs with the same
    /// seed keep exactly the same windows.
    pub seed: u64,
    /// Worker threads for the window-parallel driver: `1` counts
    /// sequentially, `0` uses all cores, `n` uses `n`. Results are
    /// bit-identical across thread counts.
    pub threads: usize,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            prob: 0.1,
            window_factor: 10,
            confidence: 0.95,
            seed: 0x5EED,
            threads: 1,
        }
    }
}

/// One motif's estimate with its error bounds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MotifEstimate {
    /// Unbiased point estimate of the motif count.
    pub estimate: f64,
    /// Estimated standard error of [`MotifEstimate::estimate`].
    pub stderr: f64,
    /// Lower bound of the confidence interval (clamped at 0 — counts
    /// are non-negative).
    pub ci_lo: f64,
    /// Upper bound of the confidence interval.
    pub ci_hi: f64,
}

impl MotifEstimate {
    /// `true` if the interval `[ci_lo, ci_hi]` contains `exact`.
    #[inline]
    #[must_use]
    pub fn covers(&self, exact: u64) -> bool {
        let x = exact as f64;
        self.ci_lo <= x && x <= self.ci_hi
    }
}

/// Result of one sampled counting run: 36 per-motif estimates plus the
/// run's sampling metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledCounts {
    cells: [[MotifEstimate; 6]; 6],
    exact: Option<MotifMatrix>,
    /// The window keep probability the run used.
    pub prob: f64,
    /// The confidence level of the per-motif intervals.
    pub confidence: f64,
    /// The motif window δ of the underlying count.
    pub delta: Timestamp,
    /// The sampling window length `c·δ` (clamped to at least 1).
    pub window_len: Timestamp,
    /// Number of windows tiling the graph's time span (including dead
    /// windows with no events).
    pub windows_total: usize,
    /// Number of kept windows that contained at least one event (the
    /// windows the kernel actually counted; kept-but-dead windows
    /// contribute nothing and are not tracked).
    pub windows_sampled: usize,
}

impl SampledCounts {
    /// The estimate of one motif.
    #[inline]
    #[must_use]
    pub fn get(&self, m: Motif) -> MotifEstimate {
        self.cells[m.row() as usize - 1][m.col() as usize - 1]
    }

    /// Iterate `(motif, estimate)` in the canonical row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Motif, MotifEstimate)> + '_ {
        Motif::all().map(move |m| (m, self.get(m)))
    }

    /// Sum of the point estimates over all 36 motifs.
    #[must_use]
    pub fn total_estimate(&self) -> f64 {
        self.iter().map(|(_, e)| e.estimate).sum()
    }

    /// The exact counts, available only when `p = 1` sampled every
    /// window (the degenerate configuration is bit-identical to
    /// [`crate::count_motifs`]).
    #[must_use]
    pub fn as_exact(&self) -> Option<MotifMatrix> {
        self.exact
    }

    /// Mean relative error of the point estimates against exact counts,
    /// over motifs whose exact count is non-zero (the metric used by the
    /// sampling papers).
    #[must_use]
    pub fn mean_relative_error(&self, exact: &MotifMatrix) -> f64 {
        let mut err = 0.0;
        let mut cells = 0usize;
        for (m, n) in exact.iter() {
            if n > 0 {
                err += (self.get(m).estimate - n as f64).abs() / n as f64;
                cells += 1;
            }
        }
        if cells == 0 {
            0.0
        } else {
            err / cells as f64
        }
    }

    /// Fraction of motifs with non-zero exact count whose confidence
    /// interval covers the exact value (1.0 when no motif has a
    /// non-zero count).
    #[must_use]
    pub fn covered_fraction(&self, exact: &MotifMatrix) -> f64 {
        let mut covered = 0usize;
        let mut cells = 0usize;
        for (m, n) in exact.iter() {
            if n > 0 {
                cells += 1;
                covered += usize::from(self.get(m).covers(n));
            }
        }
        if cells == 0 {
            1.0
        } else {
            covered as f64 / cells as f64
        }
    }
}

/// The interval-sampling estimator (one-shot). Construct with a
/// [`SampleConfig`], then [`SampledCounter::count`] any number of
/// graphs; each call makes fresh per-window coins from the same seed.
///
/// The parallel driver schedules *sampled windows* as the unit of work
/// — each window task borrows its worker's thread-local
/// [`crate::NeighborScratch`] (the same pool HARE's node tasks use) and
/// allocates nothing; partial results are reduced in window order, so
/// counts and intervals are bit-identical across thread counts.
#[derive(Debug, Clone, Default)]
pub struct SampledCounter {
    cfg: SampleConfig,
}

impl SampledCounter {
    /// Estimator with the given configuration.
    ///
    /// # Panics
    /// Panics if `prob` is outside `(0, 1]`, `window_factor < 1`, or
    /// `confidence` is outside `(0, 1)`.
    #[must_use]
    pub fn new(cfg: SampleConfig) -> SampledCounter {
        assert!(
            cfg.prob > 0.0 && cfg.prob <= 1.0,
            "sampling probability must be in (0, 1], got {}",
            cfg.prob
        );
        assert!(
            cfg.window_factor >= 1,
            "window factor must be at least 1, got {}",
            cfg.window_factor
        );
        assert!(
            cfg.confidence > 0.0 && cfg.confidence < 1.0,
            "confidence level must be in (0, 1), got {}",
            cfg.confidence
        );
        SampledCounter { cfg }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &SampleConfig {
        &self.cfg
    }

    /// Estimate all 36 motif counts of `g` at window `δ = delta`.
    ///
    /// Runs sequentially or window-parallel per
    /// [`SampleConfig::threads`]; both paths produce bit-identical
    /// results.
    #[must_use]
    pub fn count(&self, g: &TemporalGraph, delta: Timestamp) -> SampledCounts {
        self.count_probed(g, delta, &NoopProbe)
    }

    /// [`SampledCounter::count`] with a [`Probe`] observing the phase
    /// boundaries: [`Phase::Scan`] wraps the per-window tally drivers,
    /// [`Phase::Summarise`] wraps the deterministic reduction and CI
    /// construction. Estimates are bit-identical across probe
    /// implementations.
    #[must_use]
    pub fn count_probed<P: Probe>(
        &self,
        g: &TemporalGraph,
        delta: Timestamp,
        probe: &P,
    ) -> SampledCounts {
        let window_len = delta.max(0).saturating_mul(self.cfg.window_factor).max(1);
        let windows_total =
            temporal_graph::slices::scan_header(g, window_len).map_or(0, |(_, n)| n);
        let (seed, prob) = (self.cfg.seed, self.cfg.prob);

        // Per-window tallies, reduced in ascending window order on every
        // driver. Nothing here may scale with `windows_total`: a sparse
        // graph over a wide or fine-grained timestamp span has
        // astronomically more (dead) windows than events, so per-window
        // state is bounded by the run count instead. A dense slot table
        // is kept only when the window count is within a small multiple
        // of |E| — the common case, where it beats hashing.
        let dense = windows_total <= g.num_edges().saturating_mul(2).max(4096);
        let tallies: Vec<WindowTally> = probe.span(Phase::Scan, || {
            if self.effective_threads() <= 1 {
                if dense {
                    self.tally_sequential_dense(g, delta, window_len, windows_total)
                } else {
                    self.tally_sequential_sparse(g, delta, window_len)
                }
            } else {
                // Parallel: materialise the window-major index once (it is
                // sparse — O(runs)), then schedule one task per active kept
                // window; the rayon map keeps item (window) order.
                let slices = WindowSlices::build_filtered(g, window_len, |k| {
                    window_kept(seed, k as u64, prob)
                });
                // hare-lint: allow(alloc, reason = "per-estimate setup: one Vec of active window ids")
                let active: Vec<usize> = slices.active_windows().collect();
                rayon::ThreadPoolBuilder::new()
                    .num_threads(self.cfg.threads)
                    .build()
                    .expect("failed to build rayon thread pool")
                    .install(|| {
                        active
                            .into_par_iter()
                            .map(|k| tally_window(g, &slices, k, delta))
                            // hare-lint: allow(alloc, reason = "per-estimate result: one tally per sampled window")
                            .collect()
                    })
            }
        });
        probe.span(Phase::Summarise, || {
            self.summarise(delta, window_len, windows_total, &tallies)
        })
    }

    /// Deterministic reduction of per-window tallies into estimates,
    /// CIs, and (at `p = 1`) the exact grid — the [`Phase::Summarise`]
    /// half of [`SampledCounter::count_probed`].
    fn summarise(
        &self,
        delta: Timestamp,
        window_len: Timestamp,
        windows_total: usize,
        tallies: &[WindowTally],
    ) -> SampledCounts {
        let windows_sampled = tallies.iter().filter(|t| t.touched).count();

        // Deterministic reduction in window order: u64 flat totals for
        // the point estimates (and the p = 1 exact path), f64 sums of
        // squares for the variance.
        let tables = FoldTables::new();
        let mut total = WindowTally::default();
        let mut sum_sq = [0.0f64; 36];
        for t in tallies {
            if !t.touched {
                continue; // dead window: every cell is zero
            }
            total.merge(t);
            let x = fold_fractional(t, &tables);
            for (s, v) in sum_sq.iter_mut().zip(x) {
                *s += v * v;
            }
        }

        let p = self.cfg.prob;
        let z = normal_quantile(0.5 + self.cfg.confidence / 2.0);
        let base = fold_fractional(&total, &tables);
        let mut cells = [[MotifEstimate::default(); 6]; 6];
        for (i, cell) in cells.iter_mut().flatten().enumerate() {
            let estimate = base[i] / p;
            // Var[X̂] is estimated unbiasedly by (1-p)/p² · Σ xₖ² over the
            // kept windows (docs/ESTIMATORS.md, eq. V̂).
            let stderr = ((1.0 - p).max(0.0) / (p * p) * sum_sq[i]).sqrt();
            *cell = MotifEstimate {
                estimate,
                stderr,
                ci_lo: (estimate - z * stderr).max(0.0),
                ci_hi: estimate + z * stderr,
            };
        }

        // p = 1 kept every window, so the summed flats are exactly the
        // counters of a full exact run — fold them through the same path
        // `count_motifs` uses.
        let exact = (p >= 1.0).then(|| {
            let mut star = StarCounter::default();
            let mut pair = PairCounter::default();
            let mut tri = TriCounter::default();
            star.add_flat(&total.star);
            pair.add_flat(&total.pair);
            tri.add_flat(&total.tri);
            MotifCounts::from_center_counters(star, pair, tri).matrix
        });

        SampledCounts {
            cells,
            exact,
            prob: p,
            confidence: self.cfg.confidence,
            delta,
            window_len,
            windows_total,
            windows_sampled,
        }
    }

    /// Sequential driver, dense slot table: `slot_of[k]` maps every kept
    /// window to its rank among kept windows (ascending), so the tally
    /// vector comes out in window order with no sort. `O(windows_total)`
    /// memory — used only when that is bounded by a multiple of `|E|`.
    fn tally_sequential_dense(
        &self,
        g: &TemporalGraph,
        delta: Timestamp,
        window_len: Timestamp,
        windows_total: usize,
    ) -> Vec<WindowTally> {
        // hare-lint: allow(alloc, reason = "per-estimate setup: dense slot table, O(windows_total) once")
        let mut slot_of = vec![u32::MAX; windows_total];
        let mut kept = 0u32;
        for (k, slot) in slot_of.iter_mut().enumerate() {
            if window_kept(self.cfg.seed, k as u64, self.cfg.prob) {
                *slot = kept;
                kept += 1;
            }
        }
        // hare-lint: allow(alloc, reason = "per-estimate setup: one tally per kept window")
        let mut tallies: Vec<WindowTally> = (0..kept).map(|_| WindowTally::default()).collect();
        with_thread_scratch(g.num_nodes(), |scratch| {
            temporal_graph::slices::scan(g, window_len, |k, node, range| {
                let slot = slot_of[k];
                if slot != u32::MAX {
                    let t = &mut tallies[slot as usize];
                    t.touched = true;
                    crate::fused::count_node_all_into(
                        g,
                        node,
                        range,
                        delta,
                        scratch,
                        &mut t.star,
                        &mut t.pair,
                        &mut t.tri,
                    );
                }
            });
        });
        tallies
    }

    /// Sequential driver, sparse slots: the coin is flipped lazily for
    /// the windows the lane walk actually encounters and tally slots are
    /// assigned in discovery order, then re-sorted into ascending window
    /// order for the deterministic fold. `O(runs)` memory regardless of
    /// how many (dead) windows tile the span.
    fn tally_sequential_sparse(
        &self,
        g: &TemporalGraph,
        delta: Timestamp,
        window_len: Timestamp,
    ) -> Vec<WindowTally> {
        let mut slot_of: temporal_graph::util::FxHashMap<u64, u32> = Default::default();
        // hare-lint: allow(alloc, reason = "per-estimate setup: sparse tally list grows O(runs)")
        let mut tallies: Vec<(u64, WindowTally)> = Vec::new();
        with_thread_scratch(g.num_nodes(), |scratch| {
            temporal_graph::slices::scan(g, window_len, |k, node, range| {
                // The coin is a pure hash of (seed, k), so re-flipping it
                // per run is cheap and needs no memoisation.
                if !window_kept(self.cfg.seed, k as u64, self.cfg.prob) {
                    return;
                }
                let slot = *slot_of.entry(k as u64).or_insert_with(|| {
                    tallies.push((k as u64, WindowTally::default()));
                    (tallies.len() - 1) as u32
                });
                let t = &mut tallies[slot as usize].1;
                t.touched = true;
                crate::fused::count_node_all_into(
                    g,
                    node,
                    range,
                    delta,
                    scratch,
                    &mut t.star,
                    &mut t.pair,
                    &mut t.tri,
                );
            });
        });
        // Ascending window order, same as the other drivers.
        tallies.sort_unstable_by_key(|&(k, _)| k);
        // hare-lint: allow(alloc, reason = "per-estimate teardown: strips window keys from the tallies")
        tallies.into_iter().map(|(_, t)| t).collect()
    }

    fn effective_threads(&self) -> usize {
        if self.cfg.threads > 0 {
            self.cfg.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Raw fused-kernel output of one window: the flat accumulator layouts
/// of [`crate::counters`] (`ty·8 + d1·4 + d2·2 + d3` star/tri, `d1·4 +
/// d2·2 + d3` pair). Shared with the bounded-memory streaming estimator
/// ([`crate::stream_sample`]), whose per-tick fold is the same math.
#[derive(Default)]
pub(crate) struct WindowTally {
    pub(crate) star: [u64; 24],
    pub(crate) pair: [u64; 8],
    pub(crate) tri: [u64; 24],
    /// `false` means the window had no runs at all (bursty graphs leave
    /// most windows dead) — the fold skips it without reading the cells.
    pub(crate) touched: bool,
}

impl WindowTally {
    pub(crate) fn merge(&mut self, other: &WindowTally) {
        for (a, b) in self.star.iter_mut().zip(other.star) {
            *a += b;
        }
        for (a, b) in self.pair.iter_mut().zip(other.pair) {
            *a += b;
        }
        for (a, b) in self.tri.iter_mut().zip(other.tri) {
            *a += b;
        }
    }
}

/// Run the exact fused kernel over window `k`'s node slices, borrowing
/// the calling worker's thread-local scratch.
fn tally_window(
    g: &TemporalGraph,
    slices: &WindowSlices,
    k: usize,
    delta: Timestamp,
) -> WindowTally {
    let mut tally = WindowTally::default();
    with_thread_scratch(g.num_nodes(), |scratch| {
        for s in slices.slices_of(k) {
            tally.touched = true;
            crate::fused::count_node_all_into(
                g,
                s.node,
                s.range(),
                delta,
                scratch,
                &mut tally.star,
                &mut tally.pair,
                &mut tally.tri,
            );
        }
    });
    tally
}

/// The deterministic per-window keep/drop coin: a SplitMix64 hash of
/// `(seed, k)` compared against `p` in the unit interval. Windows are
/// decided independently, so any subset of windows can be tallied in
/// any order (or in parallel) without a shared RNG stream.
#[must_use]
pub fn window_kept(seed: u64, k: u64, prob: f64) -> bool {
    if prob >= 1.0 {
        return true;
    }
    // One shared SplitMix64 step (same definition as
    // `TemporalGraph::fingerprint`): state = seed, value = k spread by
    // the golden-ratio constant. Bit-identical to the historical inline
    // form, so seeded runs reproduce across versions.
    let x = temporal_graph::util::splitmix64_mix(seed, k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // Top 53 bits as a uniform double in [0, 1).
    ((x >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < prob
}

/// Row-major index of a motif in the flat `[_; 36]` arrays.
#[inline]
fn midx(m: Motif) -> usize {
    (m.row() as usize - 1) * 6 + (m.col() as usize - 1)
}

/// Precomputed flat-cell → motif-index maps, so the per-window fold is
/// ~56 indexed adds instead of three trips through the counter
/// iterators (the fold runs once per sampled window — at small `c` that
/// is the per-window constant that would eat the sampling speedup).
pub(crate) struct FoldTables {
    star: [usize; 24],
    pair: [usize; 8],
    tri: [usize; 24],
}

impl FoldTables {
    pub(crate) fn new() -> FoldTables {
        let dir = |bit: usize| if bit == 0 { Dir::Out } else { Dir::In };
        let mut t = FoldTables {
            star: [0; 24],
            pair: [0; 8],
            tri: [0; 24],
        };
        for i in 0..24 {
            // Flat layout `ty·8 + d1·4 + d2·2 + d3` (see `add_flat`).
            let (ty, d1, d2, d3) = (i >> 3, (i >> 2) & 1, (i >> 1) & 1, i & 1);
            t.star[i] = midx(star_motif(StarType::ALL[ty], dir(d1), dir(d2), dir(d3)));
            t.tri[i] = midx(tri_motif(TriType::ALL[ty], dir(d1), dir(d2), dir(d3)));
        }
        for i in 0..8 {
            let (d1, d2, d3) = ((i >> 2) & 1, (i >> 1) & 1, i & 1);
            t.pair[i] = midx(pair_motif(dir(d1), dir(d2), dir(d3)));
        }
        t
    }
}

/// Fold one window's flat accumulators into fractional per-motif values:
/// star cells map 1:1, pair mirror cells halve (both endpoints of a pair
/// instance see the same first edge, hence the same window — asserted in
/// debug builds), triangle class cells third (a triangle's three
/// per-center counts may split 2 + 1 across two windows, making thirds
/// the honest per-window attribution).
pub(crate) fn fold_fractional(t: &WindowTally, tables: &FoldTables) -> [f64; 36] {
    let mut out = [0.0f64; 36];
    for (i, &n) in t.star.iter().enumerate() {
        out[tables.star[i]] += n as f64;
    }
    for i in 0..4 {
        // `i` has d1 = Out; `i ^ 0b111` is the all-flipped mirror cell.
        // Both hold the same value (debug-asserted), so the halved sum
        // is an exact integer.
        let both = t.pair[i] + t.pair[i ^ 0b111];
        debug_assert_eq!(
            t.pair[i],
            t.pair[i ^ 0b111],
            "pair mirror cells must balance within a window"
        );
        out[tables.pair[i]] += (both / 2) as f64;
    }
    let mut tri_sums = [0u64; 36];
    for (i, &n) in t.tri.iter().enumerate() {
        tri_sums[tables.tri[i]] += n;
    }
    for (o, s) in out.iter_mut().zip(tri_sums) {
        if s > 0 {
            *o += s as f64 / 3.0;
        }
    }
    out
}

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |ε| < 1.2e-9 — far below the sampling noise it is paired with).
pub(crate) fn normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_graph::gen::{erdos_renyi_temporal, hub_burst, paper_fig1_toy, GenConfig};

    fn cfg(prob: f64, seed: u64) -> SampleConfig {
        SampleConfig {
            prob,
            window_factor: 4,
            seed,
            ..SampleConfig::default()
        }
    }

    #[test]
    fn p_one_is_bit_identical_to_exact_fast() {
        for (g, delta) in [
            (paper_fig1_toy(), 10),
            (erdos_renyi_temporal(25, 600, 900, 3), 150),
            (hub_burst(30, 1_500, 8_000, 9), 800),
        ] {
            let exact = crate::count_motifs(&g, delta);
            let est = SampledCounter::new(cfg(1.0, 7)).count(&g, delta);
            assert_eq!(est.as_exact(), Some(exact.matrix));
            for (m, e) in est.iter() {
                assert_eq!(e.estimate, exact.get(m) as f64, "{m}");
                assert_eq!(e.stderr, 0.0, "{m}");
                assert_eq!((e.ci_lo, e.ci_hi), (e.estimate, e.estimate), "{m}");
            }
        }
    }

    #[test]
    fn sampled_runs_hide_exact_matrix() {
        let g = erdos_renyi_temporal(25, 600, 900, 3);
        let est = SampledCounter::new(cfg(0.5, 1)).count(&g, 150);
        assert_eq!(est.as_exact(), None);
    }

    #[test]
    fn parallel_driver_is_bit_identical_to_sequential() {
        let g = GenConfig {
            nodes: 80,
            edges: 3_000,
            zipf_exponent: 1.1,
            seed: 12,
            ..GenConfig::default()
        }
        .generate();
        let delta = 20_000;
        for prob in [0.3, 0.7, 1.0] {
            let seq = SampledCounter::new(SampleConfig {
                threads: 1,
                ..cfg(prob, 21)
            })
            .count(&g, delta);
            for threads in [2, 4] {
                let par = SampledCounter::new(SampleConfig {
                    threads,
                    ..cfg(prob, 21)
                })
                .count(&g, delta);
                assert_eq!(par, seq, "threads={threads} prob={prob}");
            }
        }
    }

    #[test]
    fn estimator_is_unbiased_over_seeds() {
        let g = GenConfig {
            nodes: 60,
            edges: 4_000,
            time_span: 80_000,
            mean_burst_len: 2.5,
            seed: 2,
            ..GenConfig::default()
        }
        .generate();
        let delta = 800;
        let exact = crate::count_motifs(&g, delta);
        let runs = 60;
        let mean: f64 = (0..runs)
            .map(|seed| {
                SampledCounter::new(cfg(0.4, seed))
                    .count(&g, delta)
                    .total_estimate()
            })
            .sum::<f64>()
            / runs as f64;
        let exact_total = exact.total() as f64;
        let rel = (mean - exact_total).abs() / exact_total;
        assert!(
            rel < 0.1,
            "mean of estimates {mean:.1} drifts from exact {exact_total:.1} (rel {rel:.3})"
        );
    }

    #[test]
    fn coin_matches_probability_and_is_deterministic() {
        let kept = (0..10_000).filter(|&k| window_kept(99, k, 0.3)).count();
        assert!((2_700..=3_300).contains(&kept), "kept {kept} of 10000");
        for k in 0..100 {
            assert_eq!(window_kept(5, k, 0.5), window_kept(5, k, 0.5));
        }
        assert!(window_kept(5, 3, 1.0));
    }

    #[test]
    fn sparse_span_uses_bounded_memory_and_matches_dense_semantics() {
        // Two event clusters separated by ~10^14 time units: the window
        // grid has ~10^10 windows at this δ, so anything O(windows)
        // would OOM — the sparse driver must finish instantly and still
        // count the clusters exactly at p = 1.
        let mut edges = Vec::new();
        for i in 0..40u32 {
            edges.push(temporal_graph::TemporalEdge::new(
                i % 5,
                (i + 1) % 5,
                i64::from(i),
            ));
            edges.push(temporal_graph::TemporalEdge::new(
                i % 5,
                (i + 2) % 5,
                100_000_000_000_000 + i64::from(i),
            ));
        }
        let g = TemporalGraph::from_edges(edges);
        let delta = 10;
        let exact = crate::count_motifs(&g, delta);
        let est = SampledCounter::new(SampleConfig {
            prob: 1.0,
            window_factor: 2,
            ..SampleConfig::default()
        })
        .count(&g, delta);
        assert!(est.windows_total > 1_000_000_000);
        assert!(est.windows_sampled <= 80, "bounded by active windows");
        assert_eq!(est.as_exact(), Some(exact.matrix));

        // And the sparse sequential driver agrees bit-for-bit with the
        // (also sparse) parallel one at p < 1.
        let cfg = SampleConfig {
            prob: 0.6,
            window_factor: 2,
            seed: 9,
            ..SampleConfig::default()
        };
        let seq = SampledCounter::new(SampleConfig {
            threads: 1,
            ..cfg.clone()
        })
        .count(&g, delta);
        let par = SampledCounter::new(SampleConfig { threads: 3, ..cfg }).count(&g, delta);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_graph_yields_empty_estimate() {
        let g = TemporalGraph::from_edges(vec![]);
        let est = SampledCounter::new(cfg(0.5, 1)).count(&g, 100);
        assert_eq!(est.windows_total, 0);
        assert_eq!(est.total_estimate(), 0.0);
        let exact = SampledCounter::new(cfg(1.0, 1)).count(&g, 100);
        assert_eq!(exact.as_exact(), Some(MotifMatrix::default()));
    }

    #[test]
    fn normal_quantile_hits_known_values() {
        for (p, z) in [(0.975, 1.959_964), (0.995, 2.575_829), (0.9, 1.281_552)] {
            assert!((normal_quantile(p) - z).abs() < 1e-5, "p={p}");
            assert!((normal_quantile(1.0 - p) + z).abs() < 1e-5, "p={p} tail");
        }
        assert!(normal_quantile(0.5).abs() < 1e-9);
        // The extreme-tail branch.
        assert!((normal_quantile(0.001) + 3.090_232).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn zero_probability_is_rejected() {
        let _ = SampledCounter::new(cfg(0.0, 1));
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn bad_confidence_is_rejected() {
        let _ = SampledCounter::new(SampleConfig {
            confidence: 1.0,
            ..cfg(0.5, 1)
        });
    }
}
