//! Per-node motif participation profiles.
//!
//! The paper's introduction motivates motif counting with network
//! representation learning: motif statistics "capture local high-order
//! network structures" and feed node embeddings (refs 10–13 of the paper). This
//! module exposes that use case directly: a 36-dimensional motif profile
//! per node, computed with the same FAST kernels (and in parallel with
//! the same guarantees as HARE).
//!
//! Attribution semantics (documented, deliberate):
//! * **star** instances are attributed to their unique center node;
//! * **pair** instances are attributed to both endpoints;
//! * **triangle** instances are attributed to all three vertices (the
//!   raw per-center view of FAST-Tri, without the global ÷3 fold).
//!
//! Summing profile column `M` over all nodes therefore yields
//! `1×` (stars), `2×` (pairs) or `3×` (triangles) the global count —
//! an invariant the tests pin down.

use rayon::prelude::*;

use crate::counters::{MotifMatrix, PairCounter, StarCounter, TriCounter};
use crate::fast_star::count_node_star_pair;
use crate::fast_tri::count_node_tri;
use crate::motif::{Motif, MotifCategory};
use crate::scratch::NeighborScratch;
use temporal_graph::{NodeId, TemporalGraph, Timestamp};

/// A node's 36-dimensional motif participation profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeProfile {
    counts: [u64; 36],
}

impl Default for NodeProfile {
    fn default() -> Self {
        NodeProfile { counts: [0; 36] }
    }
}

impl NodeProfile {
    /// Participation count for one motif.
    #[inline]
    #[must_use]
    pub fn get(&self, m: Motif) -> u64 {
        self.counts[(m.row() as usize - 1) * 6 + (m.col() as usize - 1)]
    }

    /// Total participation across all motifs.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The profile as an ordered 36-vector (row-major over the grid) —
    /// the feature vector used by embedding pipelines.
    #[must_use]
    pub fn as_vector(&self) -> [u64; 36] {
        self.counts
    }

    /// L1-normalised feature vector (graphs of different sizes become
    /// comparable).
    #[must_use]
    pub fn normalised(&self) -> [f64; 36] {
        let total = self.total().max(1) as f64;
        let mut out = [0.0; 36];
        for (o, &c) in out.iter_mut().zip(self.counts.iter()) {
            *o = c as f64 / total;
        }
        out
    }

    fn absorb(&mut self, mx: &MotifMatrix) {
        for (m, n) in mx.iter() {
            self.counts[(m.row() as usize - 1) * 6 + (m.col() as usize - 1)] += n;
        }
    }
}

/// Compute the motif profile of every node. `num_threads = 0` uses all
/// cores. Memory: 288 bytes per node.
#[must_use]
pub fn node_profiles(g: &TemporalGraph, delta: Timestamp, num_threads: usize) -> Vec<NodeProfile> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(num_threads)
        .build()
        .expect("rayon pool");
    let nodes: Vec<NodeId> = g.node_ids().collect();
    pool.install(|| {
        nodes
            .par_chunks(256)
            .map(|chunk| {
                let mut scratch = NeighborScratch::new(g.num_nodes());
                chunk
                    .iter()
                    .map(|&u| profile_of(g, u, delta, &mut scratch))
                    .collect::<Vec<_>>()
            })
            .flatten()
            .collect()
    })
}

/// Compute one node's profile (sequential; `scratch` sized to the graph).
#[must_use]
pub fn profile_of(
    g: &TemporalGraph,
    u: NodeId,
    delta: Timestamp,
    scratch: &mut NeighborScratch,
) -> NodeProfile {
    let mut star = StarCounter::default();
    let mut pair = PairCounter::default();
    let mut tri = TriCounter::default();
    count_node_star_pair(g, u, delta, scratch, &mut star, &mut pair);
    count_node_tri(g, u, delta, &mut tri);

    let mut profile = NodeProfile::default();
    let mut mx = MotifMatrix::default();
    star.add_to_matrix(&mut mx);
    profile.absorb(&mx);

    // Pairs: attribute this endpoint's view directly (no mirror halving —
    // the other endpoint gets its own attribution).
    let mut mx = MotifMatrix::default();
    pair.add_to_matrix_pair_based(&mut mx);
    profile.absorb(&mx);

    // Triangles: raw per-center attribution (no ÷3).
    let mut mx = MotifMatrix::default();
    for (ty, di, dj, dk, n) in tri.iter() {
        mx.add(crate::motif::tri_motif(ty, di, dj, dk), n);
    }
    profile.absorb(&mx);
    profile
}

/// Sum of all profiles, expressed per category multiplicity — used to
/// reconcile profiles with the global grid (stars 1×, pairs 2×,
/// triangles 3×).
#[must_use]
pub fn profile_sum(profiles: &[NodeProfile]) -> NodeProfile {
    let mut out = NodeProfile::default();
    for p in profiles {
        for (o, &c) in out.counts.iter_mut().zip(p.counts.iter()) {
            *o += c;
        }
    }
    out
}

/// Multiplicity of a motif's attribution (how many nodes own each
/// instance in the profile view).
#[must_use]
pub fn attribution_multiplicity(m: Motif) -> u64 {
    match m.category() {
        MotifCategory::Star => 1,
        MotifCategory::Pair => 2,
        MotifCategory::Triangle => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_graph::gen::{erdos_renyi_temporal, paper_fig1_toy};

    #[test]
    fn profiles_reconcile_with_global_counts() {
        let g = erdos_renyi_temporal(20, 400, 600, 9);
        let delta = 150;
        let profiles = node_profiles(&g, delta, 2);
        assert_eq!(profiles.len(), g.num_nodes());
        let sum = profile_sum(&profiles);
        let global = crate::count_motifs(&g, delta);
        for m in Motif::all() {
            assert_eq!(
                sum.get(m),
                global.get(m) * attribution_multiplicity(m),
                "{m}"
            );
        }
    }

    #[test]
    fn toy_graph_center_attribution() {
        // Node v_a is the center of the M63 instance named in §III.
        let g = paper_fig1_toy();
        let profiles = node_profiles(&g, 10, 1);
        assert!(profiles[0].get(crate::motif::m(6, 3)) >= 1);
        // The M65 pair instance is attributed to both v_d and v_e.
        assert_eq!(profiles[3].get(crate::motif::m(6, 5)), 1);
        assert_eq!(profiles[4].get(crate::motif::m(6, 5)), 1);
    }

    #[test]
    fn thread_count_does_not_change_profiles() {
        let g = erdos_renyi_temporal(15, 300, 400, 2);
        let a = node_profiles(&g, 100, 1);
        let b = node_profiles(&g, 100, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn normalised_vectors_sum_to_one() {
        let g = paper_fig1_toy();
        let profiles = node_profiles(&g, 10, 1);
        for p in &profiles {
            if p.total() > 0 {
                let s: f64 = p.normalised().iter().sum();
                assert!((s - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn empty_graph_profiles() {
        let g = temporal_graph::TemporalGraph::from_edges(vec![]);
        assert!(node_profiles(&g, 10, 2).is_empty());
    }
}
