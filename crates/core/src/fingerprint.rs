//! Per-node motif participation profiles.
//!
//! The paper's introduction motivates motif counting with network
//! representation learning: motif statistics "capture local high-order
//! network structures" and feed node embeddings (refs 10–13 of the paper). This
//! module exposes that use case directly: a 36-dimensional motif profile
//! per node, computed with the fused single-scan FAST kernel
//! ([`crate::fused`]) — **one** δ-window pass per center node fills a
//! node's star, pair and triangle participation at once — and in
//! parallel with the same bit-identity guarantees as HARE.
//!
//! Attribution semantics (documented, deliberate):
//! * **star** instances are attributed to their unique center node;
//! * **pair** instances are attributed to both endpoints;
//! * **triangle** instances are attributed to all three vertices (the
//!   raw per-center view of FAST-Tri, without the global ÷3 fold).
//!
//! Summing profile column `M` over all nodes therefore yields
//! `1×` (stars), `2×` (pairs) or `3×` (triangles) the global count —
//! an invariant the tests pin down. These are exactly the per-center
//! views the fused kernel accumulates, which is why attribution is a
//! fold of its flat accumulators rather than a second algorithm: the
//! star cells of `count_node_all_into(g, u, ..)` are the stars centered
//! at `u`, the pair cells are `u`'s endpoint view, and the triangle
//! cells are `u`'s per-center instance view.
//!
//! The pre-fusion per-kernel path (separate [`crate::fast_star`] and
//! [`crate::fast_tri`] drives per node) is kept as
//! [`profile_of_separate`] — the differential reference the
//! `local_profiles` suite pins the fused path against, bit for bit.
//!
//! On top of the raw profiles sit the serving-facing analytics: a
//! sparse whole-graph collection ([`NodeProfiles`]), top-k nodes per
//! motif ([`top_k_nodes`]) and per-node z-score ranking against the
//! graph-wide profile distribution ([`ProfileDistribution`],
//! [`rank_by_zscore`]) — all with deterministic node-id tie-breaks.

use rayon::prelude::*;

use crate::counters::{MotifMatrix, PairCounter, StarCounter, TriCounter};
use crate::fast_star::count_node_star_pair;
use crate::fast_tri::count_node_tri;
use crate::motif::{Motif, MotifCategory};
use crate::scratch::NeighborScratch;
use temporal_graph::{NodeId, TemporalGraph, Timestamp};

/// A node's 36-dimensional motif participation profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeProfile {
    counts: [u64; 36],
}

impl Default for NodeProfile {
    fn default() -> Self {
        NodeProfile { counts: [0; 36] }
    }
}

impl NodeProfile {
    /// Participation count for one motif.
    #[inline]
    #[must_use]
    pub fn get(&self, m: Motif) -> u64 {
        self.counts[(m.row() as usize - 1) * 6 + (m.col() as usize - 1)]
    }

    /// Total participation across all motifs.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `true` if the node participates in no motif instance at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// The profile as an ordered 36-vector (row-major over the grid) —
    /// the feature vector used by embedding pipelines.
    #[must_use]
    pub fn as_vector(&self) -> [u64; 36] {
        self.counts
    }

    /// Iterate `(motif, count)` in canonical row-major grid order over
    /// all 36 cells (including zeros; filter for sparse views).
    pub fn iter(&self) -> impl Iterator<Item = (Motif, u64)> + '_ {
        Motif::all().zip(self.counts.iter().copied())
    }

    /// L1-normalised feature vector (graphs of different sizes become
    /// comparable).
    #[must_use]
    pub fn normalised(&self) -> [f64; 36] {
        let total = self.total().max(1) as f64;
        let mut out = [0.0; 36];
        for (o, &c) in out.iter_mut().zip(self.counts.iter()) {
            *o = c as f64 / total;
        }
        out
    }

    fn absorb(&mut self, mx: &MotifMatrix) {
        for (m, n) in mx.iter() {
            self.counts[(m.row() as usize - 1) * 6 + (m.col() as usize - 1)] += n;
        }
    }

    /// Element-wise accumulate (the out-of-core driver folds one chunk's
    /// per-node attribution at a time; u64 addition is commutative, so
    /// chunked accumulation is bit-identical to one whole-graph fold).
    pub(crate) fn merge_from(&mut self, other: &NodeProfile) {
        for (o, &c) in self.counts.iter_mut().zip(other.counts.iter()) {
            *o += c;
        }
    }
}

/// Fold one node's per-center counters into its attribution profile.
/// Shared by the fused and the per-kernel path: bit-identity of the two
/// paths reduces to bit-identity of the kernels (which `fused.rs` pins).
pub(crate) fn fold_counters(
    star: &StarCounter,
    pair: &PairCounter,
    tri: &TriCounter,
) -> NodeProfile {
    let mut profile = NodeProfile::default();
    let mut mx = MotifMatrix::default();
    star.add_to_matrix(&mut mx);
    profile.absorb(&mx);

    // Pairs: attribute this endpoint's view directly (no mirror halving —
    // the other endpoint gets its own attribution).
    let mut mx = MotifMatrix::default();
    pair.add_to_matrix_pair_based(&mut mx);
    profile.absorb(&mx);

    // Triangles: raw per-center attribution (no ÷3).
    let mut mx = MotifMatrix::default();
    for (ty, di, dj, dk, n) in tri.iter() {
        mx.add(crate::motif::tri_motif(ty, di, dj, dk), n);
    }
    profile.absorb(&mx);
    profile
}

/// Compute one node's profile with the fused kernel: ONE δ-window scan
/// of `S_u` fills the star, pair and triangle participation at once
/// (`scratch` sized to the graph).
#[must_use]
pub fn profile_of(
    g: &TemporalGraph,
    u: NodeId,
    delta: Timestamp,
    scratch: &mut NeighborScratch,
) -> NodeProfile {
    let mut star_acc = [0u64; 24];
    let mut pair_acc = [0u64; 8];
    let mut tri_acc = [0u64; 24];
    let len = g.node_events(u).len();
    if len >= 2 {
        crate::fused::count_node_all_into(
            g,
            u,
            0..len,
            delta,
            scratch,
            &mut star_acc,
            &mut pair_acc,
            &mut tri_acc,
        );
    }
    let mut star = StarCounter::default();
    let mut pair = PairCounter::default();
    let mut tri = TriCounter::default();
    star.add_flat(&star_acc);
    pair.add_flat(&pair_acc);
    tri.add_flat(&tri_acc);
    fold_counters(&star, &pair, &tri)
}

/// Compute one node's profile with the pre-fusion per-kernel drives
/// (separate star/pair and triangle scans). Kept as the differential
/// reference for the fused path; `tests/local_profiles.rs` pins
/// `profile_of == profile_of_separate` bit for bit on arbitrary graphs.
#[must_use]
pub fn profile_of_separate(
    g: &TemporalGraph,
    u: NodeId,
    delta: Timestamp,
    scratch: &mut NeighborScratch,
) -> NodeProfile {
    let mut star = StarCounter::default();
    let mut pair = PairCounter::default();
    let mut tri = TriCounter::default();
    count_node_star_pair(g, u, delta, scratch, &mut star, &mut pair);
    count_node_tri(g, u, delta, &mut tri);
    fold_counters(&star, &pair, &tri)
}

/// Compute the motif profile of every node (dense). `num_threads = 0`
/// uses all cores. Memory: 288 bytes per node.
///
/// The parallel driver is HARE's chunked model: fixed 256-node chunks
/// over ascending node ids, each chunk counted independently with
/// thread-local scratch and collected *in chunk order* — so the result
/// is bit-identical across thread counts (pinned by tests).
#[must_use]
pub fn node_profiles(g: &TemporalGraph, delta: Timestamp, num_threads: usize) -> Vec<NodeProfile> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(num_threads)
        .build()
        .expect("rayon pool");
    let nodes: Vec<NodeId> = g.node_ids().collect();
    pool.install(|| {
        nodes
            .par_chunks(256)
            .map(|chunk| {
                let mut scratch = NeighborScratch::new(g.num_nodes());
                chunk
                    .iter()
                    .map(|&u| profile_of(g, u, delta, &mut scratch))
                    .collect::<Vec<_>>()
            })
            .flatten()
            .collect()
    })
}

/// Sparse whole-graph profile collection: only the nodes that
/// participate in at least one motif instance, in ascending node id.
///
/// This is the serving-side representation — on real workloads most
/// nodes never complete a 3-edge motif within δ, so the dense
/// `Vec<NodeProfile>` wastes both memory and wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeProfiles {
    entries: Vec<(NodeId, NodeProfile)>,
    num_nodes: usize,
}

impl NodeProfiles {
    /// Compute the sparse per-node profiles of the whole graph with the
    /// fused kernel. `num_threads = 0` uses all cores; results are
    /// bit-identical across thread counts (same chunked driver as
    /// [`node_profiles`], with zero rows dropped chunk-locally).
    #[must_use]
    pub fn compute(g: &TemporalGraph, delta: Timestamp, num_threads: usize) -> NodeProfiles {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(num_threads)
            .build()
            .expect("rayon pool");
        let nodes: Vec<NodeId> = g.node_ids().collect();
        let entries = pool.install(|| {
            nodes
                .par_chunks(256)
                .map(|chunk| {
                    let mut scratch = NeighborScratch::new(g.num_nodes());
                    chunk
                        .iter()
                        .filter_map(|&u| {
                            let p = profile_of(g, u, delta, &mut scratch);
                            (!p.is_empty()).then_some((u, p))
                        })
                        .collect::<Vec<_>>()
                })
                .flatten()
                .collect()
        });
        NodeProfiles {
            entries,
            num_nodes: g.num_nodes(),
        }
    }

    /// Assemble from pre-computed sparse rows (ascending node id) — the
    /// out-of-core driver's exit point.
    pub(crate) fn from_entries(
        entries: Vec<(NodeId, NodeProfile)>,
        num_nodes: usize,
    ) -> NodeProfiles {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        NodeProfiles { entries, num_nodes }
    }

    /// The profile of `u`: `None` when the node participates in no
    /// instance (its profile is the zero vector) or the id is out of
    /// range.
    #[must_use]
    pub fn get(&self, u: NodeId) -> Option<&NodeProfile> {
        self.entries
            .binary_search_by_key(&u, |&(id, _)| id)
            .ok()
            .and_then(|i| self.entries.get(i))
            .map(|(_, p)| p)
    }

    /// Iterate `(node, profile)` in ascending node id.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NodeProfile)> + '_ {
        self.entries.iter().map(|(id, p)| (*id, p))
    }

    /// Number of participating nodes (nonzero profiles).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no node participates in any instance.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total node count of the underlying graph (participating or not) —
    /// the population size of the z-score distribution.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }
}

/// Sum of all profiles, expressed per category multiplicity — used to
/// reconcile profiles with the global grid (stars 1×, pairs 2×,
/// triangles 3×).
#[must_use]
pub fn profile_sum(profiles: &[NodeProfile]) -> NodeProfile {
    let mut out = NodeProfile::default();
    for p in profiles {
        for (o, &c) in out.counts.iter_mut().zip(p.counts.iter()) {
            *o += c;
        }
    }
    out
}

/// Multiplicity of a motif's attribution (how many nodes own each
/// instance in the profile view).
#[must_use]
pub fn attribution_multiplicity(m: Motif) -> u64 {
    match m.category() {
        MotifCategory::Star => 1,
        MotifCategory::Pair => 2,
        MotifCategory::Triangle => 3,
    }
}

/// The `k` nodes with the highest participation in motif `m`, as
/// `(node, count)` — count descending, ties broken by ascending node id
/// (fully deterministic). Nodes with a zero count for `m` never appear,
/// so fewer than `k` rows can come back.
#[must_use]
pub fn top_k_nodes(profiles: &NodeProfiles, m: Motif, k: usize) -> Vec<(NodeId, u64)> {
    let mut ranked: Vec<(NodeId, u64)> = profiles
        .iter()
        .filter_map(|(u, p)| {
            let c = p.get(m);
            (c > 0).then_some((u, c))
        })
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

/// Graph-wide per-motif distribution of node participation counts:
/// mean and standard deviation over **all** nodes of the graph
/// (non-participating nodes contribute zero vectors — anomaly is
/// relative to the typical node, not the typical participant).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDistribution {
    mean: [f64; 36],
    std: [f64; 36],
    /// Population size (the graph's node count).
    num_nodes: usize,
}

impl ProfileDistribution {
    /// Compute the population mean/std of every motif column. Sums run
    /// in ascending node id, so the floats are deterministic.
    #[must_use]
    pub fn compute(profiles: &NodeProfiles) -> ProfileDistribution {
        let n = profiles.num_nodes().max(1) as f64;
        let mut sum = [0.0f64; 36];
        let mut sumsq = [0.0f64; 36];
        for (_, p) in profiles.iter() {
            for (i, &c) in p.counts.iter().enumerate() {
                let x = c as f64;
                sum[i] += x;
                sumsq[i] += x * x;
            }
        }
        let mut mean = [0.0f64; 36];
        let mut std = [0.0f64; 36];
        for i in 0..36 {
            mean[i] = sum[i] / n;
            // Population variance; clamp the E[x²]−mean² form at zero
            // against floating-point cancellation.
            std[i] = (sumsq[i] / n - mean[i] * mean[i]).max(0.0).sqrt();
        }
        ProfileDistribution {
            mean,
            std,
            num_nodes: profiles.num_nodes(),
        }
    }

    /// Per-motif z-scores of one profile against this distribution
    /// (row-major 36-vector; columns with zero variance score 0).
    #[must_use]
    pub fn z_scores(&self, p: &NodeProfile) -> [f64; 36] {
        let mut out = [0.0f64; 36];
        for (i, z) in out.iter_mut().enumerate() {
            if self.std[i] > 0.0 {
                *z = (p.counts[i] as f64 - self.mean[i]) / self.std[i];
            }
        }
        out
    }

    /// A node's scalar anomaly score: the L2 norm of its z-score
    /// vector. Large when any motif column deviates far from the
    /// graph-wide typical node.
    #[must_use]
    pub fn anomaly_score(&self, p: &NodeProfile) -> f64 {
        self.z_scores(p).iter().map(|z| z * z).sum::<f64>().sqrt()
    }

    /// Population size the distribution was computed over.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }
}

/// The `k` most anomalous participating nodes as `(node, score)`:
/// z-score-norm descending (total float order), ties broken by
/// ascending node id. Non-participating nodes are excluded — they all
/// share the identical zero-vector score and carry no signal.
#[must_use]
pub fn rank_by_zscore(
    profiles: &NodeProfiles,
    dist: &ProfileDistribution,
    k: usize,
) -> Vec<(NodeId, f64)> {
    let mut ranked: Vec<(NodeId, f64)> = profiles
        .iter()
        .map(|(u, p)| (u, dist.anomaly_score(p)))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motif::m;
    use temporal_graph::gen::{erdos_renyi_temporal, hub_burst, paper_fig1_toy};

    #[test]
    fn profiles_reconcile_with_global_counts() {
        let g = erdos_renyi_temporal(20, 400, 600, 9);
        let delta = 150;
        let profiles = node_profiles(&g, delta, 2);
        assert_eq!(profiles.len(), g.num_nodes());
        let sum = profile_sum(&profiles);
        let global = crate::count_motifs(&g, delta);
        for m in Motif::all() {
            assert_eq!(
                sum.get(m),
                global.get(m) * attribution_multiplicity(m),
                "{m}"
            );
        }
    }

    #[test]
    fn fused_path_matches_separate_kernels() {
        let g = hub_burst(30, 1_200, 6_000, 3);
        let delta = 500;
        let mut scratch = NeighborScratch::new(g.num_nodes());
        for u in g.node_ids() {
            assert_eq!(
                profile_of(&g, u, delta, &mut scratch),
                profile_of_separate(&g, u, delta, &mut scratch),
                "node {u}"
            );
        }
    }

    #[test]
    fn toy_graph_center_attribution() {
        // Node v_a is the center of the M63 instance named in §III.
        let g = paper_fig1_toy();
        let profiles = node_profiles(&g, 10, 1);
        assert!(profiles[0].get(crate::motif::m(6, 3)) >= 1);
        // The M65 pair instance is attributed to both v_d and v_e.
        assert_eq!(profiles[3].get(crate::motif::m(6, 5)), 1);
        assert_eq!(profiles[4].get(crate::motif::m(6, 5)), 1);
    }

    #[test]
    fn thread_count_does_not_change_profiles() {
        let g = erdos_renyi_temporal(15, 300, 400, 2);
        let a = node_profiles(&g, 100, 1);
        let b = node_profiles(&g, 100, 4);
        assert_eq!(a, b);
        let sa = NodeProfiles::compute(&g, 100, 1);
        let sb = NodeProfiles::compute(&g, 100, 4);
        assert_eq!(sa, sb);
    }

    #[test]
    fn sparse_profiles_match_dense_nonzero_rows() {
        let g = paper_fig1_toy();
        let dense = node_profiles(&g, 10, 1);
        let sparse = NodeProfiles::compute(&g, 10, 1);
        assert_eq!(sparse.num_nodes(), g.num_nodes());
        let expect: Vec<(NodeId, NodeProfile)> = dense
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(|(u, p)| (u as NodeId, *p))
            .collect();
        let got: Vec<(NodeId, NodeProfile)> = sparse.iter().map(|(u, p)| (u, *p)).collect();
        assert_eq!(got, expect);
        for (u, p) in &expect {
            assert_eq!(sparse.get(*u), Some(p));
        }
        assert!(sparse.get(u32::MAX).is_none());
    }

    #[test]
    fn top_k_breaks_ties_by_node_id() {
        // The M65 pair is attributed to v_d (3) and v_e (4) with equal
        // count 1: the tie must resolve to the lower id first.
        let g = paper_fig1_toy();
        let sparse = NodeProfiles::compute(&g, 10, 1);
        let ranked = top_k_nodes(&sparse, m(6, 5), 10);
        assert_eq!(ranked, vec![(3, 1), (4, 1)]);
        // k truncates.
        assert_eq!(top_k_nodes(&sparse, m(6, 5), 1), vec![(3, 1)]);
        // A motif nobody participates in yields an empty ranking.
        assert!(top_k_nodes(&sparse, m(1, 1), 10).is_empty());
    }

    #[test]
    fn zscore_ranking_is_deterministic_and_sane() {
        let g = erdos_renyi_temporal(20, 400, 600, 9);
        let sparse = NodeProfiles::compute(&g, 150, 2);
        let dist = ProfileDistribution::compute(&sparse);
        assert_eq!(dist.num_nodes(), g.num_nodes());
        let a = rank_by_zscore(&sparse, &dist, 5);
        let b = rank_by_zscore(&sparse, &dist, 5);
        assert_eq!(a, b);
        // Scores are finite, non-negative and descending.
        for w in a.windows(2) {
            assert!(w[0].1 >= w[1].1, "{a:?}");
        }
        for (_, s) in &a {
            assert!(s.is_finite() && *s >= 0.0);
        }
    }

    #[test]
    fn zero_variance_columns_score_zero() {
        // Empty graph: every column has zero variance, so any profile
        // z-scores to the zero vector instead of NaN/inf.
        let g = temporal_graph::TemporalGraph::from_edges(vec![]);
        let sparse = NodeProfiles::compute(&g, 10, 1);
        let dist = ProfileDistribution::compute(&sparse);
        let p = NodeProfile::default();
        assert_eq!(dist.z_scores(&p), [0.0; 36]);
        assert_eq!(dist.anomaly_score(&p), 0.0);
    }

    #[test]
    fn normalised_vectors_sum_to_one() {
        let g = paper_fig1_toy();
        let profiles = node_profiles(&g, 10, 1);
        for p in &profiles {
            if p.total() > 0 {
                let s: f64 = p.normalised().iter().sum();
                assert!((s - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn empty_graph_profiles() {
        let g = temporal_graph::TemporalGraph::from_edges(vec![]);
        assert!(node_profiles(&g, 10, 2).is_empty());
        assert!(NodeProfiles::compute(&g, 10, 2).is_empty());
    }
}
