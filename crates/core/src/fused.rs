//! The fused FAST kernel: star, pair **and** triangle counting in one
//! window scan per center node.
//!
//! Algorithms 1 and 2 enumerate exactly the same `(e_i, e_j)` pairs of
//! `S_u` — a first edge and a later edge within δ — and differ only in
//! what they do per pair: Algorithm 1 answers second-edge queries from
//! the [`NeighborScratch`] counters, Algorithm 2 probes the pair edge
//! list `E(v, w)`. Running them as two passes scans every node sequence
//! (and re-derives every δ-window bound) twice. This kernel performs both
//! in a single scan:
//!
//! * one traversal of the SoA timestamp lane per first edge, sharing the
//!   `t ≤ t_1 + δ` window bound and the scratch population between the
//!   star/pair and triangle updates;
//! * flat per-node accumulators (`[u64; 24]` star, `[u64; 8]` pair,
//!   `[u64; 24]` triangle) with `(d1, d3)`-hoisted offsets instead of
//!   per-step indexed counter calls, folded into the shared counters
//!   once per call;
//! * branch-free triangle type classification (two total-order
//!   comparisons summed).
//!
//! Counter addition is commutative, so the fused kernel is bit-identical
//! to running [`crate::fast_star`] and [`crate::fast_tri`] separately —
//! asserted by the tests below and by the differential suites.
//!
//! hare-lint: no-alloc

use crate::counters::{PairCounter, StarCounter, TriCounter};
use crate::scratch::NeighborScratch;
use hare_obs::{NoopProbe, Phase, Probe};
use temporal_graph::{NodeId, TemporalGraph, Timestamp, TsLane, TsRead};

/// Count star, pair and triangle motifs centered at `u` in one scan,
/// restricted to first-edge positions `first_edge_range` within `S_u`
/// (the full range fuses Algorithms 1 and 2; sub-ranges are HARE's
/// intra-node parallel unit).
///
/// `scratch` must cover the graph's node count; it is reset internally.
#[allow(clippy::too_many_arguments)] // mirrors the two kernels it fuses
pub fn count_node_all_range(
    g: &TemporalGraph,
    u: NodeId,
    first_edge_range: std::ops::Range<usize>,
    delta: Timestamp,
    scratch: &mut NeighborScratch,
    star: &mut StarCounter,
    pair: &mut PairCounter,
    tri: &mut TriCounter,
) {
    let mut star_acc = [0u64; 24];
    let mut pair_acc = [0u64; 8];
    let mut tri_acc = [0u64; 24];
    count_node_all_into(
        g,
        u,
        first_edge_range,
        delta,
        scratch,
        &mut star_acc,
        &mut pair_acc,
        &mut tri_acc,
    );
    star.add_flat(&star_acc);
    pair.add_flat(&pair_acc);
    tri.add_flat(&tri_acc);
}

/// The fused scan proper, accumulating into caller-owned flat arrays so
/// whole-graph drivers (and the sampling engine's per-window tasks) can
/// fold into the shared counters once per run instead of once per node.
#[allow(clippy::too_many_arguments)]
pub(crate) fn count_node_all_into(
    g: &TemporalGraph,
    u: NodeId,
    first_edge_range: std::ops::Range<usize>,
    delta: Timestamp,
    scratch: &mut NeighborScratch,
    star_acc: &mut [u64; 24],
    pair_acc: &mut [u64; 8],
    tri_acc: &mut [u64; 24],
) {
    // One layout dispatch per node; the generic scan monomorphises so the
    // raw path compiles to plain slice indexing and the compressed path
    // inlines the O(1) bit-unpack.
    let s = g.node_events(u);
    match s.ts_lane() {
        TsLane::Raw(ts) => fused_scan(
            g,
            &s,
            ts,
            first_edge_range,
            delta,
            scratch,
            star_acc,
            pair_acc,
            tri_acc,
        ),
        TsLane::Packed(p) => fused_scan(
            g,
            &s,
            p,
            first_edge_range,
            delta,
            scratch,
            star_acc,
            pair_acc,
            tri_acc,
        ),
    }
}

/// The fused scan proper, generic over the timestamp lane representation.
///
/// The window upper bound `t_hi = t_1 + δ` is non-decreasing in `i`, so
/// its end position `j_end` is maintained by a monotone two-pointer
/// advance instead of a per-`j` compare-and-break: the inner loops below
/// run over `i+1..j_end` with a hoisted trip count, which keeps them
/// branch-minimal and auto-vectorisation-friendly, and makes the window
/// bound derivation O(2|E|) amortised per node instead of O(Σ window²).
#[allow(clippy::too_many_arguments)]
fn fused_scan<T: TsRead>(
    g: &TemporalGraph,
    s: &temporal_graph::NodeEvents<'_>,
    ts: T,
    first_edge_range: std::ops::Range<usize>,
    delta: Timestamp,
    scratch: &mut NeighborScratch,
    star_acc: &mut [u64; 24],
    pair_acc: &mut [u64; 8],
    tri_acc: &mut [u64; 24],
) {
    let packed = s.packed_lane();
    let eids = s.edge_lane();
    let pairs = g.pairs();
    let n_events = ts.len();
    debug_assert!(first_edge_range.end <= n_events);

    let mut j_end = first_edge_range.start;
    for i in first_edge_range {
        let t1 = ts.at(i);
        let t_hi = t1.saturating_add(delta);
        if j_end <= i {
            j_end = i + 1;
        }
        while j_end < n_events && ts.at(j_end) <= t_hi {
            j_end += 1;
        }
        // Empty δ-window: nothing can complete — skip all setup. Bursty
        // real graphs leave most windows empty at paper-scale δ.
        if i + 1 >= j_end {
            continue;
        }
        let p1 = packed[i];
        let v = p1 >> 1;
        let d1 = (p1 & 1) as usize;
        let b1 = d1 << 2; // d1·4, hoisted over the window
                          // Edge ids are chronological ranks under the global (t, input
                          // position) total order, so bare id compares replace (t, edge)
                          // tuple compares everywhere below.
        let e1_id = eids[i];
        // v's neighbour signature: one register test rejects the frequent
        // wedges with no closing edge before any hash probe.
        let bloom_v = pairs.bloom_of(v);
        scratch.reset();
        let mut n = [0u64; 2];
        // v's in-window counts, tracked in registers: v is fixed for the
        // whole window, so events to v never touch the scratch array at
        // all and the Star-III read is free.
        let mut cv = [0u64; 2];
        // One-entry pair-list memo: bursty sequences hit the same far
        // endpoint in runs, making consecutive probes of E(v, w) free.
        let mut memo_w = u32::MAX;
        let mut memo_evs: &[temporal_graph::PairEvent] = &[];

        for j in i + 1..j_end {
            let p3 = packed[j];
            let w = p3 >> 1;
            let d3 = (p3 & 1) as usize;
            let base = b1 | d3; // d1·4 + d3; d2 contributes ·2

            if w == v {
                // Pair motifs + Star-II (second edge elsewhere). No
                // triangle can span (u, v, v).
                pair_acc[base] += cv[0];
                pair_acc[base | 2] += cv[1];
                star_acc[8 + base] += n[0] - cv[0];
                star_acc[8 + (base | 2)] += n[1] - cv[1];
                cv[d3] += 1;
            } else {
                // Star-I (second edge at w) + Star-III (second edge at v).
                let cw = scratch.get(w);
                star_acc[base] += cw[0];
                star_acc[base | 2] += cw[1];
                star_acc[16 + base] += cv[0];
                star_acc[16 + (base | 2)] += cv[1];

                // Triangles: opposite edges from E(v, w) inside the
                // [t_j − δ, t_i + δ] window (Algorithm 2's trick). The
                // bloom test is an exact negative for unconnected pairs.
                if temporal_graph::PairIndex::bloom_may_connect(bloom_v, w) {
                    if w != memo_w {
                        memo_w = w;
                        memo_evs = pairs.events_between(v, w);
                    }
                    let evs = memo_evs;
                    if !evs.is_empty() {
                        let dk_flip = usize::from(v >= w);
                        let tbase = b1 | (d3 << 1); // di·4 + dj·2
                        let ej_id = eids[j];
                        let t_lo = ts.at(j).saturating_sub(delta);
                        let start = evs.partition_point(|p| p.t < t_lo);
                        for p in &evs[start..] {
                            if p.t > t_hi {
                                break;
                            }
                            let dk = p.dir_from_lo.index() ^ dk_flip;
                            let ty = usize::from(p.edge >= e1_id) + usize::from(p.edge >= ej_id);
                            tri_acc[(ty << 3) | tbase | dk] += 1;
                        }
                    }
                }

                scratch.bump(w, d3);
            }

            n[d3] += 1;
        }
    }
}

/// Count star, pair and triangle motifs centered at `u` over the whole
/// of `S_u` with the fused kernel.
pub fn count_node_all(
    g: &TemporalGraph,
    u: NodeId,
    delta: Timestamp,
    scratch: &mut NeighborScratch,
    star: &mut StarCounter,
    pair: &mut PairCounter,
    tri: &mut TriCounter,
) {
    let len = g.node_events(u).len();
    count_node_all_range(g, u, 0..len, delta, scratch, star, pair, tri);
}

/// Sequential fused FAST over the whole graph: one scan per node filling
/// all three counters (the single-threaded hot path behind
/// [`crate::count_motifs`]). Flat accumulators live for the whole run
/// and are folded into the counter structures exactly once.
#[must_use]
pub fn fused_all(g: &TemporalGraph, delta: Timestamp) -> (StarCounter, PairCounter, TriCounter) {
    fused_all_probed(g, delta, &NoopProbe)
}

/// [`fused_all`] with a [`Probe`] observing its phase boundaries:
/// [`Phase::Scan`] wraps the per-node window scans, [`Phase::Fold`]
/// wraps the flat-accumulator fold. With [`NoopProbe`] this
/// monomorphizes to exactly [`fused_all`] — counts are bit-identical
/// across probe implementations by construction.
#[must_use]
pub fn fused_all_probed<P: Probe>(
    g: &TemporalGraph,
    delta: Timestamp,
    probe: &P,
) -> (StarCounter, PairCounter, TriCounter) {
    let mut star_acc = [0u64; 24];
    let mut pair_acc = [0u64; 8];
    let mut tri_acc = [0u64; 24];
    probe.span(Phase::Scan, || {
        crate::scratch::with_thread_scratch(g.num_nodes(), |scratch| {
            for u in g.node_ids() {
                let len = g.node_events(u).len();
                if len < 2 {
                    continue; // no (e1, e3) window can open
                }
                count_node_all_into(
                    g,
                    u,
                    0..len,
                    delta,
                    scratch,
                    &mut star_acc,
                    &mut pair_acc,
                    &mut tri_acc,
                );
            }
        });
    });
    probe.span(Phase::Fold, || {
        let mut star = StarCounter::default();
        let mut pair = PairCounter::default();
        let mut tri = TriCounter::default();
        star.add_flat(&star_acc);
        pair.add_flat(&pair_acc);
        tri.add_flat(&tri_acc);
        (star, pair, tri)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast_star::fast_star;
    use crate::fast_tri::fast_tri;
    use temporal_graph::gen::{erdos_renyi_temporal, hub_burst, paper_fig1_toy, GenConfig};

    #[test]
    fn fused_equals_separate_passes_on_toy() {
        let g = paper_fig1_toy();
        for delta in [0, 5, 10, 50] {
            let (star, pair) = fast_star(&g, delta);
            let tri = fast_tri(&g, delta);
            let (fstar, fpair, ftri) = fused_all(&g, delta);
            assert_eq!(fstar, star, "delta={delta}");
            assert_eq!(fpair, pair, "delta={delta}");
            assert_eq!(ftri, tri, "delta={delta}");
        }
    }

    #[test]
    fn fused_equals_separate_passes_on_random_graphs() {
        for seed in 0..4 {
            let g = erdos_renyi_temporal(25, 600, 800, seed);
            let delta = 150;
            let (star, pair) = fast_star(&g, delta);
            let tri = fast_tri(&g, delta);
            let (fstar, fpair, ftri) = fused_all(&g, delta);
            assert_eq!(fstar, star, "seed={seed}");
            assert_eq!(fpair, pair, "seed={seed}");
            assert_eq!(ftri, tri, "seed={seed}");
        }
    }

    #[test]
    fn fused_equals_separate_passes_on_skewed_graph() {
        let g = GenConfig {
            nodes: 80,
            edges: 2_000,
            zipf_exponent: 1.2,
            seed: 5,
            ..GenConfig::default()
        }
        .generate();
        let delta = 20_000;
        let (star, pair) = fast_star(&g, delta);
        let tri = fast_tri(&g, delta);
        let (fstar, fpair, ftri) = fused_all(&g, delta);
        assert_eq!(fstar, star);
        assert_eq!(fpair, pair);
        assert_eq!(ftri, tri);
    }

    #[test]
    fn fused_range_split_equals_full_run() {
        let g = hub_burst(30, 1_500, 8_000, 9);
        let delta = 800;
        let (full_star, full_pair, full_tri) = fused_all(&g, delta);

        let mut scratch = NeighborScratch::new(g.num_nodes());
        let mut star = StarCounter::default();
        let mut pair = PairCounter::default();
        let mut tri = TriCounter::default();
        for u in g.node_ids() {
            let len = g.node_events(u).len();
            let third = len / 3;
            for range in [0..third, third..len] {
                count_node_all_range(
                    &g,
                    u,
                    range,
                    delta,
                    &mut scratch,
                    &mut star,
                    &mut pair,
                    &mut tri,
                );
            }
        }
        assert_eq!(star, full_star);
        assert_eq!(pair, full_pair);
        assert_eq!(tri, full_tri);
    }

    #[test]
    fn fused_empty_and_tiny_graphs() {
        for edges in [vec![], vec![temporal_graph::TemporalEdge::new(0, 1, 1)]] {
            let g = temporal_graph::TemporalGraph::from_edges(edges);
            let (star, pair, tri) = fused_all(&g, 100);
            assert_eq!(star.total() + pair.total() + tri.total(), 0);
        }
    }
}
