//! Out-of-core counting: exact motif counts and node profiles for
//! graphs whose event lanes do not fit in RAM.
//!
//! The driver never materialises the whole graph. It plans timestamp
//! cuts against an [`EdgeSource`]'s time index, then for each chunk
//! `[lo, hi)`:
//!
//! 1. loads the δ-**haloed** edge range `[lo − δ, hi + δ)` — the halo is
//!    two-sided because the fused kernel's triangle probe reads pair
//!    events in `[t_j − δ, t_1 + δ]`, which for a first edge at
//!    `t_1 ∈ [lo, hi)` can reach δ before the chunk and δ after it;
//! 2. builds an ordinary in-RAM [`TemporalGraph`] over the halo (local
//!    edge ids are order-isomorphic to the global chronological ranks,
//!    so the kernel's bare-id triangle classification is preserved);
//! 3. runs the fused kernel with first-edge positions restricted to
//!    `t_1 ∈ [lo, hi)` — chunks partition the timestamp axis half-open,
//!    so every `(e_1, …)` contribution group is counted exactly once,
//!    with timestamp ties never straddling a cut.
//!
//! Counter addition is commutative, so the chunked accumulation is
//! **bit-identical** to the in-RAM [`crate::count_motifs`] /
//! [`NodeProfiles::compute`] — pinned by the tests below and the
//! `lane_ooc_equivalence` differential suite.
//!
//! Chunk sizing: a binary search over the cut timestamp finds the
//! largest `hi` whose haloed edge count keeps the resident lane arenas
//! (at [`LANE_BYTES_PER_EDGE`] per edge) within the caller's byte
//! budget, degrading to minimum progress (`hi = lo + 1`) when even one
//! time unit exceeds it. Budgets only bound the *lane arenas*; the
//! per-node scratch and (for profiles) the dense profile accumulator
//! remain O(|V|) resident, like every other driver in the crate.

use std::io;

use crate::counters::{MotifCounts, PairCounter, StarCounter, TriCounter};
use crate::fingerprint::{fold_counters, NodeProfile, NodeProfiles};
use crate::scratch::NeighborScratch;
use hare_obs::{NoopProbe, Phase, Probe};
use temporal_graph::ooc::LaneFile;
use temporal_graph::{LaneLayout, TemporalEdge, TemporalGraph, Timestamp};

/// Resident lane bytes per temporal edge in a raw-layout chunk graph:
/// every edge spawns two events, each holding an 8-byte timestamp, a
/// 4-byte packed neighbour word and a 4-byte edge id.
pub const LANE_BYTES_PER_EDGE: usize = 2 * (8 + 4 + 4);

/// A chronological edge stream the out-of-core driver can plan cuts
/// against and load time ranges from. Implementations must present the
/// same `(t, position)` total order everywhere.
pub trait EdgeSource {
    /// Node id space (`max id + 1`) of the stream.
    fn num_nodes(&self) -> usize;
    /// Total number of edges.
    fn num_edges(&self) -> u64;
    /// Earliest timestamp, or `None` when empty.
    fn min_time(&self) -> Option<Timestamp>;
    /// Latest timestamp, or `None` when empty.
    fn max_time(&self) -> Option<Timestamp>;
    /// Number of edges with timestamp strictly before `t`.
    fn count_until(&self, t: Timestamp) -> io::Result<u64>;
    /// All edges with timestamp in `[lo, hi)`, in stream order.
    fn load_range(&self, lo: Timestamp, hi: Timestamp) -> io::Result<Vec<TemporalEdge>>;
}

/// An in-RAM chronological edge slice as an [`EdgeSource`] — the
/// differential reference for the file-backed source, and the path the
/// CLI uses to honour `--chunk-budget` on datasets it already loaded.
#[derive(Debug, Clone)]
pub struct InMemorySource {
    num_nodes: usize,
    edges: Vec<TemporalEdge>,
}

impl InMemorySource {
    /// Wrap a chronologically sorted, self-loop-free edge list.
    ///
    /// # Panics
    /// Panics if the edges are not sorted by timestamp.
    #[must_use]
    pub fn new(num_nodes: usize, edges: Vec<TemporalEdge>) -> InMemorySource {
        assert!(
            edges.windows(2).all(|w| w[0].t <= w[1].t),
            "edges must be sorted by timestamp"
        );
        InMemorySource { num_nodes, edges }
    }

    /// View an already-built graph's edge stream (shares its total
    /// order, so out-of-core results are bit-identical to counting `g`
    /// directly).
    #[must_use]
    pub fn from_graph(g: &TemporalGraph) -> InMemorySource {
        InMemorySource {
            num_nodes: g.num_nodes(),
            edges: g.edges().to_vec(),
        }
    }
}

impl EdgeSource for InMemorySource {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    fn min_time(&self) -> Option<Timestamp> {
        self.edges.first().map(|e| e.t)
    }

    fn max_time(&self) -> Option<Timestamp> {
        self.edges.last().map(|e| e.t)
    }

    fn count_until(&self, t: Timestamp) -> io::Result<u64> {
        Ok(self.edges.partition_point(|e| e.t < t) as u64)
    }

    fn load_range(&self, lo: Timestamp, hi: Timestamp) -> io::Result<Vec<TemporalEdge>> {
        if lo >= hi {
            return Ok(Vec::new());
        }
        let a = self.edges.partition_point(|e| e.t < lo);
        let b = self.edges.partition_point(|e| e.t < hi);
        Ok(self.edges[a..b].to_vec())
    }
}

/// A `HARELG01` lane file ([`temporal_graph::ooc::LaneFile`]) as an
/// [`EdgeSource`]: only the block index stays resident; edge ranges are
/// `pread` off disk per chunk.
#[derive(Debug)]
pub struct LaneFileSource {
    file: LaneFile,
}

impl LaneFileSource {
    /// Open a lane file as an edge source.
    pub fn open(path: &std::path::Path) -> io::Result<LaneFileSource> {
        Ok(LaneFileSource {
            file: LaneFile::open(path)?,
        })
    }

    /// Wrap an already-open lane file.
    #[must_use]
    pub fn from_file(file: LaneFile) -> LaneFileSource {
        LaneFileSource { file }
    }
}

impl EdgeSource for LaneFileSource {
    fn num_nodes(&self) -> usize {
        self.file.num_nodes()
    }

    fn num_edges(&self) -> u64 {
        self.file.num_edges()
    }

    fn min_time(&self) -> Option<Timestamp> {
        self.file.min_time()
    }

    fn max_time(&self) -> Option<Timestamp> {
        self.file.max_time()
    }

    fn count_until(&self, t: Timestamp) -> io::Result<u64> {
        self.file.count_until(t)
    }

    fn load_range(&self, lo: Timestamp, hi: Timestamp) -> io::Result<Vec<TemporalEdge>> {
        self.file.load_range(lo, hi)
    }
}

/// Tuning of one out-of-core run.
#[derive(Debug, Clone, Copy)]
pub struct OocConfig {
    /// Motif window δ.
    pub delta: Timestamp,
    /// Upper bound on the resident lane arenas of any one chunk graph,
    /// in bytes ([`LANE_BYTES_PER_EDGE`] per haloed edge under the raw
    /// layout; the compressed layout typically lands well under it).
    pub budget_bytes: usize,
    /// Timestamp-lane layout of the chunk graphs.
    pub lane_layout: LaneLayout,
}

impl OocConfig {
    /// Config with the given δ and lane budget, raw layout.
    #[must_use]
    pub fn new(delta: Timestamp, budget_bytes: usize) -> OocConfig {
        OocConfig {
            delta,
            budget_bytes,
            lane_layout: LaneLayout::Raw,
        }
    }
}

/// What one out-of-core run did — the proof obligations of the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OocStats {
    /// Number of chunk graphs built and scanned.
    pub chunks: usize,
    /// Largest resident lane arena across all chunks, in bytes.
    pub peak_resident_lane_bytes: usize,
    /// The budget the run was planned against.
    pub budget_bytes: usize,
    /// Cuts where even the minimum-progress chunk (`hi = lo + 1`) plus
    /// its δ-halo exceeded the budget and the driver proceeded anyway
    /// (exactness is never traded for the budget). Zero means the peak
    /// stayed under budget by construction.
    pub forced_cuts: usize,
}

/// Find the largest cut `hi ∈ (lo, max_t + 1]` whose haloed edge mass
/// fits the budget, or `lo + 1` (minimum progress, `forced = true`)
/// when none does.
fn plan_cut(
    src: &impl EdgeSource,
    lo: Timestamp,
    max_t: Timestamp,
    delta: Timestamp,
    budget_bytes: usize,
) -> io::Result<(Timestamp, bool)> {
    let base = src.count_until(lo.saturating_sub(delta))?;
    let fits = |edges: u64| -> bool {
        (edges as u128) * (LANE_BYTES_PER_EDGE as u128) <= budget_bytes as u128
    };
    let mut a = lo.saturating_add(1);
    let mut b = max_t.saturating_add(1);
    if fits(src.count_until(b.saturating_add(delta))? - base) {
        return Ok((b, false));
    }
    if !fits(src.count_until(a.saturating_add(delta))? - base) {
        return Ok((a, true));
    }
    // Largest feasible hi in [a, b); i128 midpoints avoid overflow on
    // full-span timestamp ranges.
    while a < b {
        let mid = ((i128::from(a) + i128::from(b) + 1) / 2) as Timestamp;
        if fits(src.count_until(mid.saturating_add(delta))? - base) {
            a = mid;
        } else {
            b = mid - 1;
        }
    }
    Ok((a, false))
}

/// Drive `per_chunk` over the planned chunk graphs. `per_chunk` gets the
/// chunk graph plus the `[lo, hi)` first-edge time range it owns.
fn drive_chunks<P: Probe>(
    src: &impl EdgeSource,
    config: OocConfig,
    probe: &P,
    mut per_chunk: impl FnMut(&TemporalGraph, Timestamp, Timestamp),
) -> io::Result<OocStats> {
    let mut stats = OocStats {
        chunks: 0,
        peak_resident_lane_bytes: 0,
        budget_bytes: config.budget_bytes,
        forced_cuts: 0,
    };
    let (Some(min_t), Some(max_t)) = (src.min_time(), src.max_time()) else {
        return Ok(stats);
    };
    let mut lo = min_t;
    loop {
        let (hi, forced) = plan_cut(src, lo, max_t, config.delta, config.budget_bytes)?;
        stats.forced_cuts += usize::from(forced);
        let g = probe.span(Phase::ChunkLoad, || -> io::Result<TemporalGraph> {
            let halo = src.load_range(
                lo.saturating_sub(config.delta),
                hi.saturating_add(config.delta),
            )?;
            Ok(
                TemporalGraph::from_chronological_edges(src.num_nodes(), halo)
                    .into_lane_layout(config.lane_layout),
            )
        })?;
        stats.chunks += 1;
        stats.peak_resident_lane_bytes =
            stats.peak_resident_lane_bytes.max(g.resident_lane_bytes());
        probe.span(Phase::Scan, || per_chunk(&g, lo, hi));
        if hi > max_t {
            return Ok(stats);
        }
        lo = hi;
    }
}

/// Per-node first-edge position range owned by chunk `[lo, hi)`.
fn owned_range(
    g: &TemporalGraph,
    u: temporal_graph::NodeId,
    lo: Timestamp,
    hi: Timestamp,
) -> std::ops::Range<usize> {
    let ts = g.node_events(u).ts_lane();
    ts.partition_point(|t| t < lo)..ts.partition_point(|t| t < hi)
}

/// Exact whole-graph motif counts computed out of core. Bit-identical
/// to [`crate::count_motifs`] over the same edge stream, for any budget
/// and either lane layout.
pub fn count_motifs_ooc(
    src: &impl EdgeSource,
    config: OocConfig,
) -> io::Result<(MotifCounts, OocStats)> {
    count_motifs_ooc_probed(src, config, &NoopProbe)
}

/// [`count_motifs_ooc`] with a [`Probe`] observing the phase
/// boundaries: [`Phase::ChunkLoad`] wraps each chunk's load + arena
/// build, [`Phase::Scan`] wraps its kernel pass, [`Phase::Fold`] wraps
/// the final counter fold. Counts and stats are bit-identical across
/// probe implementations.
pub fn count_motifs_ooc_probed<P: Probe>(
    src: &impl EdgeSource,
    config: OocConfig,
    probe: &P,
) -> io::Result<(MotifCounts, OocStats)> {
    let mut star_acc = [0u64; 24];
    let mut pair_acc = [0u64; 8];
    let mut tri_acc = [0u64; 24];
    let mut scratch = NeighborScratch::new(src.num_nodes());
    let stats = drive_chunks(src, config, probe, |g, lo, hi| {
        for u in g.node_ids() {
            if g.node_events(u).len() < 2 {
                continue;
            }
            let range = owned_range(g, u, lo, hi);
            if range.is_empty() {
                continue;
            }
            crate::fused::count_node_all_into(
                g,
                u,
                range,
                config.delta,
                &mut scratch,
                &mut star_acc,
                &mut pair_acc,
                &mut tri_acc,
            );
        }
    })?;
    let counts = probe.span(Phase::Fold, || {
        let mut star = StarCounter::default();
        let mut pair = PairCounter::default();
        let mut tri = TriCounter::default();
        star.add_flat(&star_acc);
        pair.add_flat(&pair_acc);
        tri.add_flat(&tri_acc);
        MotifCounts::from_center_counters(star, pair, tri)
    });
    Ok((counts, stats))
}

/// Sparse per-node motif profiles computed out of core. Bit-identical
/// to [`NodeProfiles::compute`] over the same edge stream. Keeps a dense
/// 288-byte accumulator per node resident (the node space must fit in
/// RAM — the same assumption every scratch-based kernel makes); only
/// the *edge* lanes are budget-bounded.
pub fn node_profiles_ooc(
    src: &impl EdgeSource,
    config: OocConfig,
) -> io::Result<(NodeProfiles, OocStats)> {
    let num_nodes = src.num_nodes();
    let mut dense: Vec<NodeProfile> = vec![NodeProfile::default(); num_nodes];
    let mut scratch = NeighborScratch::new(num_nodes);
    let stats = drive_chunks(src, config, &NoopProbe, |g, lo, hi| {
        for u in g.node_ids() {
            if g.node_events(u).len() < 2 {
                continue;
            }
            let range = owned_range(g, u, lo, hi);
            if range.is_empty() {
                continue;
            }
            let mut star_acc = [0u64; 24];
            let mut pair_acc = [0u64; 8];
            let mut tri_acc = [0u64; 24];
            crate::fused::count_node_all_into(
                g,
                u,
                range,
                config.delta,
                &mut scratch,
                &mut star_acc,
                &mut pair_acc,
                &mut tri_acc,
            );
            let mut star = StarCounter::default();
            let mut pair = PairCounter::default();
            let mut tri = TriCounter::default();
            star.add_flat(&star_acc);
            pair.add_flat(&pair_acc);
            tri.add_flat(&tri_acc);
            dense[u as usize].merge_from(&fold_counters(&star, &pair, &tri));
        }
    })?;
    let entries = dense
        .into_iter()
        .enumerate()
        .filter(|(_, p)| !p.is_empty())
        .map(|(u, p)| (u as temporal_graph::NodeId, p))
        .collect();
    Ok((NodeProfiles::from_entries(entries, num_nodes), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_graph::gen::{erdos_renyi_temporal, hub_burst, paper_fig1_toy, GenConfig};
    use temporal_graph::ooc::write_lane_file;

    fn budgets_for(g: &TemporalGraph) -> [usize; 3] {
        let full = g.num_edges() * LANE_BYTES_PER_EDGE;
        [full / 7 + 1, full / 2 + 1, 2 * full + 1]
    }

    #[test]
    fn in_memory_chunked_counts_match_in_ram() {
        for (g, delta) in [
            (paper_fig1_toy(), 10),
            (erdos_renyi_temporal(25, 600, 800, 3), 150),
            (hub_burst(30, 1_500, 8_000, 9), 800),
        ] {
            let want = crate::count_motifs(&g, delta);
            let src = InMemorySource::from_graph(&g);
            for budget in budgets_for(&g) {
                for layout in [LaneLayout::Raw, LaneLayout::Compressed] {
                    let mut config = OocConfig::new(delta, budget);
                    config.lane_layout = layout;
                    let (got, stats) = count_motifs_ooc(&src, config).unwrap();
                    assert_eq!(got.matrix, want.matrix, "budget={budget} layout={layout}");
                    assert_eq!(got.star, want.star, "budget={budget} layout={layout}");
                    assert_eq!(got.tri, want.tri, "budget={budget} layout={layout}");
                    assert!(stats.chunks >= 1);
                    if layout == LaneLayout::Raw && stats.forced_cuts == 0 {
                        // Unforced raw chunks keep the arenas under
                        // budget by construction.
                        assert!(
                            stats.peak_resident_lane_bytes <= budget,
                            "peak {} > budget {budget}",
                            stats.peak_resident_lane_bytes
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn duplicate_timestamp_ties_do_not_straddle_cuts() {
        // Heavy timestamp collisions: every cut lands on a tie boundary.
        let g = GenConfig {
            nodes: 20,
            edges: 800,
            time_span: 40, // 20 edges per timestamp on average
            seed: 11,
            ..GenConfig::default()
        }
        .generate();
        let delta = 7;
        let want = crate::count_motifs(&g, delta);
        let src = InMemorySource::from_graph(&g);
        let (got, stats) = count_motifs_ooc(&src, OocConfig::new(delta, 3_000)).unwrap();
        assert_eq!(got.matrix, want.matrix);
        assert!(stats.chunks > 1, "budget must force multiple chunks");
    }

    #[test]
    fn lane_file_source_counts_match_in_ram() {
        let g = erdos_renyi_temporal(25, 700, 900, 4);
        let delta = 120;
        let want = crate::count_motifs(&g, delta);
        let mut path = std::env::temp_dir();
        path.push(format!("hare-ooc-count-{}.hlg", std::process::id()));
        write_lane_file(&path, g.num_nodes(), g.edges()).unwrap();
        let src = LaneFileSource::open(&path).unwrap();
        assert_eq!(src.num_edges(), g.num_edges() as u64);
        let budget = g.num_edges() * LANE_BYTES_PER_EDGE / 2 + 1;
        let (got, stats) = count_motifs_ooc(&src, OocConfig::new(delta, budget)).unwrap();
        assert_eq!(got.matrix, want.matrix);
        assert!(stats.chunks > 1);
        assert_eq!(stats.forced_cuts, 0);
        assert!(stats.peak_resident_lane_bytes <= budget);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn profiles_match_in_ram() {
        let g = hub_burst(25, 1_000, 5_000, 6);
        let delta = 400;
        let want = NodeProfiles::compute(&g, delta, 1);
        let src = InMemorySource::from_graph(&g);
        for budget in budgets_for(&g) {
            let (got, _) = node_profiles_ooc(&src, OocConfig::new(delta, budget)).unwrap();
            assert_eq!(got, want, "budget={budget}");
        }
    }

    #[test]
    fn empty_and_tiny_sources() {
        let empty = InMemorySource::new(0, vec![]);
        let (counts, stats) = count_motifs_ooc(&empty, OocConfig::new(10, 1_000)).unwrap();
        assert_eq!(counts.total(), 0);
        assert_eq!(stats.chunks, 0);
        let (profiles, _) = node_profiles_ooc(&empty, OocConfig::new(10, 1_000)).unwrap();
        assert!(profiles.is_empty());

        let one = InMemorySource::new(2, vec![TemporalEdge::new(0, 1, 5)]);
        let (counts, stats) = count_motifs_ooc(&one, OocConfig::new(10, 1_000)).unwrap();
        assert_eq!(counts.total(), 0);
        assert_eq!(stats.chunks, 1);
    }

    #[test]
    fn degenerate_budget_still_terminates_and_is_exact() {
        let g = erdos_renyi_temporal(10, 150, 80, 1);
        let delta = 15;
        let want = crate::count_motifs(&g, delta);
        let src = InMemorySource::from_graph(&g);
        // A budget below one edge forces minimum-progress cuts everywhere.
        let (got, stats) = count_motifs_ooc(&src, OocConfig::new(delta, 1)).unwrap();
        assert_eq!(got.matrix, want.matrix);
        assert!(stats.chunks > 10);
    }

    #[test]
    #[should_panic(expected = "sorted by timestamp")]
    fn in_memory_source_rejects_unsorted_edges() {
        let _ = InMemorySource::new(
            3,
            vec![TemporalEdge::new(0, 1, 9), TemporalEdge::new(1, 2, 3)],
        );
    }
}
