//! Bounded-memory approximate motif counting on unbounded streams.
//!
//! [`crate::windowed::WindowedCounter`] is exact but holds every live
//! edge, so its memory scales with the window content; [`crate::sample`]
//! is sublinear but batch-only. This module composes the two stories
//! into the estimator ROADMAP item 2 asks for: a [`StreamingEstimator`]
//! that ingests an unbounded edge stream under a **hard byte budget**
//! `B` and answers, at every tick, the windowed query *approximately*
//! with per-motif error bounds:
//!
//! 1. the time axis is cut into intervals of length `c·δ`. An interval
//!    is **complete** once the watermark has passed its right boundary
//!    by `δ` (its own edges and its boundary-correction tail are all
//!    final); incomplete intervals are retained provisionally at weight
//!    1, so the estimator observes every interval's true content before
//!    deciding its fate;
//! 2. on completion an interval joins the **coin tier**: kept with
//!    probability `p` by the same deterministic SplitMix64 coin as
//!    [`crate::sample::window_kept`] — a pure function of `(seed, k)`,
//!    so retention is order-free and replay-stable and no coin state is
//!    ever stored. A coin-tier edge is retained only if it can
//!    contribute to a kept interval: its own interval is kept, or it
//!    falls within `δ` after a kept interval's right boundary (the tail
//!    the exact kernel reads past each interval), or within `δ` before
//!    a kept interval's left boundary (the backward context the
//!    per-centre triangle attribution reads — a centre is booked under
//!    the interval of its *own* first edge, up to `δ` after the
//!    instance's earliest edge);
//! 3. a profitable interval (raw edges heavier than [`SUMMARY_BYTES`])
//!    **converts to a summary** the moment it completes, *before* it
//!    ever faces the coin: its exact 36-motif tally is computed by the
//!    fused kernel while its edges are still present at weight 1, then
//!    the edges are discarded — count it, don't store it. Observation
//!    is unbounded; only storage is budgeted, so a 500-edge burst
//!    shrinks from 8 000 bytes of raw edges to one 160-byte exact
//!    vector at zero statistical cost. Summaries are kept with the
//!    weight-proportional probability `π = min(1, m/τ, p_conv)` (motif
//!    mass `m = Σᵢxᵢ`, summary threshold `τ`, and the probability
//!    `p_conv` that the edges were still present at conversion — 1 for
//!    an eager conversion, the coin-tier `p` for a backlog interval
//!    converted from the coin tier) — probability-proportional-to-size
//!    over the value the estimator sums, so the heavy head that
//!    dominates a bursty stream's motif mass — and the honesty of any
//!    sampled variance estimate — survives at high probability,
//!    VarOpt-style. Only the light tail (intervals cheaper to store
//!    than to summarize) stays in the coin tier: many small
//!    exchangeable units, exactly the regime where Horvitz–Thompson
//!    variance estimates are honest and normal intervals attain
//!    nominal coverage;
//! 4. when the accounted bytes would exceed `B` the estimator
//!    escalates, in order: convert the heaviest convertible interval;
//!    **fold the oldest epoch of summaries into a bucket** — a frozen
//!    pair of fold accumulators (estimate and variance, at each
//!    summary's fold-time `1/π` weight) covering `W/8` of the time
//!    axis in [`BUCKET_BYTES`] accounted bytes, so deep-window summary
//!    mass stops paying per-interval rent; halve `p` or double `τ`
//!    (whichever tier holds more bytes), each a monotone re-filter
//!    (`kept(p/2) ⊆ kept(p)`, so eviction never needs edges back) that
//!    loops until at least one eviction lands; and only then trim
//!    oldest-first deterministically (reachable only when one interval
//!    alone exceeds `B`);
//! 5. a tick runs the **exact fused kernel** over the retained live
//!    edges. Incomplete intervals contribute at weight 1, coin-kept
//!    intervals at `1/p`, each kept summary adds its exact vector at
//!    `1/π`, and each bucket adds its frozen accumulators verbatim.
//!    The per-motif variance sums the Horvitz–Thompson tier terms
//!    `(1−p)/p²·Σx²`, `Σ(1−π)/π²·x²`, and the buckets' frozen variance
//!    into the normal-CI math of [`crate::sample`], plus a
//!    deterministic widening for the `f32` storage rounding of
//!    summaries and buckets (docs/ESTIMATORS.md derives all terms).
//!
//! The degenerate case is load-bearing: while the budget never binds
//! (`p = 1`, no conversion or trim ever ran), the reservoir *is* the
//! live window and every tick is bit-identical (after integer
//! round-trip) to [`crate::windowed::WindowedCounter`] — pinned by the
//! differential battery in `tests/stream_estimates.rs`.
//!
//! One approximation beyond sampling: a summary expires **wholesale**
//! when the window's trailing edge enters its interval (its frozen
//! vector cannot shed individual expired motifs), so the partial
//! suffix of that one interval is undercounted until it fully expires.
//! A bucket coarsens the same caveat to epoch granularity: it pops
//! only once its whole `W/8` epoch has left the window, and while the
//! trailing edge is *inside* the epoch the tick widens that bucket's
//! interval by its entire estimate (the straddle bound) rather than
//! pretending to know which part expired. This only occurs in the
//! budget-bound regime; exact engines and the `p = 1` path are
//! unaffected.
//!
//! Converted intervals can never rejoin the coin tier (their edges are
//! gone), so their indices are remembered until they expire with the
//! window — `O(W / (c·δ))` interval indices of control-plane metadata,
//! scaling with the window's interval count, not with stream content,
//! and hence excluded from the accounted data-plane bytes.
//!
//! Arrival semantics (reorder slack, acceptance floor, watermark and
//! expiry rules) mirror [`crate::windowed::WindowedCounter`] exactly, so
//! the two engines accept and drop the same edges on the same stream.
//!
//! ```
//! use hare::stream_sample::{StreamSampleConfig, StreamingEstimator};
//! let cfg = StreamSampleConfig::new(10, 50, 1 << 20); // δ=10, W=50, B=1 MiB
//! let mut est = StreamingEstimator::new(cfg);
//! est.push(0, 1, 100).unwrap();
//! est.push(1, 2, 105).unwrap();
//! est.push(2, 0, 108).unwrap(); // closes the cyclic triangle M26
//! let tick = est.estimates();
//! assert_eq!(tick.get(hare::motif::m(2, 6)).estimate, 1.0);
//! ```
//!
//! hare-lint: no-alloc

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rayon::prelude::*;

use crate::counters::MotifMatrix;
use crate::motif::Motif;
use crate::sample::{
    fold_fractional, normal_quantile, window_kept, FoldTables, MotifEstimate, WindowTally,
};
use crate::scratch::with_thread_scratch;
use crate::streaming::StreamError;
use hare_obs::{NoopProbe, Phase, Probe};
use temporal_graph::{GraphBuilder, NodeId, TemporalGraph, Timestamp};

/// Accounted bytes per retained edge: the stored `(src, dst, t)` record
/// (4 + 4 + 8). The byte budget is enforced against
/// `retained_edges · EDGE_BYTES + summaries · SUMMARY_BYTES`.
pub const EDGE_BYTES: u64 = 16;

/// Accounted bytes per interval summary: 36 motif counts stored as
/// `f32` (exactly representable far past any single interval's count;
/// only the fused kernel's fractional folds round, at ~1e-7 relative),
/// the interval key, the interval's motif mass and its
/// conversion-time keep probability (144 + 8 + 4 + 4). Summaries only
/// exist in the sampled regime, so narrowing them never perturbs the
/// bit-exact `p = 1` path — and at half the footprint the budget holds
/// twice as many exact vectors before `τ` has to ration them.
/// Converting an interval is profitable once its raw edges outweigh
/// this, i.e. from 11 edges up.
pub const SUMMARY_BYTES: u64 = 160;

/// Accounted bytes per epoch bucket: a frozen per-epoch accumulator of
/// folded summary contributions — 36 motif estimate components and 36
/// variance components as `f32`, the epoch key and the fold counter
/// (144 + 144 + 8 + 4, rounded up for container overhead). Folding a
/// summary into its epoch bucket frees [`SUMMARY_BYTES`] at zero added
/// statistical cost (its Horvitz–Thompson weight and variance term are
/// frozen, not re-randomised), trading only expiry granularity: a
/// bucket expires wholesale once its whole epoch leaves the window.
pub const BUCKET_BYTES: u64 = 320;

/// Epochs per window for the bucket tier: folded mass is kept at
/// `window / 8` expiry granularity, so at most 9 buckets are ever live
/// and the bucket tier's accounted bytes are bounded by
/// `9 · BUCKET_BYTES` regardless of stream content.
const EPOCHS_PER_WINDOW: i64 = 8;

/// Beyond this many halvings `p < 2⁻⁶⁴` is below the coin's resolution:
/// further halving cannot evict anything, so the budget loop stops
/// re-filtering the edge tier.
const LEVELS_MAX: u32 = 64;

/// Cap on summary-threshold doublings: at `τ = 2⁹⁶` even a `u32::MAX`
/// motif mass gives `π ≤ 2⁻⁶⁴`, below the coin's resolution.
const TAU_LOG2_MAX: u32 = 96;

/// Configuration of the bounded-memory streaming estimator.
#[derive(Debug, Clone)]
pub struct StreamSampleConfig {
    /// The motif window δ (max span of an instance's 3 edges).
    pub delta: Timestamp,
    /// The sliding window width `W >= δ`: an edge at `t` is live while
    /// `watermark - t <= W` (identical to
    /// [`crate::windowed::WindowedCounter`]).
    pub window: Timestamp,
    /// Reorder bound: an arrival is accepted iff its timestamp is
    /// `>= max_seen - slack` (and not behind an explicit watermark).
    pub slack: Timestamp,
    /// The hard memory budget `B` in bytes. The reservoir's accounted
    /// bytes ([`StreamingEstimator::retained_bytes`]) never exceed it:
    /// `p` adapts downward as the stream fills the budget.
    pub budget_bytes: u64,
    /// Interval length factor `c ≥ 1`: the time axis is cut into
    /// intervals of length `c·δ` (same role as
    /// [`crate::sample::SampleConfig::window_factor`]).
    pub window_factor: i64,
    /// Confidence level of the per-tick intervals, in `(0, 1)`.
    pub confidence: f64,
    /// Seed of the per-interval retention coins. Same seed + same
    /// stream ⇒ bit-identical ticks, in any arrival order the slack
    /// admits.
    pub seed: u64,
    /// Worker threads for the per-tick interval tally: `1` counts
    /// sequentially, `0` uses all cores, `n` uses `n`. Ticks are
    /// bit-identical across thread counts.
    pub threads: usize,
}

impl StreamSampleConfig {
    /// A configuration with the given δ, window width and byte budget,
    /// and the default sampling knobs (`window_factor = 10`,
    /// `confidence = 0.95`, `seed = 0x5EED`, `slack = 0`, sequential).
    #[must_use]
    pub fn new(delta: Timestamp, window: Timestamp, budget_bytes: u64) -> StreamSampleConfig {
        StreamSampleConfig {
            delta,
            window,
            slack: 0,
            budget_bytes,
            window_factor: 10,
            confidence: 0.95,
            seed: 0x5EED,
            threads: 1,
        }
    }
}

/// One retained edge of the reservoir, stored in processed `(t, seq)`
/// order (non-decreasing `t`, ties in arrival order — the same total
/// order the exact windowed engine uses).
#[derive(Debug, Clone, Copy)]
struct Retained {
    src: NodeId,
    dst: NodeId,
    t: Timestamp,
}

/// A converted interval: its exact 36-motif tally (first-edge
/// attribution, δ-tail included), frozen at conversion time, plus the
/// data its keep probability `π = min(1, mass/τ, p_conv)` needs.
#[derive(Debug, Clone)]
struct Summary {
    /// Exact folded motif counts of the interval, row-major. Stored
    /// narrow — the [`SUMMARY_BYTES`] accounting is honest — and
    /// widened back to `f64` at every read.
    x: [f32; 36],
    /// The interval's total motif mass `Σᵢ xᵢ` (the weight driving
    /// `π`; always `> 0` — zero-mass vectors are discarded for free).
    mass: f32,
    /// The coin-tier `p` in force when the interval converted: the
    /// tightest edge-tier threshold its coin has already survived, so
    /// the summary's inclusion probability can never exceed it.
    p_conv: f32,
}

/// A frozen per-epoch accumulator of folded summaries: each fold adds
/// the summary's Horvitz–Thompson contribution `x/π` and its variance
/// term `(1−π)/π²·x²` at the `π` in force at fold time, after which
/// neither is ever re-randomised — later `τ` doublings cannot touch
/// folded mass. Components are non-negative, so the accumulated `f32`
/// rounding error is bounded by `folds · ε₃₂ · est` per component.
#[derive(Debug, Clone)]
struct Bucket {
    /// Accumulated weighted estimate components, row-major.
    est: [f32; 36],
    /// Accumulated Horvitz–Thompson variance components, row-major.
    var: [f32; 36],
    /// Number of summaries folded in (drives the rounding bound).
    folds: u32,
}

/// Per-tick output of the estimator: 36 per-motif estimates with error
/// bounds, plus the tick's sampling and reservoir metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamEstimates {
    cells: [[MotifEstimate; 6]; 6],
    exact: Option<MotifMatrix>,
    /// The coin-tier interval keep probability in force at this tick.
    pub prob: f64,
    /// The confidence level of the per-motif intervals.
    pub confidence: f64,
    /// The motif window δ.
    pub delta: Timestamp,
    /// The sliding window width `W`.
    pub window: Timestamp,
    /// The retention interval length `c·δ` (clamped to at least 1).
    pub interval_len: Timestamp,
    /// The watermark the tick was computed at (`None` before any edge
    /// is processed or watermark advanced).
    pub watermark: Option<Timestamp>,
    /// Number of live edges in the reservoir at this tick.
    pub retained_edges: usize,
    /// Accounted reservoir bytes at this tick (`retained_edges ·
    /// EDGE_BYTES + summaries · SUMMARY_BYTES`), never above the
    /// budget.
    pub retained_bytes: u64,
    /// The configured hard budget `B` in bytes.
    pub budget_bytes: u64,
    /// Number of complete coin-kept intervals whose raw edges
    /// contributed at least one first-edge run to this tick's kernel
    /// pass (weight `1/p`).
    pub intervals_sampled: usize,
    /// Number of incomplete intervals (the provisional head of the
    /// stream) that contributed at least one first-edge run at
    /// weight 1.
    pub intervals_exact: usize,
    /// Number of kept interval summaries folded into this tick, each
    /// at weight `1/π`.
    pub intervals_summarized: usize,
}

impl StreamEstimates {
    /// The estimate of one motif.
    #[inline]
    #[must_use]
    pub fn get(&self, m: Motif) -> MotifEstimate {
        self.cells[m.row() as usize - 1][m.col() as usize - 1]
    }

    /// Iterate `(motif, estimate)` in the canonical row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Motif, MotifEstimate)> + '_ {
        Motif::all().map(move |m| (m, self.get(m)))
    }

    /// Sum of the point estimates over all 36 motifs.
    #[must_use]
    pub fn total_estimate(&self) -> f64 {
        self.iter().map(|(_, e)| e.estimate).sum()
    }

    /// The exact live-window counts, available only while the budget
    /// has never bound (`p = 1`, no conversion or trim: the degenerate
    /// configuration is bit-identical to
    /// [`crate::windowed::WindowedCounter::counts`]).
    #[must_use]
    pub fn as_exact(&self) -> Option<MotifMatrix> {
        self.exact
    }

    /// Fraction of motifs with non-zero exact count whose confidence
    /// interval covers the exact value (1.0 when no motif has a
    /// non-zero count).
    #[must_use]
    pub fn covered_fraction(&self, exact: &MotifMatrix) -> f64 {
        let mut covered = 0usize;
        let mut cells = 0usize;
        for (m, n) in exact.iter() {
            if n > 0 {
                cells += 1;
                covered += usize::from(self.get(m).covers(n));
            }
        }
        if cells == 0 {
            1.0
        } else {
            covered as f64 / cells as f64
        }
    }
}

/// Bounded-memory per-tick motif estimation over an unbounded edge
/// stream (see the module docs for the design).
///
/// Ingestion mirrors [`crate::windowed::WindowedCounter`] verb for verb
/// — [`StreamingEstimator::push`], [`StreamingEstimator::advance_to`],
/// [`StreamingEstimator::flush`] accept, buffer, reject and expire the
/// same edges on the same stream — but instead of exact live-window
/// counters it maintains a seeded interval reservoir plus exact
/// interval summaries and recomputes unbiased estimates on demand with
/// [`StreamingEstimator::estimates`].
#[derive(Debug, Clone)]
pub struct StreamingEstimator {
    cfg: StreamSampleConfig,
    interval_len: Timestamp,
    /// Number of coin-tier halvings applied so far: `p = 2^-levels`.
    levels: u32,
    /// Number of summary-threshold doublings so far: `τ = 2^tau_log2`.
    tau_log2: u32,
    buffer: BTreeMap<(Timestamp, u64), (NodeId, NodeId)>,
    retained: VecDeque<Retained>,
    /// Kept summaries: `interval index → exact summary`, every entry
    /// kept under its own coin at `π = min(1, mass/τ, p_conv)`.
    summaries: BTreeMap<i64, Summary>,
    /// Epoch buckets: `epoch index → frozen fold accumulator`. An
    /// epoch spans `max(window / 8, interval_len)` of stream time.
    buckets: BTreeMap<i64, Bucket>,
    /// Epoch length of the bucket tier (absolute stream time).
    epoch_len: Timestamp,
    /// Every interval ever converted (⊇ `summaries`): once an
    /// interval's edges were traded for a summary they are gone, so it
    /// must never rejoin the coin tier or convert again — even after
    /// its summary is evicted by a rising `τ`. Expires with the window;
    /// O(W / (c·δ)) interval indices of metadata, excluded from the
    /// accounted data-plane bytes (see [`Self::retained_bytes`]).
    converted: BTreeSet<i64>,
    /// First incomplete interval: everything strictly below is
    /// complete (own edges and δ-tail final) and subject to the coin.
    complete_floor: Option<i64>,
    /// Largest interval index ever hit by a last-resort oldest-first
    /// trim: such intervals have lost edges deterministically and must
    /// never convert to a (wrong) "exact" summary.
    trim_ceiling: Option<i64>,
    /// Set once any conversion or last-resort trim ran: the retained
    /// edges alone no longer reproduce the live window, so the `p = 1`
    /// bit-exact path is off even if `levels == 0`.
    dirty: bool,
    watermark: Option<Timestamp>,
    max_seen: Option<Timestamp>,
    hard_floor: Option<Timestamp>,
    next_seq: u64,
    accepted: u64,
}

impl StreamingEstimator {
    /// New estimator with the given configuration.
    ///
    /// # Panics
    /// Panics unless `0 <= delta <= window`, `slack >= 0`,
    /// `window_factor >= 1` and `confidence` is in `(0, 1)`.
    #[must_use]
    pub fn new(cfg: StreamSampleConfig) -> StreamingEstimator {
        assert!(cfg.delta >= 0, "delta must be non-negative");
        assert!(cfg.window >= cfg.delta, "window must be at least delta");
        assert!(cfg.slack >= 0, "slack must be non-negative");
        assert!(
            cfg.window_factor >= 1,
            "window factor must be at least 1, got {}",
            cfg.window_factor
        );
        assert!(
            cfg.confidence > 0.0 && cfg.confidence < 1.0,
            "confidence level must be in (0, 1), got {}",
            cfg.confidence
        );
        let interval_len = cfg.delta.max(0).saturating_mul(cfg.window_factor).max(1);
        let epoch_len = cfg
            .window
            .div_euclid(EPOCHS_PER_WINDOW)
            .max(interval_len)
            .max(1);
        StreamingEstimator {
            cfg,
            interval_len,
            epoch_len,
            levels: 0,
            tau_log2: 0,
            buffer: BTreeMap::new(),
            retained: VecDeque::new(),
            summaries: BTreeMap::new(),
            buckets: BTreeMap::new(),
            converted: BTreeSet::new(),
            complete_floor: None,
            trim_ceiling: None,
            dirty: false,
            watermark: None,
            max_seen: None,
            hard_floor: None,
            next_seq: 0,
            accepted: 0,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &StreamSampleConfig {
        &self.cfg
    }

    /// The retention interval length `c·δ` (clamped to at least 1).
    #[must_use]
    pub fn interval_len(&self) -> Timestamp {
        self.interval_len
    }

    /// The coin-tier interval keep probability currently in force
    /// (`2^-levels`; starts at 1 and halves as the stream fills the
    /// budget — it never recovers, so past coins stay valid).
    #[must_use]
    pub fn prob(&self) -> f64 {
        0.5f64.powi(self.levels as i32)
    }

    /// Current watermark: the largest processed timestamp or explicit
    /// [`StreamingEstimator::advance_to`] target, whichever is later.
    #[must_use]
    pub fn watermark(&self) -> Option<Timestamp> {
        self.watermark
    }

    /// Number of live edges currently held by the reservoir.
    #[must_use]
    pub fn retained_edges(&self) -> usize {
        self.retained.len()
    }

    /// Number of live interval summaries (converted intervals whose
    /// exact motif vectors replaced their raw edges).
    #[must_use]
    pub fn summarized_intervals(&self) -> usize {
        self.summaries.len()
    }

    /// Accounted bytes of the summary tier
    /// (`summaries · SUMMARY_BYTES`).
    #[must_use]
    pub fn summary_tier_bytes(&self) -> u64 {
        self.summaries.len() as u64 * SUMMARY_BYTES
    }

    /// The summary keep threshold `τ`: a summary holding motif mass
    /// `m` is kept with probability `min(1, m/τ)` (capped by the
    /// coin-tier `p` at its conversion). Starts at 1 and doubles under
    /// budget pressure, never recovering.
    #[must_use]
    pub fn summary_threshold(&self) -> f64 {
        self.tau()
    }

    /// How many epoch buckets currently hold folded summary mass.
    ///
    /// Non-zero means budget pressure has frozen at least one epoch's
    /// worth of summaries into deterministic fold accumulators — the
    /// estimator is genuinely sampling even if the live coin tiers
    /// look untightened (`prob == 1`, `summary_threshold == 1`).
    #[must_use]
    pub fn folded_epochs(&self) -> usize {
        self.buckets.len()
    }

    /// Accounted reservoir bytes: `retained_edges · EDGE_BYTES +
    /// summaries · SUMMARY_BYTES`. The budget invariant
    /// `retained_bytes() <= budget_bytes` holds after every operation.
    #[must_use]
    pub fn retained_bytes(&self) -> u64 {
        self.retained.len() as u64 * EDGE_BYTES
            + self.summary_tier_bytes()
            + self.buckets.len() as u64 * BUCKET_BYTES
    }

    /// The configured hard budget `B` in bytes.
    #[must_use]
    pub fn budget_bytes(&self) -> u64 {
        self.cfg.budget_bytes
    }

    /// Number of accepted arrivals still held in the reorder buffer.
    #[must_use]
    pub fn buffered_edges(&self) -> usize {
        self.buffer.len()
    }

    /// Total number of arrivals accepted so far (processed + buffered).
    #[must_use]
    pub fn num_accepted(&self) -> u64 {
        self.accepted
    }

    /// Earliest timestamp a new arrival must carry to be accepted, or
    /// `None` while everything is acceptable (identical to
    /// [`crate::windowed::WindowedCounter::accept_floor`]).
    #[must_use]
    pub fn accept_floor(&self) -> Option<Timestamp> {
        let slack_floor = self.max_seen.map(|m| m - self.cfg.slack);
        match (self.hard_floor, slack_floor) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        }
    }

    /// Ingest one edge, with the exact acceptance semantics of
    /// [`crate::windowed::WindowedCounter::push`].
    ///
    /// # Errors
    /// [`StreamError::OutOfOrder`] if `t` is below
    /// [`Self::accept_floor`]; [`StreamError::SelfLoop`] if
    /// `src == dst`.
    pub fn push(&mut self, src: NodeId, dst: NodeId, t: Timestamp) -> Result<(), StreamError> {
        self.push_probed(src, dst, t, &NoopProbe)
    }

    /// [`StreamingEstimator::push`] with a [`Probe`] observing the
    /// ingest path: [`Phase::Evict`] wraps budget-pressure eviction
    /// work triggered by this arrival. Retained state and estimates are
    /// bit-identical across probe implementations.
    ///
    /// # Errors
    /// Exactly as [`StreamingEstimator::push`].
    pub fn push_probed<P: Probe>(
        &mut self,
        src: NodeId,
        dst: NodeId,
        t: Timestamp,
        probe: &P,
    ) -> Result<(), StreamError> {
        if src == dst {
            return Err(StreamError::SelfLoop);
        }
        if let Some(floor) = self.accept_floor() {
            if t < floor {
                return Err(StreamError::OutOfOrder {
                    got: t,
                    last: floor,
                });
            }
        }
        self.max_seen = Some(self.max_seen.map_or(t, |m| m.max(t)));
        self.buffer.insert((t, self.next_seq), (src, dst));
        self.next_seq += 1;
        self.accepted += 1;
        let release_to = self.max_seen.expect("just set") - self.cfg.slack;
        self.release_until(release_to, probe);
        Ok(())
    }

    /// Advance the watermark to `t`: process every buffered arrival
    /// timestamped `<= t`, expire edges older than `t - W`, and reject
    /// all future arrivals timestamped `< t`. Watermarks only move
    /// forward; an earlier `t` is a no-op.
    pub fn advance_to(&mut self, t: Timestamp) {
        if self.hard_floor.is_some_and(|f| f >= t) && self.watermark.is_some_and(|w| w >= t) {
            return;
        }
        self.release_until(t, &NoopProbe);
        self.hard_floor = Some(self.hard_floor.map_or(t, |f| f.max(t)));
        self.watermark = Some(self.watermark.map_or(t, |w| w.max(t)));
        self.settle_completed();
        self.expire();
    }

    /// Drain the reorder buffer, processing every accepted arrival.
    /// After a flush, arrivals older than the largest timestamp seen are
    /// rejected.
    pub fn flush(&mut self) {
        self.flush_probed(&NoopProbe);
    }

    /// [`StreamingEstimator::flush`] with a [`Probe`] observing the
    /// drain ([`Phase::Evict`] around budget-pressure eviction work).
    /// Bit-identical to [`StreamingEstimator::flush`] for every probe.
    pub fn flush_probed<P: Probe>(&mut self, probe: &P) {
        if let Some(max) = self.max_seen {
            self.release_until(max, probe);
            self.hard_floor = Some(self.hard_floor.map_or(max, |f| f.max(max)));
        }
    }

    /// Process buffered arrivals with `t <= cutoff`, in `(t, seq)`
    /// order.
    fn release_until<P: Probe>(&mut self, cutoff: Timestamp, probe: &P) {
        while let Some((&(t, _), _)) = self.buffer.first_key_value() {
            if t > cutoff {
                break;
            }
            let ((t, _), (src, dst)) = self.buffer.pop_first().expect("non-empty");
            self.process(src, dst, t, probe);
        }
    }

    /// Admit one released edge: advance the watermark, expire, retain
    /// the edge provisionally (its interval is incomplete by
    /// construction), settle any intervals the watermark completed, and
    /// enforce the byte budget.
    fn process<P: Probe>(&mut self, src: NodeId, dst: NodeId, t: Timestamp, probe: &P) {
        debug_assert!(self.watermark.is_none_or(|w| t >= w));
        self.watermark = Some(self.watermark.map_or(t, |w| w.max(t)));
        self.expire();
        self.retained.push_back(Retained { src, dst, t });
        self.settle_completed();
        probe.span(Phase::Evict, || self.enforce_budget());
    }

    /// First incomplete interval: `(watermark − δ) / len`. Intervals
    /// strictly below are final (no acceptable arrival can land in
    /// them or their δ-tail any more).
    fn floor(&self) -> i64 {
        self.complete_floor.unwrap_or(i64::MIN)
    }

    /// Advance the completion floor to match the watermark and
    /// coin-filter the edges of every newly completed interval. The
    /// affected edges form a suffix of the reservoir (everything at or
    /// after the old floor's left boundary), so a pop-back walk
    /// touches only the provisional head.
    fn settle_completed(&mut self) {
        let Some(wm) = self.watermark else { return };
        let new_floor = wm
            .saturating_sub(self.cfg.delta)
            .div_euclid(self.interval_len);
        let Some(old) = self.complete_floor else {
            self.complete_floor = Some(new_floor);
            return;
        };
        if new_floor <= old {
            return;
        }
        self.complete_floor = Some(new_floor);
        // Once the budget has ever bound, profitable intervals convert
        // EAGERLY at completion — before the coin walk below ever sees
        // them. A just-completed interval was weight-1 provisional head
        // a moment ago, so its inclusion probability is still 1 and the
        // summary coin starts at the uncapped `π = min(1, mass/τ)`
        // (`p_conv = 1`): heavy mass reaches the summary tier
        // deterministically instead of facing the edge-tier `p` coin,
        // which would erase both the mass and its variance signal on a
        // loss. Before the budget binds nothing converts, preserving
        // the degenerate exact path.
        if self.dirty {
            self.eager_convert_completed(old, new_floor);
        }
        // Walk back past the old floor's backward-context zone too, so
        // context edges retained for a now-completed (and possibly
        // coin-dropped) interval are re-filtered rather than lingering.
        let lo = old
            .saturating_mul(self.interval_len)
            .saturating_sub(self.cfg.delta);
        // hare-lint: allow(alloc, reason = "settle scratch: only the provisional head of the reservoir")
        let mut tail: Vec<Retained> = Vec::new();
        while self.retained.back().is_some_and(|e| e.t >= lo) {
            tail.push(self.retained.pop_back().expect("non-empty"));
        }
        let (il, delta, seed, p) = (
            self.interval_len,
            self.cfg.delta,
            self.cfg.seed,
            self.prob(),
        );
        let converted = &self.converted;
        for e in tail.into_iter().rev() {
            if keeps_at(e.t, il, delta, seed, p, new_floor, converted) {
                self.retained.push_back(e);
            }
        }
    }

    /// Convert every profitable interval in `[old, new_floor)` the
    /// moment it completes, at conversion probability 1 (the interval
    /// has never faced a coin). Shares the eligibility guards of
    /// [`Self::best_convertible`] minus the coin test: clear of the
    /// trimmed zone, fully inside the window, not already converted,
    /// and heavier than [`SUMMARY_BYTES`].
    fn eager_convert_completed(&mut self, old: i64, new_floor: i64) {
        let il = self.interval_len;
        let zone_lo = old.saturating_mul(il);
        // hare-lint: allow(alloc, reason = "settle scratch: per-interval edge counts of the newly completed zone")
        let mut counts: Vec<(i64, u32)> = Vec::new();
        for e in self.retained.iter().rev() {
            if e.t < zone_lo {
                break;
            }
            let k = e.t.div_euclid(il);
            if k >= new_floor {
                continue;
            }
            match counts.last_mut() {
                Some((ck, c)) if *ck == k => *c += 1,
                _ => counts.push((k, 1)),
            }
        }
        for &(k, c) in counts.iter().rev() {
            if u64::from(c) * EDGE_BYTES <= SUMMARY_BYTES
                || self.converted.contains(&k)
                || self.trim_ceiling.is_some_and(|t| k <= t.saturating_add(1))
                || self.watermark.is_some_and(|wm| {
                    k.saturating_mul(il).saturating_sub(self.cfg.delta)
                        < wm.saturating_sub(self.cfg.window)
                })
            {
                continue;
            }
            self.convert_with(k, 1.0);
        }
    }

    /// Drop reservoir state that has fallen out of the live window
    /// (`watermark - t > W`). The reservoir is in non-decreasing `t`
    /// order, so edge expiry is a front pop; a summary expires
    /// wholesale once the window's trailing edge reaches its interval
    /// start (see the module docs for the boundary caveat).
    fn expire(&mut self) {
        let Some(wm) = self.watermark else { return };
        while let Some(&front) = self.retained.front() {
            if wm - front.t <= self.cfg.window {
                break;
            }
            self.retained.pop_front();
        }
        while let Some((&k, _)) = self.summaries.first_key_value() {
            if wm.saturating_sub(k.saturating_mul(self.interval_len)) <= self.cfg.window {
                break;
            }
            self.summaries.pop_first();
        }
        while let Some(&k) = self.converted.first() {
            if wm.saturating_sub(k.saturating_mul(self.interval_len)) <= self.cfg.window {
                break;
            }
            self.converted.pop_first();
        }
        // A bucket holds an epoch's folded mass wholesale, so it pops
        // only once the entire epoch has left the window; while the
        // window's trailing edge is inside the epoch the full vector
        // still counts and the tick widens its interval by the
        // bucket's estimate instead (the straddle bound).
        while let Some((&b, _)) = self.buckets.first_key_value() {
            let epoch_end = b.saturating_add(1).saturating_mul(self.epoch_len);
            if wm.saturating_sub(epoch_end) <= self.cfg.window {
                break;
            }
            self.buckets.pop_first();
        }
    }

    /// Restore `retained_bytes() <= budget_bytes`, in escalation order:
    ///
    /// 1. conversion — the heaviest convertible interval becomes an
    ///    exact [`SUMMARY_BYTES`] summary (frees bytes at zero
    ///    statistical cost while its coin survives `π`). With eager
    ///    conversion in [`Self::settle_completed`] this is mostly the
    ///    backlog path for intervals completed before the budget first
    ///    bound;
    /// 2. fold — the oldest epoch's summaries collapse into one
    ///    [`BUCKET_BYTES`] bucket whenever that is net-byte-positive,
    ///    freezing their `1/π`-weighted estimate and variance;
    /// 3. halve `p` / double `τ` — whichever tier holds more bytes is
    ///    re-filtered under progressively tighter thresholds (a
    ///    monotone shrink) until at least one eviction lands. A tier
    ///    only engages while its own bytes could plausibly cover the
    ///    deficit, and if its cap is reached with zero evictions the
    ///    threshold is reverted wholesale (bytes are monotone under
    ///    re-filtering, so nothing ever faced a losing coin and the
    ///    old state is restored exactly) — both guards keep a
    ///    transient local squeeze (e.g. one burst filling the
    ///    provisional head) from irreversibly destroying the global
    ///    sampling probability;
    /// 4. last resort — drop the oldest summary, then trim the oldest
    ///    retained edges deterministically (reachable when the weight-1
    ///    provisional head alone exceeds the budget; trims that data's
    ///    contribution downward and poisons the trimmed intervals
    ///    against conversion).
    fn enforce_budget(&mut self) {
        while self.retained_bytes() > self.cfg.budget_bytes {
            if let Some(k) = self.best_convertible() {
                self.convert(k);
                continue;
            }
            if self.fold_oldest_epoch() {
                continue;
            }
            let before = self.retained_bytes();
            let deficit = before - self.cfg.budget_bytes;
            let edge_bytes = self.sampled_edge_bytes();
            let summary_bytes = self.summary_tier_bytes();
            let can_halve = self.levels < LEVELS_MAX && edge_bytes >= deficit;
            let can_raise = self.tau_log2 < TAU_LOG2_MAX && summary_bytes >= deficit;
            if can_halve && (!can_raise || edge_bytes >= summary_bytes) {
                let saved = self.levels;
                while self.levels < LEVELS_MAX && self.retained_bytes() == before {
                    self.levels += 1;
                    self.refilter_edges();
                }
                if self.retained_bytes() < before {
                    continue;
                }
                // Cap reached with zero evictions: bytes are monotone
                // under re-filtering, so nothing ever faced a losing
                // coin — reverting wholesale restores the exact state.
                self.levels = saved;
            }
            if can_raise {
                let saved = self.tau_log2;
                while self.tau_log2 < TAU_LOG2_MAX && self.retained_bytes() == before {
                    self.tau_log2 += 1;
                    self.refilter_summaries();
                }
                if self.retained_bytes() < before {
                    continue;
                }
                self.tau_log2 = saved;
            }
            if !self.summaries.is_empty() {
                self.dirty = true;
                self.summaries.pop_first();
            } else {
                let e = self.retained.pop_front().expect("over budget ⇒ non-empty");
                self.dirty = true;
                let k = e.t.div_euclid(self.interval_len);
                self.trim_ceiling = Some(self.trim_ceiling.map_or(k, |c| c.max(k)));
            }
        }
    }

    /// Accounted bytes of coin-tier edges (complete intervals only):
    /// the bytes a `p` halving can actually evict.
    fn sampled_edge_bytes(&self) -> u64 {
        let (il, floor) = (self.interval_len, self.floor());
        self.retained
            .iter()
            .filter(|e| e.t.div_euclid(il) < floor)
            .count() as u64
            * EDGE_BYTES
    }

    /// Re-filter the reservoir under the current thresholds.
    fn refilter_edges(&mut self) {
        let (il, delta, seed, p, floor) = (
            self.interval_len,
            self.cfg.delta,
            self.cfg.seed,
            self.prob(),
            self.floor(),
        );
        let converted = &self.converted;
        self.retained
            .retain(|e| keeps_at(e.t, il, delta, seed, p, floor, converted));
    }

    /// Re-filter the summary tier under the current `τ`.
    fn refilter_summaries(&mut self) {
        let (seed, tau) = (self.cfg.seed, self.tau());
        self.summaries.retain(|&k, s| {
            window_kept(
                seed,
                k as u64,
                summary_pi(f64::from(s.mass), f64::from(s.p_conv), tau),
            )
        });
    }

    /// The summary threshold `τ = 2^tau_log2`.
    fn tau(&self) -> f64 {
        2f64.powi(self.tau_log2 as i32)
    }

    /// The bucket epoch holding interval `k`.
    fn epoch_of(&self, k: i64) -> i64 {
        k.saturating_mul(self.interval_len)
            .div_euclid(self.epoch_len)
    }

    /// Fold every kept summary of the oldest summary-bearing epoch
    /// into that epoch's bucket, freeing `SUMMARY_BYTES` each at zero
    /// added statistical cost: the contribution `x/π` and the variance
    /// term `(1−π)/π²·x²` are frozen at the `π` in force now — the
    /// inclusion probability each summary's coin has survived so far —
    /// so the fold re-randomises nothing. Refuses folds that would not
    /// free bytes net of a newly created bucket. Returns whether any
    /// fold ran.
    fn fold_oldest_epoch(&mut self) -> bool {
        let Some((&first, _)) = self.summaries.first_key_value() else {
            return false;
        };
        let epoch = self.epoch_of(first);
        let in_epoch = self
            .summaries
            .keys()
            .take_while(|&&k| self.epoch_of(k) == epoch)
            .count() as u64;
        let fresh_cost = if self.buckets.contains_key(&epoch) {
            0
        } else {
            BUCKET_BYTES
        };
        if in_epoch * SUMMARY_BYTES <= fresh_cost {
            return false;
        }
        let tau = self.tau();
        // hare-lint: allow(alloc, reason = "bucket tier: at most 9 live BUCKET_BYTES accumulators, accounted against the budget")
        let bucket = self.buckets.entry(epoch).or_insert(Bucket {
            est: [0.0; 36],
            var: [0.0; 36],
            folds: 0,
        });
        while let Some(entry) = self.summaries.first_entry() {
            let k = *entry.key();
            if k.saturating_mul(self.interval_len)
                .div_euclid(self.epoch_len)
                != epoch
            {
                break;
            }
            let s = entry.remove();
            let pi = summary_pi(f64::from(s.mass), f64::from(s.p_conv), tau);
            let factor = (1.0 - pi).max(0.0) / (pi * pi);
            for i in 0..36 {
                let x = f64::from(s.x[i]);
                bucket.est[i] = (f64::from(bucket.est[i]) + x / pi) as f32;
                bucket.var[i] = (f64::from(bucket.var[i]) + factor * x * x) as f32;
            }
            bucket.folds += 1;
        }
        true
    }

    /// The heaviest convertible interval: complete, coin-kept, never
    /// converted, clear of any trimmed zone (its backward context must
    /// be intact too, hence the `+ 1`), fully inside the live window,
    /// and heavy enough that a summary is smaller than its raw edges.
    /// Ties break toward the older interval. The reservoir is
    /// `t`-sorted, so one pass over consecutive runs counts every
    /// interval.
    fn best_convertible(&self) -> Option<i64> {
        let (il, seed, p, floor) = (self.interval_len, self.cfg.seed, self.prob(), self.floor());
        let mut best: Option<(u32, i64)> = None;
        let mut consider = |k: i64, c: u32| {
            if k >= floor
                || self.trim_ceiling.is_some_and(|t| k <= t.saturating_add(1))
                || self.converted.contains(&k)
                || u64::from(c) * EDGE_BYTES <= SUMMARY_BYTES
                || !window_kept(seed, k as u64, p)
                || self.watermark.is_some_and(|wm| {
                    k.saturating_mul(il).saturating_sub(self.cfg.delta)
                        < wm.saturating_sub(self.cfg.window)
                })
            {
                return;
            }
            if best.is_none_or(|(bc, bk)| c > bc || (c == bc && k < bk)) {
                best = Some((c, k));
            }
        };
        let mut cur: Option<(i64, u32)> = None;
        for e in &self.retained {
            let k = e.t.div_euclid(il);
            match cur {
                Some((ck, c)) if ck == k => cur = Some((ck, c + 1)),
                Some((ck, c)) => {
                    consider(ck, c);
                    cur = Some((k, 1));
                }
                None => cur = Some((k, 1)),
            }
        }
        if let Some((ck, c)) = cur {
            consider(ck, c);
        }
        best.map(|(_, k)| k)
    }

    /// Convert interval `k` into an exact summary: run the fused
    /// kernel over its retained edges plus δ of backward context and
    /// the δ-tail (all present — a kept interval retains its full
    /// content and both flanks), freeze the folded 36-motif vector,
    /// then drop every edge the summary makes redundant. The summary's
    /// coin is evaluated at `π = min(1, mass/τ, p)`; if it fails, the
    /// interval is evicted outright under that tighter threshold (only
    /// flank edges a contributing neighbour still reads survive).
    fn convert(&mut self, k: i64) {
        self.convert_with(k, self.prob());
    }

    /// [`Self::convert`] at an explicit conversion probability: the
    /// probability the interval's edges had of still being present at
    /// the moment of conversion (`p` from the coin tier, or 1 for an
    /// eager conversion of a just-completed, never-sampled interval).
    fn convert_with(&mut self, k: i64, p_conv: f64) {
        self.dirty = true;
        let (il, delta, seed) = (self.interval_len, self.cfg.delta, self.cfg.seed);
        let lo = k.saturating_mul(il);
        let mid = lo.saturating_add(il);
        let hi = mid.saturating_add(delta);
        let ctx = lo.saturating_sub(delta);
        // hare-lint: allow(alloc, reason = "conversion scratch: one interval's edges plus its δ flanks become a throwaway graph")
        let mut b = GraphBuilder::new();
        for e in &self.retained {
            if e.t >= ctx && e.t < hi {
                b.add_edge(e.src, e.dst, e.t);
            }
        }
        let g = b.build();
        // hare-lint: allow(alloc, reason = "conversion scratch: the interval's (node, range) runs")
        let mut runs: Vec<(NodeId, u32, u32)> = Vec::new();
        scan_interval_runs(&g, il, |kk, node, r| {
            if kk == k {
                runs.push((node, r.start as u32, r.end as u32));
            }
        });
        let mut tally = WindowTally::default();
        with_thread_scratch(g.num_nodes(), |scratch| {
            for &(node, s, e) in &runs {
                tally.touched = true;
                crate::fused::count_node_all_into(
                    &g,
                    node,
                    s as usize..e as usize,
                    delta,
                    scratch,
                    &mut tally.star,
                    &mut tally.pair,
                    &mut tally.tri,
                );
            }
        });
        let full = fold_fractional(&tally, &FoldTables::new());
        let x = full.map(|v| v as f32);
        let mass: f64 = full.iter().sum();
        let pi = summary_pi(mass, p_conv, self.tau());
        // Converted either way: the summary coin decides whether the
        // frozen vector is kept, not whether the edges come back. A
        // zero-mass interval stores nothing — its vector contributes
        // nothing, so discarding it is free, not sampling.
        self.converted.insert(k);
        if mass > 0.0 && window_kept(seed, k as u64, pi) {
            // hare-lint: allow(alloc, reason = "summary tier: one SUMMARY_BYTES entry per converted interval, accounted against the budget")
            // p is always a power of two, so the narrowing is exact.
            self.summaries.insert(
                k,
                Summary {
                    x,
                    mass: mass as f32,
                    p_conv: p_conv as f32,
                },
            );
        }
        // Re-filter the interval and both flanks: `keeps_at` now sees
        // `k` as converted, so only edges a contributing neighbour
        // still reads survive.
        let (p, floor) = (self.prob(), self.floor());
        let converted = &self.converted;
        self.retained.retain(|e| {
            e.t < ctx || e.t >= hi || keeps_at(e.t, il, delta, seed, p, floor, converted)
        });
    }

    /// Compute the tick estimates: rebuild a [`TemporalGraph`] from the
    /// retained live edges, run the exact fused kernel restricted to
    /// first-edge positions in contributing intervals, fold incomplete
    /// intervals at weight 1 and coin-kept intervals at `1/p`, and add
    /// every kept summary's exact vector at `1/π`, with the per-motif
    /// variance summing both tiers' Horvitz–Thompson terms into the
    /// normal-CI math of [`crate::sample`].
    ///
    /// While the budget has never bound this is the exact live-window
    /// count (integer-valued estimates, zero stderr, degenerate
    /// intervals), bit-identical to
    /// [`crate::windowed::WindowedCounter::counts`] on the same stream.
    #[must_use]
    pub fn estimates(&self) -> StreamEstimates {
        self.estimates_probed(&NoopProbe)
    }

    /// [`StreamingEstimator::estimates`] with a [`Probe`] observing the
    /// tick: the whole rebuild-count-reduce pass is attributed to
    /// [`Phase::Summarise`]. Bit-identical to
    /// [`StreamingEstimator::estimates`] for every probe.
    #[must_use]
    pub fn estimates_probed<P: Probe>(&self, probe: &P) -> StreamEstimates {
        probe.span(Phase::Summarise, || self.estimates_inner())
    }

    fn estimates_inner(&self) -> StreamEstimates {
        // hare-lint: allow(alloc, reason = "per-tick setup: the retained live edges become one graph")
        let mut b = GraphBuilder::new();
        for e in &self.retained {
            b.add_edge(e.src, e.dst, e.t);
        }
        let g = b.build();
        let p = self.prob();
        let z = normal_quantile(0.5 + self.cfg.confidence / 2.0);
        let mut cells = [[MotifEstimate::default(); 6]; 6];
        let mut exact = None;
        let intervals_sampled;
        let intervals_exact;
        let intervals_summarized = self.summaries.len();

        if self.levels == 0 && !self.dirty {
            // Degenerate exact path: the budget never bound, so the
            // batch count over the retained (= live) edges *is* the
            // windowed count — integer round-trip, zero-width intervals.
            let counts = crate::count_motifs(&g, self.cfg.delta).matrix;
            for (m, n) in counts.iter() {
                let estimate = n as f64;
                cells[m.row() as usize - 1][m.col() as usize - 1] = MotifEstimate {
                    estimate,
                    stderr: 0.0,
                    ci_lo: estimate,
                    ci_hi: estimate,
                };
            }
            let (exact_n, coin_n) = self.count_nonempty_intervals(&g);
            intervals_exact = exact_n;
            intervals_sampled = coin_n;
            exact = Some(counts);
        } else {
            let (exact_tallies, coin_tallies) = self.tally_tiers(&g);
            intervals_exact = exact_tallies.len();
            intervals_sampled = coin_tallies.len();
            let tables = FoldTables::new();
            let mut exact_total = WindowTally::default();
            for t in &exact_tallies {
                exact_total.merge(t);
            }
            let exact_base = fold_fractional(&exact_total, &tables);
            let mut total = WindowTally::default();
            let mut var = [0.0f64; 36];
            let coin_factor = (1.0 - p).max(0.0) / (p * p);
            for t in &coin_tallies {
                total.merge(t);
                let x = fold_fractional(t, &tables);
                for (s, v) in var.iter_mut().zip(x) {
                    *s += coin_factor * v * v;
                }
            }
            let base = fold_fractional(&total, &tables);
            let tau = self.tau();
            let mut summary_est = [0.0f64; 36];
            // Deterministic bound on the f32 storage rounding of the
            // summary vectors: each component is off by at most one
            // half-ulp, |x₃₂ − x| ≤ |x₃₂|·ε₃₂. Widens the interval
            // additively so that summary-dominated cells with zero
            // sampling variance still cover the exact value.
            let mut quant = [0.0f64; 36];
            for s in self.summaries.values() {
                let pi = summary_pi(f64::from(s.mass), f64::from(s.p_conv), tau);
                let factor = (1.0 - pi).max(0.0) / (pi * pi);
                for i in 0..36 {
                    let x = f64::from(s.x[i]);
                    summary_est[i] += x / pi;
                    var[i] += factor * x * x;
                    quant[i] += x.abs() * f64::from(f32::EPSILON) / pi;
                }
            }
            let wstart = self.watermark.map(|wm| wm.saturating_sub(self.cfg.window));
            for (&b, bucket) in &self.buckets {
                // If the window's trailing edge is inside this epoch,
                // part of the folded mass has expired but cannot be
                // shed — the deterministic straddle bound widens the
                // interval by the whole bucket estimate instead.
                let straddles = wstart.is_some_and(|ws| b.saturating_mul(self.epoch_len) < ws);
                let rounding = f64::from(bucket.folds) * f64::from(f32::EPSILON);
                for i in 0..36 {
                    let e = f64::from(bucket.est[i]);
                    summary_est[i] += e;
                    var[i] += f64::from(bucket.var[i]);
                    quant[i] += e * rounding + if straddles { e } else { 0.0 };
                }
            }
            for (i, cell) in cells.iter_mut().flatten().enumerate() {
                let estimate = exact_base[i] + base[i] / p + summary_est[i];
                let stderr = var[i].sqrt();
                *cell = MotifEstimate {
                    estimate,
                    stderr,
                    ci_lo: (estimate - z * stderr - quant[i]).max(0.0),
                    ci_hi: estimate + z * stderr + quant[i],
                };
            }
        }

        StreamEstimates {
            cells,
            exact,
            prob: p,
            confidence: self.cfg.confidence,
            delta: self.cfg.delta,
            window: self.cfg.window,
            interval_len: self.interval_len,
            watermark: self.watermark,
            retained_edges: self.retained.len(),
            retained_bytes: self.retained_bytes(),
            budget_bytes: self.cfg.budget_bytes,
            intervals_sampled,
            intervals_exact,
            intervals_summarized,
        }
    }

    /// Number of distinct intervals holding at least one retained event
    /// (the `p = 1` analogue of the tier tally counts), split into
    /// `(incomplete, complete)`. Runs arrive node-major, so the same
    /// interval recurs across nodes; dedup via the sorted run keys.
    fn count_nonempty_intervals(&self, g: &TemporalGraph) -> (usize, usize) {
        let floor = self.floor();
        // hare-lint: allow(alloc, reason = "per-tick metadata: one key per (interval, node) run")
        let mut keys: Vec<i64> = Vec::new();
        scan_interval_runs(g, self.interval_len, |k, _, _| keys.push(k));
        keys.sort_unstable();
        keys.dedup();
        let exact_n = keys.iter().filter(|&&k| k >= floor).count();
        (exact_n, keys.len() - exact_n)
    }

    /// Per-interval fused tallies over the retained graph, restricted to
    /// first-edge positions in contributing intervals, split into the
    /// exact tier (incomplete intervals, weight 1) and the coin tier
    /// (complete kept intervals, weight `1/p`; converted intervals are
    /// skipped — their contribution is the frozen vector). Sequential
    /// or interval-parallel per [`StreamSampleConfig::threads`]; tallies
    /// come out in ascending interval order on both paths, so the fold
    /// is bit-identical across thread counts.
    fn tally_tiers(&self, g: &TemporalGraph) -> (Vec<WindowTally>, Vec<WindowTally>) {
        let (il, seed, p, floor) = (self.interval_len, self.cfg.seed, self.prob(), self.floor());
        // hare-lint: allow(alloc, reason = "per-tick setup: one entry per contributing (interval, node) run")
        let mut runs: Vec<(i64, NodeId, u32, u32)> = Vec::new();
        // hare-lint: allow(alloc, reason = "per-tick setup: one entry per exact-tier (interval, node) run")
        let mut exact_runs: Vec<(i64, NodeId, u32, u32)> = Vec::new();
        scan_interval_runs(g, il, |k, node, range| {
            if k >= floor {
                exact_runs.push((k, node, range.start as u32, range.end as u32));
            } else if !self.converted.contains(&k) && window_kept(seed, k as u64, p) {
                runs.push((k, node, range.start as u32, range.end as u32));
            }
        });
        let exact_tallies = self.tally_interval_runs(g, exact_runs);
        let coin_tallies = self.tally_interval_runs(g, runs);
        (exact_tallies, coin_tallies)
    }

    /// Group node-major `(interval, node, range)` runs by interval and
    /// run the fused kernel over each group.
    fn tally_interval_runs(
        &self,
        g: &TemporalGraph,
        mut runs: Vec<(i64, NodeId, u32, u32)>,
    ) -> Vec<WindowTally> {
        let delta = self.cfg.delta;
        // Node-major → interval-major; the stable sort keeps each
        // interval's runs in node order.
        runs.sort_by_key(|&(k, _, _, _)| k);
        // hare-lint: allow(alloc, reason = "per-tick setup: one (start, end) group per kept interval")
        let mut groups: Vec<(usize, usize)> = Vec::new();
        let mut i = 0usize;
        while i < runs.len() {
            let k = runs[i].0;
            let mut j = i + 1;
            while j < runs.len() && runs[j].0 == k {
                j += 1;
            }
            groups.push((i, j));
            i = j;
        }

        let tally_group = |&(s, e): &(usize, usize)| -> WindowTally {
            let mut tally = WindowTally::default();
            with_thread_scratch(g.num_nodes(), |scratch| {
                for &(_, node, lo, hi) in &runs[s..e] {
                    tally.touched = true;
                    crate::fused::count_node_all_into(
                        g,
                        node,
                        lo as usize..hi as usize,
                        delta,
                        scratch,
                        &mut tally.star,
                        &mut tally.pair,
                        &mut tally.tri,
                    );
                }
            });
            tally
        };

        if self.effective_threads() <= 1 {
            // hare-lint: allow(alloc, reason = "per-tick result: one tally per kept interval")
            groups.iter().map(tally_group).collect()
        } else {
            rayon::ThreadPoolBuilder::new()
                .num_threads(self.cfg.threads)
                .build()
                .expect("failed to build rayon thread pool")
                .install(|| {
                    groups
                        .par_iter()
                        .map(tally_group)
                        // hare-lint: allow(alloc, reason = "per-tick result: one tally per kept interval")
                        .collect()
                })
        }
    }

    fn effective_threads(&self) -> usize {
        if self.cfg.threads > 0 {
            self.cfg.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Keep probability of a summary: proportional to its *motif mass*
/// `min(1, m/τ)` — probability-proportional-to-size over the value the
/// estimator actually sums, so a dropped summary's Horvitz–Thompson
/// variance `(1−π)/π·m²` grows only linearly in `m·τ` and the
/// mass-heavy head survives deterministically (edge count is the wrong
/// proxy: a 30-edge interval dense on few nodes can hold hundreds of
/// instances). Capped by the coin-tier `p` its interval had already
/// survived at conversion time (its coin has only been tested below
/// that).
fn summary_pi(mass: f64, p_conv: f64, tau: f64) -> f64 {
    (mass / tau).min(1.0).min(p_conv)
}

/// Whether an edge at `t` must be retained. An interval *contributes*
/// through its raw edges while it is incomplete (`k >= floor`, the
/// provisional head) or a kept, never-converted coin-tier interval.
/// An edge is retained when its own interval contributes, or it falls
/// in the δ-**tail** a contributing predecessor reads past its right
/// boundary (δ-spanning instances whose first edge is in the
/// predecessor), or in the δ of **backward context** a contributing
/// successor reads before its left boundary (the per-centre triangle
/// attribution of [`fold_fractional`] books a centre under the
/// interval of the centre's *own* first edge, up to δ after the
/// instance's earliest edge). A pure function of copied state so the
/// reservoir can be re-filtered in place without aliasing the
/// estimator.
fn keeps_at(
    t: Timestamp,
    interval_len: Timestamp,
    delta: Timestamp,
    seed: u64,
    p: f64,
    floor: i64,
    converted: &BTreeSet<i64>,
) -> bool {
    let contributes =
        |k: i64| k >= floor || (!converted.contains(&k) && window_kept(seed, k as u64, p));
    let k = t.div_euclid(interval_len);
    if contributes(k) {
        return true;
    }
    if delta == 0 {
        return false;
    }
    let rem = t.rem_euclid(interval_len);
    (rem < delta && contributes(k.wrapping_sub(1)))
        || (rem >= interval_len - delta && contributes(k.wrapping_add(1)))
}

/// Stream every `(interval, node, first-edge position range)` run of
/// `g`, with intervals of length `len` anchored at **absolute time 0**
/// (`k = ⌊t / len⌋` by euclidean division) — unlike
/// [`temporal_graph::slices::scan`], whose grid is anchored at the
/// graph's earliest timestamp and would shift as the window slides.
fn scan_interval_runs(
    g: &TemporalGraph,
    len: Timestamp,
    mut visit: impl FnMut(i64, NodeId, std::ops::Range<usize>),
) {
    debug_assert!(len > 0);
    for u in g.node_ids() {
        let ts = g.node_events(u).ts_lane();
        let mut i = 0usize;
        while i < ts.len() {
            let t = ts.get(i);
            let k = t.div_euclid(len);
            // Saturating end bound: at the extreme positive edge of the
            // timestamp range the interval simply absorbs the rest.
            let end = k
                .saturating_mul(len)
                .saturating_add(len)
                .max(t.saturating_add(1));
            let mut j = i + 1;
            while j < ts.len() && ts.get(j) < end {
                j += 1;
            }
            visit(k, u, i..j);
            i = j;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::windowed::WindowedCounter;
    use temporal_graph::gen::{erdos_renyi_temporal, GenConfig};

    fn cfg(delta: Timestamp, window: Timestamp, budget: u64) -> StreamSampleConfig {
        StreamSampleConfig::new(delta, window, budget)
    }

    /// Drive the same in-order stream through the estimator and the
    /// exact windowed counter, asserting tick identity under a
    /// retain-everything budget.
    #[test]
    fn big_budget_ticks_match_windowed_counter() {
        let g = erdos_renyi_temporal(12, 300, 250, 5);
        let (delta, window) = (60, 140);
        let mut est = StreamingEstimator::new(cfg(delta, window, u64::MAX));
        let mut wc = WindowedCounter::new(delta, window);
        for e in g.edges() {
            est.push(e.src, e.dst, e.t).unwrap();
            wc.push(e.src, e.dst, e.t).unwrap();
            let tick = est.estimates();
            assert_eq!(tick.prob, 1.0);
            assert_eq!(tick.as_exact(), Some(wc.counts()));
            for (m, cell) in tick.iter() {
                assert_eq!(cell.estimate, wc.counts().get(m) as f64, "{m}");
                assert_eq!(cell.stderr, 0.0, "{m}");
            }
        }
    }

    #[test]
    fn budget_is_never_exceeded_and_prob_halves() {
        let g = GenConfig {
            nodes: 30,
            edges: 2_000,
            time_span: 20_000,
            seed: 3,
            ..GenConfig::default()
        }
        .generate();
        let delta = 200;
        let budget = 64 * EDGE_BYTES; // room for 64 edges
        let mut est = StreamingEstimator::new(cfg(delta, 5_000, budget));
        for e in g.edges() {
            est.push(e.src, e.dst, e.t).unwrap();
            assert!(
                est.retained_bytes() <= budget,
                "budget exceeded at t={}: {} > {budget}",
                e.t,
                est.retained_bytes()
            );
        }
        assert!(
            est.prob() < 1.0,
            "a 2000-edge stream must overflow 64 slots"
        );
        let tick = est.estimates();
        assert_eq!(tick.as_exact(), None);
        assert!(tick.retained_bytes <= budget);
        assert_eq!(tick.budget_bytes, budget);
    }

    /// A budget that binds but is relieved by conversions alone leaves
    /// `p = 1` and `τ = 1`: every interval is still included with
    /// probability 1 (raw or summarized), so the tick estimates equal
    /// the exact windowed counts with zero stderr even though the
    /// bit-exact path is off.
    #[test]
    fn conversions_preserve_exact_estimates_while_prob_is_one() {
        // Twelve mid-interval 60-edge bursts: heavy enough that each
        // conversion frees well over SUMMARY_BYTES even while both
        // neighbours retain their delta flanks, so conversions alone
        // always relieve the budget and neither p nor tau ever
        // escalates -- every inclusion probability stays 1 and the
        // estimate must reproduce the exact windowed count.
        let (delta, window) = (50i64, 100_000i64);
        let budget = 5_000u64;
        let mut c = cfg(delta, window, budget);
        c.window_factor = 4; // interval length 200
        let mut est = StreamingEstimator::new(c);
        let mut wc = WindowedCounter::new(delta, window);
        for k in 0..12i64 {
            for i in 0..60i64 {
                let src = (i % 6) as u32;
                let dst = ((i + k) % 6) as u32;
                let dst = if dst == src { (dst + 1) % 6 } else { dst };
                let t = k * 200 + 25 + 2 * i;
                est.push(src, dst, t).unwrap();
                wc.push(src, dst, t).unwrap();
                assert!(est.retained_bytes() <= budget);
            }
        }
        est.flush();
        let tick = est.estimates();
        assert_eq!(tick.prob, 1.0, "conversions alone must relieve this budget");
        assert_eq!(est.summary_threshold(), 1.0, "τ must never double here");
        assert!(
            est.summarized_intervals() > 0,
            "the budget must have forced conversions"
        );
        assert_eq!(
            tick.as_exact(),
            None,
            "summaries disable the bit-exact path"
        );
        for (m, n) in wc.counts().iter() {
            let cell = tick.get(m);
            assert!(
                (cell.estimate - n as f64).abs() < 1e-6,
                "{m}: {} vs exact {n}",
                cell.estimate
            );
            assert_eq!(cell.stderr, 0.0, "{m}: π = 1 summaries carry no variance");
        }
    }

    #[test]
    fn same_seed_same_stream_is_bit_identical() {
        let g = GenConfig {
            nodes: 25,
            edges: 1_200,
            time_span: 9_000,
            seed: 8,
            ..GenConfig::default()
        }
        .generate();
        let run = |threads: usize| {
            let mut c = cfg(150, 2_000, 96 * EDGE_BYTES);
            c.threads = threads;
            let mut est = StreamingEstimator::new(c);
            for e in g.edges() {
                est.push(e.src, e.dst, e.t).unwrap();
            }
            est.flush();
            est.estimates()
        };
        let a = run(1);
        let b = run(1);
        assert_eq!(a, b);
        let par = run(3);
        assert_eq!(a, par, "thread-count must not change the tick");
    }

    #[test]
    fn mirror_of_windowed_acceptance_semantics() {
        let mut est = StreamingEstimator::new(StreamSampleConfig {
            slack: 5,
            ..cfg(10, 100, u64::MAX)
        });
        est.push(0, 1, 50).unwrap();
        assert_eq!(
            est.push(1, 2, 44),
            Err(StreamError::OutOfOrder { got: 44, last: 45 })
        );
        est.push(1, 2, 45).unwrap();
        assert_eq!(est.push(2, 2, 50), Err(StreamError::SelfLoop));
        assert_eq!(est.num_accepted(), 2);
        est.advance_to(90);
        assert_eq!(
            est.push(1, 2, 80),
            Err(StreamError::OutOfOrder { got: 80, last: 90 })
        );
    }

    #[test]
    fn expiry_drains_the_reservoir() {
        let mut est = StreamingEstimator::new(cfg(10, 50, u64::MAX));
        est.push(0, 1, 100).unwrap();
        est.push(1, 2, 105).unwrap();
        est.push(2, 0, 108).unwrap();
        assert_eq!(est.retained_edges(), 3);
        assert_eq!(est.estimates().get(crate::motif::m(2, 6)).estimate, 1.0);
        est.advance_to(151); // the t=100 edge is now W+1 old
        assert_eq!(est.retained_edges(), 2);
        est.advance_to(200);
        assert_eq!(est.retained_edges(), 0);
        assert_eq!(est.estimates().total_estimate(), 0.0);
    }

    #[test]
    fn retention_tail_covers_delta_past_kept_intervals() {
        // With p < 1, an edge within delta after (tail) or before
        // (backward context) a kept interval must be retained even when
        // its own (complete) interval is dropped.
        let (il, delta, seed) = (40i64, 10i64, 7u64);
        let none: BTreeSet<i64> = BTreeSet::new();
        for p in [0.5, 0.25, 0.125] {
            for t in -200i64..200 {
                let k = t.div_euclid(il);
                let expected = window_kept(seed, k as u64, p)
                    || (t.rem_euclid(il) < delta && window_kept(seed, (k - 1) as u64, p))
                    || (t.rem_euclid(il) >= il - delta && window_kept(seed, (k + 1) as u64, p));
                assert_eq!(
                    keeps_at(t, il, delta, seed, p, i64::MAX, &none),
                    expected,
                    "t={t} p={p}"
                );
            }
        }
    }

    #[test]
    fn estimator_tracks_exact_within_ci_on_average() {
        let g = GenConfig {
            nodes: 60,
            edges: 4_000,
            time_span: 80_000,
            mean_burst_len: 2.5,
            seed: 11,
            ..GenConfig::default()
        }
        .generate();
        let (delta, window) = (300, 80_000);
        let mut covered = 0usize;
        let mut cells = 0usize;
        for seed in 0..20u64 {
            let mut c = cfg(delta, window, 600 * EDGE_BYTES);
            c.seed = seed;
            c.window_factor = 4;
            let mut est = StreamingEstimator::new(c);
            let mut wc = WindowedCounter::new(delta, window);
            for e in g.edges() {
                est.push(e.src, e.dst, e.t).unwrap();
                wc.push(e.src, e.dst, e.t).unwrap();
            }
            est.flush();
            let exact = wc.counts();
            let tick = est.estimates();
            assert_eq!(tick.as_exact(), None, "budget must bind for this test");
            assert!(
                tick.prob < 1.0 || est.summary_threshold() > 1.0 || est.folded_epochs() > 0,
                "this budget must force genuine sampling"
            );
            for (m, n) in exact.iter() {
                if n > 0 {
                    cells += 1;
                    covered += usize::from(tick.get(m).covers(n));
                }
            }
        }
        let frac = covered as f64 / cells as f64;
        assert!(frac >= 0.85, "aggregate CI coverage {frac:.3} too low");
    }

    /// Every stored summary must equal the same interval's restricted
    /// tally on the full (uncompressed) graph: the conversion graph's
    /// δ flanks must reproduce cross-boundary attribution exactly,
    /// even at `window_factor = 1` where every instance can straddle
    /// interval boundaries and the per-centre triangle attribution
    /// reaches a full interval backwards.
    #[test]
    fn summary_vectors_match_full_graph_interval_tallies() {
        let (delta, window) = (50i64, 10_000i64);
        let budget = 5_000u64;
        let mut c = cfg(delta, window, budget);
        c.window_factor = 1;
        let mut est = StreamingEstimator::new(c);
        let mut b = temporal_graph::GraphBuilder::new();
        for k in 0..12i64 {
            for i in 0..30i64 {
                let src = (i % 5) as u32;
                let dst = ((i + k) % 5) as u32;
                let dst = if dst == src { (dst + 1) % 5 } else { dst };
                let t = k * 50 + i;
                est.push(src, dst, t).unwrap();
                b.add_edge(src, dst, t);
            }
        }
        est.flush();
        assert!(
            est.summarized_intervals() >= 4,
            "this workload must force several conversions"
        );
        let g = b.build();
        let il = est.interval_len();
        let mut runs: Vec<(i64, u32, u32, u32)> = Vec::new();
        scan_interval_runs(&g, il, |k, node, r| {
            runs.push((k, node, r.start as u32, r.end as u32));
        });
        let tables = FoldTables::new();
        for (&k, s) in &est.summaries {
            let mut tally = WindowTally::default();
            with_thread_scratch(g.num_nodes(), |scratch| {
                for &(kk, node, lo, hi) in &runs {
                    if kk == k {
                        tally.touched = true;
                        crate::fused::count_node_all_into(
                            &g,
                            node,
                            lo as usize..hi as usize,
                            delta,
                            scratch,
                            &mut tally.star,
                            &mut tally.pair,
                            &mut tally.tri,
                        );
                    }
                }
            });
            let full = fold_fractional(&tally, &tables).map(|v| v as f32);
            assert_eq!(
                s.x, full,
                "summary of interval {k} diverges from the full graph"
            );
        }
    }

    #[test]
    #[should_panic(expected = "window must be at least delta")]
    fn window_smaller_than_delta_panics() {
        let _ = StreamingEstimator::new(cfg(10, 5, 0));
    }
}
