//! Sliding-window motif counting over a temporal graph's timeline.
//!
//! The paper motivates exact counting with "frequently updated dynamic
//! systems" (§I) — monitoring applications that track motif statistics
//! over time rather than once over the whole history. This module
//! provides that workflow: slice the chronological edge stream into
//! (possibly overlapping) windows and count each window with the FAST
//! kernels, reusing the parallel engine across windows.
//!
//! Window boundaries operate on the *graph* timeline; the motif window δ
//! still applies inside each slice, so `window_len` should be ≥ δ for
//! meaningful results (instances crossing slice boundaries are not
//! counted — by design: each row describes its slice).

use crate::counters::MotifCounts;
use crate::hare::Hare;
use temporal_graph::{GraphBuilder, TemporalGraph, Timestamp};

/// One window's result row.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowCounts {
    /// Inclusive window start time.
    pub start: Timestamp,
    /// Exclusive window end time.
    pub end: Timestamp,
    /// Number of edges in the window.
    pub edges: usize,
    /// Motif counts within the window.
    pub counts: MotifCounts,
}

/// Count motifs in sliding windows of length `window_len`, advancing by
/// `stride` (`stride == window_len` gives tumbling windows; smaller
/// strides overlap). Returns one row per window overlapping the graph's
/// time span.
///
/// # Panics
/// Panics if `window_len <= 0` or `stride <= 0`.
#[must_use]
pub fn sliding_counts(
    g: &TemporalGraph,
    delta: Timestamp,
    window_len: Timestamp,
    stride: Timestamp,
    engine: &Hare,
) -> Vec<WindowCounts> {
    assert!(window_len > 0, "window_len must be positive");
    assert!(stride > 0, "stride must be positive");
    let (Some(min_t), Some(max_t)) = (g.min_time(), g.max_time()) else {
        return Vec::new();
    };

    let edges = g.edges();
    let mut out = Vec::new();
    let mut start = min_t;
    while start <= max_t {
        let end = start + window_len;
        let lo = edges.partition_point(|e| e.t < start);
        let hi = edges.partition_point(|e| e.t < end);
        let counts = if hi - lo >= 3 {
            let mut b = GraphBuilder::with_capacity(hi - lo).compact_ids(true);
            b.extend(edges[lo..hi].iter().copied());
            engine.count_all(&b.build(), delta)
        } else {
            MotifCounts::default()
        };
        out.push(WindowCounts {
            start,
            end,
            edges: hi - lo,
            counts,
        });
        start += stride;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motif::m;
    use temporal_graph::TemporalEdge;

    fn engine() -> Hare {
        Hare::with_threads(1)
    }

    #[test]
    fn tumbling_windows_partition_timeline() {
        let g = temporal_graph::gen::erdos_renyi_temporal(20, 500, 10_000, 4);
        let rows = sliding_counts(&g, 100, 2_500, 2_500, &engine());
        assert!(rows.len() >= 4);
        let total_edges: usize = rows.iter().map(|r| r.edges).sum();
        assert_eq!(total_edges, g.num_edges());
        for w in rows.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn burst_shows_up_in_its_window_only() {
        // Quiet background plus a cycle burst at t in [5000, 5200].
        let mut edges = vec![TemporalEdge::new(0, 1, 100), TemporalEdge::new(2, 3, 9_000)];
        for k in 0..5 {
            let t0 = 5_000 + k * 40;
            edges.push(TemporalEdge::new(10, 11, t0));
            edges.push(TemporalEdge::new(11, 12, t0 + 5));
            edges.push(TemporalEdge::new(12, 10, t0 + 10));
        }
        let g = temporal_graph::TemporalGraph::from_edges(edges);
        // δ = 20s: each injected cycle spans 10s, bursts are 40s apart,
        // so cross-burst combinations are excluded and exactly the five
        // injected cycles count.
        let rows = sliding_counts(&g, 20, 1_000, 1_000, &engine());
        let mut total_cycles = 0;
        for row in &rows {
            let cycles = row.counts.get(m(2, 6));
            if cycles > 0 {
                // Only windows overlapping the burst interval may fire.
                assert!(
                    row.start <= 5_200 && row.end > 5_000,
                    "quiet window [{}, {}) reported cycles",
                    row.start,
                    row.end
                );
            }
            total_cycles += cycles;
        }
        // Every cycle completes within one window (burst cycles span 10s
        // each, windows are 1000s) so all 5 are observed somewhere.
        assert_eq!(total_cycles, 5);
    }

    #[test]
    fn overlapping_windows_count_instances_repeatedly() {
        let g = temporal_graph::gen::erdos_renyi_temporal(10, 200, 1_000, 7);
        let tumbling = sliding_counts(&g, 50, 500, 500, &engine());
        let overlapping = sliding_counts(&g, 50, 500, 250, &engine());
        assert!(overlapping.len() > tumbling.len());
    }

    #[test]
    fn empty_graph_yields_no_windows() {
        let g = temporal_graph::TemporalGraph::from_edges(vec![]);
        assert!(sliding_counts(&g, 10, 100, 100, &engine()).is_empty());
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        let g = temporal_graph::gen::paper_fig1_toy();
        let _ = sliding_counts(&g, 10, 100, 0, &engine());
    }

    #[test]
    fn whole_span_window_equals_global_count() {
        let g = temporal_graph::gen::paper_fig1_toy();
        let span = g.time_span() + 1;
        let rows = sliding_counts(&g, 10, span, span, &engine());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].counts.matrix, crate::count_motifs(&g, 10).matrix);
    }
}
