//! FAST-Tri (Algorithm 2): exact counting of all triangle temporal motifs.
//!
//! For every node `u` taken as center, every pair of incident edges
//! `(e_i, e_j)` with `i < j`, `t_j − t_i ≤ δ` and distinct far endpoints
//! `v ≠ w` spans a potential triangle. The third side must come from the
//! pair edge list `E(v, w)`; the index is binary-searched to the δ window
//! `[t_j − δ, t_i + δ]` (the paper's "implementation trick" bounding `ξ`
//! by `d^δ`), and each edge inside it is classified by time position
//! (§IV.B.1):
//!
//! * **Triangle-I** — the opposite edge precedes `e_i`,
//! * **Triangle-II** — it lies between `e_i` and `e_j`,
//! * **Triangle-III** — it follows `e_j`.
//!
//! Classification compares the global `(t, edge_id)` total order rather
//! than raw timestamps so timestamp ties resolve identically to the
//! enumeration oracle (DESIGN.md §2.2); the δ windows still use raw
//! timestamps exactly as the paper states.
//!
//! Every triangle instance is discovered three times — once per vertex,
//! landing in the three isomorphic counter cells of its class (Fig. 8) —
//! and divided by 3 at fold time ([`TriCounter::add_to_matrix`]). The
//! paper uses the same ÷3 strategy in multi-threaded mode to keep threads
//! dependency-free; we use it unconditionally so single- and multi-thread
//! runs share one code path and produce bit-identical counters.
//!
//! hare-lint: no-alloc

use crate::counters::TriCounter;
use temporal_graph::{NodeId, TemporalGraph, Timestamp, TsLane, TsRead};

/// Count triangle motifs centered at `u`, restricted to first-edge
/// positions `first_edge_range` within `S_u` (full range = Algorithm 2;
/// sub-ranges are HARE's intra-node parallel unit).
///
/// Data-oriented like [`crate::fast_star`]: the `(e_i, e_j)` window scan
/// streams the SoA timestamp lane, the type classification is branch-free
/// (two total-order comparisons summed), and every increment goes to a
/// flat `[u64; 24]` accumulator folded into the shared counter once per
/// call.
pub fn count_node_tri_range(
    g: &TemporalGraph,
    u: NodeId,
    first_edge_range: std::ops::Range<usize>,
    delta: Timestamp,
    tri: &mut TriCounter,
) {
    let mut tri_acc = [0u64; 24];
    count_node_tri_into(g, u, first_edge_range, delta, &mut tri_acc);
    tri.add_flat(&tri_acc);
}

/// The scan proper, accumulating into a caller-owned flat array so the
/// whole-graph driver folds into the counter once per run.
fn count_node_tri_into(
    g: &TemporalGraph,
    u: NodeId,
    first_edge_range: std::ops::Range<usize>,
    delta: Timestamp,
    tri_acc: &mut [u64; 24],
) {
    let s = g.node_events(u);
    match s.ts_lane() {
        TsLane::Raw(ts) => tri_scan(g, &s, ts, first_edge_range, delta, tri_acc),
        TsLane::Packed(p) => tri_scan(g, &s, p, first_edge_range, delta, tri_acc),
    }
}

/// The scan body, generic over the timestamp lane representation. The
/// δ-window end `j_end` is maintained by a monotone two-pointer advance
/// (`t_i + δ` never decreases with `i`), so the inner loop runs with a
/// hoisted bound.
fn tri_scan<T: TsRead>(
    g: &TemporalGraph,
    s: &temporal_graph::NodeEvents<'_>,
    ts: T,
    first_edge_range: std::ops::Range<usize>,
    delta: Timestamp,
    tri_acc: &mut [u64; 24],
) {
    let packed = s.packed_lane();
    let eids = s.edge_lane();
    let pairs = g.pairs();
    let n_events = ts.len();
    debug_assert!(first_edge_range.end <= n_events);

    let mut j_end = first_edge_range.start;
    for i in first_edge_range {
        let t_i = ts.at(i);
        // Window upper bound: Triangle-III needs t_k − t_i ≤ δ.
        let t_hi = t_i.saturating_add(delta);
        if j_end <= i {
            j_end = i + 1;
        }
        while j_end < n_events && ts.at(j_end) <= t_hi {
            j_end += 1;
        }
        // Empty δ-window: nothing can complete — skip all setup.
        if i + 1 >= j_end {
            continue;
        }
        let p_i = packed[i];
        let v = p_i >> 1;
        let bi = ((p_i & 1) as usize) << 2; // di·4, hoisted
                                            // Edge ids are chronological ranks under the global (t, input
                                            // position) total order, so bare id compares classify types.
        let ei_id = eids[i];
        // v's neighbour signature: one register test rejects the frequent
        // wedges with no closing edge before any hash probe.
        let bloom_v = pairs.bloom_of(v);
        // One-entry pair-list memo: bursty sequences hit the same far
        // endpoint in runs, making consecutive probes of E(v, w) free.
        let mut memo_w = u32::MAX;
        let mut memo_evs: &[temporal_graph::PairEvent] = &[];
        for j in i + 1..j_end {
            let p_j = packed[j];
            let w = p_j >> 1;
            if w == v || !temporal_graph::PairIndex::bloom_may_connect(bloom_v, w) {
                continue;
            }
            if w != memo_w {
                memo_w = w;
                memo_evs = pairs.events_between(v, w);
            }
            let evs = memo_evs;
            if evs.is_empty() {
                continue;
            }
            let dk_flip = usize::from(v >= w); // dirs stored relative to lo
            let base = bi | (((p_j & 1) as usize) << 1); // di·4 + dj·2
            let ej_id = eids[j];
            // Window lower bound: Triangle-I needs t_j − t_k ≤ δ.
            let t_lo = ts.at(j).saturating_sub(delta);
            let start = evs.partition_point(|p| p.t < t_lo);
            for p in &evs[start..] {
                if p.t > t_hi {
                    break;
                }
                let dk = p.dir_from_lo.index() ^ dk_flip;
                // Type by position in the chronological total order:
                // before e_i → I (0), between → II (1), after e_j → III.
                let ty = usize::from(p.edge >= ei_id) + usize::from(p.edge >= ej_id);
                tri_acc[(ty << 3) | base | dk] += 1;
            }
        }
    }
}

/// Count triangle motifs centered at `u` over the whole of `S_u`.
pub fn count_node_tri(g: &TemporalGraph, u: NodeId, delta: Timestamp, tri: &mut TriCounter) {
    let len = g.node_events(u).len();
    count_node_tri_range(g, u, 0..len, delta, tri);
}

/// Sequential FAST-Tri over the whole graph. The returned counter holds
/// each instance three times (once per vertex); fold with
/// [`TriCounter::add_to_matrix`] to obtain per-class counts.
#[must_use]
pub fn fast_tri(g: &TemporalGraph, delta: Timestamp) -> TriCounter {
    let mut tri_acc = [0u64; 24];
    for u in g.node_ids() {
        let len = g.node_events(u).len();
        if len < 2 {
            continue; // no (e_i, e_j) window can open
        }
        count_node_tri_into(g, u, 0..len, delta, &mut tri_acc);
    }
    let mut tri = TriCounter::default();
    tri.add_flat(&tri_acc);
    tri
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::MotifMatrix;
    use crate::motif::m;
    use crate::motif::TriType::{I, II, III};
    use temporal_graph::gen::paper_fig1_toy;
    use temporal_graph::Dir::{In, Out};
    use temporal_graph::TemporalEdge;

    /// §IV.B.2 walks Algorithm 2 over center v_e of the Fig. 1 toy graph
    /// with δ = 10s: exactly two counts, Tri[III,o,o,o] and — after
    /// correcting the paper's typo against Fig. 8 / the §III M46 claim —
    /// Tri[II,o,in,in].
    #[test]
    fn paper_walkthrough_center_ve() {
        let g = paper_fig1_toy();
        let mut tri = TriCounter::default();
        count_node_tri(&g, 4, 10, &mut tri);
        assert_eq!(tri.get(III, Out, Out, Out), 1, "Tri[III,o,o,o]");
        assert_eq!(tri.get(II, Out, In, In), 1, "Tri[II,o,in,in]");
        assert_eq!(tri.total(), 2);
    }

    /// §IV.B.3: the M25 instance <(v_a,v_c,8s),(v_d,v_a,9s),(v_c,v_d,17s)>
    /// is seen as Tri[III,o,in,o] / Tri[II,in,o,in] / Tri[I,o,in,o] from
    /// centers v_a / v_c / v_d.
    #[test]
    fn m25_counted_from_all_three_centers() {
        let g = temporal_graph::TemporalGraph::from_edges(vec![
            TemporalEdge::new(0, 2, 8),  // a -> c
            TemporalEdge::new(3, 0, 9),  // d -> a
            TemporalEdge::new(2, 3, 17), // c -> d
        ]);
        let delta = 10;
        let mut from_a = TriCounter::default();
        count_node_tri(&g, 0, delta, &mut from_a);
        assert_eq!(from_a.get(III, Out, In, Out), 1);
        assert_eq!(from_a.total(), 1);

        let mut from_c = TriCounter::default();
        count_node_tri(&g, 2, delta, &mut from_c);
        assert_eq!(from_c.get(II, In, Out, In), 1);
        assert_eq!(from_c.total(), 1);

        let mut from_d = TriCounter::default();
        count_node_tri(&g, 3, delta, &mut from_d);
        assert_eq!(from_d.get(I, Out, In, Out), 1);
        assert_eq!(from_d.total(), 1);

        // Whole graph: class cells balanced, fold yields exactly one M25.
        let tri = fast_tri(&g, delta);
        assert!(tri.class_cells_balanced());
        let mut mx = MotifMatrix::default();
        tri.add_to_matrix(&mut mx);
        assert_eq!(mx.get(m(2, 5)), 1);
        assert_eq!(mx.total(), 1);
    }

    #[test]
    fn whole_toy_graph_counts_are_divisible_by_three() {
        let g = paper_fig1_toy();
        let tri = fast_tri(&g, 10);
        assert!(tri.class_cells_balanced());
        assert_eq!(tri.total() % 3, 0);
    }

    #[test]
    fn cyclic_triangle_is_m26() {
        // a->b, b->c, c->a in time order: the temporal cycle.
        let g = temporal_graph::TemporalGraph::from_edges(vec![
            TemporalEdge::new(0, 1, 1),
            TemporalEdge::new(1, 2, 2),
            TemporalEdge::new(2, 0, 3),
        ]);
        let tri = fast_tri(&g, 10);
        let mut mx = MotifMatrix::default();
        tri.add_to_matrix(&mut mx);
        assert_eq!(mx.get(m(2, 6)), 1, "cyclic triangle must be M26");
        assert_eq!(mx.total(), 1);
    }

    #[test]
    fn delta_window_excludes_far_opposite_edges() {
        // Triangle whose opposite edge is 100 time units away.
        let g = temporal_graph::TemporalGraph::from_edges(vec![
            TemporalEdge::new(0, 1, 1),
            TemporalEdge::new(0, 2, 2),
            TemporalEdge::new(1, 2, 102),
        ]);
        assert_eq!(fast_tri(&g, 10).total(), 0);
        assert_eq!(fast_tri(&g, 101).total(), 3);
    }

    #[test]
    fn type_windows_are_exact_at_boundaries() {
        // Opposite edge exactly δ before e_j (type I boundary).
        let g = temporal_graph::TemporalGraph::from_edges(vec![
            TemporalEdge::new(1, 2, 0),  // opposite
            TemporalEdge::new(0, 1, 5),  // e_i at center 0
            TemporalEdge::new(0, 2, 10), // e_j at center 0
        ]);
        // span = 10; δ=10 includes, δ=9 excludes (t_j - t_k = 10 > 9).
        assert_eq!(fast_tri(&g, 10).total(), 3);
        assert_eq!(fast_tri(&g, 9).total(), 0);
    }

    #[test]
    fn simultaneous_edges_classified_by_input_order() {
        // All three edges at t=5. Total order = input order, giving a
        // unique instance and type classification per center.
        let g = temporal_graph::TemporalGraph::from_edges(vec![
            TemporalEdge::new(0, 1, 5),
            TemporalEdge::new(1, 2, 5),
            TemporalEdge::new(2, 0, 5),
        ]);
        let tri = fast_tri(&g, 0);
        assert!(tri.class_cells_balanced());
        let mut mx = MotifMatrix::default();
        tri.add_to_matrix(&mut mx);
        assert_eq!(mx.get(m(2, 6)), 1); // still the cycle M26
        assert_eq!(mx.total(), 1);
    }

    #[test]
    fn multi_edges_between_pair_multiply_instances() {
        // Two parallel opposite edges -> two triangle instances.
        let g = temporal_graph::TemporalGraph::from_edges(vec![
            TemporalEdge::new(0, 1, 1),
            TemporalEdge::new(0, 2, 2),
            TemporalEdge::new(1, 2, 3),
            TemporalEdge::new(1, 2, 4),
        ]);
        let tri = fast_tri(&g, 10);
        let mut mx = MotifMatrix::default();
        tri.add_to_matrix(&mut mx);
        assert_eq!(mx.total(), 2);
    }

    #[test]
    fn range_split_equals_full_run() {
        let g = temporal_graph::gen::erdos_renyi_temporal(15, 300, 500, 7);
        let delta = 120;
        let full = fast_tri(&g, delta);
        let mut split = TriCounter::default();
        for u in g.node_ids() {
            let len = g.node_events(u).len();
            let third = len / 3;
            count_node_tri_range(&g, u, 0..third, delta, &mut split);
            count_node_tri_range(&g, u, third..len, delta, &mut split);
        }
        assert_eq!(split, full);
    }

    #[test]
    fn no_triangles_in_pure_star() {
        let edges = (0..20)
            .map(|i| TemporalEdge::new(0, i + 1, i as i64))
            .collect();
        let g = temporal_graph::TemporalGraph::from_edges(edges);
        assert_eq!(fast_tri(&g, 100).total(), 0);
    }
}
