//! Sliding-window (expiring) motif counting.
//!
//! [`crate::streaming::StreamingCounter`] answers "how many motifs so
//! far?" over the whole history; this module answers the deployment
//! question the paper's §I actually poses for "frequently updated dynamic
//! systems": **how many motifs are there right now, over the last `W`
//! time units?** [`WindowedCounter`] maintains the exact 36-motif counts
//! over a moving window of width `W >= δ`:
//!
//! * **Arrival** — a new edge counts every motif instance it completes,
//!   using the same backward Algorithm-1 identity as the append-only
//!   streaming counter (each instance counted once, at its
//!   chronologically *last* edge).
//! * **Expiry** — when the watermark advances past `t + W`, the edge at
//!   `t` leaves the window and every motif instance whose chronologically
//!   *first* edge it was is retired by the mirrored *forward* identity.
//!   Because edges expire in the same total order they arrived, each
//!   instance is subtracted exactly once, exactly when it stops being
//!   fully inside the window.
//!
//! The invariant maintained between every pair of operations is that
//! [`WindowedCounter::counts`] equals a from-scratch batch FAST run over
//! the currently-live edges — asserted tick-by-tick by the differential
//! suite in `tests/windowed_vs_batch.rs`.
//!
//! A bounded **reorder buffer** absorbs slightly out-of-order arrivals:
//! with slack `s`, any edge timestamped within `s` of the newest arrival
//! is accepted and re-sorted; only edges older than that are rejected
//! with [`StreamError::OutOfOrder`].
//!
//! ```
//! use hare::windowed::WindowedCounter;
//! let mut wc = WindowedCounter::new(10, 50); // δ = 10, W = 50
//! wc.push(0, 1, 100).unwrap();
//! wc.push(1, 2, 105).unwrap();
//! wc.push(2, 0, 108).unwrap(); // closes the cyclic triangle M26
//! assert_eq!(wc.counts().get(hare::motif::m(2, 6)), 1);
//! wc.advance_to(200); // the whole triangle has left the window
//! assert_eq!(wc.counts().total(), 0);
//! ```

use std::collections::{BTreeMap, VecDeque};

use crate::counters::{MotifMatrix, PairCounter, StarCounter};
use crate::motif::{classify_instance, StarType};
use crate::streaming::StreamError;
use temporal_graph::util::FxHashMap;
use temporal_graph::{Dir, NodeId, TemporalEdge, Timestamp};

/// One live edge as seen from a node or pair list (mirror of the
/// streaming counter's event record, with the processing rank `id` as the
/// tie-breaker of the chronological total order).
#[derive(Debug, Clone, Copy)]
struct WinEvent {
    t: Timestamp,
    other: NodeId,
    dir: Dir,
    id: u64,
}

/// A live edge in global `(t, id)` order, as stored in the expiry queue.
#[derive(Debug, Clone, Copy)]
struct LiveEdge {
    src: NodeId,
    dst: NodeId,
    t: Timestamp,
    id: u64,
}

/// Exact 36-motif counts over a sliding time window of a temporal edge
/// stream.
///
/// Configured by three quantities, all in timestamp units:
///
/// * `delta` — the motif window δ (max span of an instance's 3 edges);
/// * `window` — the sliding window width `W >= δ`: an edge at `t` is
///   *live* while `watermark - t <= W`;
/// * `slack` — the reorder bound: an arrival is accepted iff its
///   timestamp is `>= max_seen - slack` (and not before an explicit
///   [`WindowedCounter::advance_to`] watermark).
///
/// Memory holds only the live window plus the reorder buffer (all
/// per-node and per-pair lists are dropped as soon as their last live
/// edge expires), so the counter runs indefinitely on an unbounded
/// stream.
#[derive(Debug, Clone)]
pub struct WindowedCounter {
    delta: Timestamp,
    window: Timestamp,
    slack: Timestamp,
    node_events: FxHashMap<NodeId, VecDeque<WinEvent>>,
    pair_events: FxHashMap<(NodeId, NodeId), VecDeque<WinEvent>>, // dir rel. lo
    live: VecDeque<LiveEdge>,
    buffer: BTreeMap<(Timestamp, u64), (NodeId, NodeId)>,
    star: StarCounter,
    pair: PairCounter,
    tri_matrix: MotifMatrix,
    /// Expiry anchor: max processed timestamp / explicit advance.
    watermark: Option<Timestamp>,
    /// Max timestamp ever pushed (drives reorder-buffer release).
    max_seen: Option<Timestamp>,
    /// Hard floor set by `advance_to`: arrivals below it are rejected.
    hard_floor: Option<Timestamp>,
    next_seq: u64,
    next_id: u64,
    accepted: u64,
    // reusable scratch (plain map: δ windows are usually small)
    mid: FxHashMap<NodeId, [u64; 2]>,
}

impl WindowedCounter {
    /// New counter with in-order ingestion (`slack = 0`).
    ///
    /// # Panics
    /// Panics unless `0 <= delta <= window`.
    #[must_use]
    pub fn new(delta: Timestamp, window: Timestamp) -> WindowedCounter {
        WindowedCounter::with_slack(delta, window, 0)
    }

    /// New counter accepting arrivals up to `slack` behind the newest
    /// timestamp seen, re-sorted by a bounded reorder buffer.
    ///
    /// # Panics
    /// Panics unless `0 <= delta <= window` and `slack >= 0`.
    #[must_use]
    pub fn with_slack(delta: Timestamp, window: Timestamp, slack: Timestamp) -> WindowedCounter {
        assert!(delta >= 0, "delta must be non-negative");
        assert!(window >= delta, "window must be at least delta");
        assert!(slack >= 0, "slack must be non-negative");
        WindowedCounter {
            delta,
            window,
            slack,
            node_events: FxHashMap::default(),
            pair_events: FxHashMap::default(),
            live: VecDeque::new(),
            buffer: BTreeMap::new(),
            star: StarCounter::default(),
            pair: PairCounter::default(),
            tri_matrix: MotifMatrix::default(),
            watermark: None,
            max_seen: None,
            hard_floor: None,
            next_seq: 0,
            next_id: 0,
            accepted: 0,
            mid: FxHashMap::default(),
        }
    }

    /// The configured δ.
    #[must_use]
    pub fn delta(&self) -> Timestamp {
        self.delta
    }

    /// The configured window width `W`.
    #[must_use]
    pub fn window(&self) -> Timestamp {
        self.window
    }

    /// The configured reorder slack.
    #[must_use]
    pub fn slack(&self) -> Timestamp {
        self.slack
    }

    /// Current watermark: the largest processed timestamp or explicit
    /// [`WindowedCounter::advance_to`] target, whichever is later. `None`
    /// until something is processed or advanced.
    #[must_use]
    pub fn watermark(&self) -> Option<Timestamp> {
        self.watermark
    }

    /// Number of edges currently inside the window (processed, not yet
    /// expired).
    #[must_use]
    pub fn live_edges(&self) -> usize {
        self.live.len()
    }

    /// Number of accepted arrivals still held in the reorder buffer.
    #[must_use]
    pub fn buffered_edges(&self) -> usize {
        self.buffer.len()
    }

    /// Total number of arrivals accepted so far (processed + buffered).
    #[must_use]
    pub fn num_accepted(&self) -> u64 {
        self.accepted
    }

    /// Earliest timestamp a new arrival must carry to be accepted, or
    /// `None` while everything is acceptable.
    #[must_use]
    pub fn accept_floor(&self) -> Option<Timestamp> {
        let slack_floor = self.max_seen.map(|m| m - self.slack);
        match (self.hard_floor, slack_floor) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        }
    }

    /// Ingest one edge.
    ///
    /// Arrivals may be out of order by up to `slack`: the edge is staged
    /// in the reorder buffer and processed once no earlier timestamp can
    /// still arrive. Equal timestamps are always accepted; ties are
    /// processed in arrival order (the same stable order batch counting
    /// uses for ties).
    ///
    /// # Errors
    /// [`StreamError::OutOfOrder`] if `t` is below [`Self::accept_floor`]
    /// (too late for the slack, or behind an explicit watermark);
    /// [`StreamError::SelfLoop`] if `src == dst`.
    pub fn push(&mut self, src: NodeId, dst: NodeId, t: Timestamp) -> Result<(), StreamError> {
        if src == dst {
            return Err(StreamError::SelfLoop);
        }
        if let Some(floor) = self.accept_floor() {
            if t < floor {
                return Err(StreamError::OutOfOrder {
                    got: t,
                    last: floor,
                });
            }
        }
        self.max_seen = Some(self.max_seen.map_or(t, |m| m.max(t)));
        self.buffer.insert((t, self.next_seq), (src, dst));
        self.next_seq += 1;
        self.accepted += 1;
        let release_to = self.max_seen.expect("just set") - self.slack;
        self.release_until(release_to);
        Ok(())
    }

    /// Advance the watermark to `t`: process every buffered arrival
    /// timestamped `<= t`, expire edges older than `t - W`, and reject
    /// all future arrivals timestamped `< t`. Watermarks only move
    /// forward; an earlier `t` is a no-op.
    pub fn advance_to(&mut self, t: Timestamp) {
        if self.hard_floor.is_some_and(|f| f >= t) && self.watermark.is_some_and(|w| w >= t) {
            return;
        }
        self.release_until(t);
        self.hard_floor = Some(self.hard_floor.map_or(t, |f| f.max(t)));
        self.watermark = Some(self.watermark.map_or(t, |w| w.max(t)));
        self.expire();
    }

    /// Drain the reorder buffer, processing every accepted arrival. After
    /// a flush, arrivals older than the largest timestamp seen are
    /// rejected (they would violate the already-processed order).
    pub fn flush(&mut self) {
        if let Some(max) = self.max_seen {
            self.release_until(max);
            self.hard_floor = Some(self.hard_floor.map_or(max, |f| f.max(max)));
        }
    }

    /// Exact counts over the live window: every motif instance whose
    /// three edges are all inside `[watermark - W, watermark]`.
    #[must_use]
    pub fn counts(&self) -> MotifMatrix {
        let mut mx = MotifMatrix::default();
        self.star.add_to_matrix(&mut mx);
        self.pair.add_to_matrix_center_based(&mut mx);
        mx.merge(&self.tri_matrix);
        mx
    }

    /// Process buffered arrivals with `t <= cutoff`, in `(t, seq)` order.
    fn release_until(&mut self, cutoff: Timestamp) {
        while let Some((&(t, _), _)) = self.buffer.first_key_value() {
            if t > cutoff {
                break;
            }
            let ((t, _), (src, dst)) = self.buffer.pop_first().expect("non-empty");
            self.process(src, dst, t);
        }
    }

    /// Count and store one edge. Called in non-decreasing `(t, seq)`
    /// order by the reorder buffer.
    fn process(&mut self, src: NodeId, dst: NodeId, t: Timestamp) {
        debug_assert!(self.watermark.is_none_or(|w| t >= w));
        self.watermark = Some(self.watermark.map_or(t, |w| w.max(t)));
        self.expire();

        // Motif instances completed by this edge (it is their last edge).
        self.count_completions(src, Dir::Out, dst, t);
        self.count_completions(dst, Dir::In, src, t);
        self.count_triangle_completions(src, dst, t);

        // Store it as a live edge.
        let id = self.next_id;
        self.next_id += 1;
        self.node_events
            .entry(src)
            .or_default()
            .push_back(WinEvent {
                t,
                other: dst,
                dir: Dir::Out,
                id,
            });
        self.node_events
            .entry(dst)
            .or_default()
            .push_back(WinEvent {
                t,
                other: src,
                dir: Dir::In,
                id,
            });
        let (lo, hi) = if src <= dst { (src, dst) } else { (dst, src) };
        let dir_from_lo = if src == lo { Dir::Out } else { Dir::In };
        self.pair_events
            .entry((lo, hi))
            .or_default()
            .push_back(WinEvent {
                t,
                other: 0,
                dir: dir_from_lo,
                id,
            });
        self.live.push_back(LiveEdge { src, dst, t, id });
    }

    /// Retire every edge that has fallen out of the window. Edges leave
    /// in `(t, id)` order — the same total order they were stored in — so
    /// when an edge is retired, everything later in the order is still
    /// live and the first-edge retirement identity sees exactly the
    /// instances that were counted at arrival.
    fn expire(&mut self) {
        let Some(wm) = self.watermark else { return };
        while let Some(&front) = self.live.front() {
            if wm - front.t <= self.window {
                break;
            }
            self.live.pop_front();
            self.retire(front);
        }
    }

    /// Remove one expired edge from the store and subtract every motif
    /// instance whose chronologically-first edge it was.
    fn retire(&mut self, e: LiveEdge) {
        // Drop the stored events first: the retirement scans then see
        // exactly the edges *after* `e` in the total order (everything
        // before it has already been retired).
        for u in [e.src, e.dst] {
            let list = self.node_events.get_mut(&u).expect("node list present");
            let ev = list.pop_front().expect("node event present");
            debug_assert_eq!(ev.id, e.id);
            if list.is_empty() {
                self.node_events.remove(&u);
            }
        }
        let key = if e.src <= e.dst {
            (e.src, e.dst)
        } else {
            (e.dst, e.src)
        };
        let pair_list = self.pair_events.get_mut(&key).expect("pair list present");
        let p = pair_list.pop_front().expect("pair event present");
        debug_assert_eq!(p.id, e.id);
        if pair_list.is_empty() {
            self.pair_events.remove(&key);
        }

        self.retire_completions(e.src, Dir::Out, e.dst, e.t);
        self.retire_completions(e.dst, Dir::In, e.src, e.t);
        self.retire_triangles(e);
    }

    /// Star/pair instances completed by the arrival with center `u`,
    /// third edge = the arrival (direction `d3` w.r.t. `u`, far endpoint
    /// `w`, time `t3`): backward Algorithm 1 anchored at the new third
    /// edge, identical to the append-only streaming counter.
    fn count_completions(&mut self, u: NodeId, d3: Dir, w: NodeId, t3: Timestamp) {
        let Some(events) = self.node_events.get(&u) else {
            return;
        };
        self.mid.clear();
        let mut n = [0u64; 2];
        // Scan candidate first edges backwards; `mid` holds the events
        // strictly between the candidate and the arrival.
        for e1 in events.iter().rev() {
            if t3 - e1.t > self.delta {
                break;
            }
            let d1 = e1.dir;
            if e1.other == w {
                let cnt = self.mid.get(&w).copied().unwrap_or_default();
                for d2 in Dir::BOTH {
                    let c = cnt[d2.index()];
                    self.pair.add(d1, d2, d3, c);
                    self.star.add(StarType::II, d1, d2, d3, n[d2.index()] - c);
                }
            } else {
                let cw = self.mid.get(&w).copied().unwrap_or_default();
                let cv = self.mid.get(&e1.other).copied().unwrap_or_default();
                for d2 in Dir::BOTH {
                    self.star.add(StarType::I, d1, d2, d3, cw[d2.index()]);
                    self.star.add(StarType::III, d1, d2, d3, cv[d2.index()]);
                }
            }
            // e1 becomes a middle candidate for earlier first edges.
            self.mid.entry(e1.other).or_default()[e1.dir.index()] += 1;
            n[e1.dir.index()] += 1;
        }
    }

    /// The exact mirror of [`Self::count_completions`], run at expiry:
    /// star/pair instances whose *first* edge is the retired edge
    /// (direction `d1` w.r.t. center `u`, far endpoint `v`, time `t1`).
    /// Scans forward over the remaining (strictly later) events of `u`;
    /// `mid` holds the events strictly between the retired edge and the
    /// candidate third edge.
    fn retire_completions(&mut self, u: NodeId, d1: Dir, v: NodeId, t1: Timestamp) {
        let Some(events) = self.node_events.get(&u) else {
            return;
        };
        self.mid.clear();
        let mut n = [0u64; 2];
        for e3 in events.iter() {
            if e3.t - t1 > self.delta {
                break;
            }
            let d3 = e3.dir;
            if e3.other == v {
                let cnt = self.mid.get(&v).copied().unwrap_or_default();
                for d2 in Dir::BOTH {
                    let c = cnt[d2.index()];
                    self.pair.sub(d1, d2, d3, c);
                    self.star.sub(StarType::II, d1, d2, d3, n[d2.index()] - c);
                }
            } else {
                let cw = self.mid.get(&e3.other).copied().unwrap_or_default();
                let cv = self.mid.get(&v).copied().unwrap_or_default();
                for d2 in Dir::BOTH {
                    self.star.sub(StarType::I, d1, d2, d3, cw[d2.index()]);
                    self.star.sub(StarType::III, d1, d2, d3, cv[d2.index()]);
                }
            }
            // e3 becomes a middle candidate for later third edges.
            self.mid.entry(e3.other).or_default()[e3.dir.index()] += 1;
            n[e3.dir.index()] += 1;
        }
    }

    /// Triangle instances closed by the arrival `(a -> b, t3)`: one
    /// earlier live edge a–u and one earlier live edge b–u, both within δ.
    fn count_triangle_completions(&mut self, a: NodeId, b: NodeId, t3: Timestamp) {
        let closing = TemporalEdge::new(a, b, t3);
        let Some(a_events) = self.node_events.get(&a) else {
            return;
        };
        for ea in a_events.iter().rev() {
            if t3 - ea.t > self.delta {
                break;
            }
            let u = ea.other;
            if u == b {
                continue;
            }
            let (lo, hi) = if b <= u { (b, u) } else { (u, b) };
            let Some(bu) = self.pair_events.get(&(lo, hi)) else {
                continue;
            };
            let ea_edge = match ea.dir {
                Dir::Out => TemporalEdge::new(a, u, ea.t),
                Dir::In => TemporalEdge::new(u, a, ea.t),
            };
            for eb in bu.iter().rev() {
                if t3 - eb.t > self.delta {
                    break;
                }
                let eb_edge = match eb.dir {
                    // dir is relative to `lo`.
                    Dir::Out => TemporalEdge::new(lo, hi, eb.t),
                    Dir::In => TemporalEdge::new(hi, lo, eb.t),
                };
                // Chronological order of the two earlier edges by
                // (t, processing rank) — the same total order as batch.
                let (first, second) = if (ea.t, ea.id) < (eb.t, eb.id) {
                    (ea_edge, eb_edge)
                } else {
                    (eb_edge, ea_edge)
                };
                let motif = classify_instance(first, second, closing)
                    .expect("closed triple is a 3-node motif");
                self.tri_matrix.add(motif, 1);
            }
        }
    }

    /// The mirror of [`Self::count_triangle_completions`], run at expiry:
    /// triangle instances whose *first* edge is the retired edge
    /// `(a -> b, t1)` — one later live edge a–u and one later live edge
    /// b–u, both within δ of `t1`.
    fn retire_triangles(&mut self, e: LiveEdge) {
        let opening = TemporalEdge::new(e.src, e.dst, e.t);
        let (a, b, t1, id1) = (e.src, e.dst, e.t, e.id);
        let Some(a_events) = self.node_events.get(&a) else {
            return;
        };
        for ea in a_events.iter() {
            if ea.t - t1 > self.delta {
                break;
            }
            let u = ea.other;
            if u == b {
                continue;
            }
            let (lo, hi) = if b <= u { (b, u) } else { (u, b) };
            let Some(bu) = self.pair_events.get(&(lo, hi)) else {
                continue;
            };
            let ea_edge = match ea.dir {
                Dir::Out => TemporalEdge::new(a, u, ea.t),
                Dir::In => TemporalEdge::new(u, a, ea.t),
            };
            // Skip b–u edges from before the retired edge in the total
            // order (a triangle they open is retired when *they* expire).
            let start = bu.partition_point(|ev| ev.id < id1);
            for eb in bu.range(start..) {
                if eb.t - t1 > self.delta {
                    break;
                }
                let eb_edge = match eb.dir {
                    Dir::Out => TemporalEdge::new(lo, hi, eb.t),
                    Dir::In => TemporalEdge::new(hi, lo, eb.t),
                };
                let (second, third) = if (ea.t, ea.id) < (eb.t, eb.id) {
                    (ea_edge, eb_edge)
                } else {
                    (eb_edge, ea_edge)
                };
                let motif = classify_instance(opening, second, third)
                    .expect("closed triple is a 3-node motif");
                self.tri_matrix.sub(motif, 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motif::m;
    use temporal_graph::gen::{erdos_renyi_temporal, paper_fig1_toy, GenConfig};
    use temporal_graph::GraphBuilder;

    /// Batch oracle: FAST over the accepted edges (arrival order) whose
    /// timestamps fall in `[wm - window, wm]`.
    fn batch_window(
        accepted: &[(NodeId, NodeId, Timestamp)],
        delta: Timestamp,
        window: Timestamp,
        wm: Timestamp,
    ) -> MotifMatrix {
        let mut b = GraphBuilder::new();
        for &(s, d, t) in accepted {
            if t <= wm && wm - t <= window {
                b.add_edge(s, d, t);
            }
        }
        crate::count_motifs(&b.build(), delta).matrix
    }

    /// Drive a whole graph through a windowed counter, checking the
    /// differential invariant after every arrival.
    fn check_graph(g: &temporal_graph::TemporalGraph, delta: Timestamp, window: Timestamp) {
        let mut wc = WindowedCounter::new(delta, window);
        let mut accepted = Vec::new();
        for e in g.edges() {
            wc.push(e.src, e.dst, e.t).unwrap();
            accepted.push((e.src, e.dst, e.t));
            let wm = wc.watermark().unwrap();
            assert_eq!(
                wc.counts(),
                batch_window(&accepted, delta, window, wm),
                "delta {delta} window {window} at t={wm}"
            );
        }
    }

    #[test]
    fn window_equals_batch_on_toy_graph() {
        let g = paper_fig1_toy();
        for (delta, window) in [(0, 0), (5, 5), (5, 8), (10, 10), (10, 20), (10, 100)] {
            check_graph(&g, delta, window);
        }
    }

    #[test]
    fn window_equals_batch_on_random_graphs() {
        for seed in 0..3 {
            let g = erdos_renyi_temporal(12, 300, 250, seed);
            check_graph(&g, 60, 60);
            check_graph(&g, 60, 140);
        }
    }

    #[test]
    fn window_equals_batch_on_bursty_graph() {
        let g = GenConfig {
            nodes: 25,
            edges: 600,
            time_span: 4_000,
            seed: 17,
            ..GenConfig::default()
        }
        .generate();
        check_graph(&g, 300, 500);
    }

    #[test]
    fn unbounded_window_matches_append_only_streaming() {
        let g = erdos_renyi_temporal(15, 400, 300, 7);
        let delta = 90;
        let mut wc = WindowedCounter::new(delta, Timestamp::MAX / 2);
        let mut sc = crate::streaming::StreamingCounter::new(delta);
        for e in g.edges() {
            wc.push(e.src, e.dst, e.t).unwrap();
            sc.push(e.src, e.dst, e.t).unwrap();
            assert_eq!(wc.counts(), sc.counts());
        }
    }

    #[test]
    fn advance_past_everything_empties_the_window() {
        let g = paper_fig1_toy();
        let mut wc = WindowedCounter::new(10, 10);
        for e in g.edges() {
            wc.push(e.src, e.dst, e.t).unwrap();
        }
        assert!(wc.counts().total() > 0);
        wc.advance_to(g.max_time().unwrap() + 11);
        assert_eq!(wc.counts(), MotifMatrix::default());
        assert_eq!(wc.live_edges(), 0);
        // Internals are fully drained, not just zeroed.
        assert!(wc.pair_events.is_empty());
        assert!(wc.node_events.is_empty());
    }

    #[test]
    fn doc_example_cycle_expires() {
        let mut wc = WindowedCounter::new(10, 50);
        wc.push(0, 1, 100).unwrap();
        wc.push(1, 2, 105).unwrap();
        wc.push(2, 0, 108).unwrap();
        assert_eq!(wc.counts().get(m(2, 6)), 1);
        // At watermark 150 the first edge (t=100) is exactly W old: live.
        wc.advance_to(150);
        assert_eq!(wc.counts().get(m(2, 6)), 1);
        assert_eq!(wc.live_edges(), 3);
        // One tick later it expires and takes the triangle with it.
        wc.advance_to(151);
        assert_eq!(wc.counts().total(), 0);
        assert_eq!(wc.live_edges(), 2);
    }

    #[test]
    fn slack_accepts_and_reorders_late_arrivals() {
        // Edges delivered out of order within slack 10; δ covers all.
        let delta = 50;
        let mut wc = WindowedCounter::with_slack(delta, 1_000, 10);
        let arrivals = [(0u32, 1u32, 100i64), (1, 2, 95), (2, 0, 103), (0, 2, 97)];
        for &(s, d, t) in &arrivals {
            wc.push(s, d, t).unwrap();
        }
        wc.flush();
        // Same edges in timestamp order through a strict counter.
        let mut sorted = arrivals;
        sorted.sort_by_key(|&(_, _, t)| t);
        let mut strict = WindowedCounter::new(delta, 1_000);
        for &(s, d, t) in &sorted {
            strict.push(s, d, t).unwrap();
        }
        assert_eq!(wc.counts(), strict.counts());
        assert_eq!(wc.num_accepted(), 4);
    }

    #[test]
    fn beyond_slack_is_rejected_with_the_floor() {
        let mut wc = WindowedCounter::with_slack(10, 100, 5);
        wc.push(0, 1, 50).unwrap();
        assert_eq!(
            wc.push(1, 2, 44),
            Err(StreamError::OutOfOrder { got: 44, last: 45 })
        );
        wc.push(1, 2, 45).unwrap(); // exactly at the floor: accepted
        assert_eq!(wc.push(2, 2, 50), Err(StreamError::SelfLoop));
        assert_eq!(wc.num_accepted(), 2);
    }

    #[test]
    fn advance_to_sets_a_hard_floor() {
        let mut wc = WindowedCounter::with_slack(10, 100, 50);
        wc.push(0, 1, 100).unwrap();
        wc.advance_to(90);
        assert_eq!(
            wc.push(1, 2, 80),
            Err(StreamError::OutOfOrder { got: 80, last: 90 })
        );
        wc.push(1, 2, 90).unwrap();
        // Watermarks only move forward (t=100 is still buffered, so the
        // watermark is the advance target, not the newest arrival).
        wc.advance_to(10);
        assert_eq!(wc.watermark(), Some(90));
        wc.flush();
        assert_eq!(wc.watermark(), Some(100));
    }

    #[test]
    fn buffered_edges_process_on_release_not_on_push() {
        let mut wc = WindowedCounter::with_slack(10, 100, 20);
        wc.push(0, 1, 100).unwrap();
        // Within slack of max_seen: still buffered, not yet processed.
        assert_eq!(wc.live_edges(), 0);
        assert_eq!(wc.buffered_edges(), 1);
        wc.push(1, 2, 125).unwrap(); // releases t <= 105
        assert_eq!(wc.live_edges(), 1);
        assert_eq!(wc.buffered_edges(), 1);
        wc.flush();
        assert_eq!(wc.live_edges(), 2);
        assert_eq!(wc.buffered_edges(), 0);
        assert_eq!(wc.watermark(), Some(125));
    }

    #[test]
    fn equal_timestamps_keep_arrival_order() {
        // All edges at one instant, W = δ = 0: ties must be processed in
        // arrival order, matching the builder's stable order.
        let edges = [(0u32, 1u32), (1, 2), (2, 0), (0, 1)];
        let mut wc = WindowedCounter::new(0, 0);
        let mut b = GraphBuilder::new();
        for &(s, d) in &edges {
            wc.push(s, d, 7).unwrap();
            b.add_edge(s, d, 7);
        }
        assert_eq!(wc.counts(), crate::count_motifs(&b.build(), 0).matrix);
        wc.advance_to(8);
        assert_eq!(wc.counts().total(), 0);
    }

    #[test]
    fn degenerate_window_equals_delta() {
        for seed in 0..3 {
            let g = erdos_renyi_temporal(10, 250, 120, seed);
            check_graph(&g, 40, 40);
        }
    }

    #[test]
    #[should_panic(expected = "window must be at least delta")]
    fn window_smaller_than_delta_panics() {
        let _ = WindowedCounter::new(10, 5);
    }
}
