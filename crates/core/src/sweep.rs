//! One-pass multi-δ counting.
//!
//! Parameter studies like the paper's Fig. 12(a) re-run the counter for
//! every δ. FAST's structure admits something better: every counted
//! contribution has a well-defined *span* (the time extent of the
//! instances it represents), and a contribution belongs to the result
//! for δ iff `span ≤ δ`. So one traversal at `max(δ)` can bucket each
//! contribution into the smallest qualifying δ, and a prefix-merge over
//! buckets yields the exact per-δ counters — K results for one pass.
//!
//! * FAST-Star: the contribution group at a (first, third)-edge pair
//!   spans `t_j − t_i`; every middle edge lies inside that interval.
//! * FAST-Tri: each opposite edge's span is `t_j − t_k`, `t_j − t_i` or
//!   `t_k − t_i` for types I/II/III respectively.
//!
//! Exactness for every δ in the sweep is asserted against independent
//! single-δ runs in the tests.

use crate::counters::{MotifCounts, PairCounter, StarCounter, TriCounter};
use crate::motif::{StarType, TriType};
use crate::scratch::NeighborScratch;
use temporal_graph::{Dir, TemporalGraph, Timestamp};

/// Per-δ counter buckets plus the sorted δ grid.
struct Buckets {
    deltas: Vec<Timestamp>,
    star: Vec<StarCounter>,
    pair: Vec<PairCounter>,
    tri: Vec<TriCounter>,
}

impl Buckets {
    fn new(deltas: &[Timestamp]) -> Buckets {
        let mut ds: Vec<Timestamp> = deltas.to_vec();
        ds.sort_unstable();
        ds.dedup();
        let n = ds.len();
        Buckets {
            deltas: ds,
            star: vec![StarCounter::default(); n],
            pair: vec![PairCounter::default(); n],
            tri: vec![TriCounter::default(); n],
        }
    }

    /// Index of the smallest δ admitting `span`, or `None` if the span
    /// exceeds every δ.
    #[inline]
    fn bucket(&self, span: Timestamp) -> Option<usize> {
        let k = self.deltas.partition_point(|&d| d < span);
        (k < self.deltas.len()).then_some(k)
    }
}

/// Count all 36 motifs for every δ in `deltas` with a single traversal
/// at `max(deltas)`. Returns `(δ, counts)` pairs sorted by δ
/// (duplicates collapsed). Equivalent to calling
/// [`crate::count_motifs`] once per δ.
#[must_use]
pub fn count_motifs_sweep(
    g: &TemporalGraph,
    deltas: &[Timestamp],
) -> Vec<(Timestamp, MotifCounts)> {
    if deltas.is_empty() {
        return Vec::new();
    }
    let mut buckets = Buckets::new(deltas);
    let max_delta = *buckets.deltas.last().expect("non-empty");
    let mut scratch = NeighborScratch::new(g.num_nodes());

    for u in g.node_ids() {
        let s = g.node_events(u);
        let ts = s.ts_lane();
        let packed = s.packed_lane();
        let eids = s.edge_lane();

        // FAST-Star sweep: bucket each (e1, e3) contribution group.
        for i in 0..ts.len() {
            let t1 = ts.get(i);
            let v = packed[i] >> 1;
            let d1 = Dir::from_index((packed[i] & 1) as usize);
            scratch.reset();
            let mut n = [0u64; 2];
            for (j, &pj) in packed.iter().enumerate().skip(i + 1) {
                let span = ts.get(j) - t1;
                if span > max_delta {
                    break;
                }
                let w = pj >> 1;
                let d3 = Dir::from_index((pj & 1) as usize);
                if let Some(k) = buckets.bucket(span) {
                    if w == v {
                        let cnt = scratch.get(v);
                        for d2 in Dir::BOTH {
                            let c = cnt[d2.index()];
                            buckets.pair[k].add(d1, d2, d3, c);
                            buckets.star[k].add(StarType::II, d1, d2, d3, n[d2.index()] - c);
                        }
                    } else {
                        let cw = scratch.get(w);
                        let cv = scratch.get(v);
                        for d2 in Dir::BOTH {
                            buckets.star[k].add(StarType::I, d1, d2, d3, cw[d2.index()]);
                            buckets.star[k].add(StarType::III, d1, d2, d3, cv[d2.index()]);
                        }
                    }
                }
                scratch.add(w, d3);
                n[d3.index()] += 1;
            }
        }

        // FAST-Tri sweep: bucket each opposite-edge increment by the
        // span of the instance it completes.
        for i in 0..ts.len() {
            let t_i = ts.get(i);
            let v = packed[i] >> 1;
            let di = Dir::from_index((packed[i] & 1) as usize);
            let ei_key = (t_i, eids[i]);
            for j in i + 1..ts.len() {
                let t_j = ts.get(j);
                if t_j - t_i > max_delta {
                    break;
                }
                let w = packed[j] >> 1;
                if w == v {
                    continue;
                }
                let dj = Dir::from_index((packed[j] & 1) as usize);
                let evs = g.pair_events(v, w);
                if evs.is_empty() {
                    continue;
                }
                let v_is_lo = v < w;
                let ej_key = (t_j, eids[j]);
                let start = evs.partition_point(|p| p.t < t_j - max_delta);
                for p in &evs[start..] {
                    if p.t > t_i + max_delta {
                        break;
                    }
                    let dk = p.dir_from(v_is_lo);
                    let (ty, span) = if (p.t, p.edge) < ei_key {
                        (TriType::I, t_j - p.t)
                    } else if (p.t, p.edge) < ej_key {
                        (TriType::II, t_j - t_i)
                    } else {
                        (TriType::III, p.t - t_i)
                    };
                    if let Some(k) = buckets.bucket(span) {
                        buckets.tri[k].add(ty, di, dj, dk, 1);
                    }
                }
            }
        }
    }

    // Prefix-merge: counts for δ_k include every smaller bucket.
    for k in 1..buckets.deltas.len() {
        let (lo, hi) = buckets.star.split_at_mut(k);
        hi[0].merge(&lo[k - 1]);
        let (lo, hi) = buckets.pair.split_at_mut(k);
        hi[0].merge(&lo[k - 1]);
        let (lo, hi) = buckets.tri.split_at_mut(k);
        hi[0].merge(&lo[k - 1]);
    }

    // Assemble by consuming the buckets — no counter cloning.
    let Buckets {
        deltas,
        star,
        pair,
        tri,
        ..
    } = buckets;
    deltas
        .into_iter()
        .zip(star.into_iter().zip(pair).zip(tri))
        .map(|(d, ((s, p), t))| (d, MotifCounts::from_center_counters(s, p, t)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_graph::gen::{erdos_renyi_temporal, paper_fig1_toy, GenConfig};

    #[test]
    fn sweep_matches_individual_runs() {
        let g = GenConfig {
            nodes: 40,
            edges: 900,
            time_span: 10_000,
            seed: 21,
            ..GenConfig::default()
        }
        .generate();
        let deltas = [0, 50, 300, 1_500, 10_000];
        let sweep = count_motifs_sweep(&g, &deltas);
        assert_eq!(sweep.len(), deltas.len());
        for (delta, counts) in &sweep {
            let single = crate::count_motifs(&g, *delta);
            assert_eq!(counts.matrix, single.matrix, "delta={delta}");
            assert_eq!(counts.star, single.star, "delta={delta}");
            assert_eq!(counts.tri, single.tri, "delta={delta}");
        }
    }

    #[test]
    fn unsorted_and_duplicate_deltas_are_normalised() {
        let g = paper_fig1_toy();
        let sweep = count_motifs_sweep(&g, &[20, 5, 20, 10]);
        let ds: Vec<_> = sweep.iter().map(|(d, _)| *d).collect();
        assert_eq!(ds, vec![5, 10, 20]);
        for (delta, counts) in &sweep {
            assert_eq!(counts.matrix, crate::count_motifs(&g, *delta).matrix);
        }
    }

    #[test]
    fn sweep_results_are_monotone() {
        let g = erdos_renyi_temporal(15, 400, 600, 8);
        let sweep = count_motifs_sweep(&g, &[10, 100, 400]);
        for pair in sweep.windows(2) {
            assert!(pair[0].1.total() <= pair[1].1.total());
        }
    }

    #[test]
    fn empty_inputs() {
        let g = paper_fig1_toy();
        assert!(count_motifs_sweep(&g, &[]).is_empty());
        let empty = temporal_graph::TemporalGraph::from_edges(vec![]);
        let sweep = count_motifs_sweep(&empty, &[10]);
        assert_eq!(sweep[0].1.total(), 0);
    }

    #[test]
    fn single_delta_sweep_equals_plain_count() {
        let g = erdos_renyi_temporal(20, 500, 400, 15);
        let sweep = count_motifs_sweep(&g, &[120]);
        assert_eq!(sweep[0].1.matrix, crate::count_motifs(&g, 120).matrix);
    }
}
