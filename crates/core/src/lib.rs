//! # hare — scalable exact temporal motif counting
//!
//! A from-scratch Rust reproduction of **FAST/HARE** from Gao, Cheng, Yu,
//! Cao, Huang & Dong, *Scalable Motif Counting for Large-scale Temporal
//! Graphs* (ICDE 2022).
//!
//! Given a temporal graph and a time window δ, this crate exactly counts
//! all 36 canonical **2- and 3-node, 3-edge δ-temporal motifs** (Fig. 2 of
//! the paper): 4 *pair* motifs, 24 *star* motifs and 8 *triangle* motifs.
//!
//! ## Components
//!
//! * [`fast_star`](crate::fast_star::fast_star) — Algorithm 1: a single
//!   center-node scan counting every star **and** pair motif, O(1) per
//!   (first, third)-edge combination via per-neighbour counters.
//! * [`fast_tri`](crate::fast_tri::fast_tri) — Algorithm 2: triangle
//!   counting driven by the per-pair edge index, δ-windowed by binary
//!   search.
//! * [`fast_pair`](crate::fast_pair::fast_pair) — the cheap pair-only
//!   variant (sliding-window DP, O(|E|)).
//! * [`Hare`] — the hierarchical parallel framework (§IV.C): inter-node
//!   work stealing for the long tail plus intra-node splitting for hub
//!   nodes above a degree threshold.
//! * [`streaming::StreamingCounter`] — exact incremental counts over an
//!   append-only chronological edge stream.
//! * [`windowed::WindowedCounter`] — exact counts over a sliding time
//!   window: edges expire, motif instances are retired with them, and a
//!   bounded reorder buffer absorbs slightly out-of-order arrivals.
//! * [`sample::SampledCounter`] — approximate counts by interval
//!   sampling: windows of the time axis are kept with probability `p`,
//!   counted exactly with the fused kernel, and rescaled into unbiased
//!   per-motif estimates with confidence intervals.
//! * [`stream_sample::StreamingEstimator`] — bounded-memory approximate
//!   counting on unbounded streams: a deterministic seeded interval
//!   reservoir under a hard byte budget, with per-tick unbiased
//!   estimates and confidence intervals; with a budget large enough to
//!   retain everything each tick is bit-identical to
//!   [`windowed::WindowedCounter`].
//! * [`ooc`] — out-of-core exact counting: δ-haloed time chunks of an
//!   [`ooc::EdgeSource`] (in-RAM slice or `HARELG01` lane file) are
//!   streamed through the fused kernel under a resident lane-byte
//!   budget, bit-identical to the in-RAM drivers.
//! * [`report`] — the canonical JSON wire schema, built in one place so
//!   `hare-count --json` and the `hare-serve` HTTP service emit
//!   byte-identical bodies for the same query.
//!
//! ## Quickstart
//!
//! ```
//! use hare::count_motifs;
//! use temporal_graph::gen::paper_fig1_toy;
//!
//! let graph = paper_fig1_toy(); // Fig. 1 of the paper
//! let counts = count_motifs(&graph, 10); // δ = 10 seconds
//! // The paper identifies one M65 pair instance at δ=10.
//! assert_eq!(counts.get(hare::motif::m(6, 5)), 1);
//! println!("{}", counts.matrix);
//! ```
//!
//! For multi-core counting use [`Hare`]:
//!
//! ```
//! use hare::Hare;
//! use temporal_graph::gen::erdos_renyi_temporal;
//!
//! let graph = erdos_renyi_temporal(100, 2_000, 10_000, 7);
//! let counts = Hare::with_threads(2).count_all(&graph, 500);
//! assert_eq!(counts.matrix, hare::count_motifs(&graph, 500).matrix);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod counters;
pub mod fast_pair;
pub mod fast_star;
pub mod fast_tri;
pub mod fingerprint;
pub mod fused;
pub mod hare;
pub mod motif;
pub mod ooc;
pub mod report;
pub mod sample;
pub mod scratch;
pub mod stream_sample;
pub mod streaming;
pub mod sweep;
pub mod windowed;
pub mod windows;

pub use counters::{MotifCounts, MotifMatrix, PairCounter, StarCounter, TriCounter};
pub use fingerprint::{
    node_profiles, rank_by_zscore, top_k_nodes, NodeProfile, NodeProfiles, ProfileDistribution,
};
pub use hare::{DegreeThreshold, Hare, HareConfig, Scheduling};
pub use hare_obs::{NoopProbe, Phase, Probe, WallClockProbe};
pub use motif::{Motif, MotifCategory, StarType, TriType};
pub use ooc::{
    count_motifs_ooc, count_motifs_ooc_probed, node_profiles_ooc, EdgeSource, InMemorySource,
    LaneFileSource, OocConfig, OocStats,
};
pub use sample::{MotifEstimate, SampleConfig, SampledCounter, SampledCounts};
pub use scratch::NeighborScratch;
pub use stream_sample::{StreamEstimates, StreamSampleConfig, StreamingEstimator};
pub use windowed::WindowedCounter;

use temporal_graph::{TemporalGraph, Timestamp};

/// Count all 36 motifs sequentially — the paper's single-threaded "FAST"
/// configuration, implemented as one fused star+pair+triangle scan per
/// node ([`fused::count_node_all_range`]). Use [`Hare::count_all`] for
/// the parallel framework.
#[must_use]
pub fn count_motifs(g: &TemporalGraph, delta: Timestamp) -> MotifCounts {
    count_motifs_probed(g, delta, &NoopProbe)
}

/// [`count_motifs`] with a [`Probe`] observing the kernel's phase
/// boundaries ([`Phase::Scan`] / [`Phase::Fold`]). Counts are
/// bit-identical across probe implementations: the probe only wraps
/// phases, it never participates in them.
#[must_use]
pub fn count_motifs_probed<P: Probe>(
    g: &TemporalGraph,
    delta: Timestamp,
    probe: &P,
) -> MotifCounts {
    let (star, pair, tri) = fused::fused_all_probed(g, delta, probe);
    probe.span(Phase::Fold, || {
        MotifCounts::from_center_counters(star, pair, tri)
    })
}

/// Count only the four pair motifs sequentially (the paper's "FAST-Pair")
/// and return their canonical grid.
#[must_use]
pub fn count_pair_motifs(g: &TemporalGraph, delta: Timestamp) -> MotifMatrix {
    let pc = fast_pair::fast_pair(g, delta);
    let mut mx = MotifMatrix::default();
    pc.add_to_matrix_pair_based(&mut mx);
    mx
}

/// Count only the eight triangle motifs sequentially (the paper's
/// "FAST-Tri") and return their canonical grid.
#[must_use]
pub fn count_triangle_motifs(g: &TemporalGraph, delta: Timestamp) -> MotifMatrix {
    let tc = fast_tri::fast_tri(g, delta);
    let mut mx = MotifMatrix::default();
    tc.add_to_matrix(&mut mx);
    mx
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_graph::gen::paper_fig1_toy;

    #[test]
    fn toy_graph_has_documented_instances() {
        // §III names three instances at δ=10s: M63, M46 and M65. Verify
        // each canonical cell is populated.
        let counts = count_motifs(&paper_fig1_toy(), 10);
        assert!(counts.get(motif::m(6, 3)) >= 1, "M63 instance expected");
        assert!(counts.get(motif::m(4, 6)) >= 1, "M46 instance expected");
        assert_eq!(counts.get(motif::m(6, 5)), 1, "exactly one M65");
    }

    #[test]
    fn specialised_counters_agree_with_full_count() {
        let g = temporal_graph::gen::erdos_renyi_temporal(25, 500, 1_000, 3);
        let delta = 200;
        let full = count_motifs(&g, delta);
        let pair_only = count_pair_motifs(&g, delta);
        let tri_only = count_triangle_motifs(&g, delta);
        for mo in Motif::all() {
            match mo.category() {
                MotifCategory::Pair => assert_eq!(full.get(mo), pair_only.get(mo), "{mo}"),
                MotifCategory::Triangle => assert_eq!(full.get(mo), tri_only.get(mo), "{mo}"),
                MotifCategory::Star => {}
            }
        }
    }
}
