//! FAST-Star (Algorithm 1): exact counting of all star and pair temporal
//! motifs.
//!
//! For every node `u` taken as center, the algorithm slides a `(first
//! edge, third edge)` pair `(e1, e3)` over the time-ordered event sequence
//! `S_u` with `e3.t − e1.t ≤ δ`. Second-edge candidates are *not* scanned:
//! per-neighbour direction counts accumulated while advancing `e3`
//! ([`NeighborScratch`], the paper's `m_in`/`m_out`) answer every "how many
//! qualifying second edges" query in O(1):
//!
//! * `e3.v == e1.v` — second edges to that same neighbour complete **pair**
//!   motifs; second edges to any other neighbour complete **Star-II**
//!   motifs (Fig. 6);
//! * `e3.v != e1.v` — second edges to `e3.v` complete **Star-I** motifs
//!   (Fig. 4); second edges to `e1.v` complete **Star-III** motifs
//!   (Fig. 5).
//!
//! Each star instance is counted exactly once (at its unique center); each
//! pair instance is counted once from each endpoint (handled by the
//! center-based fold in [`PairCounter::add_to_matrix_center_based`]).
//!
//! Worst-case time is `O(Σ_u d_u · d_u^δ)` ≈ `O(2 d^δ |E|)` — linear in the
//! number of temporal edges for fixed window density (§IV.A.4).
//!
//! The kernel is data-oriented: the window scan streams the graph's SoA
//! timestamp lane, topology is one packed `u32` load per step, and all
//! counter updates go to flat per-node accumulators (offsets hoisted from
//! `(d1, d3)`) folded into the shared counters once per call — the inner
//! loop performs no indexed multi-dimensional counter writes.
//!
//! hare-lint: no-alloc

use crate::counters::{PairCounter, StarCounter};
use crate::scratch::NeighborScratch;
use temporal_graph::{NodeId, TemporalGraph, Timestamp, TsLane, TsRead};

/// Count star/pair motifs centered at `u`, restricted to first-edge
/// positions `first_edge_range` within `S_u` (the full range reproduces
/// Algorithm 1; sub-ranges are the intra-node parallel unit of HARE).
///
/// `scratch` must be sized for the graph's node count; it is reset
/// internally.
pub fn count_node_star_pair_range(
    g: &TemporalGraph,
    u: NodeId,
    first_edge_range: std::ops::Range<usize>,
    delta: Timestamp,
    scratch: &mut NeighborScratch,
    star: &mut StarCounter,
    pair: &mut PairCounter,
) {
    // Flat accumulators (index ty·8 + d1·4 + d2·2 + d3 / d1·4 + d2·2 + d3);
    // the shared counters are touched once per call.
    let mut star_acc = [0u64; 24];
    let mut pair_acc = [0u64; 8];
    count_node_star_pair_into(
        g,
        u,
        first_edge_range,
        delta,
        scratch,
        &mut star_acc,
        &mut pair_acc,
    );
    star.add_flat(&star_acc);
    pair.add_flat(&pair_acc);
}

/// The scan proper, accumulating into caller-owned flat arrays so the
/// whole-graph driver folds into the counters once per run.
fn count_node_star_pair_into(
    g: &TemporalGraph,
    u: NodeId,
    first_edge_range: std::ops::Range<usize>,
    delta: Timestamp,
    scratch: &mut NeighborScratch,
    star_acc: &mut [u64; 24],
    pair_acc: &mut [u64; 8],
) {
    let s = g.node_events(u);
    match s.ts_lane() {
        TsLane::Raw(ts) => star_scan(ts, &s, first_edge_range, delta, scratch, star_acc, pair_acc),
        TsLane::Packed(p) => star_scan(p, &s, first_edge_range, delta, scratch, star_acc, pair_acc),
    }
}

/// The scan body, generic over the timestamp lane representation so the
/// raw path monomorphises to slice indexing. The δ-window end `j_end` is
/// maintained by a monotone two-pointer advance (`t_1 + δ` never
/// decreases with `i`), so the inner loop runs with a hoisted bound.
fn star_scan<T: TsRead>(
    ts: T,
    s: &temporal_graph::NodeEvents<'_>,
    first_edge_range: std::ops::Range<usize>,
    delta: Timestamp,
    scratch: &mut NeighborScratch,
    star_acc: &mut [u64; 24],
    pair_acc: &mut [u64; 8],
) {
    let packed = s.packed_lane();
    let n_events = ts.len();
    debug_assert!(first_edge_range.end <= n_events);

    let mut j_end = first_edge_range.start;
    for i in first_edge_range {
        let t1 = ts.at(i);
        let t_hi = t1.saturating_add(delta);
        if j_end <= i {
            j_end = i + 1;
        }
        while j_end < n_events && ts.at(j_end) <= t_hi {
            j_end += 1;
        }
        // Empty δ-window: nothing can complete — skip all setup.
        if i + 1 >= j_end {
            continue;
        }
        let p1 = packed[i];
        let v = p1 >> 1;
        let d1 = (p1 & 1) as usize;
        // All star cells this first edge can hit share the hoisted
        // (d1, ·, d3) offset base computed per third edge below.
        let b1 = d1 << 2;
        scratch.reset();
        // Running totals of second-edge candidates per direction
        // (the paper's #e_in / #e_out).
        let mut n = [0u64; 2];
        // v's in-window counts, tracked in registers: v is fixed for the
        // whole window, so events to v never touch the scratch array.
        let mut cv = [0u64; 2];

        for &p3 in &packed[i + 1..j_end] {
            let w = p3 >> 1;
            let d3 = (p3 & 1) as usize;
            let base = b1 | d3; // d1·4 + d3; d2 contributes ·2
            if w == v {
                // Pair motifs: second edge between u and v = w;
                // Star-II: second edge to any other neighbour.
                pair_acc[base] += cv[0];
                pair_acc[base | 2] += cv[1];
                star_acc[8 + base] += n[0] - cv[0];
                star_acc[8 + (base | 2)] += n[1] - cv[1];
                cv[d3] += 1;
            } else {
                // Star-I: second edge bonded to w = e3.v;
                // Star-III: second edge bonded to v = e1.v.
                let cw = scratch.get(w);
                star_acc[base] += cw[0];
                star_acc[base | 2] += cw[1];
                star_acc[16 + base] += cv[0];
                star_acc[16 + (base | 2)] += cv[1];
                // e3 becomes a second-edge candidate for later third
                // edges (events to v are covered by the register pair).
                scratch.bump(w, d3);
            }
            n[d3] += 1;
        }
    }
}

/// Count star/pair motifs centered at `u` over the whole of `S_u`.
pub fn count_node_star_pair(
    g: &TemporalGraph,
    u: NodeId,
    delta: Timestamp,
    scratch: &mut NeighborScratch,
    star: &mut StarCounter,
    pair: &mut PairCounter,
) {
    let len = g.node_events(u).len();
    count_node_star_pair_range(g, u, 0..len, delta, scratch, star, pair);
}

/// Sequential FAST-Star over the whole graph: returns the star and pair
/// counters (fold them with the `counters` module to obtain grid counts).
#[must_use]
pub fn fast_star(g: &TemporalGraph, delta: Timestamp) -> (StarCounter, PairCounter) {
    let mut star_acc = [0u64; 24];
    let mut pair_acc = [0u64; 8];
    crate::scratch::with_thread_scratch(g.num_nodes(), |scratch| {
        for u in g.node_ids() {
            let len = g.node_events(u).len();
            if len < 2 {
                continue; // no (e1, e3) window can open
            }
            count_node_star_pair_into(g, u, 0..len, delta, scratch, &mut star_acc, &mut pair_acc);
        }
    });
    let mut star = StarCounter::default();
    let mut pair = PairCounter::default();
    star.add_flat(&star_acc);
    pair.add_flat(&pair_acc);
    (star, pair)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motif::StarType::{I, II, III};
    use temporal_graph::gen::paper_fig1_toy;
    use temporal_graph::Dir::{In, Out};
    use temporal_graph::TemporalEdge;

    /// §IV.A.3 walks Algorithm 1 over center v_a of the Fig. 1 toy graph
    /// with δ = 10s and derives exactly four counts. Reproduce the walk.
    #[test]
    fn paper_walkthrough_center_va() {
        let g = paper_fig1_toy();
        let mut scratch = NeighborScratch::new(g.num_nodes());
        let mut star = StarCounter::default();
        let mut pair = PairCounter::default();
        count_node_star_pair(&g, 0, 10, &mut scratch, &mut star, &mut pair);

        assert_eq!(star.get(III, Out, Out, In), 1, "Star[III,o,o,in]");
        assert_eq!(star.get(III, Out, Out, Out), 1, "Star[III,o,o,o]");
        assert_eq!(star.get(II, Out, In, Out), 1, "Star[II,o,in,o]");
        assert_eq!(star.get(II, Out, Out, Out), 1, "Star[II,o,o,o]");
        // ... and nothing else.
        assert_eq!(star.total(), 4);
        assert_eq!(pair.total(), 0);
    }

    /// The 2-node instance <(v_d,v_e,14s),(v_e,v_d,18s),(v_d,v_e,21s)> is
    /// M65 (§III). From center v_d it is Pair[o,in,o]; from center v_e it
    /// is Pair[in,o,in].
    #[test]
    fn pair_instance_from_both_endpoints() {
        let g = paper_fig1_toy();
        let mut scratch = NeighborScratch::new(g.num_nodes());
        let mut star = StarCounter::default();
        let mut pair = PairCounter::default();
        count_node_star_pair(&g, 3, 10, &mut scratch, &mut star, &mut pair);
        assert_eq!(pair.get(Out, In, Out), 1);
        let mut pair_e = PairCounter::default();
        count_node_star_pair(&g, 4, 10, &mut scratch, &mut star, &mut pair_e);
        assert_eq!(pair_e.get(In, Out, In), 1);
    }

    #[test]
    fn whole_graph_pair_counter_is_mirror_balanced() {
        let g = paper_fig1_toy();
        let (_, pair) = fast_star(&g, 10);
        assert!(pair.mirror_cells_balanced());
        // Exactly one pair instance exists in the toy graph at δ=10 (M65).
        assert_eq!(pair.total(), 2); // counted once per endpoint
        assert_eq!(pair.get(Out, In, Out), 1);
        assert_eq!(pair.get(In, Out, In), 1);
    }

    /// The instance <(v_a,v_c,4s),(v_a,v_c,8s),(v_d,v_a,9s)> is M63 (§III):
    /// a Star-III with dirs (o, o, in) from center v_a — and our first
    /// walkthrough count above. Check the canonical fold sends it to M63.
    #[test]
    fn m63_instance_lands_in_m63() {
        use crate::motif::{m, star_motif};
        assert_eq!(star_motif(III, Out, Out, In), m(6, 3));
    }

    #[test]
    fn delta_zero_counts_only_simultaneous_edges() {
        // Three edges at the same timestamp around a center: with δ=0 all
        // windows qualify; order is input order. e1 and e3 bond to node 1,
        // the isolated middle edge goes to node 2 — a Star-II.
        let g = temporal_graph::TemporalGraph::from_edges(vec![
            TemporalEdge::new(0, 1, 5),
            TemporalEdge::new(0, 2, 5),
            TemporalEdge::new(0, 1, 5),
        ]);
        let (star, pair) = fast_star(&g, 0);
        assert_eq!(star.get(II, Out, Out, Out), 1);
        assert_eq!(star.total(), 1);
        assert_eq!(pair.total(), 0);
    }

    #[test]
    fn three_edges_to_three_distinct_neighbours_is_not_a_motif() {
        // u with one edge to each of three different nodes induces a
        // 4-node subgraph — outside the 2-/3-node motif universe.
        let g = temporal_graph::TemporalGraph::from_edges(vec![
            TemporalEdge::new(0, 1, 1),
            TemporalEdge::new(0, 2, 2),
            TemporalEdge::new(0, 3, 3),
        ]);
        let (star, pair) = fast_star(&g, 100);
        assert_eq!(star.total() + pair.total(), 0);
    }

    #[test]
    fn delta_excludes_out_of_window_triples() {
        let g = temporal_graph::TemporalGraph::from_edges(vec![
            TemporalEdge::new(0, 1, 0),
            TemporalEdge::new(0, 2, 5),
            TemporalEdge::new(0, 1, 11),
        ]);
        let (star, _) = fast_star(&g, 10);
        assert_eq!(star.total(), 0, "span 11 > delta 10");
        let (star, _) = fast_star(&g, 11);
        assert_eq!(star.get(II, Out, Out, Out), 1);
        assert_eq!(star.total(), 1);
    }

    #[test]
    fn range_split_equals_full_run() {
        let g = temporal_graph::gen::erdos_renyi_temporal(20, 300, 1_000, 42);
        let delta = 100;
        let (full_star, full_pair) = fast_star(&g, delta);

        let mut scratch = NeighborScratch::new(g.num_nodes());
        let mut star = StarCounter::default();
        let mut pair = PairCounter::default();
        for u in g.node_ids() {
            let len = g.node_events(u).len();
            let mid = len / 2;
            count_node_star_pair_range(&g, u, 0..mid, delta, &mut scratch, &mut star, &mut pair);
            count_node_star_pair_range(&g, u, mid..len, delta, &mut scratch, &mut star, &mut pair);
        }
        assert_eq!(star, full_star);
        assert_eq!(pair, full_pair);
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = temporal_graph::TemporalGraph::from_edges(vec![]);
        let (star, pair) = fast_star(&g, 100);
        assert_eq!(star.total() + pair.total(), 0);

        let g = temporal_graph::TemporalGraph::from_edges(vec![TemporalEdge::new(0, 1, 1)]);
        let (star, pair) = fast_star(&g, 100);
        assert_eq!(star.total() + pair.total(), 0);

        let g = temporal_graph::TemporalGraph::from_edges(vec![
            TemporalEdge::new(0, 1, 1),
            TemporalEdge::new(1, 2, 2),
        ]);
        let (star, pair) = fast_star(&g, 100);
        assert_eq!(star.total() + pair.total(), 0, "3 edges needed");
    }

    #[test]
    fn pure_pair_burst() {
        // 3 edges 0->1: one pair instance, direction pattern ooo from 0.
        let g = temporal_graph::TemporalGraph::from_edges(vec![
            TemporalEdge::new(0, 1, 1),
            TemporalEdge::new(0, 1, 2),
            TemporalEdge::new(0, 1, 3),
        ]);
        let (star, pair) = fast_star(&g, 10);
        assert_eq!(star.total(), 0);
        assert_eq!(pair.get(Out, Out, Out), 1);
        assert_eq!(pair.get(In, In, In), 1);
        assert_eq!(pair.total(), 2);
    }

    #[test]
    fn star_i_detection() {
        // e1 isolated first edge to node 1; then two edges to node 2.
        let g = temporal_graph::TemporalGraph::from_edges(vec![
            TemporalEdge::new(0, 1, 1),
            TemporalEdge::new(0, 2, 2),
            TemporalEdge::new(2, 0, 3),
        ]);
        let (star, _) = fast_star(&g, 10);
        assert_eq!(star.get(I, Out, Out, In), 1);
        // From center 0 only; nodes 1 and 2 are not centers of any star
        // (their sequences hold < 3 edges... node 2 has 2 events).
        assert_eq!(star.total(), 1);
    }
}
