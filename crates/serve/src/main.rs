//! `hare-serve` — the motif-query service daemon.
//!
//! ```text
//! hare-serve --preload CollegeMsg:8 --port 7878
//! curl 'http://127.0.0.1:7878/count?dataset=CollegeMsg&delta=600'
//! ```
//!
//! On startup one JSON line is printed to stdout
//! (`{"listening":"127.0.0.1:PORT",...}`) so scripts and the e2e suite
//! can discover an ephemeral port (`--port 0`). SIGINT/SIGTERM (and
//! `POST /shutdown` with `--enable-shutdown`) drain in-flight queries
//! before exit.

use std::process::ExitCode;
use std::time::Duration;

use hare_serve::{Server, ServerConfig};

const USAGE: &str = "\
hare-serve: concurrent temporal motif-query service (HTTP/1.1 + JSON)

USAGE:
    hare-serve [options]

OPTIONS:
    --addr HOST:PORT    bind address (default 127.0.0.1:7878)
    --port N            shorthand for 127.0.0.1:N (0 = ephemeral port)
    --workers N         request worker threads (default 4)
    --queue N           bounded request queue; overflow answers 429
                        (default 64)
    --cache N           result-cache entries, 0 disables (default 256)
    --threads N         default per-query counting threads
                        (default 0 = all cores; per-request ?threads=N)
    --preload NAME[:SCALE]
                        load a registry dataset at startup (repeatable)
    --max-body BYTES    largest accepted request body (default 16 MiB)
    --max-sessions N    cap on simultaneously open streaming sessions
                        (default 1024; creation beyond it answers 429).
                        Bounds session *count* only — pair with
                        --session-memory-budget to also bound the bytes
                        budgeted sessions may reserve
    --session-memory-budget BYTES
                        daemon-wide byte pool for budgeted sessions
                        (default unmetered): each session created with a
                        'memory_budget' reserves its bytes from the pool
                        (429 when exhausted) and returns them on close
    --io-timeout SECS   per-connection socket timeout (default 30)
    --enable-shutdown   allow POST /shutdown (test mode)
    --no-access-log     silence the per-request JSON access log the
                        daemon writes to stderr (on by default)
    --help              this text

Prometheus metrics are served at GET /metrics; per-request kernel
phase timings at GET /count?...&trace=1 (see docs/OBSERVABILITY.md).
Every /count response body is byte-identical to the equivalent
`hare-count --json --no-timing` invocation; see docs/SERVICE.md.
";

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig {
        // The daemon logs requests by default (operators can tail it);
        // the library default stays quiet for embedded/test servers.
        access_log: true,
        ..ServerConfig::default()
    };
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--port" => {
                let port: u16 = value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?;
                cfg.addr = format!("127.0.0.1:{port}");
            }
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                cfg.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--cache" => {
                cfg.cache_capacity = value("--cache")?
                    .parse()
                    .map_err(|e| format!("--cache: {e}"))?
            }
            "--threads" => {
                cfg.query_threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--max-body" => {
                cfg.max_body_bytes = value("--max-body")?
                    .parse()
                    .map_err(|e| format!("--max-body: {e}"))?
            }
            "--max-sessions" => {
                cfg.max_sessions = value("--max-sessions")?
                    .parse()
                    .map_err(|e| format!("--max-sessions: {e}"))?
            }
            "--session-memory-budget" => {
                let pool: u64 = value("--session-memory-budget")?
                    .parse()
                    .map_err(|e| format!("--session-memory-budget: {e}"))?;
                if pool == 0 {
                    return Err("--session-memory-budget must be at least 1 byte".into());
                }
                cfg.session_memory_budget = Some(pool);
            }
            "--io-timeout" => {
                let secs: u64 = value("--io-timeout")?
                    .parse()
                    .map_err(|e| format!("--io-timeout: {e}"))?;
                cfg.io_timeout = Duration::from_secs(secs.max(1));
            }
            "--preload" => {
                let spec = value("--preload")?;
                let (name, scale) = match spec.split_once(':') {
                    Some((name, scale)) => (
                        name.to_string(),
                        scale
                            .parse::<usize>()
                            .map_err(|e| format!("--preload {spec:?}: {e}"))?,
                    ),
                    None => (spec, 1),
                };
                if scale == 0 {
                    return Err("--preload scale must be at least 1".into());
                }
                cfg.preload.push((name, scale));
            }
            "--enable-shutdown" => cfg.enable_shutdown = true,
            "--no-access-log" => cfg.access_log = false,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if cfg.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    if cfg.queue_capacity == 0 {
        return Err("--queue must be at least 1".into());
    }
    Ok(cfg)
}

/// SIGINT/SIGTERM → set a flag; a watcher thread turns the flag into a
/// graceful shutdown request. The handler itself only stores an atomic
/// (the sole async-signal-safe thing to do).
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Install the handlers (idempotent).
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: `signal(2)` is called with valid constant signal
        // numbers and a function pointer of the exact C signature libc
        // expects (`extern "C" fn(i32)`), passed as the integer-sized
        // handler argument the raw declaration uses. The handler is
        // async-signal-safe: it only stores to a static AtomicBool.
        // Re-installation is idempotent, and no Rust aliasing rules are
        // involved on either side of the call.
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    /// `true` once a termination signal has arrived.
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}
    pub fn requested() -> bool {
        false
    }
}

fn run(cfg: ServerConfig) -> Result<(), String> {
    let server = Server::bind(cfg).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr().map_err(|e| format!("addr: {e}"))?;
    let state = server.state();

    // One machine-readable startup line: scripts read the actual port.
    println!(
        "{}",
        serde_json::json!({
            "listening": addr.to_string(),
            "datasets": state.catalog.names(),
            "workers": state.cfg.workers,
            "queue": state.cfg.queue_capacity,
            "cache": state.cfg.cache_capacity,
            "shutdown_enabled": state.cfg.enable_shutdown,
        })
    );
    // Line-buffer stdout so the port line is visible to a piping parent
    // immediately.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    signals::install();
    let watcher_state = server.state();
    std::thread::Builder::new()
        .name("hare-serve-signals".into())
        .spawn(move || loop {
            if signals::requested() {
                watcher_state.request_shutdown();
                break;
            }
            std::thread::sleep(Duration::from_millis(100));
        })
        .map_err(|e| format!("signal watcher: {e}"))?;

    server.run().map_err(|e| format!("serve: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(cfg) => match run(cfg) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("error: {msg}\n\n{USAGE}");
                ExitCode::FAILURE
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_defaults_and_flags() {
        let cfg = parse_args(&args(&[])).unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:7878");
        assert_eq!(cfg.workers, 4);
        assert!(cfg.access_log, "daemon logs by default");
        assert!(!parse_args(&args(&["--no-access-log"])).unwrap().access_log);

        let cfg = parse_args(&args(&[
            "--port",
            "0",
            "--workers",
            "2",
            "--queue",
            "8",
            "--cache",
            "32",
            "--threads",
            "1",
            "--preload",
            "CollegeMsg:8",
            "--preload",
            "Bitcoinalpha",
            "--session-memory-budget",
            "1048576",
            "--enable-shutdown",
        ]))
        .unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.queue_capacity, 8);
        assert_eq!(cfg.cache_capacity, 32);
        assert_eq!(cfg.query_threads, 1);
        assert_eq!(
            cfg.preload,
            vec![("CollegeMsg".into(), 8), ("Bitcoinalpha".into(), 1)]
        );
        assert_eq!(cfg.session_memory_budget, Some(1_048_576));
        assert!(cfg.enable_shutdown);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse_args(&args(&["--port", "abc"])).is_err());
        assert!(parse_args(&args(&["--workers", "0"])).is_err());
        assert!(parse_args(&args(&["--queue", "0"])).is_err());
        assert!(parse_args(&args(&["--preload", "CollegeMsg:0"])).is_err());
        assert!(parse_args(&args(&["--session-memory-budget", "0"])).is_err());
        assert!(parse_args(&args(&["--session-memory-budget", "abc"])).is_err());
        assert!(parse_args(&args(&["--nope"])).is_err());
        assert_eq!(parse_args(&args(&["--help"])).unwrap_err(), "");
    }
}
