//! The dataset catalog: temporal graphs loaded once, shared immutably.
//!
//! Every query borrows its dataset through an `Arc<TemporalGraph>`, so
//! a graph is parsed, indexed, fingerprinted and stat'd exactly once —
//! at registration — and then served to any number of concurrent
//! queries with zero copying ([`TemporalGraph`] is immutable and
//! `Sync`). Registration happens at startup (`--preload`) or at runtime
//! (`POST /datasets`, either a registry stand-in or an uploaded
//! SNAP-style edge list).

use std::collections::HashMap;
use std::sync::{Arc, PoisonError, RwLock};

use temporal_graph::stats::GraphStats;
use temporal_graph::TemporalGraph;

/// One registered dataset with its precomputed metadata.
#[derive(Debug)]
pub struct DatasetEntry {
    /// Catalog name (lookup key for `?dataset=`).
    pub name: String,
    /// The immutable graph, shared across queries.
    pub graph: Arc<TemporalGraph>,
    /// Precomputed shape statistics (every response reports nodes/edges).
    pub stats: GraphStats,
    /// Content fingerprint — the dataset half of every cache key.
    pub fingerprint: u64,
    /// Provenance: `registry:<name>/<scale>` or `upload`.
    pub source: String,
}

/// Errors surfaced by registration.
#[derive(Debug, PartialEq, Eq)]
pub enum CatalogError {
    /// A dataset with this name is already registered (HTTP 409).
    Duplicate(String),
    /// The registry has no dataset of this name (HTTP 404).
    UnknownRegistry(String),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Duplicate(name) => {
                write!(f, "dataset {name:?} is already registered")
            }
            CatalogError::UnknownRegistry(name) => {
                let names: Vec<&str> = hare_datasets::all().iter().map(|d| d.name).collect();
                write!(f, "unknown dataset {name:?}; known: {}", names.join(", "))
            }
        }
    }
}

/// Thread-safe name → [`DatasetEntry`] map.
#[derive(Default)]
pub struct Catalog {
    inner: RwLock<HashMap<String, Arc<DatasetEntry>>>,
}

impl Catalog {
    /// An empty catalog.
    #[must_use]
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// `true` when a dataset of this exact name is registered.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .contains_key(name)
    }

    /// Look a dataset up by exact name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<DatasetEntry>> {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// Register a built graph under `name`. Fails on duplicate names —
    /// entries are immutable once visible (queries may already be
    /// holding them, and cached results reference their fingerprint).
    pub fn register(
        &self,
        name: &str,
        graph: TemporalGraph,
        source: String,
    ) -> Result<Arc<DatasetEntry>, CatalogError> {
        // Cheap early probe: stats + fingerprint below are O(|E|), not
        // worth computing just to discover a name collision. The write
        // lock re-checks, so a racing registration still loses cleanly.
        if self.contains(name) {
            return Err(CatalogError::Duplicate(name.to_string()));
        }
        let entry = Arc::new(DatasetEntry {
            name: name.to_string(),
            stats: GraphStats::compute(&graph),
            fingerprint: graph.fingerprint(),
            graph: Arc::new(graph),
            source,
        });
        let mut map = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        if map.contains_key(name) {
            return Err(CatalogError::Duplicate(name.to_string()));
        }
        map.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Generate a registry stand-in at `scale` and register it under
    /// `under` (default: the registry name).
    pub fn register_registry(
        &self,
        dataset: &str,
        scale: usize,
        under: Option<&str>,
    ) -> Result<Arc<DatasetEntry>, CatalogError> {
        let spec = hare_datasets::by_name(dataset)
            .ok_or_else(|| CatalogError::UnknownRegistry(dataset.to_string()))?;
        let name = under.unwrap_or(spec.name);
        // Probe before generating: large registry stand-ins are
        // expensive to synthesise just to hit a 409.
        if self.contains(name) {
            return Err(CatalogError::Duplicate(name.to_string()));
        }
        self.register(
            name,
            spec.generate(scale),
            format!("registry:{}/{scale}", spec.name),
        )
    }

    /// All registered names, sorted (stable `GET /datasets` output).
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// All entries, sorted by name.
    #[must_use]
    pub fn entries(&self) -> Vec<Arc<DatasetEntry>> {
        let map = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        let mut entries: Vec<Arc<DatasetEntry>> = map.values().cloned().collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries
    }

    /// Number of registered datasets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// `true` when nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_graph::gen::paper_fig1_toy;

    #[test]
    fn register_and_lookup() {
        let catalog = Catalog::new();
        let entry = catalog
            .register("toy", paper_fig1_toy(), "upload".into())
            .unwrap();
        assert_eq!(entry.stats.num_edges, 12);
        assert_eq!(entry.fingerprint, paper_fig1_toy().fingerprint());
        let fetched = catalog.get("toy").unwrap();
        assert!(
            Arc::ptr_eq(&entry.graph, &fetched.graph),
            "shared, not copied"
        );
        assert!(catalog.get("nope").is_none());
    }

    #[test]
    fn poisoned_catalog_lock_recovers() {
        let catalog = Arc::new(Catalog::new());
        catalog
            .register("toy", paper_fig1_toy(), "upload".into())
            .unwrap();

        let poisoner = Arc::clone(&catalog);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.write().unwrap();
            panic!("worker dies holding the catalog lock");
        })
        .join();

        // Lookups and registrations keep working after the poisoning.
        assert!(catalog.contains("toy"));
        assert!(catalog.get("toy").is_some());
        catalog
            .register("toy2", paper_fig1_toy(), "upload".into())
            .unwrap();
        assert_eq!(catalog.len(), 2);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let catalog = Catalog::new();
        catalog
            .register("toy", paper_fig1_toy(), "upload".into())
            .unwrap();
        let err = catalog
            .register("toy", paper_fig1_toy(), "upload".into())
            .unwrap_err();
        assert_eq!(err, CatalogError::Duplicate("toy".into()));
        assert_eq!(catalog.len(), 1);
    }

    #[test]
    fn registry_registration_matches_generator() {
        let catalog = Catalog::new();
        let entry = catalog
            .register_registry("CollegeMsg", 8, Some("college8"))
            .unwrap();
        assert_eq!(entry.source, "registry:CollegeMsg/8");
        let direct = hare_datasets::by_name("CollegeMsg").unwrap().generate(8);
        assert_eq!(entry.fingerprint, direct.fingerprint());
        assert!(catalog.get("college8").is_some());
        assert!(
            catalog.register_registry("NoSuchNet", 1, None).is_err(),
            "unknown registry name"
        );
    }

    #[test]
    fn names_are_sorted() {
        let catalog = Catalog::new();
        for name in ["zeta", "alpha", "mid"] {
            catalog
                .register(name, paper_fig1_toy(), "upload".into())
                .unwrap();
        }
        assert_eq!(catalog.names(), vec!["alpha", "mid", "zeta"]);
        assert_eq!(catalog.entries()[0].name, "alpha");
    }
}
