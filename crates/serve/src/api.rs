//! Request routing and handlers: HTTP in, canonical JSON bodies out.
//!
//! Every success body is built by [`hare::report`] — the same module
//! `hare-count --json` prints — which is what makes `GET /count`
//! responses byte-identical to the CLI (`--no-timing` form; server
//! bodies never carry timing so they stay deterministic and cacheable).
//! Errors are structured: `{"error":{"code":N,"message":"..."}}` with
//! the matching HTTP status.

use std::io::BufReader;
use std::sync::{Arc, PoisonError};

use hare::sample::{SampleConfig, SampledCounter};
use hare::{Hare, HareConfig};
use serde_json::Value;
use temporal_graph::io::{graph_from_raw, read_edges, LoadOptions};
use temporal_graph::{NodeId, Timestamp};

use crate::cache::CacheKey;
use crate::catalog::CatalogError;
use crate::http::Request;
use crate::AppState;

/// Prometheus text exposition format 0.0.4 (the `/metrics` body).
pub const CONTENT_TYPE_METRICS: &str = "text/plain; version=0.0.4";

/// A fully-formed response: status, rendered body bytes, and whether
/// the worker should trigger graceful shutdown *after* writing it.
pub struct ApiResponse {
    /// HTTP status code.
    pub status: u16,
    /// Rendered body (shared so cached bodies are never copied).
    pub body: Arc<String>,
    /// `true` only for an accepted `POST /shutdown`.
    pub shutdown: bool,
    /// Result-cache disposition for the access log: `Some(true)` = hit,
    /// `Some(false)` = computed, `None` = the endpoint is uncached.
    pub cache: Option<bool>,
    /// `Content-Type` header value (`/metrics` is text, the rest JSON).
    pub content_type: &'static str,
}

impl Default for ApiResponse {
    fn default() -> ApiResponse {
        ApiResponse {
            status: 200,
            body: Arc::new(String::new()),
            shutdown: false,
            cache: None,
            content_type: "application/json",
        }
    }
}

fn ok(status: u16, value: &Value) -> ApiResponse {
    ApiResponse {
        status,
        body: Arc::new(hare::report::render(value)),
        ..ApiResponse::default()
    }
}

/// Build the structured error response for a status + message.
#[must_use]
pub fn error_response(status: u16, message: &str) -> ApiResponse {
    let value = serde_json::json!({
        "error": {"code": status, "message": message},
    });
    ApiResponse {
        status,
        body: Arc::new(hare::report::render(&value)),
        ..ApiResponse::default()
    }
}

/// Route one request to its handler.
#[must_use]
pub fn handle(state: &AppState, req: &Request) -> ApiResponse {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", []) => index(),
        ("GET", ["stats"]) => stats(state),
        ("GET", ["metrics"]) => metrics(state),
        ("GET", ["datasets"]) => list_datasets(state),
        ("POST", ["datasets"]) => register_dataset(state, req),
        ("GET", ["count"]) => count(state, req),
        ("GET", ["nodes", "top"]) => crate::nodes::top_nodes(state, req),
        ("GET", ["nodes", id, "motifs"]) => crate::nodes::node_motifs(state, req, id),
        ("POST", ["cache", "clear"]) => {
            state.cache.clear();
            ok(200, &serde_json::json!({"cleared": true}))
        }
        ("GET", ["sessions"]) => list_sessions(state),
        ("POST", ["sessions"]) => create_session(state, req),
        ("GET", ["sessions", id]) => with_session(state, id, |s| ok(200, &s.tick_body())),
        ("POST", ["sessions", id, "flush"]) => with_session(state, id, |s| {
            s.flush();
            ok(200, &s.tick_body())
        }),
        ("POST", ["sessions", id, "edges"]) => session_push(state, id, req),
        ("DELETE", ["sessions", id]) => close_session(state, id),
        ("POST", ["shutdown"]) => shutdown(state),
        // Known resources reached with the wrong verb get a 405 so
        // clients can tell "wrong method" from "wrong path".
        (
            _,
            []
            | ["stats"]
            | ["metrics"]
            | ["datasets"]
            | ["count"]
            | ["cache", "clear"]
            | ["shutdown"],
        )
        | (_, ["sessions" | "nodes", ..]) => error_response(
            405,
            &format!("method {} is not supported on {}", req.method, req.path),
        ),
        _ => error_response(404, &format!("no such endpoint: {}", req.path)),
    }
}

fn index() -> ApiResponse {
    ok(
        200,
        &serde_json::json!({
            "service": "hare-serve",
            "endpoints": [
                "GET /count?dataset=NAME&delta=SECONDS[&only=pairs|stars|triangles][&engine=approx&prob=P&ci=L&window_factor=C&seed=S][&threads=N][&trace=1]",
                "GET /nodes/{id}/motifs?dataset=NAME&delta=SECONDS[&threads=N]",
                "GET /nodes/top?dataset=NAME&delta=SECONDS[&motif=M][&k=K][&threads=N]",
                "GET /datasets",
                "POST /datasets",
                "GET /sessions",
                "POST /sessions",
                "GET /sessions/{id}",
                "POST /sessions/{id}/edges",
                "POST /sessions/{id}/flush",
                "DELETE /sessions/{id}",
                "GET /stats",
                "GET /metrics",
                "POST /cache/clear",
                "POST /shutdown",
            ],
        }),
    )
}

fn stats(state: &AppState) -> ApiResponse {
    // Each section is one coherent snapshot of its source: the cache
    // counters are read under the cache lock, and the queue counters
    // come out of the metrics seqlock in a single consistent view (a
    // request mid-transition can never be seen in two states at once).
    let cache = state.cache.stats();
    let [queued, in_flight, completed, rejected] = state.metrics.snapshot();
    let catalog = serde_json::json!({
        "datasets": state.catalog.len(),
        "names": state.catalog.names(),
    });
    let cache = serde_json::json!({
        "capacity": cache.capacity,
        "entries": cache.entries,
        "hits": cache.hits,
        "misses": cache.misses,
        "evictions": cache.evictions,
    });
    let queue = serde_json::json!({
        "workers": state.cfg.workers,
        "capacity": state.cfg.queue_capacity,
        "queued": queued,
        "in_flight": in_flight,
        "completed": completed,
        "rejected": rejected,
    });
    let sessions = serde_json::json!({
        "open": state.sessions.open_count(),
        "created": state.sessions.created_count(),
        "max_open": state.cfg.max_sessions,
        "memory_pool": state.sessions.pool_bytes().map_or(Value::Null, Value::from),
        "memory_reserved": state.sessions.reserved_bytes(),
    });
    let shutdown_enabled = state.cfg.enable_shutdown;
    ok(
        200,
        &serde_json::json!({
            "catalog": catalog,
            "cache": cache,
            "queue": queue,
            "sessions": sessions,
            "shutdown_enabled": shutdown_enabled,
        }),
    )
}

fn metrics(state: &AppState) -> ApiResponse {
    state.obs.sync(&crate::obs::SyncSnapshot {
        cache: state.cache.stats(),
        queue: state.metrics.snapshot(),
        sessions_open: state.sessions.open_count() as u64,
        sessions_created: state.sessions.created_count(),
        session_pool_bytes: state.sessions.pool_bytes(),
        session_reserved_bytes: state.sessions.reserved_bytes(),
    });
    ApiResponse {
        body: Arc::new(state.obs.registry.render()),
        content_type: CONTENT_TYPE_METRICS,
        ..ApiResponse::default()
    }
}

fn dataset_entry_value(entry: &crate::catalog::DatasetEntry) -> Value {
    serde_json::json!({
        "name": entry.name.clone(),
        "nodes": entry.stats.num_nodes,
        "edges": entry.stats.num_edges,
        "time_span": entry.stats.time_span,
        "fingerprint": entry.fingerprint,
        "source": entry.source.clone(),
    })
}

fn list_datasets(state: &AppState) -> ApiResponse {
    let entries: Vec<Value> = state
        .catalog
        .entries()
        .iter()
        .map(|e| dataset_entry_value(e))
        .collect();
    ok(200, &serde_json::json!({"datasets": entries}))
}

fn register_dataset(state: &AppState, req: &Request) -> ApiResponse {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return error_response(400, "body must be utf-8 JSON");
    };
    let v = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return error_response(400, &format!("body is not valid JSON: {e}")),
    };
    let name = v["name"].as_str();
    let result = if let Some(registry) = v["dataset"].as_str() {
        let scale = v["scale"].as_u64().unwrap_or(1) as usize;
        if scale == 0 {
            return error_response(400, "'scale' must be at least 1");
        }
        state.catalog.register_registry(registry, scale, name)
    } else if let Some(edges_text) = v["edges"].as_str() {
        let Some(name) = name else {
            return error_response(400, "uploads require a 'name'");
        };
        let opts = LoadOptions {
            timestamp_column: v["timestamp_col"].as_u64().unwrap_or(2) as usize,
            ..LoadOptions::default()
        };
        let raw = match read_edges(BufReader::new(edges_text.as_bytes()), &opts) {
            Ok(raw) => raw,
            Err(e) => return error_response(400, &format!("parsing 'edges': {e}")),
        };
        state
            .catalog
            .register(name, graph_from_raw(raw, &opts), "upload".into())
    } else {
        return error_response(
            400,
            "provide either 'dataset' (+ optional 'scale') for a registry \
             stand-in or 'edges' (SNAP-style text) for an upload",
        );
    };
    match result {
        Ok(entry) => ok(201, &dataset_entry_value(&entry)),
        Err(e @ CatalogError::Duplicate(_)) => error_response(409, &e.to_string()),
        Err(e @ CatalogError::UnknownRegistry(_)) => error_response(404, &e.to_string()),
    }
}

/// Parse a required/optional typed query parameter; `Err` is a ready
/// 400 response.
pub(crate) fn param<T: std::str::FromStr>(
    req: &Request,
    name: &str,
    default: Option<T>,
) -> Result<T, Box<ApiResponse>> {
    match req.query_param(name) {
        Some(raw) => raw.parse().map_err(|_| {
            Box::new(error_response(
                400,
                &format!("parameter '{name}' has invalid value {raw:?}"),
            ))
        }),
        None => default.ok_or_else(|| {
            Box::new(error_response(
                400,
                &format!("missing required parameter '{name}'"),
            ))
        }),
    }
}

/// The validated execution plan of one `/count` query: every
/// result-relevant parameter is parsed exactly once, and both the
/// cache key and the computation derive from the same values (so they
/// can never drift apart).
enum Plan {
    Exact {
        only: Option<hare::MotifCategory>,
        only_str: String,
    },
    Approx {
        prob: f64,
        ci: f64,
        window_factor: i64,
        seed: u64,
    },
}

impl Plan {
    /// Parse and validate the engine parameters of a request.
    fn from_request(req: &Request) -> Result<Plan, Box<ApiResponse>> {
        match req.query_param("engine").unwrap_or("exact") {
            "exact" => {
                for p in ["prob", "ci", "window_factor", "seed"] {
                    if req.query_param(p).is_some() {
                        return Err(Box::new(error_response(
                            400,
                            &format!("'{p}' requires engine=approx"),
                        )));
                    }
                }
                let only_str = req.query_param("only").unwrap_or("all").to_string();
                let only = hare::report::parse_only(&only_str)
                    .map_err(|e| Box::new(error_response(400, &format!("parameter 'only' {e}"))))?;
                Ok(Plan::Exact { only, only_str })
            }
            "approx" => {
                if req.query_param("only").is_some_and(|o| o != "all") {
                    return Err(Box::new(error_response(
                        400,
                        "'only' is not supported with engine=approx",
                    )));
                }
                let prob: f64 = param(req, "prob", Some(0.1))?;
                if !(prob > 0.0 && prob <= 1.0) {
                    return Err(Box::new(error_response(
                        400,
                        &format!("'prob' must be in (0, 1], got {prob}"),
                    )));
                }
                let ci: f64 = param(req, "ci", Some(0.95))?;
                if !(ci > 0.0 && ci < 1.0) {
                    return Err(Box::new(error_response(
                        400,
                        &format!("'ci' must be in (0, 1), got {ci}"),
                    )));
                }
                let window_factor: i64 = param(req, "window_factor", Some(10))?;
                if window_factor < 1 {
                    return Err(Box::new(error_response(
                        400,
                        &format!("'window_factor' must be at least 1, got {window_factor}"),
                    )));
                }
                let seed: u64 = param(req, "seed", Some(42))?;
                Ok(Plan::Approx {
                    prob,
                    ci,
                    window_factor,
                    seed,
                })
            }
            other => Err(Box::new(error_response(
                400,
                &format!("parameter 'engine' must be exact or approx, got {other:?}"),
            ))),
        }
    }

    /// Canonical cache-key half: engine + result-relevant parameters.
    /// `threads` is deliberately excluded — counts are bit-identical
    /// across thread counts, so results are interchangeable.
    fn cache_key(&self) -> String {
        match self {
            Plan::Exact { only_str, .. } => format!("exact/only={only_str}"),
            Plan::Approx {
                prob,
                ci,
                window_factor,
                seed,
            } => format!("approx/prob={prob}/ci={ci}/wf={window_factor}/seed={seed}"),
        }
    }

    /// Execute the plan and build the canonical response body. Generic
    /// over [`hare::Probe`] so `?trace=1` can observe phase timings;
    /// the body itself is probe-invariant (kernels only let probes
    /// watch phase boundaries), so traced and untraced runs cache the
    /// same bytes.
    fn execute<P: hare::Probe>(
        &self,
        entry: &crate::catalog::DatasetEntry,
        delta: Timestamp,
        threads: usize,
        probe: &P,
    ) -> Value {
        match self {
            Plan::Exact { only, .. } => {
                let hare = Hare::new(HareConfig {
                    num_threads: threads,
                    ..HareConfig::default()
                });
                let matrix = hare.count_matrix_probed(&entry.graph, delta, *only, probe);
                hare::report::exact_body(
                    entry.stats.num_nodes,
                    entry.stats.num_edges,
                    delta,
                    &matrix,
                    None,
                )
            }
            Plan::Approx {
                prob,
                ci,
                window_factor,
                seed,
            } => {
                let counter = SampledCounter::new(SampleConfig {
                    prob: *prob,
                    window_factor: *window_factor,
                    confidence: *ci,
                    seed: *seed,
                    threads,
                });
                let est = counter.count_probed(&entry.graph, delta, probe);
                hare::report::approx_body(
                    entry.stats.num_nodes,
                    entry.stats.num_edges,
                    delta,
                    *window_factor,
                    *seed,
                    &est,
                    None,
                )
            }
        }
    }
}

/// Upper bound on `?threads=`: far above any real core count, low
/// enough that a hostile value cannot exhaust OS threads (the vendored
/// rayon pool spawns up to this many workers per query).
pub(crate) const MAX_QUERY_THREADS: usize = 1024;

fn count(state: &AppState, req: &Request) -> ApiResponse {
    let Some(dataset) = req.query_param("dataset") else {
        return error_response(400, "missing required parameter 'dataset'");
    };
    let Some(entry) = state.catalog.get(dataset) else {
        return error_response(
            404,
            &format!(
                "dataset {dataset:?} is not in the catalog; registered: [{}]",
                state.catalog.names().join(", ")
            ),
        );
    };
    let delta: Timestamp = match param(req, "delta", None) {
        Ok(v) => v,
        Err(resp) => return *resp,
    };
    let threads: usize = match param(req, "threads", Some(state.cfg.query_threads)) {
        Ok(v) => v,
        Err(resp) => return *resp,
    };
    if threads > MAX_QUERY_THREADS {
        return error_response(
            400,
            &format!("parameter 'threads' must be at most {MAX_QUERY_THREADS}, got {threads}"),
        );
    }
    let plan = match Plan::from_request(req) {
        Ok(plan) => plan,
        Err(resp) => return *resp,
    };

    let key = CacheKey {
        fingerprint: entry.fingerprint,
        delta,
        engine: plan.cache_key(),
    };

    // `?trace=1` always computes (a cached body has no phases to time)
    // but still *fills* the cache: the rendered body is probe-invariant,
    // so the inserted bytes match what an untraced query would cache.
    if matches!(req.query_param("trace"), Some("1" | "true")) {
        let probe = hare::WallClockProbe::new();
        let body = plan.execute(&entry, delta, threads, &probe);
        let rendered = Arc::new(hare::report::render(&body));
        state.cache.insert(key, Arc::clone(&rendered));
        return traced_response(state, &probe, &rendered);
    }

    if let Some(body) = state.cache.get(&key) {
        return ApiResponse {
            body,
            cache: Some(true),
            ..ApiResponse::default()
        };
    }

    // Miss: run the query on this worker (kernels parallelise
    // internally over the rayon pool with `threads` workers).
    let body = plan.execute(&entry, delta, threads, &hare::NoopProbe);
    let rendered = Arc::new(hare::report::render(&body));
    state.cache.insert(key, Arc::clone(&rendered));
    ApiResponse {
        body: rendered,
        cache: Some(false),
        ..ApiResponse::default()
    }
}

/// Wrap a rendered `/count` body in `{"result":…,"trace":…}` with the
/// probe's per-phase breakdown, recording the events into the server's
/// trace ring for later inspection.
fn traced_response(state: &AppState, probe: &hare::WallClockProbe, rendered: &str) -> ApiResponse {
    let trace_id = state.obs.traces.begin();
    let mut phases = Vec::new();
    for ev in probe.trace_events(trace_id) {
        phases.push(serde_json::json!({
            "phase": ev.phase,
            "duration_us": ev.duration_us,
            "spans": ev.spans,
        }));
        state.obs.traces.record(ev);
    }
    let result: Value = match serde_json::from_str(rendered) {
        Ok(v) => v,
        Err(e) => return error_response(500, &format!("re-parsing rendered body: {e}")),
    };
    let wrapped = serde_json::json!({
        "result": result,
        "trace": {"trace_id": trace_id, "phases": phases},
    });
    ApiResponse {
        cache: Some(false),
        ..ok(200, &wrapped)
    }
}

fn list_sessions(state: &AppState) -> ApiResponse {
    ok(
        200,
        &serde_json::json!({
            "sessions": state.sessions.ids(),
            "open": state.sessions.open_count(),
            "created": state.sessions.created_count(),
        }),
    )
}

fn create_session(state: &AppState, req: &Request) -> ApiResponse {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return error_response(400, "body must be utf-8 JSON");
    };
    let v = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return error_response(400, &format!("body is not valid JSON: {e}")),
    };
    let Some(delta) = v["delta"].as_i64() else {
        return error_response(400, "'delta' (seconds) is required");
    };
    let Some(window) = v["window"].as_i64() else {
        return error_response(400, "'window' (seconds) is required");
    };
    let slack = match (&v["slack"], v["slack"].as_i64()) {
        (Value::Null, _) => 0,
        (_, Some(s)) => s,
        (_, None) => return error_response(400, "'slack' must be an integer"),
    };
    if delta < 0 {
        return error_response(400, "'delta' must be non-negative");
    }
    if window < delta {
        return error_response(
            400,
            &format!("'window' must be >= 'delta' ({window} < {delta})"),
        );
    }
    if slack < 0 {
        return error_response(400, "'slack' must be non-negative");
    }
    let memory_budget = match (&v["memory_budget"], v["memory_budget"].as_u64()) {
        (Value::Null, _) => None,
        (_, Some(b)) if b >= 1 => Some(b),
        (_, _) => return error_response(400, "'memory_budget' must be a positive integer (bytes)"),
    };
    // Bound client-driven memory twice over: every open session holds a
    // live engine, so creation beyond the count cap is backpressured,
    // and budgeted sessions additionally reserve their bytes from the
    // daemon-wide pool.
    if state.sessions.open_count() >= state.cfg.max_sessions {
        return error_response(
            429,
            &format!(
                "session limit reached ({} open); close one or retry later",
                state.cfg.max_sessions
            ),
        );
    }
    let id = match state.sessions.create(delta, window, slack, memory_budget) {
        Ok(id) => id,
        Err(e) => {
            return error_response(
                429,
                &format!(
                    "session memory pool exhausted ({} bytes requested, {} available); \
                     close a budgeted session or retry later",
                    e.requested, e.available
                ),
            )
        }
    };
    let mut body = serde_json::json!({
        "session": id,
        "delta": delta,
        "window": window,
        "slack": slack,
    });
    if let (Some(b), Some(map)) = (memory_budget, body.as_object_mut()) {
        map.insert("memory_budget".into(), b.into());
    }
    ok(201, &body)
}

/// Resolve a path segment to a session and run `f` under its lock.
fn with_session(
    state: &AppState,
    id: &str,
    f: impl FnOnce(&mut crate::sessions::Session) -> ApiResponse,
) -> ApiResponse {
    let Ok(id) = id.parse::<u64>() else {
        return error_response(400, &format!("session id must be an integer, got {id:?}"));
    };
    match state.sessions.get(id) {
        // A worker that panicked mid-push poisons the lock; the session
        // state itself is a plain counter struct that stays coherent, so
        // recover rather than cascade the panic across every client.
        Some(session) => f(&mut session.lock().unwrap_or_else(PoisonError::into_inner)),
        None => error_response(404, &format!("no such session: {id}")),
    }
}

fn session_push(state: &AppState, id: &str, req: &Request) -> ApiResponse {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return error_response(400, "body must be utf-8 JSON");
    };
    let v: Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return error_response(400, &format!("body is not valid JSON: {e}")),
    };
    let Some(rows) = v["edges"].as_array() else {
        return error_response(400, "'edges' must be an array of [src, dst, t] rows");
    };
    let mut edges: Vec<(NodeId, NodeId, Timestamp)> = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let parsed = row.as_array().and_then(|r| {
            if r.len() != 3 {
                return None;
            }
            let src = r.first()?.as_u64()?;
            let dst = r.get(1)?.as_u64()?;
            let t = r.get(2)?.as_i64()?;
            let max_id = u64::from(u32::MAX >> 1);
            if src > max_id || dst > max_id {
                return None;
            }
            Some((src as NodeId, dst as NodeId, t))
        });
        match parsed {
            Some(edge) => edges.push(edge),
            None => {
                return error_response(
                    400,
                    &format!("edges[{i}] is not a valid [src, dst, t] row (ids < 2^31)"),
                )
            }
        }
    }
    with_session(state, id, |s| {
        let out = s.push_edges(&edges);
        ok(200, &s.push_body(out))
    })
}

fn close_session(state: &AppState, id: &str) -> ApiResponse {
    let Ok(id) = id.parse::<u64>() else {
        return error_response(400, &format!("session id must be an integer, got {id:?}"));
    };
    if state.sessions.remove(id) {
        ok(200, &serde_json::json!({"closed": id}))
    } else {
        error_response(404, &format!("no such session: {id}"))
    }
}

fn shutdown(state: &AppState) -> ApiResponse {
    if !state.cfg.enable_shutdown {
        return error_response(
            403,
            "shutdown endpoint is disabled; start with --enable-shutdown",
        );
    }
    let value = serde_json::json!({"status": "shutting-down"});
    ApiResponse {
        body: Arc::new(hare::report::render(&value)),
        shutdown: true,
        ..ApiResponse::default()
    }
}
