//! Per-node profile endpoints: `GET /nodes/{id}/motifs` and
//! `GET /nodes/top`.
//!
//! Both serve the `hare::fingerprint` query family over the same
//! contract as `/count`: the body is built by `hare::report`, carries
//! no timing, and is byte-identical to the matching
//! `hare-count --nodes --json --no-timing` output (per-node lines for
//! `/nodes/{id}/motifs`, the single ranking line for `/nodes/top`).
//! Results are cached under the existing `(fingerprint, delta, engine)`
//! LRU key scheme with a `nodes/...` engine string, so repeated profile
//! queries against an unchanged dataset are cache hits.

use std::sync::Arc;

use temporal_graph::{NodeId, Timestamp};

use crate::api::{error_response, param, ApiResponse, MAX_QUERY_THREADS};
use crate::cache::CacheKey;
use crate::catalog::DatasetEntry;
use crate::http::Request;
use crate::AppState;

/// The `(dataset, delta, threads)` triple every per-node query starts
/// from, validated exactly like `/count` (same error shapes).
struct NodeQuery {
    entry: Arc<DatasetEntry>,
    delta: Timestamp,
    threads: usize,
}

fn node_query(state: &AppState, req: &Request) -> Result<NodeQuery, Box<ApiResponse>> {
    let Some(dataset) = req.query_param("dataset") else {
        return Err(Box::new(error_response(
            400,
            "missing required parameter 'dataset'",
        )));
    };
    let Some(entry) = state.catalog.get(dataset) else {
        return Err(Box::new(error_response(
            404,
            &format!(
                "dataset {dataset:?} is not in the catalog; registered: [{}]",
                state.catalog.names().join(", ")
            ),
        )));
    };
    let delta: Timestamp = param(req, "delta", None)?;
    let threads: usize = param(req, "threads", Some(state.cfg.query_threads))?;
    if threads > MAX_QUERY_THREADS {
        return Err(Box::new(error_response(
            400,
            &format!("parameter 'threads' must be at most {MAX_QUERY_THREADS}, got {threads}"),
        )));
    }
    Ok(NodeQuery {
        entry,
        delta,
        threads,
    })
}

/// Serve a body from the LRU cache, computing and inserting on a miss.
/// `engine` is the canonical parameter string of the query (threads
/// excluded: profiles are bit-identical across thread counts).
fn cached(
    state: &AppState,
    q: &NodeQuery,
    engine: String,
    compute: impl FnOnce() -> serde_json::Value,
) -> ApiResponse {
    let key = CacheKey {
        fingerprint: q.entry.fingerprint,
        delta: q.delta,
        engine,
    };
    if let Some(body) = state.cache.get(&key) {
        return ApiResponse {
            body,
            cache: Some(true),
            ..ApiResponse::default()
        };
    }
    let rendered = Arc::new(hare::report::render(&compute()));
    state.cache.insert(key, Arc::clone(&rendered));
    ApiResponse {
        body: rendered,
        cache: Some(false),
        ..ApiResponse::default()
    }
}

/// `GET /nodes/{id}/motifs?dataset=NAME&delta=SECONDS[&threads=N]` —
/// one node's sparse motif participation profile. Unknown node ids are
/// 404; a known node with no participation gets its (empty) profile.
pub(crate) fn node_motifs(state: &AppState, req: &Request, id: &str) -> ApiResponse {
    let Ok(node) = id.parse::<NodeId>() else {
        return error_response(400, &format!("node id must be an integer, got {id:?}"));
    };
    let q = match node_query(state, req) {
        Ok(q) => q,
        Err(resp) => return *resp,
    };
    if node as usize >= q.entry.stats.num_nodes {
        return error_response(
            404,
            &format!(
                "no such node: {node} (dataset has {} nodes)",
                q.entry.stats.num_nodes
            ),
        );
    }
    cached(state, &q, format!("nodes/node={node}"), || {
        let profiles = hare::NodeProfiles::compute(&q.entry.graph, q.delta, q.threads);
        let empty = hare::NodeProfile::default();
        let profile = profiles.get(node).unwrap_or(&empty);
        hare::report::node_profile_body(node, q.delta, profile)
    })
}

/// `GET /nodes/top?dataset=NAME&delta=SECONDS[&motif=M][&k=K][&threads=N]`
/// — the top-k ranking: by one motif's participation when `motif` is
/// given (count descending, node id ascending on ties), otherwise by
/// z-score anomaly against the graph-wide profile distribution.
pub(crate) fn top_nodes(state: &AppState, req: &Request) -> ApiResponse {
    let k: usize = match param(req, "k", Some(10)) {
        Ok(v) => v,
        Err(resp) => return *resp,
    };
    if k == 0 {
        return error_response(400, "parameter 'k' must be at least 1");
    }
    let motif = match req.query_param("motif") {
        Some(raw) => match raw.parse::<hare::Motif>() {
            Ok(m) => Some(m),
            Err(e) => return error_response(400, &format!("parameter 'motif': {e}")),
        },
        None => None,
    };
    let q = match node_query(state, req) {
        Ok(q) => q,
        Err(resp) => return *resp,
    };
    let engine = match motif {
        Some(m) => format!("nodes/top/motif={m}/k={k}"),
        None => format!("nodes/top/rank=zscore/k={k}"),
    };
    cached(state, &q, engine, || {
        let profiles = hare::NodeProfiles::compute(&q.entry.graph, q.delta, q.threads);
        match motif {
            Some(m) => {
                let ranked = hare::top_k_nodes(&profiles, m, k);
                hare::report::top_nodes_body(q.delta, m, k, &ranked)
            }
            None => {
                let dist = hare::ProfileDistribution::compute(&profiles);
                let ranked = hare::rank_by_zscore(&profiles, &dist, k);
                hare::report::zscore_nodes_body(q.delta, k, &ranked)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use crate::http::client;
    use crate::{Server, ServerConfig, ServerHandle};

    /// A server with the paper's Fig. 1 toy uploaded as dataset "fig1".
    /// Uploads intern ids by first appearance, so the paper's nodes map
    /// to e=0, d=1, a=2, c=3, b=4 — the single M65 pair at δ=10 sits on
    /// nodes 0 (v_e) and 1 (v_d).
    fn fig1_server() -> ServerHandle {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            query_threads: 1,
            ..ServerConfig::default()
        })
        .expect("bind")
        .spawn();
        let edges = "4 3 1\n0 2 4\n4 2 6\n0 2 8\n3 0 9\n3 2 10\n0 1 11\n3 4 14\n0 2 15\n2 3 17\n4 3 18\n3 4 21\n";
        let body = serde_json::json!({"name": "fig1", "edges": edges}).to_string();
        let resp = client::post(server.addr(), "/datasets", &body).unwrap();
        assert_eq!(resp.status, 201, "{}", resp.text());
        server
    }

    #[test]
    fn node_motifs_serves_sparse_profile() {
        let server = fig1_server();
        let resp = client::get(server.addr(), "/nodes/1/motifs?dataset=fig1&delta=10").unwrap();
        let body = resp.text();
        assert_eq!(resp.status, 200, "{body}");
        assert!(
            body.starts_with(r#"{"node":1,"delta":10,"total":"#),
            "{body}"
        );
        assert!(body.contains(r#"{"motif":"M65","count":1}"#), "{body}");
        assert!(!body.contains(r#""count":0"#), "{body}");
        server.shutdown_and_wait().unwrap();
    }

    #[test]
    fn node_motifs_rejects_bad_and_unknown_ids() {
        let server = fig1_server();
        let resp = client::get(server.addr(), "/nodes/abc/motifs?dataset=fig1&delta=10").unwrap();
        assert_eq!(resp.status, 400, "{}", resp.text());
        let resp = client::get(server.addr(), "/nodes/999/motifs?dataset=fig1&delta=10").unwrap();
        assert_eq!(resp.status, 404, "{}", resp.text());
        assert!(resp.text().contains("no such node"), "{}", resp.text());
        let resp = client::get(server.addr(), "/nodes/3/motifs?dataset=nope&delta=10").unwrap();
        assert_eq!(resp.status, 404);
        let resp = client::get(server.addr(), "/nodes/3/motifs?dataset=fig1").unwrap();
        assert_eq!(resp.status, 400);
        assert!(resp.text().contains("delta"), "{}", resp.text());
        server.shutdown_and_wait().unwrap();
    }

    #[test]
    fn top_nodes_ranks_by_motif_and_zscore() {
        let server = fig1_server();
        let resp = client::get(
            server.addr(),
            "/nodes/top?dataset=fig1&delta=10&motif=M65&k=2",
        )
        .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.text(),
            "{\"delta\":10,\"rank\":\"motif\",\"motif\":\"M65\",\"k\":2,\"nodes\":[{\"node\":0,\"count\":1},{\"node\":1,\"count\":1}]}\n"
        );
        let resp = client::get(server.addr(), "/nodes/top?dataset=fig1&delta=10&k=3").unwrap();
        assert_eq!(resp.status, 200);
        assert!(
            resp.text()
                .starts_with(r#"{"delta":10,"rank":"zscore","k":3,"nodes":["#),
            "{}",
            resp.text()
        );
        server.shutdown_and_wait().unwrap();
    }

    #[test]
    fn top_nodes_rejects_bad_parameters() {
        let server = fig1_server();
        let resp =
            client::get(server.addr(), "/nodes/top?dataset=fig1&delta=10&motif=M99").unwrap();
        assert_eq!(resp.status, 400);
        assert!(resp.text().contains("motif"), "{}", resp.text());
        let resp = client::get(server.addr(), "/nodes/top?dataset=fig1&delta=10&k=0").unwrap();
        assert_eq!(resp.status, 400);
        let resp = client::get(server.addr(), "/nodes/top?dataset=fig1&delta=10&k=-1").unwrap();
        assert_eq!(resp.status, 400);
        server.shutdown_and_wait().unwrap();
    }

    #[test]
    fn node_bodies_are_cached_under_distinct_keys() {
        let server = fig1_server();
        let paths = [
            "/nodes/3/motifs?dataset=fig1&delta=10",
            "/nodes/4/motifs?dataset=fig1&delta=10",
            "/nodes/top?dataset=fig1&delta=10&motif=M65&k=2",
            "/nodes/top?dataset=fig1&delta=10&k=2",
        ];
        let get = |p: &str| client::get(server.addr(), p).unwrap().text();
        let first: Vec<String> = paths.iter().map(|p| get(p)).collect();
        let second: Vec<String> = paths.iter().map(|p| get(p)).collect();
        assert_eq!(first, second, "cached bodies are byte-identical");
        assert_ne!(first[0], first[1], "distinct nodes, distinct bodies");
        let stats = client::get(server.addr(), "/stats")
            .unwrap()
            .json()
            .unwrap();
        assert_eq!(stats["cache"]["hits"].as_u64(), Some(4), "{stats}");
        assert_eq!(stats["cache"]["misses"].as_u64(), Some(4), "{stats}");
        server.shutdown_and_wait().unwrap();
    }

    #[test]
    fn wrong_verb_on_nodes_paths_is_405() {
        let server = fig1_server();
        let resp = client::post(server.addr(), "/nodes/top?dataset=fig1&delta=10", "{}").unwrap();
        assert_eq!(resp.status, 405, "{}", resp.text());
        server.shutdown_and_wait().unwrap();
    }
}
