//! # hare-serve — the long-running motif-query service.
//!
//! The counting engines in [`hare`] are one-shot: load a graph, count,
//! exit. This crate keeps the investment resident and serves it
//! concurrently over HTTP/1.1 + JSON on `std::net` (no external
//! dependencies; query execution reuses the engines' rayon pool):
//!
//! * **Dataset catalog** ([`catalog`]) — graphs are loaded, indexed,
//!   fingerprinted and stat'd once (startup `--preload` or runtime
//!   `POST /datasets`) and shared immutably across requests via `Arc`.
//! * **Query dispatch with backpressure** — an acceptor thread feeds a
//!   bounded queue drained by a fixed worker pool; when the queue is
//!   full the acceptor answers `429` immediately instead of letting
//!   latency collapse.
//! * **Result cache** ([`cache`]) — an LRU over rendered response
//!   bodies keyed by `(dataset fingerprint, δ, engine, params)`, with
//!   hit/miss metrics on `GET /stats`. Repeated queries are O(1).
//! * **Streaming ingest sessions** ([`sessions`]) — per-client
//!   [`hare::windowed::WindowedCounter`]s: push edges, poll the live
//!   per-tick motif matrix. Sessions created with a `"memory_budget"`
//!   run the bounded-memory estimator
//!   ([`hare::stream_sample::StreamingEstimator`]) instead, with their
//!   budgets carved out of the daemon-wide `--session-memory-budget`
//!   pool.
//! * **Graceful shutdown** — SIGTERM/SIGINT (binary) or
//!   `POST /shutdown` (test mode): the acceptor stops, every queued and
//!   in-flight request still completes, then workers join.
//!
//! The differential contract: every `GET /count` body is **bit-identical**
//! to the stdout of the equivalent `hare-count --json --no-timing`
//! invocation, because both are rendered by [`hare::report`] — pinned by
//! the end-to-end suite, including under concurrent load.
//!
//! ## In-process quickstart
//!
//! ```
//! use hare_serve::{http::client, Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     preload: vec![("CollegeMsg".into(), 8)],
//!     ..ServerConfig::default()
//! })
//! .unwrap();
//! let addr = server.local_addr().unwrap();
//! let handle = server.spawn();
//! let resp = client::get(addr, "/count?dataset=CollegeMsg&delta=600").unwrap();
//! assert_eq!(resp.status, 200);
//! assert_eq!(resp.json().unwrap()["delta"].as_i64(), Some(600));
//! handle.shutdown_and_wait().unwrap();
//! ```
//!
//! See `docs/SERVICE.md` for the full endpoint reference and `curl`
//! quickstart.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod cache;
pub mod catalog;
pub mod http;
pub mod nodes;
pub mod obs;
pub mod sessions;

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, TrySendError};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

use cache::ResultCache;
use catalog::Catalog;
use sessions::SessionStore;

/// Server configuration. `Default` gives a localhost service with a
/// small worker pool suited to tests and single-machine serving.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` = ephemeral port).
    pub addr: String,
    /// Worker threads draining the connection queue (min 1).
    pub workers: usize,
    /// Bounded queue depth between acceptor and workers; an arriving
    /// request that finds it full is answered `429` (min 1).
    pub queue_capacity: usize,
    /// Result-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Default per-query counting threads (`0` = all cores); overridable
    /// per request with `?threads=N`. Results are bit-identical across
    /// thread counts either way.
    pub query_threads: usize,
    /// Largest accepted request body (dataset uploads), in bytes.
    pub max_body_bytes: usize,
    /// Per-connection socket read/write timeout.
    pub io_timeout: Duration,
    /// Maximum simultaneously open streaming sessions; creation beyond
    /// the cap is answered `429` (each session holds a live
    /// `WindowedCounter`, so the cap bounds client-driven memory).
    pub max_sessions: usize,
    /// Daemon-wide byte pool for budgeted sessions (`None` = unmetered):
    /// each session created with a `"memory_budget"` reserves that many
    /// bytes at creation (answered `429` when the pool is exhausted) and
    /// returns them on close, so total estimator memory stays bounded
    /// regardless of how many budgeted sessions clients open.
    pub session_memory_budget: Option<u64>,
    /// Allow `POST /shutdown` (test mode; the binary's flag).
    pub enable_shutdown: bool,
    /// Emit a one-line JSON access log per handled request to stderr
    /// (method, path, status, latency, cache disposition). Off by
    /// default so embedded/test servers stay quiet; the daemon binary
    /// turns it on unless `--no-access-log` is passed.
    pub access_log: bool,
    /// Registry datasets to load at startup: `(name, scale)`.
    pub preload: Vec<(String, usize)>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 256,
            query_threads: 0,
            max_body_bytes: 16 * 1024 * 1024,
            io_timeout: Duration::from_secs(30),
            max_sessions: 1024,
            session_memory_budget: None,
            enable_shutdown: false,
            access_log: false,
            preload: Vec::new(),
        }
    }
}

/// Queue/worker counters surfaced by `GET /stats` and `/metrics`.
///
/// All four live in one [`hare_obs::Group`] seqlock: every state
/// transition (enqueue, dequeue, complete, reject) moves its pair of
/// counters in a single atomic update, so a [`Metrics::snapshot`] is
/// always self-consistent — a request is never observed in two states
/// at once, or in none.
#[derive(Default)]
pub struct Metrics {
    group: hare_obs::Group<4>,
}

const M_QUEUED: usize = 0;
const M_IN_FLIGHT: usize = 1;
const M_COMPLETED: usize = 2;
const M_REJECTED: usize = 3;

impl Metrics {
    /// Connections accepted and waiting in the queue right now.
    #[must_use]
    pub fn queued(&self) -> u64 {
        self.group.get(M_QUEUED)
    }

    /// Requests currently being handled by a worker.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.group.get(M_IN_FLIGHT)
    }

    /// Requests fully handled (response written).
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.group.get(M_COMPLETED)
    }

    /// Connections rejected with `429` because the queue was full.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.group.get(M_REJECTED)
    }

    /// One coherent `[queued, in_flight, completed, rejected]` view.
    #[must_use]
    pub fn snapshot(&self) -> [u64; 4] {
        self.group.snapshot()
    }
}

/// Shared state behind every handler: catalog, cache, sessions,
/// metrics, configuration, and the shutdown latch.
pub struct AppState {
    /// Effective configuration.
    pub cfg: ServerConfig,
    /// The dataset catalog.
    pub catalog: Catalog,
    /// The LRU result cache.
    pub cache: ResultCache,
    /// Open streaming ingest sessions.
    pub sessions: SessionStore,
    /// Queue/worker counters.
    pub metrics: Metrics,
    /// Metric registry and trace ring (`GET /metrics`, `?trace=1`).
    pub obs: obs::ServeObs,
    shutdown_flag: AtomicBool,
    bound_addr: OnceLock<SocketAddr>,
}

impl AppState {
    /// Request graceful shutdown: the acceptor stops taking new
    /// connections, queued and in-flight requests complete, workers
    /// join. Idempotent; safe from any thread (including a worker
    /// answering `POST /shutdown` and the binary's signal watcher).
    pub fn request_shutdown(&self) {
        if !self.shutdown_flag.swap(true, Ordering::SeqCst) {
            // Wake the acceptor out of its blocking `accept` with a
            // probe connection; it re-checks the flag per connection.
            if let Some(addr) = self.bound_addr.get() {
                let _ = TcpStream::connect_timeout(addr, Duration::from_secs(1));
            }
        }
    }

    /// `true` once shutdown has been requested.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_flag.load(Ordering::SeqCst)
    }
}

/// A bound (not yet running) server.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
}

impl Server {
    /// Bind the listener and build the shared state, loading every
    /// `preload` dataset into the catalog before any request can
    /// arrive.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let catalog = Catalog::new();
        for (name, scale) in &cfg.preload {
            catalog.register_registry(name, *scale, None).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
            })?;
        }
        let state = Arc::new(AppState {
            cache: ResultCache::new(cfg.cache_capacity),
            catalog,
            sessions: SessionStore::with_pool(cfg.session_memory_budget),
            metrics: Metrics::default(),
            obs: obs::ServeObs::new(),
            cfg,
            shutdown_flag: AtomicBool::new(false),
            bound_addr: OnceLock::new(),
        });
        let _ = state.bound_addr.set(listener.local_addr()?);
        spawn_rss_sampler(Arc::downgrade(&state));
        Ok(Server { listener, state })
    }

    /// The bound address (read the actual port after binding `:0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state (catalog/cache/metrics access for embedders).
    #[must_use]
    pub fn state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Run until shutdown is requested, then drain and join. Blocks the
    /// calling thread; use [`Server::spawn`] for a background server.
    pub fn run(self) -> std::io::Result<()> {
        let state = self.state;
        let workers = state.cfg.workers.max(1);
        let queue_capacity = state.cfg.queue_capacity.max(1);
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(queue_capacity);
        let rx = Arc::new(Mutex::new(rx));

        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("hare-serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &state))?,
            );
        }

        for conn in self.listener.incoming() {
            let Ok(conn) = conn else { continue };
            if state.shutdown_requested() {
                // The connection that woke us (or raced the latch) is
                // dropped unanswered; everything already queued drains.
                break;
            }
            // Count the connection as queued *before* it becomes
            // visible to a worker (the worker's decrement must never
            // precede this increment), undoing on the reject paths.
            state.metrics.group.update(|v| v[M_QUEUED] += 1);
            match tx.try_send(conn) {
                Ok(()) => {}
                Err(TrySendError::Full(mut conn)) => {
                    // Backpressure: answer 429 from the acceptor rather
                    // than queueing unbounded work. One transition:
                    // queued -> rejected.
                    state.metrics.group.update(|v| {
                        v[M_QUEUED] -= 1;
                        v[M_REJECTED] += 1;
                    });
                    let resp =
                        api::error_response(429, "request queue is full, retry with backoff");
                    let _ = conn.set_write_timeout(Some(state.cfg.io_timeout));
                    let _ = http::write_response(
                        &mut conn,
                        resp.status,
                        resp.content_type,
                        resp.body.as_bytes(),
                    );
                }
                Err(TrySendError::Disconnected(_)) => {
                    state.metrics.group.update(|v| v[M_QUEUED] -= 1);
                    break;
                }
            }
        }

        // Drain: close the queue, let workers finish every queued and
        // in-flight request, then join.
        drop(tx);
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }

    /// Run on a background thread; the returned handle shuts the server
    /// down (and joins it) on drop.
    #[must_use]
    pub fn spawn(self) -> ServerHandle {
        let addr = self.listener.local_addr().expect("bound listener");
        let state = Arc::clone(&self.state);
        let join = std::thread::Builder::new()
            .name("hare-serve-acceptor".into())
            .spawn(move || self.run())
            .expect("spawn acceptor thread");
        ServerHandle {
            addr,
            state,
            join: Some(join),
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, state: &Arc<AppState>) {
    loop {
        // Hold the lock only for the dequeue; handling runs unlocked so
        // workers process different connections concurrently.
        let conn = {
            let guard = rx.lock().expect("queue poisoned");
            guard.recv()
        };
        let Ok(mut conn) = conn else { break };
        // One transition: queued -> in_flight.
        state.metrics.group.update(|v| {
            v[M_QUEUED] -= 1;
            v[M_IN_FLIGHT] += 1;
        });
        // Panic isolation: a panicking handler must cost one request,
        // never a worker — an unwinding worker would permanently shrink
        // the pool until nothing drains the queue.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(state, &mut conn);
        }));
        if outcome.is_err() {
            let resp = api::error_response(500, "internal error while handling the request");
            let _ = http::write_response(
                &mut conn,
                resp.status,
                resp.content_type,
                resp.body.as_bytes(),
            );
        }
        // One transition: in_flight -> completed.
        state.metrics.group.update(|v| {
            v[M_IN_FLIGHT] -= 1;
            v[M_COMPLETED] += 1;
        });
    }
}

fn handle_connection(state: &Arc<AppState>, conn: &mut TcpStream) {
    let _ = conn.set_read_timeout(Some(state.cfg.io_timeout));
    let _ = conn.set_write_timeout(Some(state.cfg.io_timeout));
    let started = Instant::now();
    let (method, path, resp) = match http::read_request(conn, state.cfg.max_body_bytes) {
        Ok(req) => {
            let resp = api::handle(state, &req);
            (req.method, req.path, resp)
        }
        // Connection-level failure (peer went away, shutdown probe):
        // nothing to answer.
        Err(http::ReadError::Io(_)) => return,
        Err(http::ReadError::BadRequest(m)) => {
            ("-".into(), "-".into(), api::error_response(400, &m))
        }
        Err(http::ReadError::TooLarge(n)) => (
            "-".into(),
            "-".into(),
            api::error_response(
                413,
                &format!(
                    "request body of {n} bytes exceeds the {} byte limit",
                    state.cfg.max_body_bytes
                ),
            ),
        ),
    };
    // Record the observation (and the log line below) *before* the
    // response hits the wire: once a client holds the response, an
    // immediate /metrics scrape must already account for this request.
    // Localhost socket writes are the only latency left out.
    let latency_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    state.obs.observe_request(&path, resp.status, latency_us);
    if state.cfg.access_log {
        // One JSON object per line so the stream is machine-parseable;
        // serde_json handles the escaping of client-controlled paths.
        let line = serde_json::json!({
            "method": method,
            "path": path,
            "status": resp.status,
            "latency_us": latency_us,
            "cache": match resp.cache {
                Some(true) => "hit",
                Some(false) => "miss",
                None => "-",
            },
        });
        eprintln!("{line}");
    }
    let _ = http::write_response(conn, resp.status, resp.content_type, resp.body.as_bytes());
    if resp.shutdown {
        // Trigger only after the response is on the wire so the caller
        // of POST /shutdown gets its 200.
        state.request_shutdown();
    }
}

/// Background VmRSS sampler: refreshes `hare_resident_memory_bytes`
/// about once a second for as long as the server state is alive. The
/// `Weak` handle is the thread's exit signal — once the last `Arc` to
/// the state drops, the next tick ends the loop.
fn spawn_rss_sampler(state: Weak<AppState>) {
    let _ = std::thread::Builder::new()
        .name("hare-serve-rss-sampler".into())
        .spawn(move || loop {
            let Some(state) = state.upgrade() else { return };
            if state.shutdown_requested() {
                return;
            }
            if let Some(bytes) = hare_obs::resident_set_bytes() {
                state.obs.set_resident_bytes(bytes);
            }
            // Drop the strong reference before sleeping so the sampler
            // never keeps a shut-down server's state alive.
            drop(state);
            std::thread::sleep(Duration::from_millis(1000));
        });
}

/// Handle to a background server. Dropping it requests shutdown and
/// joins, so tests cannot leak servers.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    join: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl ServerHandle {
    /// The server's bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (metrics/catalog inspection from tests).
    #[must_use]
    pub fn state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Request graceful shutdown and wait for the drain to finish.
    pub fn shutdown_and_wait(mut self) -> std::io::Result<()> {
        self.state.request_shutdown();
        match self.join.take() {
            Some(join) => join
                .join()
                .unwrap_or_else(|_| Err(std::io::Error::other("server thread panicked"))),
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.state.request_shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use http::client;

    fn test_server(cfg: ServerConfig) -> ServerHandle {
        Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..cfg
        })
        .expect("bind")
        .spawn()
    }

    #[test]
    fn serves_index_and_stats() {
        let server = test_server(ServerConfig::default());
        let resp = client::get(server.addr(), "/").unwrap();
        assert_eq!(resp.status, 200);
        let v = resp.json().unwrap();
        assert_eq!(v["service"].as_str(), Some("hare-serve"));
        let stats = client::get(server.addr(), "/stats")
            .unwrap()
            .json()
            .unwrap();
        assert_eq!(stats["catalog"]["datasets"].as_u64(), Some(0));
        assert_eq!(stats["queue"]["workers"].as_u64(), Some(4));
        server.shutdown_and_wait().unwrap();
    }

    #[test]
    fn count_query_hits_cache_on_repeat() {
        let server = test_server(ServerConfig {
            preload: vec![("CollegeMsg".into(), 16)],
            query_threads: 1,
            ..ServerConfig::default()
        });
        let target = "/count?dataset=CollegeMsg&delta=600";
        let first = client::get(server.addr(), target).unwrap();
        assert_eq!(first.status, 200);
        let second = client::get(server.addr(), target).unwrap();
        assert_eq!(second.status, 200);
        assert_eq!(first.body, second.body, "cached body is byte-identical");
        let stats = client::get(server.addr(), "/stats")
            .unwrap()
            .json()
            .unwrap();
        assert_eq!(stats["cache"]["hits"].as_u64(), Some(1));
        assert_eq!(stats["cache"]["misses"].as_u64(), Some(1));
        assert_eq!(stats["cache"]["entries"].as_u64(), Some(1));
        server.shutdown_and_wait().unwrap();
    }

    #[test]
    fn upload_register_query_and_conflict() {
        let server = test_server(ServerConfig::default());
        let body = r#"{"name":"tri","edges":"0 1 10\n1 2 12\n2 0 14\n"}"#;
        let resp = client::post(server.addr(), "/datasets", body).unwrap();
        assert_eq!(resp.status, 201, "{}", resp.text());
        let v = resp.json().unwrap();
        assert_eq!(v["nodes"].as_u64(), Some(3));
        assert_eq!(v["edges"].as_u64(), Some(3));
        assert!(v["fingerprint"].as_u64().is_some());

        let count = client::get(server.addr(), "/count?dataset=tri&delta=600")
            .unwrap()
            .json()
            .unwrap();
        assert_eq!(count["total"].as_u64(), Some(1), "one triangle motif");

        let dup = client::post(server.addr(), "/datasets", body).unwrap();
        assert_eq!(dup.status, 409);
        server.shutdown_and_wait().unwrap();
    }

    #[test]
    fn session_round_trip_over_http() {
        let server = test_server(ServerConfig::default());
        let addr = server.addr();
        let created = client::post(addr, "/sessions", r#"{"delta":20,"window":100}"#).unwrap();
        assert_eq!(created.status, 201, "{}", created.text());
        let id = created.json().unwrap()["session"].as_u64().unwrap();

        let push = client::post(
            addr,
            &format!("/sessions/{id}/edges"),
            r#"{"edges":[[0,1,10],[1,2,12],[2,0,14],[3,3,15]]}"#,
        )
        .unwrap();
        assert_eq!(push.status, 200);
        let pv = push.json().unwrap();
        assert_eq!(pv["accepted"].as_u64(), Some(3));
        assert_eq!(pv["self_loops_dropped"].as_u64(), Some(1));

        let tick = client::post(addr, &format!("/sessions/{id}/flush"), "")
            .unwrap()
            .json()
            .unwrap();
        assert_eq!(tick["tick"].as_i64(), Some(14));
        assert_eq!(tick["total"].as_u64(), Some(1));
        assert_eq!(tick["counts"].as_array().unwrap().len(), 36);

        let closed = client::request(addr, "DELETE", &format!("/sessions/{id}"), None).unwrap();
        assert_eq!(closed.status, 200);
        let gone = client::get(addr, &format!("/sessions/{id}")).unwrap();
        assert_eq!(gone.status, 404);
        server.shutdown_and_wait().unwrap();
    }

    #[test]
    fn session_cap_backpressures_creation() {
        let server = test_server(ServerConfig {
            max_sessions: 2,
            ..ServerConfig::default()
        });
        let addr = server.addr();
        let create = || client::post(addr, "/sessions", r#"{"delta":10,"window":10}"#).unwrap();
        let a = create();
        let b = create();
        assert_eq!((a.status, b.status), (201, 201));
        let over = create();
        assert_eq!(over.status, 429, "{}", over.text());
        assert!(over.text().contains("session limit"), "{}", over.text());
        // Closing one frees a slot.
        let id = a.json().unwrap()["session"].as_u64().unwrap();
        let closed = client::request(addr, "DELETE", &format!("/sessions/{id}"), None).unwrap();
        assert_eq!(closed.status, 200);
        assert_eq!(create().status, 201);
        server.shutdown_and_wait().unwrap();
    }

    #[test]
    fn budgeted_sessions_draw_from_the_memory_pool() {
        let server = test_server(ServerConfig {
            session_memory_budget: Some(100_000),
            ..ServerConfig::default()
        });
        let addr = server.addr();
        let created = client::post(
            addr,
            "/sessions",
            r#"{"delta":20,"window":100,"memory_budget":65536}"#,
        )
        .unwrap();
        assert_eq!(created.status, 201, "{}", created.text());
        let cv = created.json().unwrap();
        assert_eq!(cv["memory_budget"].as_u64(), Some(65536));
        let id = cv["session"].as_u64().unwrap();

        // The pool has 100_000 - 65_536 bytes left: too small for a peer.
        let over = client::post(
            addr,
            "/sessions",
            r#"{"delta":20,"window":100,"memory_budget":65536}"#,
        )
        .unwrap();
        assert_eq!(over.status, 429, "{}", over.text());
        assert!(over.text().contains("memory pool"), "{}", over.text());
        let stats = client::get(addr, "/stats").unwrap().json().unwrap();
        assert_eq!(stats["sessions"]["memory_pool"].as_u64(), Some(100_000));
        assert_eq!(stats["sessions"]["memory_reserved"].as_u64(), Some(65536));

        // Estimator sessions flush to the estimator tick shape.
        let push = client::post(
            addr,
            &format!("/sessions/{id}/edges"),
            r#"{"edges":[[0,1,10],[1,2,12],[2,0,14]]}"#,
        )
        .unwrap();
        assert_eq!(push.status, 200);
        let pv = push.json().unwrap();
        assert_eq!(pv["retained_edges"].as_u64(), Some(3));
        let tick = client::post(addr, &format!("/sessions/{id}/flush"), "")
            .unwrap()
            .json()
            .unwrap();
        assert_eq!(tick["budget"]["bytes"].as_u64(), Some(65536));
        assert_eq!(tick["total_estimate"].as_f64(), Some(1.0));

        // Closing the session returns its bytes, so a peer now fits.
        let closed = client::request(addr, "DELETE", &format!("/sessions/{id}"), None).unwrap();
        assert_eq!(closed.status, 200);
        let retry = client::post(
            addr,
            "/sessions",
            r#"{"delta":20,"window":100,"memory_budget":65536}"#,
        )
        .unwrap();
        assert_eq!(retry.status, 201, "{}", retry.text());

        // A malformed budget is a 400, not a reservation.
        let bad = client::post(
            addr,
            "/sessions",
            r#"{"delta":20,"window":100,"memory_budget":0}"#,
        )
        .unwrap();
        assert_eq!(bad.status, 400, "{}", bad.text());
        server.shutdown_and_wait().unwrap();
    }

    #[test]
    fn oversized_thread_request_is_rejected() {
        let server = test_server(ServerConfig {
            preload: vec![("CollegeMsg".into(), 16)],
            ..ServerConfig::default()
        });
        let resp = client::get(
            server.addr(),
            "/count?dataset=CollegeMsg&delta=600&threads=500000",
        )
        .unwrap();
        assert_eq!(resp.status, 400, "{}", resp.text());
        assert!(resp.text().contains("threads"), "{}", resp.text());
        server.shutdown_and_wait().unwrap();
    }

    #[test]
    fn malformed_requests_get_structured_errors() {
        let server = test_server(ServerConfig::default());
        let addr = server.addr();
        for (target, want) in [
            ("/count", 400),                        // missing dataset
            ("/count?dataset=nope&delta=600", 404), // unknown dataset
            ("/nope", 404),                         // unknown endpoint
        ] {
            let resp = client::get(addr, target).unwrap();
            assert_eq!(resp.status, want, "{target}: {}", resp.text());
            let v = resp.json().unwrap();
            assert_eq!(v["error"]["code"].as_u64(), Some(u64::from(want)));
            assert!(v["error"]["message"].as_str().is_some());
        }
        // Wrong verb on a known path.
        let resp = client::post(addr, "/count?dataset=x&delta=1", "").unwrap();
        assert_eq!(resp.status, 405);
        // Shutdown is rejected while disabled.
        let resp = client::post(addr, "/shutdown", "").unwrap();
        assert_eq!(resp.status, 403);
        server.shutdown_and_wait().unwrap();
    }

    #[test]
    fn drop_shuts_the_server_down() {
        let server = test_server(ServerConfig::default());
        let addr = server.addr();
        drop(server);
        // The listener is gone: either the connection is refused or the
        // unanswered probe yields an IO error.
        assert!(client::get(addr, "/").is_err());
    }
}
