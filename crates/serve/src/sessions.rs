//! Streaming ingest sessions: a sliding-window engine per client stream.
//!
//! A session wraps one of two engines behind three verbs — create
//! (`POST /sessions`), push a batch of edges
//! (`POST /sessions/{id}/edges`), and poll the live per-tick body
//! (`GET /sessions/{id}`):
//!
//! * **Exact** ([`WindowedCounter`]) — the default: exact live-window
//!   counts, body shape [`hare::report::windowed_tick_body`], the same
//!   bytes as one `hare-count --window --json` tick.
//! * **Budgeted** ([`StreamingEstimator`]) — created with a
//!   `"memory_budget"` (bytes): the bounded-memory estimator, body
//!   shape [`hare::report::stream_tick_body`], the same bytes as one
//!   `hare-count --window --memory-budget --json` tick. Per-session
//!   budgets are carved out of the daemon-wide pool
//!   (`--session-memory-budget`), so thousands of concurrent ingest
//!   sessions run at a fixed total RSS instead of only the count cap.
//!
//! Late and self-loop arrivals are dropped and counted, never fatal —
//! mirroring the CLI's streaming drop policy, so a flushed session is
//! byte-identical to the final tick of the equivalent CLI run.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use hare::stream_sample::{StreamSampleConfig, StreamingEstimator};
use hare::streaming::StreamError;
use hare::windowed::WindowedCounter;
use temporal_graph::{NodeId, Timestamp};

/// The counting engine behind one session.
#[derive(Debug)]
pub enum SessionEngine {
    /// Exact live-window counting (no budget).
    Exact(Box<WindowedCounter>),
    /// Bounded-memory estimation under a per-session byte budget.
    Budget(Box<StreamingEstimator>),
}

/// One client's streaming state.
#[derive(Debug)]
pub struct Session {
    /// The sliding-window engine (exact or budgeted).
    pub engine: SessionEngine,
    /// Arrivals dropped as too late for the reorder slack.
    pub late_dropped: u64,
    /// Self-loop arrivals dropped.
    pub self_loops_dropped: u64,
    /// Largest accepted timestamp (the tick label of polled bodies).
    pub max_accepted: Option<Timestamp>,
}

/// Result of pushing one batch of edges into a session.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PushOutcome {
    /// Edges accepted from this batch.
    pub accepted: u64,
    /// Edges of this batch dropped as late.
    pub late_dropped: u64,
    /// Edges of this batch dropped as self-loops.
    pub self_loops_dropped: u64,
}

impl Session {
    /// Push a batch in arrival order, dropping (and counting) late and
    /// self-loop edges exactly like the CLI streaming mode.
    pub fn push_edges(&mut self, edges: &[(NodeId, NodeId, Timestamp)]) -> PushOutcome {
        let mut out = PushOutcome::default();
        for &(src, dst, t) in edges {
            let pushed = match &mut self.engine {
                SessionEngine::Exact(wc) => wc.push(src, dst, t),
                SessionEngine::Budget(est) => est.push(src, dst, t),
            };
            match pushed {
                Ok(()) => {
                    out.accepted += 1;
                    self.max_accepted = Some(self.max_accepted.map_or(t, |m| m.max(t)));
                }
                Err(StreamError::OutOfOrder { .. }) => {
                    out.late_dropped += 1;
                    self.late_dropped += 1;
                }
                Err(StreamError::SelfLoop) => {
                    out.self_loops_dropped += 1;
                    self.self_loops_dropped += 1;
                }
            }
        }
        out
    }

    /// Drain the engine's reorder buffer (`POST /sessions/{id}/flush`).
    pub fn flush(&mut self) {
        match &mut self.engine {
            SessionEngine::Exact(wc) => wc.flush(),
            SessionEngine::Budget(est) => est.flush(),
        }
    }

    /// The session's per-session byte budget (`None` for exact
    /// sessions).
    #[must_use]
    pub fn memory_budget(&self) -> Option<u64> {
        match &self.engine {
            SessionEngine::Exact(_) => None,
            SessionEngine::Budget(est) => Some(est.budget_bytes()),
        }
    }

    /// The session's current tick body, labelled with the largest
    /// accepted timestamp (0 before any acceptance). Exact sessions use
    /// the exact tick shape; budgeted sessions the estimator tick shape
    /// — each byte-identical to the matching CLI mode.
    #[must_use]
    pub fn tick_body(&self) -> serde_json::Value {
        let tick = self.max_accepted.unwrap_or(0);
        match &self.engine {
            SessionEngine::Exact(wc) => hare::report::windowed_tick_body(
                tick,
                wc,
                self.late_dropped,
                self.self_loops_dropped,
            ),
            SessionEngine::Budget(est) => hare::report::stream_tick_body(
                tick,
                est.config().slack,
                &est.estimates(),
                self.late_dropped,
                self.self_loops_dropped,
            ),
        }
    }

    /// The response body of one push batch. Exact sessions report
    /// `live_edges`; budgeted sessions report their reservoir state
    /// instead (tracking the exact live count would itself need
    /// unbounded memory).
    #[must_use]
    pub fn push_body(&self, out: PushOutcome) -> serde_json::Value {
        let mut body = serde_json::json!({
            "accepted": out.accepted,
            "late_dropped": out.late_dropped,
            "self_loops_dropped": out.self_loops_dropped,
        });
        if let Some(map) = body.as_object_mut() {
            match &self.engine {
                SessionEngine::Exact(wc) => {
                    map.insert("live_edges".into(), wc.live_edges().into());
                    map.insert("buffered_edges".into(), wc.buffered_edges().into());
                }
                SessionEngine::Budget(est) => {
                    map.insert("retained_edges".into(), est.retained_edges().into());
                    map.insert("retained_bytes".into(), est.retained_bytes().into());
                    map.insert("memory_budget".into(), est.budget_bytes().into());
                    map.insert("buffered_edges".into(), est.buffered_edges().into());
                }
            }
        }
        body
    }
}

/// Creation failure: reserving the requested per-session budget would
/// overflow the daemon-wide session memory pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolExhausted {
    /// Bytes the new session asked for.
    pub requested: u64,
    /// Bytes still unreserved in the pool.
    pub available: u64,
}

/// Thread-safe id → session map. Sessions are independently locked so
/// concurrent clients never serialise on each other's streams. Budgeted
/// sessions reserve their bytes from a shared pool at creation and
/// return them on close.
#[derive(Default)]
pub struct SessionStore {
    inner: RwLock<HashMap<u64, Arc<Mutex<Session>>>>,
    next_id: AtomicU64,
    created: AtomicU64,
    /// Daemon-wide session memory pool in bytes (`None` = unmetered).
    pool: Option<u64>,
    /// Bytes currently reserved by open budgeted sessions.
    reserved: AtomicU64,
}

impl SessionStore {
    /// An empty store with no memory pool (budgeted sessions are
    /// unmetered).
    #[must_use]
    pub fn new() -> SessionStore {
        SessionStore::default()
    }

    /// An empty store metering budgeted sessions against `pool` bytes.
    #[must_use]
    pub fn with_pool(pool: Option<u64>) -> SessionStore {
        SessionStore {
            pool,
            ..SessionStore::default()
        }
    }

    /// Create a session; the caller has validated `window >= delta >= 0`,
    /// `slack >= 0` and `memory_budget >= 1` (the engine constructors
    /// enforce them by panic, so validation belongs at the API
    /// boundary). A `memory_budget` selects the bounded-memory estimator
    /// engine and reserves that many bytes from the pool.
    ///
    /// # Errors
    /// [`PoolExhausted`] when the requested budget does not fit in the
    /// pool's unreserved remainder.
    pub fn create(
        &self,
        delta: Timestamp,
        window: Timestamp,
        slack: Timestamp,
        memory_budget: Option<u64>,
    ) -> Result<u64, PoolExhausted> {
        let engine = match memory_budget {
            None => {
                SessionEngine::Exact(Box::new(WindowedCounter::with_slack(delta, window, slack)))
            }
            Some(budget) => {
                self.reserve(budget)?;
                SessionEngine::Budget(Box::new(StreamingEstimator::new(StreamSampleConfig {
                    slack,
                    ..StreamSampleConfig::new(delta, window, budget)
                })))
            }
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.created.fetch_add(1, Ordering::Relaxed);
        let session = Session {
            engine,
            late_dropped: 0,
            self_loops_dropped: 0,
            max_accepted: None,
        };
        self.inner
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(id, Arc::new(Mutex::new(session)));
        Ok(id)
    }

    /// Atomically reserve `budget` bytes from the pool (no-op when the
    /// store is unmetered).
    fn reserve(&self, budget: u64) -> Result<(), PoolExhausted> {
        let Some(pool) = self.pool else { return Ok(()) };
        self.reserved
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| {
                r.checked_add(budget).filter(|&total| total <= pool)
            })
            .map(|_| ())
            .map_err(|r| PoolExhausted {
                requested: budget,
                available: pool.saturating_sub(r),
            })
    }

    /// Fetch a session by id.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&id)
            .cloned()
    }

    /// Close a session, returning its reserved budget (if any) to the
    /// pool. Returns `false` when the id is unknown.
    pub fn remove(&self, id: u64) -> bool {
        let removed = self
            .inner
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&id);
        match removed {
            Some(session) => {
                let budget = session
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .memory_budget();
                if let Some(b) = budget {
                    self.reserved.fetch_sub(b, Ordering::Relaxed);
                }
                true
            }
            None => false,
        }
    }

    /// Ids of the open sessions, sorted.
    #[must_use]
    pub fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .copied()
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Number of open sessions.
    #[must_use]
    pub fn open_count(&self) -> usize {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Sessions created over the server's lifetime.
    #[must_use]
    pub fn created_count(&self) -> u64 {
        self.created.load(Ordering::Relaxed)
    }

    /// The daemon-wide session memory pool (`None` = unmetered).
    #[must_use]
    pub fn pool_bytes(&self) -> Option<u64> {
        self.pool
    }

    /// Bytes currently reserved by open budgeted sessions.
    #[must_use]
    pub fn reserved_bytes(&self) -> u64 {
        self.reserved.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_push_poll_close() {
        let store = SessionStore::new();
        let id = store.create(20, 100, 0, None).unwrap();
        assert_eq!(store.open_count(), 1);

        let session = store.get(id).unwrap();
        let mut s = session.lock().unwrap();
        let out = s.push_edges(&[(0, 1, 10), (1, 2, 12), (3, 3, 13), (2, 0, 14), (4, 5, 1)]);
        assert_eq!(out.accepted, 3);
        assert_eq!(out.self_loops_dropped, 1);
        assert_eq!(out.late_dropped, 1, "t=1 is behind the zero-slack floor");

        s.flush();
        let body = s.tick_body();
        assert_eq!(body["tick"].as_i64(), Some(14));
        assert_eq!(body["live_edges"].as_u64(), Some(3));
        assert_eq!(body["total"].as_u64(), Some(1), "one triangle instance");
        assert_eq!(body["late_dropped"].as_u64(), Some(1));
        assert_eq!(body["self_loops_dropped"].as_u64(), Some(1));
        drop(s);

        assert!(store.remove(id));
        assert!(!store.remove(id));
        assert_eq!(store.open_count(), 0);
        assert_eq!(store.created_count(), 1);
    }

    #[test]
    fn budgeted_session_reports_estimator_shape() {
        let store = SessionStore::new();
        let id = store.create(20, 100, 0, Some(1 << 20)).unwrap();
        let session = store.get(id).unwrap();
        let mut s = session.lock().unwrap();
        let out = s.push_edges(&[(0, 1, 10), (1, 2, 12), (2, 0, 14)]);
        assert_eq!(out.accepted, 3);
        let push_body = s.push_body(out);
        assert_eq!(push_body["retained_edges"].as_u64(), Some(3));
        assert_eq!(push_body["memory_budget"].as_u64(), Some(1 << 20));
        assert!(
            push_body["live_edges"].as_u64().is_none(),
            "budget shape has no live_edges"
        );
        s.flush();
        let body = s.tick_body();
        assert_eq!(body["tick"].as_i64(), Some(14));
        assert_eq!(body["budget"]["bytes"].as_u64(), Some(1 << 20));
        assert_eq!(body["budget"]["prob"].as_f64(), Some(1.0));
        assert_eq!(body["total_estimate"].as_f64(), Some(1.0));
        assert!(
            body["total"].as_u64().is_none(),
            "estimator ticks carry estimates"
        );
    }

    #[test]
    fn pool_reserves_and_releases_budgets() {
        let store = SessionStore::with_pool(Some(1000));
        assert_eq!(store.pool_bytes(), Some(1000));
        let a = store.create(10, 10, 0, Some(600)).unwrap();
        assert_eq!(store.reserved_bytes(), 600);
        // Exact sessions never draw from the pool.
        let _e = store.create(10, 10, 0, None).unwrap();
        assert_eq!(store.reserved_bytes(), 600);
        // 600 + 600 > 1000: exhausted, with the remainder reported.
        let err = store.create(10, 10, 0, Some(600)).unwrap_err();
        assert_eq!(
            err,
            PoolExhausted {
                requested: 600,
                available: 400
            }
        );
        // A fitting budget still goes through, then the pool is full.
        let b = store.create(10, 10, 0, Some(400)).unwrap();
        assert_eq!(store.reserved_bytes(), 1000);
        assert!(store.create(10, 10, 0, Some(1)).is_err());
        // Closing returns bytes to the pool.
        assert!(store.remove(a));
        assert_eq!(store.reserved_bytes(), 400);
        assert!(store.remove(b));
        assert_eq!(store.reserved_bytes(), 0);
    }

    #[test]
    fn unmetered_store_accepts_any_budget() {
        let store = SessionStore::new();
        assert_eq!(store.pool_bytes(), None);
        let id = store.create(10, 10, 0, Some(u64::MAX)).unwrap();
        assert_eq!(store.reserved_bytes(), 0, "no pool, no accounting");
        assert!(store.remove(id));
    }

    #[test]
    fn poisoned_store_lock_recovers() {
        let store = Arc::new(SessionStore::new());
        let id = store.create(20, 100, 0, None).unwrap();

        // Poison the inner RwLock: a thread panics while holding it.
        let poisoner = Arc::clone(&store);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.write().unwrap();
            panic!("worker dies holding the sessions lock");
        })
        .join();
        assert!(store.inner.is_poisoned(), "lock must actually be poisoned");

        // Every verb still works: the map itself was not mid-mutation.
        assert_eq!(store.open_count(), 1);
        assert!(store.get(id).is_some());
        let id2 = store.create(20, 100, 0, None).unwrap();
        assert_eq!(store.ids(), vec![id, id2]);
        assert!(store.remove(id));
        assert!(store.remove(id2));
        assert_eq!(store.open_count(), 0);
    }

    #[test]
    fn poisoned_session_lock_recovers() {
        let store = SessionStore::new();
        let id = store.create(20, 100, 0, None).unwrap();
        let session = store.get(id).unwrap();

        let hostage = Arc::clone(&session);
        let _ = std::thread::spawn(move || {
            let _guard = hostage.lock().unwrap();
            panic!("worker dies holding a session lock");
        })
        .join();

        // The API layer recovers via PoisonError::into_inner; mirror it.
        let mut s = session.lock().unwrap_or_else(PoisonError::into_inner);
        let out = s.push_edges(&[(0, 1, 10)]);
        assert_eq!(out.accepted, 1);
    }

    #[test]
    fn ids_are_unique_and_sorted() {
        let store = SessionStore::new();
        let a = store.create(10, 10, 0, None).unwrap();
        let b = store.create(10, 10, 0, None).unwrap();
        assert_ne!(a, b);
        assert_eq!(store.ids(), vec![a.min(b), a.max(b)]);
    }

    #[test]
    fn empty_session_polls_a_zero_tick() {
        let store = SessionStore::new();
        let id = store.create(10, 50, 5, None).unwrap();
        let session = store.get(id).unwrap();
        let body = session.lock().unwrap().tick_body();
        assert_eq!(body["tick"].as_i64(), Some(0));
        assert_eq!(body["total"].as_u64(), Some(0));
        assert_eq!(body["window"].as_i64(), Some(50));
        assert_eq!(body["slack"].as_i64(), Some(5));
    }
}
