//! Streaming ingest sessions: a [`WindowedCounter`] per client stream.
//!
//! A session wraps the exact sliding-window engine behind three verbs:
//! create (`POST /sessions`), push a batch of edges
//! (`POST /sessions/{id}/edges`), and poll the live per-tick motif
//! matrix (`GET /sessions/{id}` — the same body shape as one
//! `hare-count --window --json` tick, built by
//! [`hare::report::windowed_tick_body`]). Late and self-loop arrivals
//! are dropped and counted, never fatal — mirroring the CLI's streaming
//! drop policy, so a flushed session is byte-identical to the final
//! tick of the equivalent CLI run.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use hare::streaming::StreamError;
use hare::windowed::WindowedCounter;
use temporal_graph::{NodeId, Timestamp};

/// One client's streaming state.
#[derive(Debug)]
pub struct Session {
    /// The exact sliding-window counting engine.
    pub wc: WindowedCounter,
    /// Arrivals dropped as too late for the reorder slack.
    pub late_dropped: u64,
    /// Self-loop arrivals dropped.
    pub self_loops_dropped: u64,
    /// Largest accepted timestamp (the tick label of polled bodies).
    pub max_accepted: Option<Timestamp>,
}

/// Result of pushing one batch of edges into a session.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PushOutcome {
    /// Edges accepted from this batch.
    pub accepted: u64,
    /// Edges of this batch dropped as late.
    pub late_dropped: u64,
    /// Edges of this batch dropped as self-loops.
    pub self_loops_dropped: u64,
}

impl Session {
    /// Push a batch in arrival order, dropping (and counting) late and
    /// self-loop edges exactly like the CLI streaming mode.
    pub fn push_edges(&mut self, edges: &[(NodeId, NodeId, Timestamp)]) -> PushOutcome {
        let mut out = PushOutcome::default();
        for &(src, dst, t) in edges {
            match self.wc.push(src, dst, t) {
                Ok(()) => {
                    out.accepted += 1;
                    self.max_accepted = Some(self.max_accepted.map_or(t, |m| m.max(t)));
                }
                Err(StreamError::OutOfOrder { .. }) => {
                    out.late_dropped += 1;
                    self.late_dropped += 1;
                }
                Err(StreamError::SelfLoop) => {
                    out.self_loops_dropped += 1;
                    self.self_loops_dropped += 1;
                }
            }
        }
        out
    }

    /// The session's current tick body: the live-window matrix labelled
    /// with the largest accepted timestamp (0 before any acceptance).
    #[must_use]
    pub fn tick_body(&self) -> serde_json::Value {
        hare::report::windowed_tick_body(
            self.max_accepted.unwrap_or(0),
            &self.wc,
            self.late_dropped,
            self.self_loops_dropped,
        )
    }
}

/// Thread-safe id → session map. Sessions are independently locked so
/// concurrent clients never serialise on each other's streams.
#[derive(Default)]
pub struct SessionStore {
    inner: RwLock<HashMap<u64, Arc<Mutex<Session>>>>,
    next_id: AtomicU64,
    created: AtomicU64,
}

impl SessionStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> SessionStore {
        SessionStore::default()
    }

    /// Create a session; the caller has validated `window >= delta >= 0`
    /// and `slack >= 0` (the [`WindowedCounter`] constructor enforces it
    /// by panic, so validation belongs at the API boundary).
    pub fn create(&self, delta: Timestamp, window: Timestamp, slack: Timestamp) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.created.fetch_add(1, Ordering::Relaxed);
        let session = Session {
            wc: WindowedCounter::with_slack(delta, window, slack),
            late_dropped: 0,
            self_loops_dropped: 0,
            max_accepted: None,
        };
        self.inner
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(id, Arc::new(Mutex::new(session)));
        id
    }

    /// Fetch a session by id.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&id)
            .cloned()
    }

    /// Close a session. Returns `false` when the id is unknown.
    pub fn remove(&self, id: u64) -> bool {
        self.inner
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&id)
            .is_some()
    }

    /// Ids of the open sessions, sorted.
    #[must_use]
    pub fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .copied()
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Number of open sessions.
    #[must_use]
    pub fn open_count(&self) -> usize {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Sessions created over the server's lifetime.
    #[must_use]
    pub fn created_count(&self) -> u64 {
        self.created.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_push_poll_close() {
        let store = SessionStore::new();
        let id = store.create(20, 100, 0);
        assert_eq!(store.open_count(), 1);

        let session = store.get(id).unwrap();
        let mut s = session.lock().unwrap();
        let out = s.push_edges(&[(0, 1, 10), (1, 2, 12), (3, 3, 13), (2, 0, 14), (4, 5, 1)]);
        assert_eq!(out.accepted, 3);
        assert_eq!(out.self_loops_dropped, 1);
        assert_eq!(out.late_dropped, 1, "t=1 is behind the zero-slack floor");

        s.wc.flush();
        let body = s.tick_body();
        assert_eq!(body["tick"].as_i64(), Some(14));
        assert_eq!(body["live_edges"].as_u64(), Some(3));
        assert_eq!(body["total"].as_u64(), Some(1), "one triangle instance");
        assert_eq!(body["late_dropped"].as_u64(), Some(1));
        assert_eq!(body["self_loops_dropped"].as_u64(), Some(1));
        drop(s);

        assert!(store.remove(id));
        assert!(!store.remove(id));
        assert_eq!(store.open_count(), 0);
        assert_eq!(store.created_count(), 1);
    }

    #[test]
    fn poisoned_store_lock_recovers() {
        let store = Arc::new(SessionStore::new());
        let id = store.create(20, 100, 0);

        // Poison the inner RwLock: a thread panics while holding it.
        let poisoner = Arc::clone(&store);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.write().unwrap();
            panic!("worker dies holding the sessions lock");
        })
        .join();
        assert!(store.inner.is_poisoned(), "lock must actually be poisoned");

        // Every verb still works: the map itself was not mid-mutation.
        assert_eq!(store.open_count(), 1);
        assert!(store.get(id).is_some());
        let id2 = store.create(20, 100, 0);
        assert_eq!(store.ids(), vec![id, id2]);
        assert!(store.remove(id));
        assert!(store.remove(id2));
        assert_eq!(store.open_count(), 0);
    }

    #[test]
    fn poisoned_session_lock_recovers() {
        let store = SessionStore::new();
        let id = store.create(20, 100, 0);
        let session = store.get(id).unwrap();

        let hostage = Arc::clone(&session);
        let _ = std::thread::spawn(move || {
            let _guard = hostage.lock().unwrap();
            panic!("worker dies holding a session lock");
        })
        .join();

        // The API layer recovers via PoisonError::into_inner; mirror it.
        let mut s = session.lock().unwrap_or_else(PoisonError::into_inner);
        let out = s.push_edges(&[(0, 1, 10)]);
        assert_eq!(out.accepted, 1);
    }

    #[test]
    fn ids_are_unique_and_sorted() {
        let store = SessionStore::new();
        let a = store.create(10, 10, 0);
        let b = store.create(10, 10, 0);
        assert_ne!(a, b);
        assert_eq!(store.ids(), vec![a.min(b), a.max(b)]);
    }

    #[test]
    fn empty_session_polls_a_zero_tick() {
        let store = SessionStore::new();
        let id = store.create(10, 50, 5);
        let session = store.get(id).unwrap();
        let body = session.lock().unwrap().tick_body();
        assert_eq!(body["tick"].as_i64(), Some(0));
        assert_eq!(body["total"].as_u64(), Some(0));
        assert_eq!(body["window"].as_i64(), Some(50));
        assert_eq!(body["slack"].as_i64(), Some(5));
    }
}
