//! Minimal HTTP/1.1 plumbing over `std::net` — no external dependencies.
//!
//! The service speaks a deliberately small dialect: one request per
//! connection (every response carries `Connection: close`), bodies
//! framed by `Content-Length`, JSON in and out. That keeps the worker
//! model trivial (a connection *is* a unit of work) while remaining
//! fully interoperable with `curl` and standard HTTP clients.
//!
//! [`read_request`] parses a request head + body with hard limits on
//! both, [`write_response`] emits a complete response, and [`client`]
//! is the matching blocking client used by the end-to-end suite and the
//! `exp_serve` benchmark.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum size of the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Percent-decoded path, without the query string.
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Raw request body (`Content-Length` framed; empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a query parameter, if present.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The connection failed or closed mid-request; nothing to answer.
    Io(std::io::Error),
    /// The bytes were not a well-formed request (answered with 400).
    BadRequest(String),
    /// The declared body exceeds the configured limit (answered 413).
    TooLarge(usize),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> ReadError {
        ReadError::Io(e)
    }
}

/// Decode `%XX` escapes (and `+` as space when `plus_is_space`).
fn percent_decode(s: &str, plus_is_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parse a raw query string into decoded pairs.
#[must_use]
pub fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k, true), percent_decode(v, true)),
            None => (percent_decode(part, true), String::new()),
        })
        .collect()
}

/// Read one request from the stream. `max_body` bounds the accepted
/// `Content-Length`; the head is bounded by an internal 16 KiB limit.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, ReadError> {
    // Read until the blank line that ends the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ReadError::BadRequest("request head too large".into()));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                // Peer connected and closed without sending anything
                // (e.g. the shutdown wake-up probe): not an error worth
                // answering.
                return Err(ReadError::Io(std::io::ErrorKind::UnexpectedEof.into()));
            }
            return Err(ReadError::BadRequest("truncated request head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ReadError::BadRequest("request head is not utf-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => {
            return Err(ReadError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::BadRequest(format!(
            "unsupported protocol {version:?}"
        )));
    }

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ReadError::BadRequest("bad Content-Length".into()))?;
            }
        }
    }
    if content_length > max_body {
        return Err(ReadError::TooLarge(content_length));
    }

    // Body: whatever arrived past the head, then read the remainder.
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ReadError::BadRequest("truncated request body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(Request {
        method: method.to_uppercase(),
        path: percent_decode(path_raw, false),
        query: parse_query(query_raw),
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reason phrase for the status codes the service emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete response (status line, headers, body) and flush.
/// Every response closes the connection. `content_type` is
/// `application/json` everywhere except the `/metrics` text exposition.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

pub mod client {
    //! Blocking one-shot HTTP client matching the server's dialect.
    //!
    //! One request per connection, `Content-Length` framing. Used by the
    //! end-to-end tests and `exp_serve`; handy for quick library
    //! consumers too.

    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::{TcpStream, ToSocketAddrs};
    use std::time::Duration;

    /// A parsed response: status code plus raw body bytes.
    #[derive(Debug, Clone)]
    pub struct Response {
        /// HTTP status code.
        pub status: u16,
        /// Raw response body.
        pub body: Vec<u8>,
    }

    impl Response {
        /// Body as UTF-8 (lossy).
        #[must_use]
        pub fn text(&self) -> String {
            String::from_utf8_lossy(&self.body).into_owned()
        }

        /// Body parsed as JSON.
        pub fn json(&self) -> Result<serde_json::Value, serde_json::Error> {
            serde_json::from_str(self.text().trim_end_matches('\n'))
        }
    }

    /// Issue one request and read the full response. `target` is the
    /// path plus optional query string (`/count?dataset=x&delta=600`).
    pub fn request(
        addr: impl ToSocketAddrs,
        method: &str,
        target: &str,
        body: Option<&[u8]>,
    ) -> std::io::Result<Response> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        stream.set_write_timeout(Some(Duration::from_secs(120)))?;
        let body = body.unwrap_or(&[]);
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: hare-serve\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;

        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut content_length: Option<usize> = None;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().ok();
                }
            }
        }
        let mut body = Vec::new();
        match content_length {
            Some(n) => {
                body.resize(n, 0);
                reader.read_exact(&mut body)?;
            }
            None => {
                reader.read_to_end(&mut body)?;
            }
        }
        Ok(Response { status, body })
    }

    /// `GET` shorthand.
    pub fn get(addr: impl ToSocketAddrs, target: &str) -> std::io::Result<Response> {
        request(addr, "GET", target, None)
    }

    /// `POST` shorthand with a JSON (or other) body.
    pub fn post(addr: impl ToSocketAddrs, target: &str, body: &str) -> std::io::Result<Response> {
        request(addr, "POST", target, Some(body.as_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_query_strings_with_escapes() {
        let q = parse_query("dataset=CollegeMsg&delta=600&name=a%20b+c&flag");
        assert_eq!(q[0], ("dataset".into(), "CollegeMsg".into()));
        assert_eq!(q[1], ("delta".into(), "600".into()));
        assert_eq!(q[2], ("name".into(), "a b c".into()));
        assert_eq!(q[3], ("flag".into(), String::new()));
    }

    #[test]
    fn percent_decode_handles_malformed_escapes() {
        assert_eq!(percent_decode("a%2Fb", false), "a/b");
        assert_eq!(percent_decode("100%", false), "100%");
        assert_eq!(percent_decode("a%zzb", false), "a%zzb");
        assert_eq!(percent_decode("a+b", false), "a+b");
        assert_eq!(percent_decode("a+b", true), "a b");
    }

    #[test]
    fn reasons_cover_emitted_codes() {
        for code in [200, 201, 400, 403, 404, 405, 409, 413, 429, 500, 503] {
            assert_ne!(reason(code), "Unknown", "{code}");
        }
    }

    /// Round-trip a request and response through a real socket pair.
    #[test]
    fn request_response_round_trip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let req = read_request(&mut conn, 1024).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/echo path");
            assert_eq!(req.query_param("x"), Some("1 2"));
            assert_eq!(req.body, b"{\"k\":3}");
            write_response(&mut conn, 200, "application/json", b"{\"ok\":true}\n").unwrap();
        });
        let resp = client::post(addr, "/echo%20path?x=1+2", "{\"k\":3}").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.json().unwrap()["ok"], serde_json::Value::Bool(true));
        server.join().unwrap();
    }

    #[test]
    fn oversized_body_is_rejected() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            match read_request(&mut conn, 8) {
                Err(ReadError::TooLarge(n)) => assert_eq!(n, 16),
                other => panic!("expected TooLarge, got {other:?}"),
            }
        });
        let _ = client::post(addr, "/x", "0123456789abcdef");
        server.join().unwrap();
    }
}
