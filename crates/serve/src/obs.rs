//! The daemon's observability surface: the [`hare_obs`] metric
//! registry behind `GET /metrics`, and the trace ring behind
//! `?trace=1`.
//!
//! Every family is registered eagerly at server construction, so the
//! exposition layout (family order, label sets) is identical on every
//! scrape. Two kinds of series coexist:
//!
//! * **live** — per-endpoint request counters and latency histograms,
//!   written by the worker as each response goes out;
//! * **synced** — cache / queue / session families whose authoritative
//!   values live elsewhere ([`crate::cache::ResultCache`] under its
//!   lock, the queue [`crate::Metrics`] seqlock group, the session
//!   store). A scrape copies one coherent snapshot of each source into
//!   the registry under [`ServeObs::sync`]'s mutex — counters advance
//!   by the observed delta, so they stay monotonic even across
//!   concurrent scrapes.
//!
//! See `docs/OBSERVABILITY.md` for the full metric inventory.

use std::sync::{Arc, Mutex, PoisonError};

use hare_obs::{Counter, Gauge, Registry, TraceRing};

/// Endpoint groups used as `path` label values. Grouping keeps the
/// label space fixed (no per-session-id series explosion).
pub const ENDPOINTS: [&str; 10] = [
    "/",
    "/count",
    "/nodes",
    "/datasets",
    "/sessions",
    "/stats",
    "/metrics",
    "/cache/clear",
    "/shutdown",
    "other",
];

/// Map a request path to its endpoint group.
#[must_use]
pub fn endpoint_group(path: &str) -> &'static str {
    let mut segments = path.split('/').filter(|s| !s.is_empty());
    match (segments.next(), segments.next()) {
        (None, _) => "/",
        (Some("count"), _) => "/count",
        (Some("nodes"), _) => "/nodes",
        (Some("datasets"), _) => "/datasets",
        (Some("sessions"), _) => "/sessions",
        (Some("stats"), _) => "/stats",
        (Some("metrics"), _) => "/metrics",
        (Some("cache"), Some("clear")) => "/cache/clear",
        (Some("shutdown"), _) => "/shutdown",
        _ => "other",
    }
}

fn status_class(status: u16) -> &'static str {
    match status / 100 {
        1 => "1xx",
        2 => "2xx",
        3 => "3xx",
        4 => "4xx",
        5 => "5xx",
        _ => "other",
    }
}

/// One coherent snapshot of the sync sources, passed into
/// [`ServeObs::sync`] by the `/metrics` handler.
pub struct SyncSnapshot {
    /// Cache counters (one snapshot under the cache lock).
    pub cache: crate::cache::CacheStats,
    /// Queue group `[queued, in_flight, completed, rejected]`.
    pub queue: [u64; 4],
    /// Open sessions right now.
    pub sessions_open: u64,
    /// Sessions ever created.
    pub sessions_created: u64,
    /// Configured session memory pool (`None` = unmetered).
    pub session_pool_bytes: Option<u64>,
    /// Bytes currently reserved from the pool.
    pub session_reserved_bytes: u64,
}

/// The server's registry, trace ring, and eagerly-registered handles.
pub struct ServeObs {
    /// The metric registry rendered by `GET /metrics`.
    pub registry: Registry,
    /// Ring of recent `?trace=1` phase events.
    pub traces: TraceRing,
    /// Serializes scrapes so counter add-by-delta sync is race-free.
    scrape: Mutex<()>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    cache_entries: Arc<Gauge>,
    cache_capacity: Arc<Gauge>,
    queue_queued: Arc<Gauge>,
    queue_in_flight: Arc<Gauge>,
    requests_completed: Arc<Counter>,
    requests_rejected: Arc<Counter>,
    sessions_open: Arc<Gauge>,
    sessions_created: Arc<Counter>,
    session_pool: Arc<Gauge>,
    session_reserved: Arc<Gauge>,
    ooc_peak_lane_bytes: Arc<Gauge>,
    resident_bytes: Arc<Gauge>,
}

impl ServeObs {
    /// Build the registry with every family pre-registered (stable
    /// exposition layout from the first scrape on).
    #[must_use]
    pub fn new() -> ServeObs {
        let registry = Registry::new();
        let cache_hits = registry.counter(
            "hare_cache_hits_total",
            "Result-cache lookups answered from the cache.",
        );
        let cache_misses = registry.counter(
            "hare_cache_misses_total",
            "Result-cache lookups that computed the query.",
        );
        let cache_evictions = registry.counter(
            "hare_cache_evictions_total",
            "Result-cache entries displaced by LRU eviction.",
        );
        let cache_entries =
            registry.gauge("hare_cache_entries", "Rendered bodies currently cached.");
        let cache_capacity = registry.gauge(
            "hare_cache_capacity",
            "Maximum cached bodies (0 = caching disabled).",
        );
        let queue_queued = registry.gauge(
            "hare_queue_queued",
            "Accepted connections waiting in the request queue.",
        );
        let queue_in_flight = registry.gauge(
            "hare_queue_in_flight",
            "Requests currently being handled by a worker.",
        );
        let requests_completed = registry.counter(
            "hare_requests_completed_total",
            "Requests fully handled (response written).",
        );
        let requests_rejected = registry.counter(
            "hare_requests_rejected_total",
            "Connections answered 429 because the request queue was full.",
        );
        let sessions_open = registry.gauge(
            "hare_sessions_open",
            "Streaming ingest sessions currently open.",
        );
        let sessions_created = registry.counter(
            "hare_sessions_created_total",
            "Streaming ingest sessions ever created.",
        );
        let session_pool = registry.gauge(
            "hare_session_memory_pool_bytes",
            "Daemon-wide byte pool for budgeted sessions (0 = unmetered).",
        );
        let session_reserved = registry.gauge(
            "hare_session_memory_reserved_bytes",
            "Bytes currently reserved from the session memory pool.",
        );
        let ooc_peak_lane_bytes = registry.gauge(
            "hare_ooc_peak_resident_lane_bytes",
            "Peak resident lane bytes of the most recent out-of-core run \
             (0 until an embedder runs one; HTTP queries count in RAM).",
        );
        let resident_bytes = registry.gauge(
            "hare_resident_memory_bytes",
            "Process resident set size (VmRSS), sampled in the background.",
        );
        // Live per-endpoint families, eagerly registered over the fixed
        // endpoint x status-class grid.
        for path in ENDPOINTS {
            registry.histogram_with(
                "hare_http_request_duration_us",
                "Request handling latency in microseconds, by endpoint.",
                &[("path", path)],
            );
            for class in ["2xx", "4xx", "5xx"] {
                registry.counter_with(
                    "hare_http_requests_total",
                    "Handled requests by endpoint and status class.",
                    &[("path", path), ("status", class)],
                );
            }
        }
        ServeObs {
            registry,
            traces: TraceRing::new(1024),
            scrape: Mutex::new(()),
            cache_hits,
            cache_misses,
            cache_evictions,
            cache_entries,
            cache_capacity,
            queue_queued,
            queue_in_flight,
            requests_completed,
            requests_rejected,
            sessions_open,
            sessions_created,
            session_pool,
            session_reserved,
            ooc_peak_lane_bytes,
            resident_bytes,
        }
    }

    /// Record one handled request into the live families.
    pub fn observe_request(&self, path: &str, status: u16, latency_us: u64) {
        let group = endpoint_group(path);
        self.registry
            .counter_with(
                "hare_http_requests_total",
                "Handled requests by endpoint and status class.",
                &[("path", group), ("status", status_class(status))],
            )
            .inc();
        self.registry
            .histogram_with(
                "hare_http_request_duration_us",
                "Request handling latency in microseconds, by endpoint.",
                &[("path", group)],
            )
            .observe(latency_us);
    }

    /// Copy one coherent snapshot of the sync sources into the
    /// registry. Counters advance by delta (sources are monotonic), so
    /// exposition values never move backwards.
    pub fn sync(&self, snap: &SyncSnapshot) {
        let _guard = self.scrape.lock().unwrap_or_else(PoisonError::into_inner);
        let bump = |c: &Counter, v: u64| c.add(v.saturating_sub(c.get()));
        bump(&self.cache_hits, snap.cache.hits);
        bump(&self.cache_misses, snap.cache.misses);
        bump(&self.cache_evictions, snap.cache.evictions);
        self.cache_entries.set(snap.cache.entries as u64);
        self.cache_capacity.set(snap.cache.capacity as u64);
        self.queue_queued.set(snap.queue[0]);
        self.queue_in_flight.set(snap.queue[1]);
        bump(&self.requests_completed, snap.queue[2]);
        bump(&self.requests_rejected, snap.queue[3]);
        self.sessions_open.set(snap.sessions_open);
        bump(&self.sessions_created, snap.sessions_created);
        self.session_pool.set(snap.session_pool_bytes.unwrap_or(0));
        self.session_reserved.set(snap.session_reserved_bytes);
    }

    /// Record the peak resident lane bytes of an out-of-core run. The
    /// HTTP handlers never go out of core (catalog graphs are
    /// resident), so this stays 0 unless an embedder reports one.
    pub fn set_ooc_peak_resident_lane_bytes(&self, bytes: u64) {
        self.ooc_peak_lane_bytes.set(bytes);
    }

    /// Record a resident-set sample (the background VmRSS sampler).
    pub fn set_resident_bytes(&self, bytes: u64) {
        self.resident_bytes.set(bytes);
    }
}

impl Default for ServeObs {
    fn default() -> ServeObs {
        ServeObs::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_grouping_is_total() {
        assert_eq!(endpoint_group("/"), "/");
        assert_eq!(endpoint_group("/count"), "/count");
        assert_eq!(endpoint_group("/nodes/7/motifs"), "/nodes");
        assert_eq!(endpoint_group("/sessions/12/edges"), "/sessions");
        assert_eq!(endpoint_group("/cache/clear"), "/cache/clear");
        assert_eq!(endpoint_group("/metrics"), "/metrics");
        assert_eq!(endpoint_group("/nope"), "other");
        for g in ENDPOINTS {
            assert!(g == "other" || endpoint_group(g) == g, "{g}");
        }
    }

    #[test]
    fn sync_keeps_counters_monotonic() {
        let obs = ServeObs::new();
        let mut snap = SyncSnapshot {
            cache: crate::cache::CacheStats {
                capacity: 8,
                entries: 1,
                hits: 5,
                misses: 2,
                evictions: 0,
            },
            queue: [1, 2, 30, 4],
            sessions_open: 1,
            sessions_created: 3,
            session_pool_bytes: Some(1000),
            session_reserved_bytes: 400,
        };
        obs.sync(&snap);
        let first = obs.registry.render();
        assert!(first.contains("hare_cache_hits_total 5\n"), "{first}");
        assert!(first.contains("hare_requests_completed_total 30\n"));
        assert!(first.contains("hare_queue_queued 1\n"));
        // Re-syncing the same snapshot must not double-count.
        obs.sync(&snap);
        assert!(obs.registry.render().contains("hare_cache_hits_total 5\n"));
        snap.cache.hits = 9;
        obs.sync(&snap);
        assert!(obs.registry.render().contains("hare_cache_hits_total 9\n"));
    }

    #[test]
    fn observe_request_lands_in_preregistered_series() {
        let obs = ServeObs::new();
        obs.observe_request("/count?x=1".split('?').next().unwrap(), 200, 1500);
        obs.observe_request("/sessions/9/flush", 404, 3);
        let text = obs.registry.render();
        assert!(
            text.contains("hare_http_requests_total{path=\"/count\",status=\"2xx\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("hare_http_requests_total{path=\"/sessions\",status=\"4xx\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("hare_http_request_duration_us_count{path=\"/count\"} 1\n"));
    }
}
