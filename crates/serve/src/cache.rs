//! LRU cache over rendered query-response bodies.
//!
//! Queries are pure functions of `(dataset content, δ, engine, params)`
//! — the server's bodies carry no timing field — so a repeated query
//! can be answered from the cache byte-identically in O(1). The key's
//! dataset half is [`temporal_graph::TemporalGraph::fingerprint`]
//! (content, not name): re-registering different edges under a reused
//! name can never serve stale bytes.
//!
//! The thread count of a query is deliberately **not** part of the key:
//! the engines are bit-identical across thread counts, so results are
//! interchangeable (and the cache would otherwise fragment).
//!
//! Eviction is least-recently-used, implemented as a last-used tick per
//! entry with an O(capacity) scan on overflow — hits stay O(1), and the
//! scan only runs on a miss that inserts past capacity.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Cache key: dataset content fingerprint, δ, and the canonical
/// engine+parameter string (e.g. `exact/only=all`,
/// `approx/prob=0.3/ci=0.95/wf=10/seed=42`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`temporal_graph::TemporalGraph::fingerprint`] of the dataset.
    pub fingerprint: u64,
    /// The query's δ in seconds.
    pub delta: i64,
    /// Canonical engine + parameters string.
    pub engine: String,
}

struct Entry {
    body: Arc<String>,
    last_used: u64,
}

struct Inner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Shared, thread-safe LRU result cache with hit/miss metrics.
///
/// Every counter lives under the one entry mutex, so a
/// [`ResultCache::stats`] call observes a single coherent point in
/// time — hits, misses, entries and evictions all from the same
/// instant, never a torn read taken mid-lookup.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

/// A point-in-time snapshot of the cache counters (`GET /stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Maximum number of cached bodies (0 = caching disabled).
    pub capacity: usize,
    /// Bodies currently cached.
    pub entries: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required computing the query.
    pub misses: u64,
    /// Entries displaced by LRU eviction.
    pub evictions: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` rendered bodies; `0` disables
    /// caching entirely (every lookup is a miss, nothing is stored).
    #[must_use]
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity,
        }
    }

    /// Look a key up, counting a hit or a miss.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<Arc<String>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let body = Arc::clone(&entry.body);
                inner.hits += 1;
                Some(body)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) a rendered body, evicting the least-recently
    /// used entry when full. No-op when the cache is disabled.
    pub fn insert(&self, key: CacheKey, body: Arc<String>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                inner.evictions += 1;
            }
        }
        inner.map.insert(
            key,
            Entry {
                body,
                last_used: tick,
            },
        );
    }

    /// Drop every cached body (counters are kept). Exposed as
    /// `POST /cache/clear` so benchmarks can measure cold latency.
    pub fn clear(&self) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .map
            .clear();
    }

    /// Snapshot the counters — one coherent view under the entry lock.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        CacheStats {
            capacity: self.capacity,
            entries: inner.map.len(),
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(fp: u64, delta: i64, engine: &str) -> CacheKey {
        CacheKey {
            fingerprint: fp,
            delta,
            engine: engine.into(),
        }
    }

    #[test]
    fn poisoned_cache_lock_recovers() {
        let cache = Arc::new(ResultCache::new(4));
        let k = key(1, 600, "exact/only=all");
        cache.insert(k.clone(), Arc::new("body".into()));

        let poisoner = Arc::clone(&cache);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("worker dies holding the cache lock");
        })
        .join();

        // The cache keeps serving instead of wedging every request.
        assert_eq!(cache.get(&k).as_deref().map(String::as_str), Some("body"));
        cache.insert(key(2, 600, "exact/only=all"), Arc::new("b2".into()));
        assert_eq!(cache.stats().entries, 2);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn hit_miss_and_metrics() {
        let cache = ResultCache::new(4);
        let k = key(1, 600, "exact/only=all");
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), Arc::new("body".into()));
        assert_eq!(cache.get(&k).as_deref().map(String::as_str), Some("body"));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn keys_separate_fingerprint_delta_and_engine() {
        let cache = ResultCache::new(8);
        cache.insert(key(1, 600, "exact/only=all"), Arc::new("a".into()));
        assert!(cache.get(&key(2, 600, "exact/only=all")).is_none());
        assert!(cache.get(&key(1, 601, "exact/only=all")).is_none());
        assert!(cache.get(&key(1, 600, "exact/only=pairs")).is_none());
        assert!(cache.get(&key(1, 600, "exact/only=all")).is_some());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ResultCache::new(2);
        cache.insert(key(1, 1, "e"), Arc::new("1".into()));
        cache.insert(key(2, 2, "e"), Arc::new("2".into()));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(&key(1, 1, "e")).is_some());
        cache.insert(key(3, 3, "e"), Arc::new("3".into()));
        assert!(cache.get(&key(2, 2, "e")).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(1, 1, "e")).is_some());
        assert!(cache.get(&key(3, 3, "e")).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = ResultCache::new(0);
        cache.insert(key(1, 1, "e"), Arc::new("1".into()));
        assert!(cache.get(&key(1, 1, "e")).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = ResultCache::new(4);
        cache.insert(key(1, 1, "e"), Arc::new("1".into()));
        assert!(cache.get(&key(1, 1, "e")).is_some());
        cache.clear();
        assert!(cache.get(&key(1, 1, "e")).is_none());
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.hits, 1);
    }
}
