//! End-to-end suite for the `hare-serve` binary.
//!
//! Spawns the real daemon on an ephemeral port (parsing the startup
//! line for the address) and pins the service's differential contract:
//! **every response body is byte-identical to the stdout of the
//! equivalent `hare-count --json --no-timing` invocation** — for exact
//! queries, `--only` subsets, seeded approximate queries (including
//! `p = 1.0`), uploaded datasets, and flushed streaming sessions; also
//! under concurrent load with the result cache in play. Plus: the
//! backpressure 429 path, structured 4xx errors, and the
//! graceful-shutdown drain guarantee.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

use hare_serve::http::client;

/// A running `hare-serve` child, killed on drop.
struct ServeProc {
    child: Child,
    addr: String,
}

impl ServeProc {
    /// Spawn with `--port 0 --enable-shutdown` plus `extra` flags and
    /// wait for the startup line to learn the bound address.
    fn spawn(extra: &[&str]) -> ServeProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_hare-serve"))
            .args(["--port", "0", "--enable-shutdown"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn hare-serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        reader.read_line(&mut line).expect("startup line");
        let v: serde_json::Value = serde_json::from_str(line.trim())
            .unwrap_or_else(|e| panic!("startup line is not JSON ({e}): {line:?}"));
        let addr = v["listening"]
            .as_str()
            .unwrap_or_else(|| panic!("no listening address in {line:?}"))
            .to_string();
        ServeProc { child, addr }
    }

    fn get(&self, target: &str) -> client::Response {
        client::get(self.addr.as_str(), target).expect("GET")
    }

    fn post(&self, target: &str, body: &str) -> client::Response {
        client::post(self.addr.as_str(), target, body).expect("POST")
    }

    /// POST /shutdown and wait (bounded) for a clean exit.
    fn shutdown_and_wait(mut self) {
        let resp = self.post("/shutdown", "");
        assert_eq!(resp.status, 200, "{}", resp.text());
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "server exited with {status}");
                    break;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("server did not exit within 60s of POST /shutdown");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        // Disarm the drop kill.
        std::mem::forget(self);
    }
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Locate (building if needed) the `hare-count` binary — the reference
/// implementation for every differential assertion.
fn hare_count_bin() -> PathBuf {
    let dir = Path::new(env!("CARGO_BIN_EXE_hare-serve"))
        .parent()
        .expect("target dir")
        .to_path_buf();
    let exe = dir.join(format!("hare-count{}", std::env::consts::EXE_SUFFIX));
    if exe.exists() {
        return exe;
    }
    // Workspace `cargo test` builds it; a lone `cargo test -p hare-serve`
    // may not have — build it in the same profile, offline.
    let mut cmd = Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()));
    cmd.args(["build", "-p", "hare-cli", "--offline"]);
    if !cfg!(debug_assertions) {
        cmd.arg("--release");
    }
    cmd.current_dir(Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."));
    let status = cmd.status().expect("spawn cargo build -p hare-cli");
    assert!(status.success(), "building hare-cli failed");
    assert!(exe.exists(), "hare-count not found at {}", exe.display());
    exe
}

fn hare_count(args: &[&str]) -> Output {
    let out = Command::new(hare_count_bin())
        .args(args)
        .output()
        .expect("spawn hare-count");
    assert!(
        out.status.success(),
        "hare-count {:?} failed: {}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn exact_count_bodies_are_byte_identical_to_cli() {
    let server = ServeProc::spawn(&["--preload", "CollegeMsg:8", "--threads", "2"]);
    for only in ["all", "pairs", "stars", "triangles"] {
        let resp = server.get(&format!("/count?dataset=CollegeMsg&delta=600&only={only}"));
        assert_eq!(resp.status, 200, "{}", resp.text());
        let cli = hare_count(&[
            "--dataset",
            "CollegeMsg",
            "--scale",
            "8",
            "--delta",
            "600",
            "--only",
            only,
            "--json",
            "--no-timing",
        ]);
        assert_eq!(
            resp.body,
            cli.stdout,
            "only={only}: serve body != CLI stdout\nserve: {}\ncli:   {}",
            resp.text(),
            String::from_utf8_lossy(&cli.stdout)
        );
    }
    server.shutdown_and_wait();
}

#[test]
fn approx_bodies_are_byte_identical_to_cli_including_p1() {
    let server = ServeProc::spawn(&["--preload", "CollegeMsg:8", "--threads", "1"]);
    for (prob, seed) in [("1.0", "42"), ("0.5", "7")] {
        let resp = server.get(&format!(
            "/count?dataset=CollegeMsg&delta=600&engine=approx&prob={prob}&ci=0.95&seed={seed}"
        ));
        assert_eq!(resp.status, 200, "{}", resp.text());
        let cli = hare_count(&[
            "--dataset",
            "CollegeMsg",
            "--scale",
            "8",
            "--delta",
            "600",
            "--approx",
            "--prob",
            prob,
            "--ci",
            "0.95",
            "--seed",
            seed,
            "--json",
            "--no-timing",
        ]);
        assert_eq!(
            resp.body, cli.stdout,
            "prob={prob} seed={seed}: serve body != CLI stdout"
        );
    }
    // p = 1.0 estimates must equal the exact counts cell for cell.
    let approx = server
        .get("/count?dataset=CollegeMsg&delta=600&engine=approx&prob=1.0")
        .json()
        .unwrap();
    let exact = server
        .get("/count?dataset=CollegeMsg&delta=600")
        .json()
        .unwrap();
    let exact_cells = exact["counts"].as_array().unwrap();
    for (cell, exact_cell) in approx["counts"].as_array().unwrap().iter().zip(exact_cells) {
        assert_eq!(cell["motif"], exact_cell["motif"]);
        assert_eq!(
            cell["estimate"].as_f64().unwrap(),
            exact_cell["count"].as_u64().unwrap() as f64,
            "{}",
            cell["motif"]
        );
    }
    server.shutdown_and_wait();
}

#[test]
fn uploaded_dataset_matches_cli_input_file() {
    let edges = "0 1 10\n1 2 12\n2 0 14\n3 4 99999\n";
    let dir = std::env::temp_dir().join(format!("hare_serve_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("edges.txt");
    std::fs::write(&path, edges).unwrap();

    let server = ServeProc::spawn(&[]);
    let body = serde_json::json!({"name": "upload", "edges": edges}).to_string();
    let reg = server.post("/datasets", &body);
    assert_eq!(reg.status, 201, "{}", reg.text());

    let resp = server.get("/count?dataset=upload&delta=600");
    let cli = hare_count(&[
        "--input",
        path.to_str().unwrap(),
        "--delta",
        "600",
        "--json",
        "--no-timing",
    ]);
    assert_eq!(
        resp.body, cli.stdout,
        "uploaded dataset differs from --input run"
    );

    // The dataset listing reflects the registration.
    let listing = server.get("/datasets").json().unwrap();
    let sets = listing["datasets"].as_array().unwrap();
    assert_eq!(sets.len(), 1);
    assert_eq!(sets[0]["name"].as_str(), Some("upload"));
    assert_eq!(sets[0]["source"].as_str(), Some("upload"));

    std::fs::remove_file(&path).ok();
    server.shutdown_and_wait();
}

#[test]
fn concurrent_clients_get_identical_bodies_and_cache_hits() {
    let server = ServeProc::spawn(&["--preload", "CollegeMsg:8", "--workers", "4"]);
    let target = "/count?dataset=CollegeMsg&delta=600";
    // Warm the cache so the concurrent wave is all hits.
    let warm = server.get(target);
    assert_eq!(warm.status, 200);

    let addr = server.addr.clone();
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || client::get(addr.as_str(), target).expect("GET"))
        })
        .collect();
    let cli = hare_count(&[
        "--dataset",
        "CollegeMsg",
        "--scale",
        "8",
        "--delta",
        "600",
        "--json",
        "--no-timing",
    ]);
    for handle in clients {
        let resp = handle.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body, cli.stdout,
            "concurrent response differs from CLI stdout"
        );
    }

    let stats = server.get("/stats").json().unwrap();
    let hits = stats["cache"]["hits"].as_u64().unwrap();
    assert!(hits >= 8, "expected >= 8 cache hits, saw {hits}");
    assert_eq!(stats["cache"]["entries"].as_u64(), Some(1));
    server.shutdown_and_wait();
}

#[test]
fn streaming_session_flush_matches_cli_final_tick() {
    // Out-of-order arrivals within slack, one late drop, one self-loop:
    // the flushed session must reproduce the CLI's final tick bytes.
    let edges = "0 1 100\n5 5 200\n1 2 95\n2 0 103\n3 4 10\n";
    let dir = std::env::temp_dir().join(format!("hare_serve_stream_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream.txt");
    std::fs::write(&path, edges).unwrap();

    let cli = hare_count(&[
        "--input",
        path.to_str().unwrap(),
        "--delta",
        "20",
        "--window",
        "50",
        "--slack",
        "10",
        "--json",
    ]);
    let cli_stdout = String::from_utf8(cli.stdout).unwrap();
    let final_tick = cli_stdout.lines().last().expect("at least one tick");

    let server = ServeProc::spawn(&[]);
    let created = server.post("/sessions", r#"{"delta":20,"window":50,"slack":10}"#);
    assert_eq!(created.status, 201, "{}", created.text());
    let id = created.json().unwrap()["session"].as_u64().unwrap();

    let push = server.post(
        &format!("/sessions/{id}/edges"),
        r#"{"edges":[[0,1,100],[5,5,200],[1,2,95],[2,0,103],[3,4,10]]}"#,
    );
    assert_eq!(push.status, 200);
    let pv = push.json().unwrap();
    assert_eq!(pv["accepted"].as_u64(), Some(3));
    assert_eq!(pv["late_dropped"].as_u64(), Some(1));
    assert_eq!(pv["self_loops_dropped"].as_u64(), Some(1));

    let flushed = server.post(&format!("/sessions/{id}/flush"), "");
    assert_eq!(flushed.status, 200);
    assert_eq!(
        flushed.text().trim_end(),
        final_tick,
        "flushed session != CLI final tick"
    );

    std::fs::remove_file(&path).ok();
    server.shutdown_and_wait();
}

#[test]
fn budgeted_session_flush_matches_cli_memory_budget_final_tick() {
    // Same stream as the exact session test, now through the
    // bounded-memory estimator: a roomy budget (everything retained,
    // exact path) and a 2-edge budget (adaptive halving engaged). The
    // flushed session must reproduce the CLI's final tick bytes in both
    // regimes. Session engines are seeded with the library default
    // (0x5EED = 24301), so the CLI run pins the same seed.
    let edges = "0 1 100\n5 5 200\n1 2 95\n2 0 103\n3 4 10\n";
    let dir = std::env::temp_dir().join(format!("hare_serve_budget_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream.txt");
    std::fs::write(&path, edges).unwrap();

    let server = ServeProc::spawn(&[]);
    for budget in ["1048576", "32"] {
        let cli = hare_count(&[
            "--input",
            path.to_str().unwrap(),
            "--delta",
            "20",
            "--window",
            "50",
            "--slack",
            "10",
            "--memory-budget",
            budget,
            "--seed",
            "24301",
            "--json",
        ]);
        let cli_stdout = String::from_utf8(cli.stdout).unwrap();
        let final_tick = cli_stdout.lines().last().expect("at least one tick");

        let created = server.post(
            "/sessions",
            &format!(r#"{{"delta":20,"window":50,"slack":10,"memory_budget":{budget}}}"#),
        );
        assert_eq!(created.status, 201, "{}", created.text());
        let cv = created.json().unwrap();
        assert_eq!(cv["memory_budget"].as_u64(), budget.parse().ok());
        let id = cv["session"].as_u64().unwrap();

        let push = server.post(
            &format!("/sessions/{id}/edges"),
            r#"{"edges":[[0,1,100],[5,5,200],[1,2,95],[2,0,103],[3,4,10]]}"#,
        );
        assert_eq!(push.status, 200);
        let pv = push.json().unwrap();
        assert_eq!(pv["accepted"].as_u64(), Some(3));
        assert_eq!(pv["late_dropped"].as_u64(), Some(1));
        assert_eq!(pv["self_loops_dropped"].as_u64(), Some(1));
        assert_eq!(pv["memory_budget"].as_u64(), budget.parse().ok());

        let flushed = server.post(&format!("/sessions/{id}/flush"), "");
        assert_eq!(flushed.status, 200);
        assert_eq!(
            flushed.text().trim_end(),
            final_tick,
            "budget={budget}: flushed session != CLI final tick"
        );
        // Polling after flush reproduces the same estimator-shaped body.
        let polled = server.get(&format!("/sessions/{id}"));
        assert_eq!(polled.status, 200);
        assert_eq!(polled.body, flushed.body, "poll after flush drifted");
    }

    std::fs::remove_file(&path).ok();
    server.shutdown_and_wait();
}

#[test]
fn session_memory_pool_backpressures_and_rejects_bad_budgets() {
    let server = ServeProc::spawn(&["--session-memory-budget", "1000"]);
    // Invalid budgets are structured 400s.
    for bad in [
        r#"{"delta":10,"window":10,"memory_budget":0}"#,
        r#"{"delta":10,"window":10,"memory_budget":-5}"#,
        r#"{"delta":10,"window":10,"memory_budget":"lots"}"#,
    ] {
        let resp = server.post("/sessions", bad);
        assert_eq!(resp.status, 400, "{bad}: {}", resp.text());
        let v = resp.json().unwrap();
        assert!(
            v["error"]["message"]
                .as_str()
                .unwrap()
                .contains("memory_budget"),
            "{bad}: {}",
            resp.text()
        );
    }
    // Exact sessions never draw from the pool.
    let exact = server.post("/sessions", r#"{"delta":10,"window":10}"#);
    assert_eq!(exact.status, 201, "{}", exact.text());
    // 600 fits; the second 600 exhausts the 1000-byte pool.
    let first = server.post(
        "/sessions",
        r#"{"delta":10,"window":10,"memory_budget":600}"#,
    );
    assert_eq!(first.status, 201, "{}", first.text());
    let over = server.post(
        "/sessions",
        r#"{"delta":10,"window":10,"memory_budget":600}"#,
    );
    assert_eq!(over.status, 429, "{}", over.text());
    let ov = over.json().unwrap();
    assert!(
        ov["error"]["message"]
            .as_str()
            .unwrap()
            .contains("memory pool exhausted"),
        "{}",
        over.text()
    );
    let stats = server.get("/stats").json().unwrap();
    assert_eq!(stats["sessions"]["memory_pool"].as_u64(), Some(1000));
    assert_eq!(stats["sessions"]["memory_reserved"].as_u64(), Some(600));
    // Closing the budgeted session returns its bytes to the pool.
    let id = first.json().unwrap()["session"].as_u64().unwrap();
    let closed = client::request(
        server.addr.as_str(),
        "DELETE",
        &format!("/sessions/{id}"),
        None,
    )
    .expect("DELETE");
    assert_eq!(closed.status, 200);
    let retry = server.post(
        "/sessions",
        r#"{"delta":10,"window":10,"memory_budget":1000}"#,
    );
    assert_eq!(retry.status, 201, "{}", retry.text());
    server.shutdown_and_wait();
}

#[test]
fn node_profile_bodies_are_byte_identical_to_cli() {
    // `hare-count --nodes --json` emits one line per participating
    // node; each `/nodes/{id}/motifs` body must be byte-identical to
    // that node's line.
    let server = ServeProc::spawn(&["--preload", "CollegeMsg:8", "--threads", "1"]);
    let cli = hare_count(&[
        "--dataset",
        "CollegeMsg",
        "--scale",
        "8",
        "--delta",
        "600",
        "--nodes",
        "--json",
        "--no-timing",
    ]);
    let stdout = String::from_utf8(cli.stdout).unwrap();
    let mut checked = 0;
    for line in stdout.lines().take(5).chain(stdout.lines().last()) {
        let v: serde_json::Value = serde_json::from_str(line).expect("CLI line is JSON");
        let node = v["node"].as_u64().expect("node id");
        let resp = server.get(&format!(
            "/nodes/{node}/motifs?dataset=CollegeMsg&delta=600"
        ));
        assert_eq!(resp.status, 200, "{}", resp.text());
        assert_eq!(
            resp.text().trim_end(),
            line,
            "node {node}: serve body != CLI per-node record"
        );
        checked += 1;
    }
    assert!(checked >= 2, "CollegeMsg:8 should have participating nodes");

    // A valid but non-participating node (if any exists beyond the CLI's
    // sparse output) serves an empty profile rather than an error; an
    // out-of-range id is a 404.
    let resp = server.get("/nodes/999999/motifs?dataset=CollegeMsg&delta=600");
    assert_eq!(resp.status, 404, "{}", resp.text());
    assert!(resp.text().contains("no such node"), "{}", resp.text());
    server.shutdown_and_wait();
}

#[test]
fn top_nodes_bodies_match_cli_and_hit_cache() {
    let server = ServeProc::spawn(&["--preload", "CollegeMsg:8", "--threads", "1"]);
    // Ranked by one motif.
    let target = "/nodes/top?dataset=CollegeMsg&delta=600&motif=M66&k=5";
    let first = server.get(target);
    assert_eq!(first.status, 200, "{}", first.text());
    let cli = hare_count(&[
        "--dataset",
        "CollegeMsg",
        "--scale",
        "8",
        "--delta",
        "600",
        "--nodes",
        "--rank-motif",
        "M66",
        "--top-k",
        "5",
        "--json",
        "--no-timing",
    ]);
    assert_eq!(first.body, cli.stdout, "top-k body != CLI stdout");

    // Ranked by z-score anomaly (no motif parameter).
    let ztarget = "/nodes/top?dataset=CollegeMsg&delta=600&k=5";
    let zfirst = server.get(ztarget);
    assert_eq!(zfirst.status, 200, "{}", zfirst.text());
    let zcli = hare_count(&[
        "--dataset",
        "CollegeMsg",
        "--scale",
        "8",
        "--delta",
        "600",
        "--nodes",
        "--top-k",
        "5",
        "--json",
        "--no-timing",
    ]);
    assert_eq!(zfirst.body, zcli.stdout, "z-score body != CLI stdout");

    // Repeats are cache hits with byte-identical bodies; /stats counters
    // reconcile exactly (2 misses above, 2 hits here).
    let second = server.get(target);
    let zsecond = server.get(ztarget);
    assert_eq!(second.body, first.body);
    assert_eq!(zsecond.body, zfirst.body);
    let stats = server.get("/stats").json().unwrap();
    assert_eq!(stats["cache"]["misses"].as_u64(), Some(2), "{stats}");
    assert_eq!(stats["cache"]["hits"].as_u64(), Some(2), "{stats}");
    assert_eq!(stats["cache"]["entries"].as_u64(), Some(2), "{stats}");
    server.shutdown_and_wait();
}

#[test]
fn malformed_requests_return_structured_errors() {
    let server = ServeProc::spawn(&["--preload", "CollegeMsg:16"]);
    let cases: &[(&str, u16, &str)] = &[
        ("/count", 400, "dataset"),
        ("/count?dataset=CollegeMsg", 400, "delta"),
        ("/count?dataset=nope&delta=600", 404, "not in the catalog"),
        ("/count?dataset=CollegeMsg&delta=abc", 400, "delta"),
        (
            "/count?dataset=CollegeMsg&delta=600&only=wedges",
            400,
            "only",
        ),
        (
            "/count?dataset=CollegeMsg&delta=600&prob=0.5",
            400,
            "engine=approx",
        ),
        (
            "/count?dataset=CollegeMsg&delta=600&engine=approx&prob=1.5",
            400,
            "prob",
        ),
        (
            "/count?dataset=CollegeMsg&delta=600&engine=warp",
            400,
            "engine",
        ),
        ("/sessions/99", 404, "no such session"),
        ("/sessions/zzz", 400, "integer"),
        ("/definitely/not/here", 404, "no such endpoint"),
    ];
    for &(target, want_status, want_fragment) in cases {
        let resp = server.get(target);
        assert_eq!(resp.status, want_status, "{target}: {}", resp.text());
        let v = resp
            .json()
            .unwrap_or_else(|e| panic!("{target}: error body is not JSON ({e}): {}", resp.text()));
        assert_eq!(v["error"]["code"].as_u64(), Some(u64::from(want_status)));
        let msg = v["error"]["message"].as_str().unwrap();
        assert!(
            msg.contains(want_fragment),
            "{target}: message {msg:?} lacks {want_fragment:?}"
        );
    }
    // Bad JSON bodies on the POST endpoints.
    for target in ["/datasets", "/sessions"] {
        let resp = server.post(target, "{not json");
        assert_eq!(resp.status, 400, "{target}: {}", resp.text());
        assert!(resp.json().unwrap()["error"]["message"].as_str().is_some());
    }
    // A request that is not HTTP at all still gets a structured 400.
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(server.addr.as_str()).unwrap();
        raw.write_all(b"this is not http\r\n\r\n").unwrap();
        let mut text = String::new();
        raw.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
    }
    // Wrong verb on a known resource.
    let resp = server.post("/count?dataset=CollegeMsg&delta=600", "");
    assert_eq!(resp.status, 405);
    server.shutdown_and_wait();
}

#[test]
fn queue_overflow_answers_429_backpressure() {
    // One worker, queue of one, cache off: a burst of slow queries
    // (δ = the full time span makes every window maximal, ~0.5s each in
    // a debug build) can occupy at most two slots; the rest must be
    // answered 429 by the acceptor immediately.
    let server = ServeProc::spawn(&[
        "--workers",
        "1",
        "--queue",
        "1",
        "--cache",
        "0",
        "--preload",
        "CollegeMsg:1",
    ]);
    let slow = "/count?dataset=CollegeMsg&delta=16000000&threads=1";
    let addr = server.addr.clone();
    let burst: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || client::get(addr.as_str(), slow).expect("GET"))
        })
        .collect();

    let (mut ok, mut rejected) = (0u32, 0u32);
    for handle in burst {
        let resp = handle.join().unwrap();
        match resp.status {
            200 => {
                assert_eq!(resp.json().unwrap()["counts"].as_array().unwrap().len(), 36);
                ok += 1;
            }
            429 => {
                let v = resp.json().unwrap();
                assert_eq!(v["error"]["code"].as_u64(), Some(429));
                rejected += 1;
            }
            other => panic!("unexpected status {other}: {}", resp.text()),
        }
    }
    // At most worker + queue requests can be accepted at once; with an
    // 8-wide simultaneous burst against a ~0.5s query, some must have
    // been rejected — and accepted ones must all have completed.
    assert!(ok >= 1, "no request completed");
    assert!(rejected >= 1, "no request was backpressured");

    let stats = server.get("/stats").json().unwrap();
    assert_eq!(
        stats["queue"]["rejected"].as_u64(),
        Some(u64::from(rejected)),
        "metrics disagree with observed 429s"
    );
    server.shutdown_and_wait();
}

/// One parsed Prometheus sample: metric name, sorted label pairs, value.
type MetricSample = (String, Vec<(String, String)>, f64);

/// Parse the text exposition line by line, panicking on any line that
/// is neither a `# HELP`/`# TYPE` comment nor a well-formed sample.
/// Returns `(name -> declared type, samples)`.
fn parse_exposition(body: &str) -> (std::collections::HashMap<String, String>, Vec<MetricSample>) {
    let mut types = std::collections::HashMap::new();
    let mut samples = Vec::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("TYPE name").to_string();
            let kind = it.next().expect("TYPE kind").to_string();
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind.as_str()),
                "unknown metric type: {line}"
            );
            types.insert(name, kind);
            continue;
        }
        if line.starts_with("# HELP ") {
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment form: {line}");
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        let value: f64 = value.parse().unwrap_or_else(|e| panic!("{line}: {e}"));
        let (name, labels) = match series.split_once('{') {
            None => (series.to_string(), Vec::new()),
            Some((name, rest)) => {
                let rest = rest.strip_suffix('}').expect("closing brace");
                let mut labels: Vec<(String, String)> = rest
                    .split(',')
                    .filter(|p| !p.is_empty())
                    .map(|pair| {
                        let (k, v) = pair.split_once('=').expect("label pair");
                        let v = v.strip_prefix('"').and_then(|v| v.strip_suffix('"'));
                        (k.to_string(), v.expect("quoted label value").to_string())
                    })
                    .collect();
                labels.sort();
                (name.to_string(), labels)
            }
        };
        // Histogram children belong to the family's TYPE declaration.
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| types.get(*f).map(String::as_str) == Some("histogram"))
            .unwrap_or(&name);
        assert!(
            types.contains_key(family),
            "sample {name} has no preceding # TYPE"
        );
        samples.push((name, labels, value));
    }
    (types, samples)
}

/// The value of `name` with the given label subset (all must match).
fn sample_value(samples: &[MetricSample], name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    samples
        .iter()
        .find(|(n, l, _)| {
            n == name
                && labels
                    .iter()
                    .all(|(k, v)| l.iter().any(|(lk, lv)| lk == k && lv == v))
        })
        .map(|&(_, _, v)| v)
}

#[test]
fn metrics_exposition_is_valid_and_reflects_traffic() {
    let server = ServeProc::spawn(&["--preload", "CollegeMsg:8"]);
    // Traffic the scrape must account for: a cache miss, a cache hit,
    // a 404, and a /stats read.
    assert_eq!(
        server.get("/count?dataset=CollegeMsg&delta=600").status,
        200
    );
    assert_eq!(
        server.get("/count?dataset=CollegeMsg&delta=600").status,
        200
    );
    assert_eq!(server.get("/definitely/not/here").status, 404);
    assert_eq!(server.get("/stats").status, 200);

    let first = server.get("/metrics");
    assert_eq!(first.status, 200);
    let (types, samples) = parse_exposition(first.text().trim_end());

    // The inventory documented in docs/OBSERVABILITY.md is present.
    for (name, kind) in [
        ("hare_cache_hits_total", "counter"),
        ("hare_cache_misses_total", "counter"),
        ("hare_cache_evictions_total", "counter"),
        ("hare_cache_entries", "gauge"),
        ("hare_queue_in_flight", "gauge"),
        ("hare_requests_completed_total", "counter"),
        ("hare_requests_rejected_total", "counter"),
        ("hare_sessions_open", "gauge"),
        ("hare_ooc_peak_resident_lane_bytes", "gauge"),
        ("hare_http_requests_total", "counter"),
        ("hare_http_request_duration_us", "histogram"),
    ] {
        assert_eq!(types.get(name).map(String::as_str), Some(kind), "{name}");
    }

    // Counters reconcile with the traffic above.
    assert_eq!(
        sample_value(&samples, "hare_cache_hits_total", &[]),
        Some(1.0)
    );
    assert_eq!(
        sample_value(&samples, "hare_cache_misses_total", &[]),
        Some(1.0)
    );
    // A worker marks "completed" only *after* its response is written,
    // so any number of the four preceding done-transitions may still be
    // pending at scrape time (and the /metrics request itself always
    // is). The counter must converge to all four, so poll for it.
    let mut completed = sample_value(&samples, "hare_requests_completed_total", &[]).unwrap();
    let mut extra_scrapes = 0.0;
    for _ in 0..100 {
        if completed >= 4.0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        let (_, resampled) = parse_exposition(server.get("/metrics").text().trim_end());
        extra_scrapes += 1.0;
        completed = sample_value(&resampled, "hare_requests_completed_total", &[]).unwrap();
    }
    assert!(completed >= 4.0, "completed = {completed}");
    let count_2xx = sample_value(
        &samples,
        "hare_http_requests_total",
        &[("path", "/count"), ("status", "2xx")],
    );
    assert_eq!(count_2xx, Some(2.0));
    let other_4xx = sample_value(
        &samples,
        "hare_http_requests_total",
        &[("path", "other"), ("status", "4xx")],
    );
    assert_eq!(other_4xx, Some(1.0));

    // Histogram coherence: per label set, bucket counts are cumulative
    // (non-decreasing in `le`, which the exposition orders ascending)
    // and the +Inf bucket equals the `_count` sample.
    let mut by_path: std::collections::HashMap<String, (Vec<f64>, Option<f64>)> =
        std::collections::HashMap::new();
    for (name, labels, value) in &samples {
        let path = labels
            .iter()
            .find(|(k, _)| k == "path")
            .map(|(_, v)| v.clone());
        if name == "hare_http_request_duration_us_bucket" {
            by_path
                .entry(path.expect("path label"))
                .or_default()
                .0
                .push(*value);
        } else if name == "hare_http_request_duration_us_count" {
            by_path.entry(path.expect("path label")).or_default().1 = Some(*value);
        }
    }
    assert!(by_path.len() >= 10, "one histogram per endpoint group");
    for (path, (buckets, count)) in &by_path {
        assert!(
            buckets.windows(2).all(|w| w[0] <= w[1]),
            "{path}: buckets not cumulative: {buckets:?}"
        );
        assert_eq!(
            buckets.last().copied(),
            *count,
            "{path}: +Inf bucket != _count"
        );
    }
    let count_observed = by_path["/count"].1.unwrap();
    assert_eq!(count_observed, 2.0, "/count latency observations");

    // A second scrape never regresses any counter (monotonicity), and
    // the /metrics endpoint accounts for its own scrapes.
    let second = server.get("/metrics");
    let (_, resamples) = parse_exposition(second.text().trim_end());
    for (name, labels, value) in &samples {
        if types.get(name.as_str()).map(String::as_str) != Some("counter") {
            continue;
        }
        let labels: Vec<(&str, &str)> = labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let later = sample_value(&resamples, name, &labels)
            .unwrap_or_else(|| panic!("{name}{labels:?} vanished between scrapes"));
        assert!(
            later >= *value,
            "{name}{labels:?} regressed: {later} < {value}"
        );
    }
    // The endpoint accounts for its own scrapes, one behind: a scrape's
    // body renders before that scrape is observed, so this scrape
    // reports exactly the ones before it (first + any poll rounds).
    let scrapes = sample_value(
        &resamples,
        "hare_http_requests_total",
        &[("path", "/metrics"), ("status", "2xx")],
    );
    assert_eq!(scrapes, Some(1.0 + extra_scrapes));

    // The exposition is served with the Prometheus text content type
    // (the test client drops headers, so read the raw stream).
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(server.addr.as_str()).unwrap();
        raw.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut text = String::new();
        raw.read_to_string(&mut text).unwrap();
        assert!(
            text.contains("Content-Type: text/plain; version=0.0.4"),
            "{}",
            text.lines().take(8).collect::<Vec<_>>().join("\n")
        );
    }
    server.shutdown_and_wait();
}

#[test]
fn metrics_latency_histogram_observes_slow_requests() {
    // A maximal-δ query takes ~0.5s in a debug build: its latency must
    // land in the /count histogram's sum (microseconds), separating it
    // from the fast endpoints.
    let server = ServeProc::spawn(&["--preload", "CollegeMsg:1"]);
    let slow = server.get("/count?dataset=CollegeMsg&delta=16000000&threads=1");
    assert_eq!(slow.status, 200);
    let resp = server.get("/metrics");
    let (_, samples) = parse_exposition(resp.text().trim_end());
    let sum = sample_value(
        &samples,
        "hare_http_request_duration_us_sum",
        &[("path", "/count")],
    )
    .unwrap();
    let count = sample_value(
        &samples,
        "hare_http_request_duration_us_count",
        &[("path", "/count")],
    )
    .unwrap();
    assert_eq!(count, 1.0);
    assert!(
        sum >= 10_000.0,
        "slow query's latency missing from histogram sum: {sum}µs"
    );
    server.shutdown_and_wait();
}

#[test]
fn trace_param_reports_phases_without_perturbing_the_body() {
    let server = ServeProc::spawn(&["--preload", "CollegeMsg:8"]);
    let plain = server.get("/count?dataset=CollegeMsg&delta=600");
    assert_eq!(plain.status, 200);
    let traced = server.get("/count?dataset=CollegeMsg&delta=600&trace=1");
    assert_eq!(traced.status, 200, "{}", traced.text());
    let v = traced.json().unwrap();
    assert_eq!(
        v["result"],
        plain.json().unwrap(),
        "traced result drifted from the plain body"
    );
    let phases = v["trace"]["phases"].as_array().unwrap();
    assert!(!phases.is_empty(), "{}", traced.text());
    for phase in phases {
        let name = phase["phase"].as_str().unwrap();
        assert!(
            ["scan", "fold", "chunk_load", "evict", "summarise"].contains(&name),
            "unknown phase {name:?}"
        );
        assert!(phase["spans"].as_u64().unwrap() >= 1);
        assert!(phase["duration_us"].as_u64().is_some());
    }
    assert!(v["trace"]["trace_id"].as_u64().is_some());
    server.shutdown_and_wait();
}

#[test]
fn access_log_records_requests_with_cache_disposition() {
    // The daemon logs by default (the library default is quiet; the
    // binary flips it on unless --no-access-log). One JSON line per
    // request lands on stderr: method, path, status, latency_us, and
    // the cache disposition for /count.
    let mut server = ServeProc::spawn(&["--preload", "CollegeMsg:8"]);
    let stderr = server.child.stderr.take().expect("piped stderr");
    assert_eq!(
        server.get("/count?dataset=CollegeMsg&delta=600").status,
        200
    );
    assert_eq!(
        server.get("/count?dataset=CollegeMsg&delta=600").status,
        200
    );
    assert_eq!(server.get("/nope").status, 404);
    server.shutdown_and_wait();

    let mut text = String::new();
    use std::io::Read as _;
    BufReader::new(stderr).read_to_string(&mut text).unwrap();
    let records: Vec<serde_json::Value> = text
        .lines()
        .filter_map(|l| serde_json::from_str(l).ok())
        .filter(|v: &serde_json::Value| v["method"].as_str().is_some())
        .collect();
    let count_records: Vec<&serde_json::Value> = records
        .iter()
        .filter(|v| v["path"].as_str() == Some("/count"))
        .collect();
    assert_eq!(count_records.len(), 2, "{text}");
    assert_eq!(count_records[0]["cache"].as_str(), Some("miss"), "{text}");
    assert_eq!(count_records[1]["cache"].as_str(), Some("hit"), "{text}");
    for v in &count_records {
        assert_eq!(v["status"].as_u64(), Some(200));
        assert!(v["latency_us"].as_u64().is_some());
    }
    let not_found = records
        .iter()
        .find(|v| v["path"].as_str() == Some("/nope"))
        .unwrap_or_else(|| panic!("404 not logged:\n{text}"));
    assert_eq!(not_found["status"].as_u64(), Some(404));
}

#[cfg(unix)]
#[test]
fn sigterm_shuts_down_cleanly() {
    let mut server = ServeProc::spawn(&[]);
    assert_eq!(server.get("/").status, 200);
    let pid = server.child.id().to_string();
    let status = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("spawn kill");
    assert!(status.success());
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match server.child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "SIGTERM exit was {status}");
                break;
            }
            None if Instant::now() > deadline => panic!("server ignored SIGTERM for 30s"),
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    std::mem::forget(server);
}

#[test]
fn shutdown_drains_in_flight_and_queued_requests() {
    // Two workers: one takes a slow query, the other handles /shutdown.
    // The slow query must complete with a full valid body — shutdown
    // drains, it does not drop.
    let server = ServeProc::spawn(&["--workers", "2", "--preload", "CollegeMsg:1"]);
    let addr = server.addr.clone();
    let slow = std::thread::spawn(move || {
        client::get(
            addr.as_str(),
            "/count?dataset=CollegeMsg&delta=16000000&threads=1",
        )
        .expect("GET")
    });
    // Let the ~0.5s query reach a worker, then shut down mid-flight.
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown_and_wait();

    let resp = slow.join().unwrap();
    assert_eq!(resp.status, 200, "in-flight request dropped by shutdown");
    let v = resp.json().expect("drained response is complete JSON");
    assert_eq!(v["counts"].as_array().unwrap().len(), 36);
    assert_eq!(v["delta"].as_i64(), Some(16000000));
}
