//! Delta-encoded, bit-packed timestamp lanes.
//!
//! The timestamp lane is the one lane every δ-window scan streams end to
//! end, so it dominates the resident footprint of a big graph
//! (8 bytes/event raw). Within one node run `S_u` timestamps are sorted,
//! which makes them ideal for delta-from-anchor compression: store the
//! run's first timestamp (*anchor*) once, then each event as
//! `ts[i] - anchor` packed at a fixed bit width chosen per run
//! (`bits(ts[last] - anchor)`). Unlike varint streams, fixed-width
//! packing keeps **O(1) random access** — `NodeEvents::partition_point`
//! and the HARE intra-node range splits still binary-search a run
//! without decoding it — while bursty real-world runs (bounded time
//! span, thousands of events) typically drop from 64 to 10–25 bits per
//! timestamp.
//!
//! Three layers:
//!
//! * [`PackedTs`] — whole-graph storage: one bit-packed words arena plus
//!   per-node `(anchor, width, bit_start)` metadata.
//! * [`PackedRun`] — the borrowed per-node view; decodes one timestamp
//!   with a shift/mask pair (no branches beyond the word-boundary
//!   blend).
//! * [`TsLane`] / [`TsRead`] — what kernels actually consume.
//!   [`TsLane`] is the enum the graph hands out (raw slice or packed
//!   run); hot kernels match on it **once per node** and run a scan
//!   monomorphised over [`TsRead`], so the raw path compiles to plain
//!   slice indexing with zero dispatch in the inner loop.
//!
//! hare-lint: no-alloc

use crate::types::Timestamp;

/// Storage layout of a graph's timestamp lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LaneLayout {
    /// Uncompressed: 8 bytes per event, zero decode cost. The default.
    #[default]
    Raw,
    /// Delta-from-anchor bit-packed per node run ([`PackedTs`]),
    /// decoded on the fly by the kernels. Bit-identical counts; lower
    /// resident footprint on bursty graphs.
    Compressed,
}

impl std::fmt::Display for LaneLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaneLayout::Raw => write!(f, "raw"),
            LaneLayout::Compressed => write!(f, "compressed"),
        }
    }
}

/// Read-only random access to one node's timestamp run. Hot kernels are
/// generic over this so each lane representation gets its own
/// monomorphised scan (the raw path keeps compiling to slice loads).
pub trait TsRead: Copy {
    /// Number of timestamps in the run.
    fn len(&self) -> usize;
    /// The `i`-th timestamp. Panics (or returns garbage in release for
    /// the packed path) if `i >= len()`; callers stay in bounds.
    fn at(&self, i: usize) -> Timestamp;
    /// `true` if the run is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TsRead for &[Timestamp] {
    #[inline]
    fn len(&self) -> usize {
        <[Timestamp]>::len(self)
    }

    #[inline]
    fn at(&self, i: usize) -> Timestamp {
        self[i]
    }
}

/// Borrowed view over one node's bit-packed timestamp run.
#[derive(Debug, Clone, Copy)]
pub struct PackedRun<'a> {
    /// Packed words arena (shared by all runs; padded with one tail word
    /// so the two-word blend in [`TsRead::at`] never reads out of
    /// bounds).
    words: &'a [u64],
    /// Absolute bit offset of this run's first delta within `words`.
    bit_start: u64,
    /// First timestamp of the run; all deltas are relative to it.
    anchor: Timestamp,
    /// Bits per delta (0 ⇒ every timestamp equals the anchor).
    width: u32,
    /// `width` low bits set (0 for `width == 0`).
    mask: u64,
    /// Number of timestamps in the run.
    len: usize,
}

impl PackedRun<'_> {
    /// Sub-run over `range` (deltas stay anchored to the full run's
    /// first timestamp, so no re-encoding is needed).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    #[inline]
    #[must_use]
    pub fn slice(self, range: std::ops::Range<usize>) -> Self {
        assert!(range.start <= range.end && range.end <= self.len);
        PackedRun {
            bit_start: self.bit_start + range.start as u64 * u64::from(self.width),
            len: range.end - range.start,
            ..self
        }
    }
}

impl TsRead for PackedRun<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn at(&self, i: usize) -> Timestamp {
        debug_assert!(i < self.len);
        if self.width == 0 {
            return self.anchor;
        }
        let bit = self.bit_start + i as u64 * u64::from(self.width);
        let word = (bit >> 6) as usize;
        let shift = (bit & 63) as u32;
        let lo = self.words[word] >> shift;
        // High part from the next word; `(x << (63 - s)) << 1` is
        // `x << (64 - s)` for `s > 0` and exactly 0 for `s == 0`, so the
        // blend is branch-free and never shifts by 64.
        let hi = (self.words[word + 1] << (63 - shift)) << 1;
        self.anchor
            .wrapping_add(((lo | hi) & self.mask) as Timestamp)
    }
}

/// One node's timestamp lane as handed out by the graph: either a
/// borrowed raw slice or a bit-packed run. Kernels match once per node
/// and stay monomorphised over [`TsRead`] inside the scan.
#[derive(Debug, Clone, Copy)]
pub enum TsLane<'a> {
    /// Uncompressed lane: a plain sorted slice.
    Raw(&'a [Timestamp]),
    /// Compressed lane: delta-from-anchor fixed-width packed run.
    Packed(PackedRun<'a>),
}

impl<'a> TsLane<'a> {
    /// Number of timestamps.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            TsLane::Raw(s) => s.len(),
            TsLane::Packed(p) => p.len,
        }
    }

    /// `true` if the lane holds no timestamps.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th timestamp.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds (raw path; the packed path panics
    /// in debug builds).
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> Timestamp {
        match self {
            TsLane::Raw(s) => s[i],
            TsLane::Packed(p) => p.at(i),
        }
    }

    /// Sub-lane over a contiguous range.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    #[inline]
    #[must_use]
    pub fn slice(self, range: std::ops::Range<usize>) -> TsLane<'a> {
        match self {
            TsLane::Raw(s) => TsLane::Raw(&s[range]),
            TsLane::Packed(p) => TsLane::Packed(p.slice(range)),
        }
    }

    /// The underlying raw slice, if this lane is uncompressed.
    #[inline]
    #[must_use]
    pub fn as_raw(&self) -> Option<&'a [Timestamp]> {
        match self {
            TsLane::Raw(s) => Some(s),
            TsLane::Packed(_) => None,
        }
    }

    /// Iterate the timestamps in order.
    pub fn iter(self) -> impl Iterator<Item = Timestamp> + 'a {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// `slice::partition_point` over the timestamps: index of the first
    /// timestamp for which `pred` is false (true-prefix required).
    #[inline]
    #[must_use]
    pub fn partition_point(&self, mut pred: impl FnMut(Timestamp) -> bool) -> usize {
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if pred(self.get(mid)) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// Whole-graph storage for the compressed timestamp lane: per-node
/// `(anchor, width, bit_start)` metadata over one shared bit-packed
/// words arena. Built by `PackedTs::encode` from the raw lane and the
/// CSR offsets; decoded on the fly through [`PackedRun`].
#[derive(Debug, Clone)]
pub struct PackedTs {
    anchors: Box<[Timestamp]>,
    widths: Box<[u8]>,
    bit_starts: Box<[u64]>,
    words: Box<[u64]>,
}

impl PackedTs {
    /// Encode the raw timestamp lane `ts` (CSR runs delimited by
    /// `node_offsets`, each run sorted ascending) into per-run
    /// delta-from-anchor fixed-width packing.
    pub(crate) fn encode(node_offsets: &[usize], ts: &[Timestamp]) -> PackedTs {
        let num_nodes = node_offsets.len().saturating_sub(1);
        // hare-lint: allow(alloc, reason = "one-time lane encoding, not the scan path")
        let mut anchors = vec![0 as Timestamp; num_nodes];
        // hare-lint: allow(alloc, reason = "one-time lane encoding, not the scan path")
        let mut widths = vec![0u8; num_nodes];
        // hare-lint: allow(alloc, reason = "one-time lane encoding, not the scan path")
        let mut bit_starts = vec![0u64; num_nodes];

        let mut total_bits = 0u64;
        for u in 0..num_nodes {
            let (lo, hi) = (node_offsets[u], node_offsets[u + 1]);
            bit_starts[u] = total_bits;
            if lo == hi {
                continue;
            }
            let anchor = ts[lo];
            anchors[u] = anchor;
            debug_assert!(ts[lo..hi].windows(2).all(|w| w[0] <= w[1]));
            let max_delta = ts[hi - 1].wrapping_sub(anchor) as u64;
            let width = if max_delta == 0 {
                0
            } else {
                64 - max_delta.leading_zeros()
            };
            widths[u] = width as u8;
            total_bits += (hi - lo) as u64 * u64::from(width);
        }

        // One zero pad word so the decode blend can always read word+1.
        // hare-lint: allow(alloc, reason = "one-time lane encoding, not the scan path")
        let mut words = vec![0u64; (total_bits as usize).div_ceil(64) + 1];
        for u in 0..num_nodes {
            let (lo, hi) = (node_offsets[u], node_offsets[u + 1]);
            let width = u64::from(widths[u]);
            if width == 0 {
                continue;
            }
            let anchor = anchors[u];
            let mut bit = bit_starts[u];
            for &t in &ts[lo..hi] {
                let delta = t.wrapping_sub(anchor) as u64;
                let word = (bit >> 6) as usize;
                let shift = (bit & 63) as u32;
                words[word] |= delta << shift;
                if u64::from(shift) + width > 64 {
                    words[word + 1] |= delta >> (64 - shift);
                }
                bit += width;
            }
        }

        PackedTs {
            anchors: anchors.into_boxed_slice(),
            widths: widths.into_boxed_slice(),
            bit_starts: bit_starts.into_boxed_slice(),
            words: words.into_boxed_slice(),
        }
    }

    /// The packed run of node `u` (`len` from the CSR offsets).
    #[inline]
    pub(crate) fn run(&self, u: usize, len: usize) -> PackedRun<'_> {
        let width = u32::from(self.widths[u]);
        PackedRun {
            words: &self.words,
            bit_start: self.bit_starts[u],
            anchor: self.anchors[u],
            width,
            mask: if width == 0 {
                0
            } else {
                u64::MAX >> (64 - width)
            },
            len,
        }
    }

    /// Heap bytes held by the packed lane (metadata + words arena).
    pub(crate) fn heap_bytes(&self) -> usize {
        self.anchors.len() * std::mem::size_of::<Timestamp>()
            + self.widths.len()
            + self.bit_starts.len() * 8
            + self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(offsets: &[usize], ts: &[Timestamp]) {
        let packed = PackedTs::encode(offsets, ts);
        for u in 0..offsets.len() - 1 {
            let (lo, hi) = (offsets[u], offsets[u + 1]);
            let run = packed.run(u, hi - lo);
            for (i, &want) in ts[lo..hi].iter().enumerate() {
                assert_eq!(run.at(i), want, "node {u} index {i}");
            }
        }
    }

    #[test]
    fn packed_roundtrips_simple_runs() {
        roundtrip(&[0, 3, 3, 7], &[5, 9, 1000, -4, -4, 0, 1 << 40]);
    }

    #[test]
    fn packed_roundtrips_extreme_spans() {
        // Anchor at i64::MIN with a full-width delta exercises the
        // wrapping encode/decode and 64-bit widths.
        roundtrip(&[0, 2], &[i64::MIN, i64::MAX]);
        roundtrip(&[0, 1], &[i64::MIN]);
        roundtrip(&[0, 4], &[-100, -100, -100, -100]);
    }

    #[test]
    fn packed_roundtrips_dense_small_widths() {
        // Widths 1..=17 across many word boundaries.
        for width_bits in 1..=17u32 {
            let span = (1i64 << width_bits) - 1;
            let ts: Vec<Timestamp> = (0..200).map(|i| 50 + (i * 7) % (span + 1)).collect();
            let mut sorted = ts.clone();
            sorted.sort_unstable();
            roundtrip(&[0, sorted.len()], &sorted);
        }
    }

    #[test]
    fn lane_accessors_agree_between_raw_and_packed() {
        let ts: Vec<Timestamp> = vec![3, 3, 8, 21, 22, 22, 40];
        let offsets = [0, ts.len()];
        let packed = PackedTs::encode(&offsets, &ts);
        let raw = TsLane::Raw(&ts);
        let lane = TsLane::Packed(packed.run(0, ts.len()));
        assert_eq!(raw.len(), lane.len());
        assert!(!lane.is_empty());
        assert!(lane.as_raw().is_none());
        assert_eq!(raw.as_raw(), Some(ts.as_slice()));
        for i in 0..ts.len() {
            assert_eq!(lane.get(i), raw.get(i));
        }
        assert_eq!(
            lane.iter().collect::<Vec<_>>(),
            raw.iter().collect::<Vec<_>>()
        );
        for cut in [-1, 0, 3, 8, 22, 23, 99] {
            assert_eq!(
                lane.partition_point(|t| t < cut),
                raw.partition_point(|t| t < cut),
                "cut={cut}"
            );
        }
        let sub = lane.slice(2..5);
        let sub_raw = raw.slice(2..5);
        assert_eq!(sub.len(), 3);
        for i in 0..3 {
            assert_eq!(sub.get(i), sub_raw.get(i));
        }
    }

    #[test]
    fn empty_runs_and_empty_graph() {
        let packed = PackedTs::encode(&[0, 0, 0], &[]);
        assert_eq!(packed.run(0, 0).len, 0);
        assert_eq!(packed.run(1, 0).len, 0);
        let none = PackedTs::encode(&[0], &[]);
        assert!(none.heap_bytes() >= 8); // the pad word
        let empty = PackedTs::encode(&[], &[]);
        assert_eq!(empty.anchors.len(), 0);
    }

    #[test]
    fn heap_bytes_reflect_compression() {
        // 10k events spanning 1<<20 ticks: ~20 bits/event packed vs 64 raw.
        let ts: Vec<Timestamp> = (0..10_000).map(|i| (i * 97) % (1 << 20)).collect();
        let mut sorted = ts;
        sorted.sort_unstable();
        let offsets = [0, sorted.len()];
        let packed = PackedTs::encode(&offsets, &sorted);
        let raw_bytes = sorted.len() * 8;
        assert!(
            packed.heap_bytes() < raw_bytes / 2,
            "packed {} vs raw {raw_bytes}",
            packed.heap_bytes()
        );
    }
}
