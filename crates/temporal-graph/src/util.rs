//! Small utilities: a fast integer hasher for hot index lookups.
//!
//! The per-pair edge index is queried once per candidate `(e_i, e_j)` pair
//! in FAST-Tri — hot enough that SipHash shows up in profiles. This module
//! provides an `FxHash`-style multiply-rotate hasher (the algorithm used by
//! rustc) so we avoid pulling in an extra dependency for ~30 lines of code.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FNV-inspired `FxHash` used in rustc; empirically
/// strong for small integer keys.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for integer-like keys.
///
/// Not HashDoS-resistant; appropriate here because keys are internal node
/// ids, never attacker-controlled strings.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Construct an empty [`FxHashMap`] with the given capacity.
#[must_use]
pub fn fx_hash_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

/// One step of a SplitMix64-style hash chain: absorb `v` into the
/// running state `h` and return the finalized new state.
///
/// This is the single definition of the mix used by every persisted or
/// reproducibility-bearing hash in the workspace —
/// [`crate::TemporalGraph::fingerprint`] (the serving cache key) and
/// `hare::sample::window_kept` (the seeded sampling coin) — so the
/// constants can never silently diverge between them.
#[inline]
#[must_use]
pub fn splitmix64_mix(h: u64, v: u64) -> u64 {
    let mut z = (h ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basic_operations() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        m.insert((1, 2), 10);
        m.insert((2, 1), 20);
        assert_eq!(m.get(&(1, 2)), Some(&10));
        assert_eq!(m.get(&(2, 1)), Some(&20));
        assert_eq!(m.get(&(3, 3)), None);
    }

    #[test]
    fn hasher_is_deterministic() {
        let h = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn with_capacity_constructor() {
        let m: FxHashMap<u32, u32> = fx_hash_map_with_capacity(100);
        assert!(m.capacity() >= 100);
    }

    #[test]
    fn distinct_small_keys_do_not_collide_catastrophically() {
        // Sanity: 10k sequential pair keys should produce ~10k distinct
        // hashes (a weak hasher can alias small integers badly).
        let mut seen = FxHashSet::default();
        for a in 0u32..100 {
            for b in 0u32..100 {
                let mut h = FxHasher::default();
                h.write_u32(a);
                h.write_u32(b);
                seen.insert(h.finish());
            }
        }
        assert!(seen.len() > 9_900, "too many collisions: {}", seen.len());
    }
}
